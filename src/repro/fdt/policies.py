"""Threading policies: how many threads to run a kernel with.

* :class:`StaticPolicy` — the conventional scheme: a fixed thread count,
  defaulting to one thread per core (the paper's 32-thread baseline).
* :class:`FdtPolicy` — Feedback-Driven Threading with three modes:
  SAT (Section 4), BAT (Section 5), or the combined scheme (Section 6).

A policy consumes a :class:`~repro.fdt.kernel.Kernel` and drives a
:class:`~repro.sim.machine.Machine` through the kernel's full execution,
returning what it decided and what it cost.
"""

from __future__ import annotations

import abc
import enum
from dataclasses import dataclass, replace

from repro.errors import ConfigError
from repro.fdt.estimators import Estimates, estimate
from repro.fdt.kernel import Kernel
from repro.fdt.training import (
    TrainingConfig,
    TrainingLog,
    instrumented_training_program,
)
from repro.sim.machine import Machine
from repro.sim.stats import RunResult


class FdtMode(enum.Enum):
    """Which limiter(s) the FDT instance watches."""

    SAT = "sat"
    BAT = "bat"
    COMBINED = "sat+bat"


@dataclass(frozen=True, slots=True)
class KernelRunInfo:
    """Outcome of running one kernel under a policy."""

    kernel_name: str
    policy_name: str
    #: Thread count used for the execution phase.
    threads: int
    #: Iterations consumed by training (0 for static policies).
    trained_iterations: int
    #: Cycles spent in the single-threaded training phase.
    training_cycles: int
    #: Cycles spent in the execution phase (including spawn/join).
    execution_cycles: int
    #: Full machine-counter delta over training + execution.
    result: RunResult
    #: Estimation-stage outputs (None for static policies).
    estimates: Estimates | None = None
    #: Why training stopped ("" for static policies).
    stop_reason: str = ""

    @property
    def total_cycles(self) -> int:
        return self.training_cycles + self.execution_cycles


class ThreadingPolicy(abc.ABC):
    """Strategy for choosing and applying a kernel's thread count."""

    name: str = "policy"

    @abc.abstractmethod
    def run_kernel(self, machine: Machine, kernel: Kernel) -> KernelRunInfo:
        """Execute ``kernel`` to completion on ``machine``."""


class StaticPolicy(ThreadingPolicy):
    """Conventional threading: a fixed team size for every kernel.

    Args:
        threads: team size; None means one thread per core, the default
            of the systems the paper cites (Sun/Aachen/Hitachi OpenMP).
    """

    def __init__(self, threads: int | None = None) -> None:
        if threads is not None and threads < 1:
            raise ConfigError("static thread count must be >= 1")
        self.threads = threads
        self.name = f"static-{threads if threads else 'ncores'}"

    def run_kernel(self, machine: Machine, kernel: Kernel) -> KernelRunInfo:
        threads = self.threads or machine.config.num_cores
        threads = min(threads, machine.config.num_thread_slots)
        before = machine.snapshot()
        region = machine.run_parallel(
            kernel.factories(range(kernel.total_iterations), threads))
        return KernelRunInfo(
            kernel_name=kernel.name,
            policy_name=self.name,
            threads=threads,
            trained_iterations=0,
            training_cycles=0,
            execution_cycles=region.cycles,
            result=machine.result_since(before),
        )


class FdtPolicy(ThreadingPolicy):
    """Feedback-Driven Threading (paper Figure 5, Sections 4.2/5.2/6.1)."""

    def __init__(self, mode: FdtMode = FdtMode.COMBINED,
                 training: TrainingConfig | None = None) -> None:
        self.mode = mode
        base = training or TrainingConfig()
        # Per-mode termination needs (Sections 4.2.1 / 5.2 / 6.1): the
        # combined scheme trains until *both* measurements settle.
        self.training = replace(
            base,
            need_sat=mode in (FdtMode.SAT, FdtMode.COMBINED),
            need_bat=mode in (FdtMode.BAT, FdtMode.COMBINED),
        )
        self.name = f"fdt-{mode.value}"

    def decide(self, estimates: Estimates) -> int:
        """The mode's thread-count decision from the estimation stage."""
        if self.mode is FdtMode.SAT:
            return estimates.p_cs
        if self.mode is FdtMode.BAT:
            return estimates.p_bw
        return estimates.p_fdt

    def run_kernel(self, machine: Machine, kernel: Kernel) -> KernelRunInfo:
        total = kernel.total_iterations
        before = machine.snapshot()

        # -- training: single-threaded, instrumented, peeled iterations --
        # FDT's clamp is the number of hardware thread slots — the
        # paper's "num available cores", generalized for the Section 9
        # SMT extension where a core hosts several contexts.
        slots = machine.config.num_thread_slots
        log = TrainingLog(
            config=self.training,
            total_iterations=total,
            num_cores=slots,
            kernel_name=kernel.name,
            trace=machine.trace,
        )
        train_region = machine.run_serial(
            lambda tid, team: instrumented_training_program(
                kernel, range(total), log))

        # -- estimation ---------------------------------------------------
        estimates = estimate(log, slots)
        threads = self.decide(estimates)
        if machine.trace is not None:
            machine.trace.on_fdt_decision(
                kernel.name, self.name, self.mode.value, log, estimates,
                threads, slots, machine.events.now)
        self._publish_decision(estimates, threads)

        # -- execution: remaining iterations on the chosen team ------------
        remaining = range(log.trained_iterations, total)
        exec_cycles = 0
        if len(remaining):
            region = machine.run_parallel(
                kernel.factories(remaining, threads))
            exec_cycles = region.cycles

        return KernelRunInfo(
            kernel_name=kernel.name,
            policy_name=self.name,
            threads=threads,
            trained_iterations=log.trained_iterations,
            training_cycles=train_region.cycles,
            execution_cycles=exec_cycles,
            result=machine.result_since(before),
            estimates=estimates,
            stop_reason=log.stop_reason,
        )

    def _publish_decision(self, estimates: Estimates,
                          threads: int) -> None:
        """Default-registry instruments for the decision just made.

        A pure observer of host-side telemetry: nothing here reads or
        writes machine state, so simulated cycles are unchanged
        (``tests/test_obs_parity.py``).
        """
        from repro.obs.registry import default_registry

        registry = default_registry()
        registry.labeled_counter(
            "repro_fdt_decisions_total",
            "FDT threading decisions, by mode.", "mode").inc(self.mode.value)
        registry.histogram(
            "repro_fdt_chosen_threads",
            "Thread counts chosen by FDT decisions.",
            buckets=(1, 2, 4, 8, 16, 32, 64)).observe(float(threads))
        registry.gauge(
            "repro_fdt_cs_fraction",
            "Last Eq. 3 critical-section fraction estimate."
        ).set(estimates.cs_fraction)
        registry.gauge(
            "repro_fdt_bu1",
            "Last Eq. 5 single-thread bus-utilization estimate."
        ).set(estimates.bu1)
        registry.gauge(
            "repro_fdt_p_cs",
            "Last Eq. 3 synchronization-optimal thread count."
        ).set(float(estimates.p_cs))
        registry.gauge(
            "repro_fdt_p_bw",
            "Last Eq. 5 bandwidth-optimal thread count."
        ).set(float(estimates.p_bw))
        registry.gauge(
            "repro_fdt_p_fdt",
            "Last Eq. 7 combined thread count."
        ).set(float(estimates.p_fdt))
