"""FDT for non-iterative kernels (paper Section 9).

"For non-iterative kernels, the compiler can generate a specialized
training loop for estimating application behavior."  FDT as described
needs a loop: it peels leading iterations, trains on them, and executes
the rest.  A one-shot kernel (a single big parallel region) has no
iterations to peel — so the compiler synthesizes a miniature *sample*
of the kernel's behaviour and FDT trains on repetitions of that sample
before running the real work once with the decision.

:class:`OneShotKernel` is that transform: it presents the synthesized
sample as the kernel's leading iterations and the real one-shot work as
the final "iteration", so the unmodified :class:`~repro.fdt.policies.
FdtPolicy` machinery (training rules, estimation, execution) applies.
The sample must be representative — same critical-section pattern, same
per-byte compute — which in the compiler story is by construction (it
is generated from the same body).
"""

from __future__ import annotations

from typing import Callable, Iterator

from repro.errors import WorkloadError
from repro.fdt.kernel import Kernel
from repro.isa.ops import Op
from repro.isa.program import ProgramFactory

#: A one-shot work body: ``(thread_id, num_threads) -> op generator``.
OneShotBody = Callable[[int, int], Iterator[Op]]
#: A synthesized training sample: ``(sample_index) -> op generator``.
SampleBody = Callable[[int], Iterator[Op]]


class OneShotKernel(Kernel):
    """Adapt a single-shot parallel region to FDT's loop interface.

    Args:
        name: kernel name.
        work: the real one-shot body, invoked once per thread with
            ``(thread_id, num_threads)``.
        sample: the compiler-synthesized training iteration; invoked
            with a sample index so samples can vary realistically.
        num_samples: how many training iterations exist before the real
            work.  Must leave FDT's training cap (5 iterations at repro
            scale) strictly inside the samples, so the real work is
            never consumed by training.
    """

    def __init__(self, name: str, work: OneShotBody, sample: SampleBody,
                 num_samples: int = 16) -> None:
        if num_samples < 10:
            raise WorkloadError(
                "need >= 10 samples so training never reaches the real work")
        self.name = name
        self._work = work
        self._sample = sample
        self._num_samples = num_samples

    @property
    def total_iterations(self) -> int:
        return self._num_samples + 1

    def serial_iteration(self, i: int) -> Iterator[Op]:
        if i < self._num_samples:
            return self._sample(i)
        # The one-shot body, run by a team of one (training never gets
        # here: the cap is at most half the loop).
        return self._work(0, 1)

    def factories(self, iterations: range,
                  num_threads: int) -> list[ProgramFactory]:
        self.validate_team(num_threads)
        sample_range = range(iterations.start,
                             min(iterations.stop, self._num_samples))
        run_work = iterations.stop > self._num_samples

        def factory(thread_id: int, team: int) -> Iterator[Op]:
            if thread_id == 0:
                for i in sample_range:
                    yield from self._sample(i)
            if run_work:
                yield from self._work(thread_id, team)

        return [factory] * num_threads
