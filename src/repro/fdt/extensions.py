"""Extensions the paper's Future Work section (§9) sketches.

* :class:`CalibratedBatPolicy` — "Our model for bandwidth utilization
  assumes that bandwidth requirement increases linearly with the number
  of threads ... More comprehensive models that take these effects into
  account can be developed."  This policy trains at *two* team sizes
  (1 and a small probe team), fits the sub-linear utilization curve
  ``BU(P) = BU_1 * P / (1 + beta * (P - 1))``, and solves it for
  saturation instead of assuming linearity.
* :class:`TwoPhaseSatPolicy` — addresses the other measured bias: a
  critical section timed under *no contention* (single-threaded
  training) understates its contended cost (lock handoff plus line
  ping-pong).  The policy refines SAT's pick with one probe run at the
  predicted count, re-measuring the effective CS time from lock-hold
  statistics.

Both are strictly run-time techniques in FDT's spirit: a little more
training buys a better model, no offline profile.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import TrainingError
from repro.fdt.estimators import estimate
from repro.fdt.kernel import Kernel
from repro.fdt.policies import KernelRunInfo, ThreadingPolicy
from repro.fdt.training import TrainingConfig, TrainingLog, instrumented_training_program
from repro.models import sat_model
from repro.sim.machine import Machine
from repro.sim.stats import RunResult


@dataclass(frozen=True, slots=True)
class SubLinearBandwidthModel:
    """``BU(P) = bu1 * P / (1 + beta * (P - 1))`` — Eq. 4 with a
    contention-damping term fitted from a second measurement.

    ``beta = 0`` recovers the paper's linear model exactly.
    """

    bu1: float
    beta: float

    def utilization(self, threads: int) -> float:
        if threads < 1:
            raise ValueError("thread count must be >= 1")
        u = self.bu1 * threads / (1.0 + self.beta * (threads - 1))
        return min(1.0, u)

    def saturation_threads(self) -> float:
        """Smallest real P with ``BU(P) = 1`` (inf if unreachable)."""
        if self.bu1 <= 0:
            return math.inf
        denominator = self.bu1 - self.beta
        if denominator <= 0:
            return math.inf  # utilization asymptotes below 100%
        return (1.0 - self.beta) / denominator

    def predicted_thread_count(self, num_cores: int) -> int:
        p = self.saturation_threads()
        if math.isinf(p):
            return num_cores
        return max(1, min(num_cores, math.ceil(p - 1e-9)))

    @staticmethod
    def fit(bu1: float, probe_threads: int,
            probe_utilization: float) -> "SubLinearBandwidthModel":
        """Fit beta from one extra measurement at ``probe_threads``.

        Solving ``u_p = bu1 * P / (1 + beta (P - 1))`` for beta; a probe
        at or above linearity clamps beta at 0 (never super-linear).
        """
        if probe_threads < 2:
            raise TrainingError("probe team must have at least 2 threads")
        if probe_utilization <= 0:
            return SubLinearBandwidthModel(bu1=bu1, beta=0.0)
        beta = (bu1 * probe_threads / probe_utilization - 1.0) / (
            probe_threads - 1)
        return SubLinearBandwidthModel(bu1=bu1, beta=max(0.0, beta))


class CalibratedBatPolicy(ThreadingPolicy):
    """BAT with a two-point, sub-linear bandwidth model (§9 extension).

    Training phase 1 is the paper's single-threaded instrumented loop.
    Training phase 2 runs a few more iterations on a small probe team
    (default 4) measuring aggregate bus utilization; the two points fit
    :class:`SubLinearBandwidthModel`, whose saturation point replaces
    Eq. 5.
    """

    def __init__(self, probe_threads: int = 4,
                 training: TrainingConfig | None = None) -> None:
        if probe_threads < 2:
            raise ValueError("probe team must have at least 2 threads")
        self.probe_threads = probe_threads
        self.training = training or TrainingConfig(need_sat=False,
                                                   need_bat=True)
        self.name = f"bat-calibrated-{probe_threads}"

    def run_kernel(self, machine: Machine, kernel: Kernel) -> KernelRunInfo:
        total = kernel.total_iterations
        before = machine.snapshot()

        # Phase 1: the paper's single-threaded training.
        log = TrainingLog(config=self.training, total_iterations=total,
                          num_cores=machine.config.num_cores)
        train1 = machine.run_serial(
            lambda tid, team: instrumented_training_program(
                kernel, range(total), log))
        consumed = log.trained_iterations
        base = estimate(log, machine.config.num_cores)

        # Phase 2: probe on a small team.  The probe must be long enough
        # that spawn overhead and tail imbalance do not depress the
        # measured utilization (several iterations per probe thread).
        probe_threads = min(self.probe_threads, machine.config.num_cores)
        probe_iters = min(max(1, total - consumed),
                          max(consumed, probe_threads * 8))
        probe_start = machine.snapshot()
        train2 = machine.run_parallel(kernel.factories(
            range(consumed, consumed + probe_iters), probe_threads))
        probe: RunResult = machine.result_since(probe_start)
        consumed += probe_iters

        model = SubLinearBandwidthModel.fit(
            bu1=base.bu1, probe_threads=probe_threads,
            probe_utilization=probe.bus_utilization)
        can_saturate = (model.utilization(machine.config.num_cores) >= 0.999
                        or model.saturation_threads()
                        <= machine.config.num_cores)
        threads = (model.predicted_thread_count(machine.config.num_cores)
                   if can_saturate else machine.config.num_cores)

        exec_cycles = 0
        remaining = range(consumed, total)
        if len(remaining):
            region = machine.run_parallel(kernel.factories(remaining, threads))
            exec_cycles = region.cycles

        return KernelRunInfo(
            kernel_name=kernel.name,
            policy_name=self.name,
            threads=threads,
            trained_iterations=consumed,
            training_cycles=train1.cycles + train2.cycles,
            execution_cycles=exec_cycles,
            result=machine.result_since(before),
            estimates=base,
            stop_reason=log.stop_reason,
        )


class TwoPhaseSatPolicy(ThreadingPolicy):
    """SAT refined by a contended probe (§9-adjacent extension).

    Phase 1 is the paper's SAT.  Phase 2 runs a slice at the predicted
    count and re-derives the *contended* per-entry critical-section time
    from the lock manager's hold statistics (hold time includes line
    ping-pong that single-threaded training cannot see), then re-solves
    Eq. 3 with it.
    """

    def __init__(self, training: TrainingConfig | None = None) -> None:
        self.training = training or TrainingConfig(need_sat=True,
                                                   need_bat=False)
        self.name = "sat-two-phase"

    def run_kernel(self, machine: Machine, kernel: Kernel) -> KernelRunInfo:
        total = kernel.total_iterations
        before = machine.snapshot()
        cores = machine.config.num_cores

        log = TrainingLog(config=self.training, total_iterations=total,
                          num_cores=cores)
        train1 = machine.run_serial(
            lambda tid, team: instrumented_training_program(
                kernel, range(total), log))
        consumed = log.trained_iterations
        base = estimate(log, cores)
        first_guess = base.p_cs

        # Probe at the first guess, measuring contended CS time per
        # acquisition from the lock manager.
        probe_iters = min(consumed, max(1, total - consumed))
        holds_before = machine.locks.stats.total_hold_cycles
        acqs_before = machine.locks.stats.acquisitions
        train2 = machine.run_parallel(kernel.factories(
            range(consumed, consumed + probe_iters), first_guess))
        consumed += probe_iters

        acqs = machine.locks.stats.acquisitions - acqs_before
        holds = machine.locks.stats.total_hold_cycles - holds_before
        threads = first_guess
        if acqs and base.t_cs > 0:
            # Effective per-iteration CS time under contention; the
            # serial training measured `cs_per_acq` locks per iteration.
            acq_per_iter = acqs / (probe_iters * first_guess)
            contended_t_cs = (holds / acqs) * max(1.0, acq_per_iter)
            threads = sat_model.predicted_thread_count(
                base.t_nocs, max(base.t_cs, contended_t_cs), cores)

        exec_cycles = 0
        remaining = range(consumed, total)
        if len(remaining):
            region = machine.run_parallel(kernel.factories(remaining, threads))
            exec_cycles = region.cycles

        return KernelRunInfo(
            kernel_name=kernel.name,
            policy_name=self.name,
            threads=threads,
            trained_iterations=consumed,
            training_cycles=train1.cycles + train2.cycles,
            execution_cycles=exec_cycles,
            result=machine.result_since(before),
            estimates=base,
            stop_reason=log.stop_reason,
        )
