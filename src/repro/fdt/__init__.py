"""Feedback-Driven Threading — the paper's primary contribution.

FDT replaces "one thread per core" with a measure-then-decide flow
(paper Figure 5):

1. **Train** — run a small leading slice of the parallel kernel single-
   threaded with instrumentation that reads the cycle counter around
   critical sections (for SAT) and the bus-busy counter per iteration
   (for BAT).  Training stops early when the measurement is stable
   (SAT: T_CS/T_NoCS within 5 % for 3 consecutive iterations), when BAT
   can rule out bus saturation (after 10 000 cycles, if
   ``BU_avg * num_cores < 100 %``), and in any case after 1 % of the
   loop's iterations.
2. **Estimate** — plug the measurements into the analytical models:
   ``P_CS = round(sqrt(T_NoCS / T_CS))`` and ``P_BW = ceil(1 / BU_1)``,
   then ``P_FDT = min(P_CS, P_BW, num_cores)``.
3. **Execute** — run the remaining iterations with the chosen team size
   (the OpenMP ``num_threads`` clause analogue).

Public entry points:

* :class:`~repro.fdt.kernel.Kernel` and friends — how workloads describe
  a parallelized loop to FDT.
* :class:`~repro.fdt.policies.FdtPolicy` (modes SAT / BAT / COMBINED) and
  the :class:`~repro.fdt.policies.StaticPolicy` baseline.
* :func:`~repro.fdt.runner.run_application` — run a multi-kernel
  application under a policy and collect time/power.
"""

from repro.fdt.kernel import DataParallelKernel, Kernel, TeamParallelKernel
from repro.fdt.training import TrainingConfig, TrainingLog, TrainingSample
from repro.fdt.estimators import Estimates, estimate
from repro.fdt.policies import FdtMode, FdtPolicy, StaticPolicy, ThreadingPolicy
from repro.fdt.priors import (
    PriorAgreement,
    StaticPriors,
    derive_priors,
    measure_estimates,
)
from repro.fdt.runner import Application, AppRunResult, KernelRunInfo, run_application

__all__ = [
    "Kernel",
    "DataParallelKernel",
    "TeamParallelKernel",
    "TrainingConfig",
    "TrainingLog",
    "TrainingSample",
    "Estimates",
    "estimate",
    "FdtMode",
    "FdtPolicy",
    "StaticPolicy",
    "ThreadingPolicy",
    "StaticPriors",
    "PriorAgreement",
    "derive_priors",
    "measure_estimates",
    "Application",
    "AppRunResult",
    "KernelRunInfo",
    "run_application",
]
