"""FDT training: the instrumented, single-threaded peeled loop.

The paper's compiler splits the kernel with loop peeling and inserts
cycle-counter reads at critical-section entry/exit plus bus-busy-counter
reads per iteration.  :func:`instrumented_training_program` is the source-
transformation analogue: it wraps a kernel's serial iterations, injects
:class:`~repro.isa.ops.ReadCounter` ops at the same places, and records a
:class:`TrainingSample` per iteration into a :class:`TrainingLog`, which
applies the paper's three termination rules *during* the simulated run:

1. SAT stability — stop once ``T_CS / T_NoCS`` has been stable within 5 %
   for three consecutive iterations (Section 4.2.1);
2. BAT early-out — after 10 000 cycles, stop if the average utilization
   times the core count cannot reach 100 % (Section 5.2);
3. hard cap — at most 1 % of the loop's iterations (both sections).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator

from repro.errors import TrainingError
from repro.fdt.kernel import Kernel
from repro.isa.ops import CounterKind, Lock, Op, ReadCounter, Unlock

if TYPE_CHECKING:  # pragma: no cover - break the fdt <-> trace cycle
    from repro.trace.events import TraceHooks


@dataclass(frozen=True, slots=True)
class TrainingSample:
    """Measurements from one training iteration."""

    iteration: int
    total_cycles: int
    cs_cycles: int
    bus_busy_cycles: int

    @property
    def nocs_cycles(self) -> int:
        """Cycles outside critical sections (T_NoCS share)."""
        return max(0, self.total_cycles - self.cs_cycles)

    @property
    def cs_ratio(self) -> float:
        """T_CS / T_NoCS for the stability rule (inf when all CS)."""
        if self.nocs_cycles == 0:
            return float("inf") if self.cs_cycles else 0.0
        return self.cs_cycles / self.nocs_cycles

    @property
    def bus_utilization(self) -> float:
        """Bus busy fraction during this iteration."""
        if self.total_cycles <= 0:
            return 0.0
        return min(1.0, self.bus_busy_cycles / self.total_cycles)


@dataclass(frozen=True, slots=True)
class TrainingConfig:
    """Termination-rule parameters (paper defaults)."""

    #: SAT stability window: consecutive iterations required.
    stability_window: int = 3
    #: SAT stability tolerance on the T_CS/T_NoCS ratio.
    stability_tolerance: float = 0.05
    #: Hard cap as a fraction of total iterations.
    max_iteration_fraction: float = 0.01
    #: Floor on the cap so scaled-down inputs still allow the stability
    #: window to operate (at paper-scale inputs 1 % is far above this).
    min_iterations: int = 5
    #: BAT early-out: minimum training cycles before the cannot-saturate test.
    bat_early_out_cycles: int = 10_000
    #: Which limiters this training session must satisfy.
    need_sat: bool = True
    need_bat: bool = True

    def max_training_iterations(self, total_iterations: int) -> int:
        """The 1 %-of-iterations cap with the scaled-input floor applied.

        Training can never consume the whole loop: the cap also stays
        below half the iterations so an execution phase always remains.
        """
        cap = max(self.min_iterations,
                  int(total_iterations * self.max_iteration_fraction))
        return max(1, min(cap, total_iterations // 2 or 1))


@dataclass(slots=True)
class TrainingLog:
    """Accumulated samples plus live termination-rule evaluation."""

    config: TrainingConfig
    total_iterations: int
    num_cores: int
    samples: list[TrainingSample] = field(default_factory=list)
    stop_reason: str = ""
    #: Kernel this log trains (labels trace marks; "" when untraced).
    kernel_name: str = ""
    #: Trace observer (repro.trace); never affects termination rules.
    trace: "TraceHooks | None" = None

    # -- recording (called from inside the simulated program) ----------------

    def record(self, sample: TrainingSample) -> bool:
        """Add a sample; return True when training should terminate."""
        self.samples.append(sample)
        if self.trace is not None:
            self.trace.on_training_sample(self.kernel_name, sample)
        if len(self.samples) >= self.config.max_training_iterations(
                self.total_iterations):
            self.stop_reason = "iteration-cap"
            return True
        sat_done = not self.config.need_sat or self._sat_stable()
        bat_done = not self.config.need_bat or self._bat_resolved()
        if sat_done and bat_done:
            self.stop_reason = "measurements-stable"
            return True
        return False

    def _sat_stable(self) -> bool:
        """Stability rule: ratio within tolerance for the last W samples."""
        window = self.config.stability_window
        if len(self.samples) < window:
            return False
        ratios = [s.cs_ratio for s in self.samples[-window:]]
        if any(r == float("inf") for r in ratios):
            return False
        center = sum(ratios) / window
        if center == 0.0:
            return all(r == 0.0 for r in ratios)
        tol = self.config.stability_tolerance
        return all(abs(r - center) <= tol * center for r in ratios)

    def _bat_resolved(self) -> bool:
        """BAT's early-out: enough cycles seen and saturation ruled out.

        The positive case (the bus *can* saturate) keeps training until
        the SAT rules or the iteration cap stop it, as in the paper.
        """
        if self.trained_cycles < self.config.bat_early_out_cycles:
            return False
        return self.mean_bus_utilization() * self.num_cores < 1.0

    # -- aggregate measurements -----------------------------------------------

    @property
    def trained_cycles(self) -> int:
        return sum(s.total_cycles for s in self.samples)

    @property
    def trained_iterations(self) -> int:
        return len(self.samples)

    def mean_cs_cycles(self) -> float:
        """Average T_CS per iteration."""
        self._require_samples()
        return sum(s.cs_cycles for s in self.samples) / len(self.samples)

    def mean_nocs_cycles(self) -> float:
        """Average T_NoCS per iteration."""
        self._require_samples()
        return sum(s.nocs_cycles for s in self.samples) / len(self.samples)

    def mean_bus_utilization(self) -> float:
        """BU_1: bus busy cycles over total cycles across training."""
        self._require_samples()
        total = self.trained_cycles
        if total == 0:
            return 0.0
        busy = sum(s.bus_busy_cycles for s in self.samples)
        return min(1.0, busy / total)

    def _require_samples(self) -> None:
        if not self.samples:
            raise TrainingError("training produced no samples")


def instrumented_training_program(kernel: Kernel, iterations: range,
                                  log: TrainingLog) -> Iterator[Op]:
    """The peeled, instrumented training loop (runs single-threaded).

    Wraps each serial iteration of ``kernel`` with counter reads:

    * cycle counter at iteration start/end (total time per iteration);
    * bus-busy counter at iteration start/end (BAT's BU_1 numerator);
    * cycle counter at outermost critical-section entry and exit (SAT's
      T_CS), exactly the paper's Section 4.2.1 instrumentation.

    Stops early when :meth:`TrainingLog.record` says so.
    """
    for i in iterations:
        t_start = yield ReadCounter(CounterKind.CYCLES)
        bus_start = yield ReadCounter(CounterKind.BUS_BUSY_CYCLES)
        cs_cycles = 0
        depth = 0
        cs_entry = 0
        for op in kernel.serial_iteration(i):
            if type(op) is Lock:
                if depth == 0:
                    cs_entry = yield ReadCounter(CounterKind.CYCLES)
                depth += 1
                yield op
            elif type(op) is Unlock:
                yield op
                depth -= 1
                if depth == 0:
                    cs_exit = yield ReadCounter(CounterKind.CYCLES)
                    cs_cycles += cs_exit - cs_entry
            else:
                yield op
        t_end = yield ReadCounter(CounterKind.CYCLES)
        bus_end = yield ReadCounter(CounterKind.BUS_BUSY_CYCLES)
        sample = TrainingSample(
            iteration=i,
            total_cycles=t_end - t_start,
            cs_cycles=cs_cycles,
            bus_busy_cycles=bus_end - bus_start,
        )
        if log.record(sample):
            return
