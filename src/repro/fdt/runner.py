"""Run whole applications (sequences of kernels) under a threading policy.

An :class:`Application` is an ordered list of kernels — most paper
workloads have one, MTwister has two (the Mersenne-Twister generator and
the Box-Muller transform), which is exactly the case where per-kernel FDT
beats any single static choice (paper Section 6.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import WorkloadError
from repro.fdt.kernel import Kernel
from repro.fdt.policies import KernelRunInfo, ThreadingPolicy
from repro.sim.config import MachineConfig
from repro.sim.machine import Machine
from repro.sim.stats import RunResult


@dataclass(frozen=True, slots=True)
class Application:
    """A named, ordered collection of parallel kernels."""

    name: str
    kernels: tuple[Kernel, ...]

    def __post_init__(self) -> None:
        if not self.kernels:
            raise WorkloadError(f"application {self.name!r} has no kernels")

    @staticmethod
    def single(kernel: Kernel, name: str | None = None) -> "Application":
        """Wrap one kernel as an application."""
        return Application(name=name or kernel.name, kernels=(kernel,))


@dataclass(frozen=True, slots=True)
class AppRunResult:
    """Outcome of one application run under one policy."""

    app_name: str
    policy_name: str
    kernel_infos: tuple[KernelRunInfo, ...] = field(default=())

    @property
    def cycles(self) -> int:
        """End-to-end execution time in cycles."""
        return sum(k.total_cycles for k in self.kernel_infos)

    @property
    def result(self) -> RunResult:
        """Machine-counter totals across all kernels."""
        total = self.kernel_infos[0].result
        for info in self.kernel_infos[1:]:
            total = total + info.result
        return total

    @property
    def power(self) -> float:
        """Average active cores over the whole run (paper's power)."""
        return self.result.power

    @property
    def threads_used(self) -> tuple[int, ...]:
        """Execution-phase team size per kernel."""
        return tuple(k.threads for k in self.kernel_infos)

    @property
    def mean_threads(self) -> float:
        """Execution-time-weighted average team size (MTwister's "21")."""
        total_cycles = sum(k.execution_cycles for k in self.kernel_infos)
        if total_cycles == 0:
            return float(self.kernel_infos[0].threads)
        weighted = sum(k.threads * k.execution_cycles
                       for k in self.kernel_infos)
        return weighted / total_cycles


def run_application(app: Application, policy: ThreadingPolicy,
                    config: MachineConfig | None = None,
                    machine: Machine | None = None) -> AppRunResult:
    """Execute every kernel of ``app`` under ``policy``.

    A fresh machine is built unless one is supplied (supplying one lets
    experiments share warm state deliberately; the default mirrors the
    paper's run-each-application-to-completion methodology).
    """
    if machine is None:
        machine = Machine(config or MachineConfig.asplos08_baseline())
    if machine.trace is not None:
        machine.trace.on_app_begin(app.name, policy.name, machine.events.now)
    infos = []
    for k in app.kernels:
        info = policy.run_kernel(machine, k)
        if machine.trace is not None:
            machine.trace.on_kernel_complete(
                k.name, info.threads, info.training_cycles,
                info.execution_cycles, machine.events.now)
        infos.append(info)
    return AppRunResult(
        app_name=app.name,
        policy_name=policy.name,
        kernel_infos=tuple(infos),
    )
