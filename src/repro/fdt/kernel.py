"""How a workload describes a parallelized loop kernel to FDT.

The paper applies FDT to loop kernels the programmer already parallelized
(identified by the OpenMP ``parallel`` directive).  Two shapes cover all
twelve evaluated workloads:

* :class:`DataParallelKernel` — a flat parallel loop (ED, Transpose, …):
  iterations are independent and a team executes contiguous chunks.
* :class:`TeamParallelKernel` — an iterative kernel (PageMine, ISort, …):
  each outer iteration's work is internally divided across the team,
  usually ending in a critical section and a barrier.

Both expose the two views FDT needs:

* ``serial_iteration(i)`` — one iteration's full work on one thread, used
  by the single-threaded training loop (the paper's peeled loop);
* ``factories(iterations, num_threads)`` — per-thread programs executing
  a range of iterations with a team, used for the execution phase.
"""

from __future__ import annotations

import abc
from typing import Callable, Iterator

from repro.errors import WorkloadError
from repro.isa.ops import Op
from repro.isa.program import ProgramFactory
from repro.runtime.parallel import static_chunks


class Kernel(abc.ABC):
    """A parallelized loop kernel FDT can train on and execute."""

    #: Human-readable kernel name (used in reports).
    name: str = "kernel"

    @property
    @abc.abstractmethod
    def total_iterations(self) -> int:
        """Number of outer-loop iterations."""

    @abc.abstractmethod
    def serial_iteration(self, i: int) -> Iterator[Op]:
        """One iteration's complete work, runnable on a single thread."""

    @abc.abstractmethod
    def factories(self, iterations: range,
                  num_threads: int) -> list[ProgramFactory]:
        """Team programs executing ``iterations`` with ``num_threads``."""

    def validate_team(self, num_threads: int) -> None:
        if num_threads < 1:
            raise WorkloadError(f"{self.name}: team must have >= 1 thread")


class DataParallelKernel(Kernel):
    """A flat parallel loop: iterations are independent work units.

    Subclasses implement :meth:`serial_iteration` only; the team execution
    statically chunks the iteration range, each thread running its chunk's
    iterations back to back (OpenMP ``schedule(static)``).
    """

    def factories(self, iterations: range,
                  num_threads: int) -> list[ProgramFactory]:
        self.validate_team(num_threads)
        chunks = static_chunks(len(iterations), num_threads,
                               start=iterations.start)

        def make_factory(chunk: range) -> ProgramFactory:
            def factory(thread_id: int, team: int) -> Iterator[Op]:
                for i in chunk:
                    yield from self.serial_iteration(i)
            return factory

        return [make_factory(chunk) for chunk in chunks]


class TeamParallelKernel(Kernel):
    """An iterative kernel whose per-iteration work is split by the team.

    Subclasses implement :meth:`team_iteration`; the serial view is simply
    a team of one.  Execution runs *all* iterations inside one parallel
    region, with whatever barriers :meth:`team_iteration` emits keeping
    the team in step (the usual ``omp parallel`` + inner loop pattern).
    """

    @abc.abstractmethod
    def team_iteration(self, i: int, thread_id: int,
                       num_threads: int) -> Iterator[Op]:
        """Thread ``thread_id``'s share of iteration ``i``."""

    def serial_iteration(self, i: int) -> Iterator[Op]:
        return self.team_iteration(i, 0, 1)

    def factories(self, iterations: range,
                  num_threads: int) -> list[ProgramFactory]:
        self.validate_team(num_threads)

        def factory(thread_id: int, team: int) -> Iterator[Op]:
            for i in iterations:
                yield from self.team_iteration(i, thread_id, team)

        return [factory] * num_threads


class FunctionKernel(DataParallelKernel):
    """Adapter: build a data-parallel kernel from a plain function.

    Args:
        name: kernel name.
        total_iterations: outer-loop trip count.
        body: callable ``(i) -> op iterator`` for one iteration.
    """

    def __init__(self, name: str, total_iterations: int,
                 body: Callable[[int], Iterator[Op]]) -> None:
        if total_iterations < 1:
            raise WorkloadError("kernel needs at least one iteration")
        self.name = name
        self._total = total_iterations
        self._body = body

    @property
    def total_iterations(self) -> int:
        return self._total

    def serial_iteration(self, i: int) -> Iterator[Op]:
        return self._body(i)
