"""Static FDT priors: SAT/BAT inputs derived before any simulation.

The static analyzer (:mod:`repro.check.static`) summarizes a kernel's
single-thread op stream under an abstract cost model and splits the
estimated cycles into critical-section and parallel shares, plus an
estimated bus occupancy.  Feeding those three numbers through the very
same Eq. 3 / Eq. 5 / Eq. 7 code the runtime uses yields a *prior* — the
thread count FDT would pick if the abstract model were the machine.

Priors are compared against measured training estimates
(:func:`measure_estimates` runs the real instrumented training loop) so
``repro check --static`` can report static-vs-measured agreement.  The
abstract model ignores contention, pipelining, and cache capacity, so
the serial fraction is a bounded overestimate: across the shipped
Table 2 workloads the static ``cs_fraction`` lands within a relative
error of :data:`CS_FRACTION_RTOL` of the SAT-measured value (asserted
by ``tests/test_static_check.py``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any

from repro.fdt.estimators import Estimates, estimate
from repro.fdt.kernel import Kernel
from repro.fdt.training import TrainingConfig, TrainingLog, instrumented_training_program
from repro.models import bat_model, sat_model
from repro.sim.config import MachineConfig
from repro.sim.machine import Machine

#: Documented tolerance of the static serial-fraction prior relative to
#: the SAT-measured value, for workloads with a non-trivial critical
#: section.  The abstract cost model has no contention or pipeline
#: effects, so this is loose by design; it exists to catch the prior
#: drifting into a different regime, not to certify two digits.
CS_FRACTION_RTOL = 0.5


@dataclass(frozen=True, slots=True)
class StaticPriors:
    """SAT/BAT inputs and decisions derived from a static team-of-one."""

    kernel: str
    #: Estimated critical-section cycles per iteration (T_CS prior).
    t_cs: float
    #: Estimated non-critical-section cycles per iteration (T_NoCS prior).
    t_nocs: float
    #: Estimated single-thread bus utilization (BU_1 prior), a fraction.
    bu1: float
    #: SAT's Eq. 3 decision on the priors.
    p_cs: int
    #: BAT's Eq. 5 decision on the priors.
    p_bw: int
    #: Eq. 7 on the priors.
    p_fdt: int
    #: Distinct cache lines the single thread touched (working set).
    footprint_lines: int
    #: The same working set in bytes.
    footprint_bytes: int
    #: Estimated bytes transferred per retired instruction (cold lines
    #: over instructions — a bandwidth-intensity fingerprint).
    bytes_per_instruction: float

    @property
    def cs_fraction(self) -> float:
        """Critical-section share of estimated single-thread time."""
        total = self.t_cs + self.t_nocs
        if total == 0:
            return 0.0
        return self.t_cs / total

    def to_dict(self) -> dict[str, Any]:
        return {
            "kernel": self.kernel,
            "t_cs": self.t_cs,
            "t_nocs": self.t_nocs,
            "bu1": self.bu1,
            "cs_fraction": self.cs_fraction,
            "p_cs": self.p_cs,
            "p_bw": self.p_bw,
            "p_fdt": self.p_fdt,
            "footprint_lines": self.footprint_lines,
            "footprint_bytes": self.footprint_bytes,
            "bytes_per_instruction": self.bytes_per_instruction,
        }

    def agreement(self, measured: Estimates) -> "PriorAgreement":
        """Compare this prior against measured training estimates."""
        return PriorAgreement(
            kernel=self.kernel,
            static_cs_fraction=self.cs_fraction,
            measured_cs_fraction=measured.cs_fraction,
            static_bu1=self.bu1,
            measured_bu1=measured.bu1,
            static_p_fdt=self.p_fdt,
            measured_p_fdt=measured.p_fdt,
        )


@dataclass(frozen=True, slots=True)
class PriorAgreement:
    """How a static prior compares to the measured training estimate."""

    kernel: str
    static_cs_fraction: float
    measured_cs_fraction: float
    static_bu1: float
    measured_bu1: float
    static_p_fdt: int
    measured_p_fdt: int

    @property
    def cs_fraction_rel_error(self) -> float:
        """|static - measured| / measured (inf when measured is zero
        but the prior is not)."""
        return _rel_error(self.static_cs_fraction, self.measured_cs_fraction)

    @property
    def bu1_rel_error(self) -> float:
        return _rel_error(self.static_bu1, self.measured_bu1)

    @property
    def within_tolerance(self) -> bool:
        """True when the serial-fraction prior is inside
        :data:`CS_FRACTION_RTOL` of the measured value (vacuously true
        when both round to no critical section at all)."""
        if self.measured_cs_fraction == 0.0:
            return self.static_cs_fraction == 0.0
        return self.cs_fraction_rel_error <= CS_FRACTION_RTOL

    def to_dict(self) -> dict[str, Any]:
        return {
            "kernel": self.kernel,
            "static_cs_fraction": self.static_cs_fraction,
            "measured_cs_fraction": self.measured_cs_fraction,
            "cs_fraction_rel_error": _finite(self.cs_fraction_rel_error),
            "static_bu1": self.static_bu1,
            "measured_bu1": self.measured_bu1,
            "bu1_rel_error": _finite(self.bu1_rel_error),
            "static_p_fdt": self.static_p_fdt,
            "measured_p_fdt": self.measured_p_fdt,
            "within_tolerance": self.within_tolerance,
        }


def _rel_error(static: float, measured: float) -> float:
    if measured == 0.0:
        return 0.0 if static == 0.0 else math.inf
    return abs(static - measured) / measured


def _finite(x: float) -> float | None:
    """JSON-friendly: None instead of inf/nan."""
    return x if math.isfinite(x) else None


def derive_priors(kernel_name: str, iterations: int,
                  est_cycles: int, est_cs_cycles: int, est_bus_busy: int,
                  instructions: int, footprint_lines: int,
                  config: MachineConfig) -> StaticPriors:
    """Turn a static team-of-one summary into SAT/BAT priors.

    Args:
        kernel_name: name for the report.
        iterations: the kernel's total iteration count (per-iteration
            T_CS/T_NoCS priors divide by this, mirroring training).
        est_cycles: abstract total cycles of the single-thread stream.
        est_cs_cycles: abstract cycles spent with at least one lock held.
        est_bus_busy: abstract bus-occupied cycles (cold line transfers).
        instructions: dynamic instructions in the stream.
        footprint_lines: distinct cache lines touched.
        config: machine whose core count clamps the decisions and whose
            line size converts the footprint to bytes.
    """
    iters = max(1, iterations)
    t_cs = est_cs_cycles / iters
    t_nocs = max(0, est_cycles - est_cs_cycles) / iters
    bu1 = min(1.0, est_bus_busy / est_cycles) if est_cycles > 0 else 0.0
    # FDT's clamp is the thread-slot count (see FdtPolicy.run_kernel);
    # the prior must use the same clamp or p_fdt agreement is meaningless.
    cores = config.num_thread_slots

    p_cs = sat_model.predicted_thread_count(t_nocs, t_cs, cores)
    # BAT's cannot-saturate early-out, exactly as the estimation stage
    # applies it: if P * BU_1 can't reach 1 the bus never limits.
    if bu1 > 0.0 and bu1 * cores >= 1.0:
        p_bw = bat_model.predicted_thread_count(bu1, cores)
    else:
        p_bw = cores

    return StaticPriors(
        kernel=kernel_name,
        t_cs=t_cs,
        t_nocs=t_nocs,
        bu1=bu1,
        p_cs=p_cs,
        p_bw=p_bw,
        p_fdt=max(1, min(p_cs, p_bw, cores)),
        footprint_lines=footprint_lines,
        footprint_bytes=footprint_lines * config.line_bytes,
        bytes_per_instruction=(footprint_lines * config.line_bytes
                               / instructions) if instructions else 0.0,
    )


def measure_estimates(kernel: Kernel,
                      config: MachineConfig | None = None) -> Estimates:
    """Run the real instrumented training loop for one kernel.

    A fresh machine simulates the single-threaded peeled loop exactly as
    :class:`~repro.fdt.policies.FdtPolicy` would, and the estimation
    stage turns the log into :class:`~repro.fdt.estimators.Estimates`.
    Used by ``repro check --static`` to report prior-vs-measured
    agreement.
    """
    cfg = config or MachineConfig.asplos08_baseline()
    machine = Machine(cfg)
    log = TrainingLog(
        config=TrainingConfig(),
        total_iterations=kernel.total_iterations,
        num_cores=cfg.num_thread_slots,
        kernel_name=kernel.name,
    )
    machine.run_serial(
        lambda tid, team: instrumented_training_program(
            kernel, range(kernel.total_iterations), log))
    return estimate(log, cfg.num_thread_slots)
