"""The estimation stage: training measurements → thread-count decision.

Implements Sections 4.2.2 (SAT), 5.2 (BAT), and 6.1 (combined, Eq. 7).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.fdt.training import TrainingLog
from repro.models import bat_model, sat_model


@dataclass(frozen=True, slots=True)
class Estimates:
    """Everything the estimation stage derives from a training log."""

    #: Mean per-iteration critical-section cycles (T_CS).
    t_cs: float
    #: Mean per-iteration cycles outside critical sections (T_NoCS).
    t_nocs: float
    #: Single-thread bus utilization (BU_1) as a fraction.
    bu1: float
    #: Real-valued Eq. 3 optimum (inf when no critical section was seen).
    p_cs_real: float
    #: Real-valued Eq. 5 saturation point (inf when the bus was untouched).
    p_bw_real: float
    #: SAT's integer decision (rounded to nearest, clamped to cores).
    p_cs: int
    #: BAT's integer decision (rounded up, clamped to cores).
    p_bw: int
    #: Eq. 7: min(P_CS, P_BW, cores).
    p_fdt: int

    @property
    def cs_fraction(self) -> float:
        """Critical-section share of single-threaded time."""
        total = self.t_cs + self.t_nocs
        if total == 0:
            return 0.0
        return self.t_cs / total


def estimate(log: TrainingLog, num_cores: int,
             bandwidth_can_saturate: bool | None = None) -> Estimates:
    """Run the estimation stage on a completed training log.

    Args:
        log: the training measurements.
        num_cores: cores available on the chip (the clamp in Eq. 7).
        bandwidth_can_saturate: override for BAT's cannot-saturate
            early-out.  None (default) re-derives it from the log the
            same way training did: if ``BU_1 * num_cores < 1`` the bus
            can never saturate and BAT defers to the core count.

    Returns:
        All intermediate and final values, so reports can show not just
        the decision but the measured T_CS/T_NoCS/BU_1 behind it.
    """
    t_cs = log.mean_cs_cycles()
    t_nocs = log.mean_nocs_cycles()
    bu1 = log.mean_bus_utilization()

    p_cs_real = sat_model.optimal_threads_cs(t_nocs, t_cs)
    p_cs = sat_model.predicted_thread_count(t_nocs, t_cs, num_cores)

    if bandwidth_can_saturate is None:
        bandwidth_can_saturate = bu1 * num_cores >= 1.0
    if bandwidth_can_saturate and bu1 > 0.0:
        p_bw_real = bat_model.saturation_threads(bu1)
        p_bw = bat_model.predicted_thread_count(bu1, num_cores)
    else:
        p_bw_real = math.inf
        p_bw = num_cores

    return Estimates(
        t_cs=t_cs,
        t_nocs=t_nocs,
        bu1=bu1,
        p_cs_real=p_cs_real,
        p_bw_real=p_bw_real,
        p_cs=p_cs,
        p_bw=p_bw,
        p_fdt=max(1, min(p_cs, p_bw, num_cores)),
    )
