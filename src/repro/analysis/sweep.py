"""Thread-count sweeps: the x-axis of most of the paper's figures.

A sweep runs an application once per thread count under the conventional
static policy, each run on a fresh machine (the paper's methodology:
every point is a complete execution).  Applications are rebuilt per
point because kernels carry real computed state.

Sweeps accept the workload in two forms: a zero-argument factory
callable (the legacy in-process path) or a declarative
:class:`~repro.jobs.WorkloadRef`, which routes every point through the
:mod:`repro.jobs` subsystem — deduplicated, optionally parallel,
optionally served from the on-disk result cache.  The two paths are
bit-identical because the simulator is deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.errors import ConfigError
from repro.fdt.policies import StaticPolicy
from repro.fdt.runner import Application, AppRunResult, run_application
from repro.jobs import JobRunner, JobSpec, PolicySpec, WorkloadRef
from repro.sim.config import MachineConfig

AppFactory = Callable[[], Application]

#: The default sweep grid: every thread count the paper plots (1..32).
FULL_GRID = tuple(range(1, 33))
#: A coarser grid for quick runs; includes the knees the paper reports.
COARSE_GRID = (1, 2, 3, 4, 5, 6, 7, 8, 10, 12, 16, 20, 24, 28, 32)


@dataclass(frozen=True, slots=True)
class ThreadPoint:
    """One sweep point: a full application run at a fixed thread count."""

    threads: int
    cycles: int
    power: float
    bus_utilization: float
    # Defaulted so constructors predating these fields keep working.
    spin_core_cycles: int = 0
    ipc: float = 0.0
    energy: float = 0.0

    def normalized(self, base_cycles: int) -> float:
        """Execution time relative to ``base_cycles``."""
        if base_cycles <= 0:
            raise ConfigError("normalization base must be positive")
        return self.cycles / base_cycles


@dataclass(frozen=True, slots=True)
class SweepResult:
    """All points of one application's sweep."""

    app_name: str
    points: tuple[ThreadPoint, ...]

    def point(self, threads: int) -> ThreadPoint:
        for p in self.points:
            if p.threads == threads:
                return p
        raise ConfigError(f"sweep has no point at {threads} threads")

    @property
    def thread_counts(self) -> tuple[int, ...]:
        return tuple(p.threads for p in self.points)

    @property
    def min_cycles(self) -> int:
        return min(p.cycles for p in self.points)

    @property
    def best_threads(self) -> int:
        """Thread count of the fastest point (fewest threads on ties)."""
        best = min(self.points, key=lambda p: (p.cycles, p.threads))
        return best.threads

    def normalized_curve(self, base_threads: int = 1) -> list[float]:
        """Execution times normalized to the ``base_threads`` point."""
        base = self.point(base_threads).cycles
        return [p.cycles / base for p in self.points]

    def utilization_curve(self) -> list[float]:
        """Bus utilization per point (Figure 4b's series)."""
        return [p.bus_utilization for p in self.points]


def _clamped_counts(thread_counts: Sequence[int],
                    cfg: MachineConfig) -> list[int]:
    """Ascending unique counts within the core count (legacy semantics)."""
    counts = []
    for threads in sorted(set(thread_counts)):
        if threads < 1:
            raise ConfigError("thread counts must be >= 1")
        if threads > cfg.num_cores:
            continue
        counts.append(threads)
    if not counts:
        raise ConfigError("no sweep points within the machine's core count")
    return counts


def _point_from_result(threads: int, res: AppRunResult) -> ThreadPoint:
    r = res.result
    return ThreadPoint(
        threads=threads,
        cycles=res.cycles,
        power=r.power,
        bus_utilization=r.bus_utilization,
        spin_core_cycles=r.spin_core_cycles,
        ipc=r.ipc,
        energy=r.energy,
    )


def sweep_threads(build: AppFactory | WorkloadRef,
                  thread_counts: Sequence[int] = COARSE_GRID,
                  config: MachineConfig | None = None,
                  runner: JobRunner | None = None) -> SweepResult:
    """Run the workload once per thread count under static threading.

    Args:
        build: zero-argument application factory (called per point, run
            in-process), or a :class:`~repro.jobs.WorkloadRef` to submit
            the points as jobs.
        thread_counts: team sizes to run; clamped to the core count.
        config: machine configuration (baseline when omitted).
        runner: job runner for the :class:`~repro.jobs.WorkloadRef`
            form; a fresh serial, memo-only runner when omitted.
            Ignored for factory callables, which cannot be hashed into
            job keys.

    Returns:
        A :class:`SweepResult` in ascending thread order.
    """
    cfg = config or MachineConfig.asplos08_baseline()
    counts = _clamped_counts(thread_counts, cfg)
    if isinstance(build, WorkloadRef):
        runner = runner or JobRunner()
        results = runner.run([
            JobSpec(workload=build, policy=PolicySpec.static(t), config=cfg)
            for t in counts])
        return SweepResult(
            app_name=results[-1].app_name,
            points=tuple(_point_from_result(t, res)
                         for t, res in zip(counts, results)))
    points = []
    name = ""
    for threads in counts:
        app = build()
        name = app.name
        res = run_application(app, StaticPolicy(threads), cfg)
        points.append(_point_from_result(threads, res))
    return SweepResult(app_name=name, points=tuple(points))
