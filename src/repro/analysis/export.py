"""CSV export for sweeps and figure results (plot with anything).

The repository deliberately has no plotting dependency; these helpers
write the exact series the figures plot so any external tool (gnuplot,
matplotlib, a spreadsheet) can render them.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.sweep import SweepResult
from repro.fdt.runner import AppRunResult


def _write(rows: Iterable[Sequence[object]], header: Sequence[str],
           path: Path | None) -> str:
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(header)
    for row in rows:
        writer.writerow(row)
    text = buffer.getvalue()
    if path is not None:
        Path(path).write_text(text)
    return text


def sweep_to_csv(sweep: SweepResult, path: Path | None = None) -> str:
    """One row per sweep point: the axes of Figures 2/4/8/12/13."""
    base = sweep.points[0].cycles
    rows = [
        (p.threads, p.cycles, round(p.cycles / base, 6),
         round(p.power, 4), round(p.bus_utilization, 6))
        for p in sweep.points
    ]
    return _write(rows, ("threads", "cycles", "norm_time", "power",
                         "bus_utilization"), path)


def runs_to_csv(runs: Iterable[AppRunResult],
                path: Path | None = None) -> str:
    """One row per application run: the bars of Figures 14/15."""
    rows = []
    for run in runs:
        rows.append((
            run.app_name,
            run.policy_name,
            run.cycles,
            round(run.power, 4),
            "/".join(str(t) for t in run.threads_used),
            round(run.mean_threads, 3),
        ))
    return _write(rows, ("application", "policy", "cycles", "power",
                         "threads", "mean_threads"), path)


def series_to_csv(x: Sequence[object], ys: dict[str, Sequence[object]],
                  x_name: str = "x", path: Path | None = None) -> str:
    """Generic aligned-series export (utilization curves, model fits)."""
    for name, series in ys.items():
        if len(series) != len(x):
            raise ValueError(f"series {name!r} is not aligned with x")
    header = [x_name, *ys.keys()]
    rows = [[xv, *(ys[k][i] for k in ys)] for i, xv in enumerate(x)]
    return _write(rows, header, path)
