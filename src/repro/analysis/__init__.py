"""Experiment harness: thread sweeps, the oracle policy, and reporting."""

from repro.analysis.sweep import SweepResult, ThreadPoint, sweep_threads
from repro.analysis.oracle import OracleChoice, oracle_choice
from repro.analysis.compare import Comparison, compare_policies
from repro.analysis.inspection import machine_report, machine_report_json
from repro.analysis.report import ascii_bars, ascii_table, gmean

__all__ = [
    "ThreadPoint",
    "SweepResult",
    "sweep_threads",
    "OracleChoice",
    "oracle_choice",
    "ascii_table",
    "ascii_bars",
    "gmean",
    "machine_report",
    "machine_report_json",
    "Comparison",
    "compare_policies",
]
