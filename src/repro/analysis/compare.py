"""Side-by-side policy comparison on a set of workloads.

The building block for "shootout" studies: run every (workload, policy)
pair on a fresh machine, normalize within each workload to a chosen
baseline policy, and tabulate time and power.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.analysis.report import ascii_table, gmean
from repro.errors import ConfigError
from repro.fdt.policies import ThreadingPolicy
from repro.fdt.runner import Application, run_application
from repro.sim.config import MachineConfig

AppBuilder = Callable[[], Application]


@dataclass(frozen=True, slots=True)
class PolicyCell:
    """One (workload, policy) outcome, normalized to the baseline."""

    workload: str
    policy: str
    threads: tuple[int, ...]
    cycles: int
    power: float
    norm_time: float
    norm_power: float


@dataclass(frozen=True, slots=True)
class Comparison:
    """The full matrix plus per-policy summaries."""

    baseline: str
    cells: tuple[PolicyCell, ...]

    def cell(self, workload: str, policy: str) -> PolicyCell:
        for c in self.cells:
            if c.workload == workload and c.policy == policy:
                return c
        raise KeyError((workload, policy))

    @property
    def policies(self) -> list[str]:
        seen: list[str] = []
        for c in self.cells:
            if c.policy not in seen:
                seen.append(c.policy)
        return seen

    @property
    def workloads(self) -> list[str]:
        seen: list[str] = []
        for c in self.cells:
            if c.workload not in seen:
                seen.append(c.workload)
        return seen

    def gmean_time(self, policy: str) -> float:
        return gmean(c.norm_time for c in self.cells if c.policy == policy)

    def gmean_power(self, policy: str) -> float:
        return gmean(c.norm_power for c in self.cells if c.policy == policy)

    def format(self) -> str:
        rows = []
        for c in self.cells:
            rows.append((c.workload, c.policy,
                         "/".join(map(str, c.threads)),
                         c.norm_time, c.norm_power))
        for policy in self.policies:
            rows.append(("gmean", policy, "",
                         self.gmean_time(policy), self.gmean_power(policy)))
        return (f"Policy comparison (normalized to {self.baseline})\n"
                + ascii_table(("workload", "policy", "threads",
                               "norm time", "norm power"), rows))


def compare_policies(builders: dict[str, AppBuilder],
                     policies: Sequence[ThreadingPolicy],
                     config: MachineConfig | None = None,
                     baseline_index: int = 0) -> Comparison:
    """Run the full matrix.

    Args:
        builders: workload name -> zero-arg application builder.
        policies: the contenders; ``policies[baseline_index]`` is the
            normalization baseline.
        config: machine (baseline Table 1 when omitted).
        baseline_index: which policy normalizes each workload's row.
    """
    if not builders or not policies:
        raise ConfigError("need at least one workload and one policy")
    if not 0 <= baseline_index < len(policies):
        raise ConfigError("baseline_index out of range")
    cfg = config or MachineConfig.asplos08_baseline()
    cells: list[PolicyCell] = []
    for name, build in builders.items():
        runs = [run_application(build(), policy, cfg) for policy in policies]
        base = runs[baseline_index]
        for policy, run in zip(policies, runs):
            cells.append(PolicyCell(
                workload=name,
                policy=policy.name,
                threads=run.threads_used,
                cycles=run.cycles,
                power=run.power,
                norm_time=run.cycles / base.cycles,
                norm_power=run.power / base.power if base.power else 0.0,
            ))
    return Comparison(baseline=policies[baseline_index].name,
                      cells=tuple(cells))
