"""Machine introspection: dump every simulator counter as plain data.

``machine_report(machine)`` returns a nested dict (JSON-serializable) of
every statistic the simulator keeps — cache hit rates per level, DRAM
row-buffer outcomes, bus occupancy, coherence traffic, lock/barrier
contention, per-core retirement — so a run can be archived, diffed, or
plotted without reaching into simulator internals.
"""

from __future__ import annotations

import json
from typing import Any

from repro.sim.machine import Machine


def _cache_stats(cache) -> dict[str, Any]:
    s = cache.stats
    return {
        "hits": s.hits,
        "misses": s.misses,
        "evictions": s.evictions,
        "invalidations": s.invalidations,
        "miss_rate": round(s.miss_rate, 6),
        "resident_lines": len(cache),
    }


def machine_report(machine: Machine) -> dict[str, Any]:
    """Snapshot every subsystem's counters as a nested dict."""
    mem = machine.memsys
    dram = mem.dram.stats
    bus = mem.bus.stats
    ring = machine.ring.stats
    coh = mem.directory.stats
    locks = machine.locks.stats
    barriers = machine.barriers.stats
    now = machine.now

    l1 = [_cache_stats(c) for c in mem.l1s]
    l2 = [_cache_stats(c) for c in mem.l2s]

    def _sum(dicts: list[dict[str, Any]], key: str) -> int:
        return sum(d[key] for d in dicts)

    report: dict[str, Any] = {
        "cycles": now,
        "config": {
            "num_cores": machine.config.num_cores,
            "smt_threads": machine.config.smt_threads,
            "l3_bytes": machine.config.l3_bytes,
            "bus_cycles_per_line": machine.config.bus_cycles_per_line,
        },
        "cores": [
            {
                "core": c.core_id,
                "retired_instructions": c.retired_instructions,
                "spin_cycles": c.spin_cycles,
                "branch_accuracy": round(c.predictor.stats.accuracy, 6),
            }
            for c in machine.cores
        ],
        "l1": {"total_hits": _sum(l1, "hits"),
               "total_misses": _sum(l1, "misses"),
               "per_core": l1},
        "l2": {"total_hits": _sum(l2, "hits"),
               "total_misses": _sum(l2, "misses"),
               "writebacks": mem.stats.l2_writebacks,
               "per_core": l2},
        "l3": {
            "hits": mem.l3.hits,
            "misses": mem.l3.misses,
            "miss_rate": round(mem.l3.miss_rate(), 6),
            "recalls": mem.stats.recalls,
            "writebacks_to_dram": mem.stats.l3_writebacks_to_dram,
            "per_bank": [_cache_stats(b.cache) for b in mem.l3.banks],
        },
        "coherence": {
            "gets": coh.gets,
            "getm": coh.getm,
            "upgrades": coh.upgrades,
            "invalidations_sent": coh.invalidations_sent,
            "cache_to_cache": coh.cache_to_cache,
            "writebacks_to_l3": coh.writebacks_to_l3,
        },
        "ring": {
            "messages": ring.messages,
            "mean_hops": round(ring.mean_hops, 4),
        },
        "bus": {
            "transfers": bus.transfers,
            "busy_cycles": bus.busy_cycles,
            "utilization": round(bus.utilization(now), 6) if now else 0.0,
            "mean_wait": (round(bus.total_wait_cycles / bus.transfers, 2)
                          if bus.transfers else 0.0),
        },
        "dram": {
            "accesses": dram.accesses,
            "row_hits": dram.row_hits,
            "row_conflicts": dram.row_conflicts,
            "row_closed": dram.row_closed,
            "row_hit_rate": round(dram.row_hit_rate, 6),
            "mean_queue_cycles": (round(dram.total_queue_cycles
                                        / dram.accesses, 2)
                                  if dram.accesses else 0.0),
        },
        "locks": {
            "acquisitions": locks.acquisitions,
            "contended": locks.contended_acquisitions,
            "mean_hold": (round(locks.total_hold_cycles
                                / locks.acquisitions, 2)
                          if locks.acquisitions else 0.0),
            "mean_wait": (round(locks.total_wait_cycles
                                / locks.contended_acquisitions, 2)
                          if locks.contended_acquisitions else 0.0),
        },
        "barriers": {
            "episodes": barriers.episodes,
            "total_wait_cycles": barriers.total_wait_cycles,
        },
        "memory_ops": {
            "loads": mem.stats.loads,
            "stores": mem.stats.stores,
        },
    }
    return report


def machine_report_json(machine: Machine, indent: int = 2) -> str:
    """The report as a JSON string (for archiving next to results)."""
    return json.dumps(machine_report(machine), indent=indent)
