"""The paper's oracle comparison policy (Section 6.3).

"We implemented the oracle scheme by simulating the application for all
possible number of threads and selecting the fewest number of threads
required to be within 1% of the minimum execution time."  The oracle is
*static*: one thread count for the whole application, which is exactly
what FDT beats on multi-kernel programs like MTwister.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.sweep import SweepResult, ThreadPoint


@dataclass(frozen=True, slots=True)
class OracleChoice:
    """The oracle's pick plus the point it lands on."""

    threads: int
    point: ThreadPoint
    min_cycles: int
    tolerance: float

    @property
    def slowdown_vs_min(self) -> float:
        """Oracle execution time over the sweep minimum (<= 1+tolerance)."""
        return self.point.cycles / self.min_cycles


def oracle_choice(sweep: SweepResult, tolerance: float = 0.01) -> OracleChoice:
    """Fewest threads within ``tolerance`` of the sweep's minimum time."""
    if tolerance < 0:
        raise ValueError("tolerance must be non-negative")
    min_cycles = sweep.min_cycles
    threshold = min_cycles * (1.0 + tolerance)
    for p in sorted(sweep.points, key=lambda p: p.threads):
        if p.cycles <= threshold:
            return OracleChoice(threads=p.threads, point=p,
                                min_cycles=min_cycles, tolerance=tolerance)
    raise AssertionError("unreachable: the minimum always qualifies")
