"""Plot-free reporting: ASCII tables and bar charts for experiment output.

The benchmark harness prints the same rows and series the paper's tables
and figures report; these helpers keep that output aligned and legible
in a terminal or a log file.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Iterable, Sequence

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.check.findings import CheckReport


def gmean(values: Iterable[float]) -> float:
    """Geometric mean (the paper's cross-workload summary statistic)."""
    vals = list(values)
    if not vals:
        raise ValueError("gmean of no values")
    if any(v <= 0 for v in vals):
        raise ValueError("gmean requires positive values")
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def ascii_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                float_format: str = "{:.3f}") -> str:
    """Render rows as a fixed-width table with a header rule."""
    def fmt(cell: object) -> str:
        if isinstance(cell, float):
            return float_format.format(cell)
        return str(cell)

    str_rows = [[fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in str_rows:
        lines.append("  ".join(cell.rjust(widths[i]) if i else cell.ljust(widths[i])
                               for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_findings(report: "CheckReport") -> str:
    """Render a ``repro check`` report for a terminal.

    A clean report is one line; otherwise findings are grouped under a
    per-analysis count summary, each with its one-line message and the
    most useful structured details indented below it.
    """
    head = f"repro check: {report.workload} ({report.threads} threads)"
    if report.clean:
        return (f"{head}\nOK - no findings "
                f"({report.cycles:,} cycles checked)")

    counts = {k: v for k, v in report.counts().items() if v}
    summary = ", ".join(f"{v} {k}" for k, v in counts.items())
    lines = [head, f"FAIL - {len(report.findings)} finding(s): {summary}"]
    if report.aborted is not None:
        lines.append(f"(the checked run aborted: {report.aborted})")
    for i, finding in enumerate(report.findings, 1):
        lines.append(f"{i:3d}. [{finding.analysis}/{finding.kind}] "
                     f"{finding.message}")
        sites = finding.details.get("sites")
        if sites:
            for site in sites:
                lines.append(f"       site: agent {site['agent']} "
                             f"{site['kind']} #{site['index']} "
                             f"@ cycle {site['cycle']}")
        cycle = finding.details.get("cycle")
        if finding.kind == "lock-order-cycle" and cycle:
            lines.append("       order: "
                         + " -> ".join(str(lock) for lock in cycle))
    if report.dropped:
        lines.append(f"(+{report.dropped} finding(s) dropped by the "
                     f"max_findings cap)")
    return "\n".join(lines)


def ascii_bars(labels: Sequence[str], values: Sequence[float],
               width: int = 50, max_value: float | None = None,
               value_format: str = "{:.3f}") -> str:
    """Render one horizontal bar per (label, value) pair."""
    if len(labels) != len(values):
        raise ValueError("labels and values must align")
    if not values:
        return ""
    top = max_value if max_value is not None else max(values)
    top = max(top, 1e-12)
    label_w = max(len(l) for l in labels)
    lines = []
    for label, value in zip(labels, values):
        n = int(round(min(value, top) / top * width))
        bar = "#" * n
        lines.append(f"{label.ljust(label_w)} |{bar.ljust(width)}| "
                     + value_format.format(value))
    return "\n".join(lines)


def ascii_series(xs: Sequence[int], ys: Sequence[float], height: int = 12,
                 title: str = "") -> str:
    """A small scatter/line chart: x along the bottom, y scaled to height.

    Good enough to eyeball the knee of a normalized-execution-time curve
    in a benchmark log.
    """
    if len(xs) != len(ys) or not xs:
        raise ValueError("series must be non-empty and aligned")
    top = max(ys)
    bottom = min(ys)
    span = max(top - bottom, 1e-12)
    grid = [[" "] * len(xs) for _ in range(height)]
    for col, y in enumerate(ys):
        row = int(round((top - y) / span * (height - 1)))
        grid[row][col] = "*"
    lines = []
    if title:
        lines.append(title)
    for i, row in enumerate(grid):
        y_label = top - span * i / (height - 1)
        lines.append(f"{y_label:8.3f} |" + "".join(row))
    lines.append(" " * 9 + "+" + "-" * len(xs))
    lines.append(" " * 10 + "".join(str(x % 10) for x in xs))
    return "\n".join(lines)
