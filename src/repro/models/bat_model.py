"""Off-chip-bandwidth execution-time model (paper Section 5.1).

With single-thread bus utilization ``BU_1`` (a fraction in (0, 1]), the
model assumes utilization scales linearly with thread count (Eq. 4)::

    BU_P = P * BU_1

The bus saturates at 100 % utilization, so the saturation thread count is
(Eq. 5)::

    P_BW = 100 / BU_1   (in percent form; 1 / BU_1 as a fraction)

and execution time follows Eq. 6: it scales as ``T_1 / P`` until ``P_BW``
and is flat — governed by bus speed alone — beyond it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


def bus_utilization(bu1: float, threads: int) -> float:
    """Eq. 4 with the physical 100 % cap applied."""
    if not 0.0 <= bu1 <= 1.0:
        raise ValueError("BU_1 must be a fraction in [0, 1]")
    if threads < 1:
        raise ValueError("thread count must be >= 1")
    return min(1.0, bu1 * threads)


def saturation_threads(bu1: float, max_threads: int | None = None) -> float:
    """Eq. 5: the real-valued thread count that saturates the bus.

    Returns ``inf`` (or ``max_threads`` when given) if ``bu1`` is zero —
    a workload that never touches the bus cannot become bus limited.
    """
    if not 0.0 <= bu1 <= 1.0:
        raise ValueError("BU_1 must be a fraction in [0, 1]")
    if bu1 == 0.0:
        return float(max_threads) if max_threads is not None else math.inf
    p = 1.0 / bu1
    if max_threads is not None:
        p = min(p, float(max_threads))
    return p


def predicted_thread_count(bu1: float, num_cores: int) -> int:
    """BAT's integer decision: Eq. 5 rounded *up*, clamped to cores.

    The paper rounds ``P_BW`` up (Section 5.2, Estimation) "because a
    higher number of threads may not hurt performance while a smaller
    number can".
    """
    if num_cores < 1:
        raise ValueError("num_cores must be >= 1")
    p = saturation_threads(bu1)
    if math.isinf(p):
        return num_cores
    return max(1, min(num_cores, math.ceil(p - 1e-9)))


def execution_time(t1: float, bu1: float, threads: int) -> float:
    """Eq. 6: time with ``threads`` threads given single-thread time ``t1``."""
    if t1 < 0:
        raise ValueError("t1 must be non-negative")
    p_bw = saturation_threads(bu1)
    if threads <= p_bw:
        return t1 / threads
    return t1 / p_bw


@dataclass(frozen=True, slots=True)
class BatModel:
    """A fitted instance of the Section 5.1 model.

    Attributes:
        t1: single-thread execution time of the parallel part.
        bu1: single-thread bus utilization as a fraction in [0, 1].
    """

    t1: float
    bu1: float

    def bus_utilization(self, threads: int) -> float:
        """Eq. 4 (capped at 1.0)."""
        return bus_utilization(self.bu1, threads)

    def execution_time(self, threads: int) -> float:
        """Eq. 6."""
        return execution_time(self.t1, self.bu1, threads)

    def saturation_threads(self, max_threads: int | None = None) -> float:
        """Eq. 5 (real-valued)."""
        return saturation_threads(self.bu1, max_threads)

    def predicted_thread_count(self, num_cores: int) -> int:
        """BAT's integer choice for a machine with ``num_cores`` cores."""
        return predicted_thread_count(self.bu1, num_cores)

    def curve(self, max_threads: int) -> list[float]:
        """Execution times for P = 1..max_threads (figure generation)."""
        return [self.execution_time(p) for p in range(1, max_threads + 1)]

    def utilization_curve(self, max_threads: int) -> list[float]:
        """Bus utilizations for P = 1..max_threads (Figure 4b shape)."""
        return [self.bus_utilization(p) for p in range(1, max_threads + 1)]
