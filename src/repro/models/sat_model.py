"""Critical-section execution-time model (paper Section 4.1).

With ``T_NoCS`` cycles of perfectly parallel work and ``T_CS`` cycles of
critical section per thread-equivalent of work, the execution time with
``P`` threads is (Eq. 1)::

    T_P = T_NoCS / P  +  P * T_CS

The parallel part shrinks as 1/P while the serialized critical-section
time grows linearly in P (every thread must take its turn).  Setting the
derivative to zero (Eq. 2) yields the optimum (Eq. 3)::

    P_CS = sqrt(T_NoCS / T_CS)

so even a 1 % critical section caps useful concurrency at 10 threads —
the square-root law the paper highlights.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


def execution_time(t_nocs: float, t_cs: float, threads: int) -> float:
    """Eq. 1: predicted execution time with ``threads`` threads."""
    if threads < 1:
        raise ValueError("thread count must be >= 1")
    if t_nocs < 0 or t_cs < 0:
        raise ValueError("times must be non-negative")
    return t_nocs / threads + threads * t_cs


def execution_time_derivative(t_nocs: float, t_cs: float, threads: float) -> float:
    """Eq. 2: d(T_P)/dP — negative while more threads still help."""
    if threads <= 0:
        raise ValueError("thread count must be positive")
    return -t_nocs / (threads * threads) + t_cs


def optimal_threads_cs(t_nocs: float, t_cs: float,
                       max_threads: int | None = None) -> float:
    """Eq. 3: the real-valued optimum ``P_CS = sqrt(T_NoCS / T_CS)``.

    Args:
        t_nocs: measured time outside critical sections.
        t_cs: measured time inside critical sections.
        max_threads: optional clamp (the machine's core count).

    Returns:
        The unclamped square-root optimum, or ``inf``/``max_threads``
        when ``t_cs`` is zero (no critical section: more threads always
        help in this model).
    """
    if t_nocs < 0 or t_cs < 0:
        raise ValueError("times must be non-negative")
    if t_cs == 0:
        return float(max_threads) if max_threads is not None else math.inf
    p = math.sqrt(t_nocs / t_cs)
    if max_threads is not None:
        p = min(p, float(max_threads))
    return p


def predicted_thread_count(t_nocs: float, t_cs: float, num_cores: int) -> int:
    """SAT's integer decision: Eq. 3 rounded to nearest, clamped to cores.

    The paper rounds ``P_CS`` to the nearest integer (Section 4.2.2) and
    takes the minimum with the available core count.  At least one thread
    is always used.
    """
    if num_cores < 1:
        raise ValueError("num_cores must be >= 1")
    p = optimal_threads_cs(t_nocs, t_cs)
    if math.isinf(p):
        return num_cores
    return max(1, min(num_cores, round(p)))


@dataclass(frozen=True, slots=True)
class SatModel:
    """A fitted instance of the Section 4.1 model.

    Attributes:
        t_nocs: per-unit-of-work time outside critical sections.
        t_cs: per-unit-of-work time inside critical sections.
    """

    t_nocs: float
    t_cs: float

    def execution_time(self, threads: int) -> float:
        """Eq. 1 for this workload."""
        return execution_time(self.t_nocs, self.t_cs, threads)

    def speedup(self, threads: int) -> float:
        """Speedup over one thread predicted by Eq. 1."""
        return self.execution_time(1) / self.execution_time(threads)

    @property
    def cs_fraction(self) -> float:
        """Fraction of single-thread time spent in the critical section."""
        total = self.t_nocs + self.t_cs
        if total == 0:
            return 0.0
        return self.t_cs / total

    def optimal_threads(self, max_threads: int | None = None) -> float:
        """Eq. 3 (real-valued)."""
        return optimal_threads_cs(self.t_nocs, self.t_cs, max_threads)

    def predicted_thread_count(self, num_cores: int) -> int:
        """SAT's integer choice for a machine with ``num_cores`` cores."""
        return predicted_thread_count(self.t_nocs, self.t_cs, num_cores)

    def curve(self, max_threads: int) -> list[float]:
        """Execution times for P = 1..max_threads (figure generation)."""
        return [self.execution_time(p) for p in range(1, max_threads + 1)]
