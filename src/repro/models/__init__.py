"""Analytical performance models from the paper (Sections 4.1, 5.1, Appendix).

These are the closed-form models SAT and BAT evaluate at run time:

* :mod:`repro.models.sat_model` — Eq. 1-3: execution time under critical-
  section serialization and the optimal thread count ``P_CS``.
* :mod:`repro.models.bat_model` — Eq. 4-6: bus utilization scaling and the
  saturation thread count ``P_BW``.
* :mod:`repro.models.combined` — Eq. 7 and the appendix proof that
  ``min(P_CS, P_BW)`` minimizes execution time.
"""

from repro.models.sat_model import SatModel, optimal_threads_cs
from repro.models.bat_model import BatModel, saturation_threads
from repro.models.amdahl import AmdahlModel, amdahl_limit, amdahl_speedup
from repro.models.combined import CombinedModel, combined_thread_choice

__all__ = [
    "SatModel",
    "optimal_threads_cs",
    "BatModel",
    "saturation_threads",
    "CombinedModel",
    "combined_thread_choice",
    "AmdahlModel",
    "amdahl_speedup",
    "amdahl_limit",
]
