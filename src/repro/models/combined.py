"""Combined SAT+BAT model (paper Section 6 and Appendix).

When a kernel is exposed to both limiters, the combined execution-time
model stacks them: the parallel part stops shrinking once the bus
saturates (Eq. 6) while the critical-section term keeps growing linearly
(Eq. 1)::

    T_P = T_NoCS / min(P, P_BW)  +  P * T_CS

Eq. 7 picks ``P_FDT = min(P_BW, P_CS, num_cores)``.  The appendix proves
the min is optimal by the two case analyses (Figures 16 and 17); the
:func:`minimizer` here lets tests verify that claim by brute force.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.models.bat_model import BatModel
from repro.models.sat_model import SatModel


def combined_thread_choice(p_cs: float, p_bw: float, num_cores: int) -> int:
    """Eq. 7: ``min(P_BW, P_CS, num_available_cores)`` as an integer.

    ``p_cs`` follows SAT's round-to-nearest, ``p_bw`` BAT's round-up, and
    infinities (limiter absent) defer to the other bound or the core count.
    """
    if num_cores < 1:
        raise ValueError("num_cores must be >= 1")
    candidates = [num_cores]
    if math.isfinite(p_cs):
        candidates.append(max(1, round(p_cs)))
    if math.isfinite(p_bw):
        candidates.append(max(1, math.ceil(p_bw - 1e-9)))
    return max(1, min(candidates))


@dataclass(frozen=True, slots=True)
class CombinedModel:
    """Both limiters at once: the appendix's piecewise execution time."""

    sat: SatModel
    bat: BatModel

    def execution_time(self, threads: int) -> float:
        """Parallel part capped by bus saturation, plus serialized CS."""
        if threads < 1:
            raise ValueError("thread count must be >= 1")
        p_bw = self.bat.saturation_threads()
        effective = min(float(threads), p_bw)
        return self.sat.t_nocs / effective + threads * self.sat.t_cs

    def minimizer(self, max_threads: int) -> int:
        """Brute-force argmin over 1..max_threads (ties go to fewer threads).

        Used to check the appendix claim that Eq. 7 finds the optimum.
        """
        best_p = 1
        best_t = self.execution_time(1)
        for p in range(2, max_threads + 1):
            t = self.execution_time(p)
            if t < best_t - 1e-12:
                best_t = t
                best_p = p
        return best_p

    def eq7_choice(self, num_cores: int) -> int:
        """Eq. 7 evaluated from the two sub-models."""
        return combined_thread_choice(
            self.sat.optimal_threads(),
            self.bat.saturation_threads(),
            num_cores,
        )

    def curve(self, max_threads: int) -> list[float]:
        """Execution times for P = 1..max_threads (Figures 16/17 shape)."""
        return [self.execution_time(p) for p in range(1, max_threads + 1)]
