"""Amdahl's-law helpers, and how Eq. 1 relates to them.

Amdahl's law bounds speedup with a *serial fraction* ``s`` that does not
grow with the thread count::

    speedup(P) = 1 / (s + (1 - s) / P)

The paper's Eq. 1 is strictly harsher: a critical section is serial work
*per thread*, so its total grows linearly with P and the execution time
eventually turns upward instead of flattening.  :func:`crossover_threads`
quantifies where the two models part ways — a useful sanity check when
deciding whether a measured sweep is merely Amdahl-limited (scalable
with a serial stub) or genuinely CS-limited (FDT's target).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.models.sat_model import SatModel


def amdahl_speedup(serial_fraction: float, threads: int) -> float:
    """Classic Amdahl speedup for ``threads`` processors."""
    if not 0.0 <= serial_fraction <= 1.0:
        raise ValueError("serial fraction must be in [0, 1]")
    if threads < 1:
        raise ValueError("thread count must be >= 1")
    return 1.0 / (serial_fraction + (1.0 - serial_fraction) / threads)


def amdahl_limit(serial_fraction: float) -> float:
    """The asymptotic speedup bound (1/s; inf for a fully parallel job)."""
    if not 0.0 <= serial_fraction <= 1.0:
        raise ValueError("serial fraction must be in [0, 1]")
    if serial_fraction == 0.0:
        return math.inf
    return 1.0 / serial_fraction


@dataclass(frozen=True, slots=True)
class AmdahlModel:
    """Execution time under Amdahl's law (serial stub + parallel part)."""

    serial: float
    parallel: float

    def execution_time(self, threads: int) -> float:
        if threads < 1:
            raise ValueError("thread count must be >= 1")
        return self.serial + self.parallel / threads

    def speedup(self, threads: int) -> float:
        return self.execution_time(1) / self.execution_time(threads)


def crossover_threads(model: SatModel) -> float:
    """Threads at which Eq. 1 departs Amdahl's law by more than 2x.

    Both models agree at P=1 (total time ``T_NoCS + T_CS``).  Amdahl
    treats the CS as a fixed serial stub; Eq. 1 grows it linearly.  The
    returned P is where Eq. 1's time exceeds Amdahl's prediction by a
    factor of two — below it the distinction barely matters, beyond it
    treating a critical section as "just a serial fraction" badly
    mispredicts the sweep.
    """
    if model.t_cs == 0:
        return math.inf
    amdahl = AmdahlModel(serial=model.t_cs, parallel=model.t_nocs)
    p = 1
    while p < 1_000_000:
        if model.execution_time(p) > 2.0 * amdahl.execution_time(p):
            return float(p)
        p += 1
    return math.inf
