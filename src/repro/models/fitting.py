"""Fit the analytical models to measured sweeps (validation tooling).

The paper presents Eq. 1 and Eq. 6 and shows curves that follow them;
this module closes the loop quantitatively: given a measured
execution-time-vs-threads sweep, recover the model parameters by least
squares and report the fit quality.  EXPERIMENTS.md uses the resulting
R² to say *how well* the simulator's curves follow the paper's models,
and tests use it to pin the Figure 2/4 shapes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.models.bat_model import BatModel
from repro.models.sat_model import SatModel


def r_squared(measured: Sequence[float], predicted: Sequence[float]) -> float:
    """Coefficient of determination of ``predicted`` against ``measured``."""
    if len(measured) != len(predicted) or not measured:
        raise ValueError("series must be non-empty and aligned")
    mean = sum(measured) / len(measured)
    ss_tot = sum((y - mean) ** 2 for y in measured)
    ss_res = sum((y - p) ** 2 for y, p in zip(measured, predicted))
    if ss_tot == 0:
        return 1.0 if ss_res == 0 else 0.0
    return 1.0 - ss_res / ss_tot


@dataclass(frozen=True, slots=True)
class SatFit:
    """Least-squares Eq. 1 fit to a measured sweep."""

    model: SatModel
    r2: float

    @property
    def implied_optimum(self) -> float:
        return self.model.optimal_threads()


def fit_sat(thread_counts: Sequence[int],
            times: Sequence[float]) -> SatFit:
    """Fit ``T_P = T_NoCS / P + P * T_CS`` by linear least squares.

    Eq. 1 is linear in (T_NoCS, T_CS) with regressors (1/P, P), so the
    normal equations solve it exactly.  Negative parameters are clamped
    to zero (a sweep with no CS signature fits T_CS = 0).
    """
    if len(thread_counts) != len(times) or len(times) < 2:
        raise ValueError("need at least two aligned sweep points")
    # Normal equations for y = a * (1/P) + b * P.
    s_xx = sum((1.0 / p) ** 2 for p in thread_counts)
    s_xz = sum((1.0 / p) * p for p in thread_counts)  # == len
    s_zz = sum(float(p) ** 2 for p in thread_counts)
    s_xy = sum(y / p for p, y in zip(thread_counts, times))
    s_zy = sum(y * p for p, y in zip(thread_counts, times))
    det = s_xx * s_zz - s_xz * s_xz
    if det == 0:
        raise ValueError("degenerate sweep (identical thread counts)")
    t_nocs = (s_xy * s_zz - s_zy * s_xz) / det
    t_cs = (s_zy * s_xx - s_xy * s_xz) / det
    model = SatModel(t_nocs=max(0.0, t_nocs), t_cs=max(0.0, t_cs))
    predicted = [model.execution_time(p) for p in thread_counts]
    return SatFit(model=model, r2=r_squared(list(times), predicted))


@dataclass(frozen=True, slots=True)
class BatFit:
    """Best Eq. 6 fit to a measured sweep."""

    model: BatModel
    r2: float

    @property
    def implied_knee(self) -> float:
        return self.model.saturation_threads()


def fit_bat(thread_counts: Sequence[int],
            times: Sequence[float]) -> BatFit:
    """Fit ``T_P = T_1 / min(P, P_BW)`` by scanning the knee.

    Eq. 6 is piecewise; for each candidate knee the best T_1 is a
    closed-form least-squares scale, so a scan over a fine knee grid
    finds the global optimum.
    """
    if len(thread_counts) != len(times) or len(times) < 2:
        raise ValueError("need at least two aligned sweep points")
    p_max = max(thread_counts)
    best: BatFit | None = None
    knee = 1.0
    while knee <= p_max + 1:
        xs = [1.0 / min(p, knee) for p in thread_counts]
        denom = sum(x * x for x in xs)
        t1 = sum(x * y for x, y in zip(xs, times)) / denom
        model = BatModel(t1=t1, bu1=1.0 / knee)
        predicted = [model.execution_time(p) for p in thread_counts]
        fit = BatFit(model=model, r2=r_squared(list(times), predicted))
        if best is None or fit.r2 > best.r2:
            best = fit
        knee += 0.25
    assert best is not None
    return best


def classify_sweep(thread_counts: Sequence[int],
                   times: Sequence[float]) -> str:
    """Which analytical model explains a sweep better?

    Returns ``"cs-limited"``, ``"bw-limited"``, or ``"scalable"`` (when
    both fits agree the curve is still falling at the last point).
    """
    sat = fit_sat(thread_counts, times)
    bat = fit_bat(thread_counts, times)
    p_max = max(thread_counts)
    if sat.r2 >= bat.r2 and sat.implied_optimum < p_max * 0.9:
        return "cs-limited"
    if bat.implied_knee < p_max * 0.9:
        return "bw-limited"
    return "scalable"
