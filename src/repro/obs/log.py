"""Structured logging: per-subsystem loggers, JSON or human lines.

Built on stdlib :mod:`logging`.  Every repro logger hangs off the
``"repro"`` root (``get_logger("serve") → "repro.serve"``), so one
:func:`configure` call — driven by the global ``--log-level`` /
``--log-json`` CLI flags — sets level and format for every subsystem
at once without touching the process root logger.

The JSON format is one object per line::

    {"ts": "2026-08-07T12:00:00.123456+00:00", "level": "INFO",
     "logger": "repro.serve", "msg": "request", "trace_id": "…",
     "span_id": "…", "endpoint": "/v1/run"}

``trace_id``/``span_id`` come from the active obs span (if any), so log
lines join the same timeline as spans and the run registry.  Extra
key-value context goes through the standard ``extra=`` mechanism or the
:func:`kv` helper.

Worker processes inherit configuration through the environment:
:func:`configure` exports ``REPRO_LOG_LEVEL`` / ``REPRO_LOG_JSON``, and
:func:`configure_from_env` (called in pool initializers/entry points)
re-applies them on the child side.
"""

from __future__ import annotations

import json
import logging
import os
import sys
from datetime import datetime, timezone
from typing import Any, Mapping, TextIO

ENV_LEVEL = "REPRO_LOG_LEVEL"
ENV_JSON = "REPRO_LOG_JSON"

_ROOT = "repro"

#: Attributes of a LogRecord that are not user-supplied context.
_RECORD_FIELDS = frozenset(
    logging.LogRecord("", 0, "", 0, "", (), None).__dict__) | {
        "message", "asctime", "taskName"}


def _trace_fields() -> dict[str, str]:
    from repro.obs.tracing import current_context

    ctx = current_context()
    if ctx is None:
        return {}
    return {"trace_id": ctx.trace_id, "span_id": ctx.span_id}


class JsonFormatter(logging.Formatter):
    """One JSON object per line, trace-correlated."""

    def format(self, record: logging.LogRecord) -> str:
        doc: dict[str, Any] = {
            "ts": datetime.fromtimestamp(
                record.created, tz=timezone.utc).isoformat(),
            "level": record.levelname,
            "logger": record.name,
            "msg": record.getMessage(),
        }
        doc.update(_trace_fields())
        for key, value in record.__dict__.items():
            if key in _RECORD_FIELDS or key.startswith("_"):
                continue
            try:
                json.dumps(value)
            except (TypeError, ValueError):
                value = repr(value)
            doc[key] = value
        if record.exc_info and record.exc_info[0] is not None:
            doc["exc"] = self.formatException(record.exc_info)
        return json.dumps(doc, sort_keys=False)


class HumanFormatter(logging.Formatter):
    """``HH:MM:SS LEVEL logger: msg [k=v …]`` with a short trace tag."""

    def format(self, record: logging.LogRecord) -> str:
        stamp = datetime.fromtimestamp(record.created).strftime("%H:%M:%S")
        parts = [f"{stamp} {record.levelname:<7} {record.name}:",
                 record.getMessage()]
        trace = _trace_fields()
        if trace:
            parts.append(f"[trace={trace['trace_id'][:8]}]")
        for key, value in record.__dict__.items():
            if key in _RECORD_FIELDS or key.startswith("_"):
                continue
            parts.append(f"{key}={value}")
        line = " ".join(str(p) for p in parts)
        if record.exc_info and record.exc_info[0] is not None:
            line += "\n" + self.formatException(record.exc_info)
        return line


def get_logger(subsystem: str) -> logging.Logger:
    """The logger for a subsystem (``"serve"`` → ``repro.serve``)."""
    if subsystem == _ROOT or subsystem.startswith(_ROOT + "."):
        return logging.getLogger(subsystem)
    return logging.getLogger(f"{_ROOT}.{subsystem}")


def configure(level: str = "WARNING", json_lines: bool = False,
              stream: TextIO | None = None,
              export_env: bool = True) -> logging.Logger:
    """(Re)configure the ``repro`` logger tree.

    Replaces any previous handler, so calling twice is safe.  With
    ``export_env`` (the default) the choice is exported as
    ``REPRO_LOG_LEVEL``/``REPRO_LOG_JSON`` so worker processes can
    mirror it via :func:`configure_from_env`.
    """
    root = logging.getLogger(_ROOT)
    for handler in list(root.handlers):
        root.removeHandler(handler)
    handler = logging.StreamHandler(stream if stream is not None
                                    else sys.stderr)
    handler.setFormatter(JsonFormatter() if json_lines else HumanFormatter())
    root.addHandler(handler)
    root.setLevel(getattr(logging, level.upper(), logging.WARNING))
    root.propagate = False
    if export_env:
        os.environ[ENV_LEVEL] = level.upper()
        os.environ[ENV_JSON] = "1" if json_lines else "0"
    return root


def configure_from_env() -> logging.Logger | None:
    """Apply ``REPRO_LOG_*`` in a worker process; no-op if unset."""
    level = os.environ.get(ENV_LEVEL)
    if not level:
        return None
    json_lines = os.environ.get(ENV_JSON, "0") == "1"
    return configure(level=level, json_lines=json_lines, export_env=False)


def kv(mapping: Mapping[str, Any] | None = None,
       **fields: Any) -> dict[str, dict[str, Any]]:
    """Context for a log call: ``log.info("msg", **kv(key=value))``."""
    merged: dict[str, Any] = dict(mapping or {})
    merged.update(fields)
    return {"extra": merged}
