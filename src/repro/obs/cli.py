"""The ``repro obs`` command: query the persistent run registry.

Four verbs over :class:`repro.obs.runreg.RunRegistry`:

* ``list`` — every row (filterable by status/workload);
* ``show <key>`` — the latest row for a key, prefix-matched like an
  abbreviated git hash, plus how many times the key was resolved;
* ``tail`` — the last N rows;
* ``report`` — aggregate summary (rows, dispositions, hit rate, wall
  time spent computing).

Argument wiring lives here (``add_obs_subparser``) so :mod:`repro.cli`
only has to mount it; the registry location defaults to
``<cache root>/obs`` and follows ``--dir`` / ``REPRO_CACHE_DIR``.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.obs.runreg import RunRegistry, format_records


def _registry(args: argparse.Namespace) -> RunRegistry:
    return RunRegistry(args.dir)


def _cmd_list(args: argparse.Namespace) -> int:
    registry = _registry(args)
    rows = registry.records()
    if args.status:
        rows = [r for r in rows if r.status == args.status]
    if args.workload:
        rows = [r for r in rows if r.workload == args.workload]
    if args.limit is not None:
        rows = rows[-args.limit:]
    if args.json:
        print(json.dumps([r.to_dict() for r in rows], indent=2))
        return 0
    if not rows:
        print(f"no runs recorded under {registry.path}")
        return 0
    print(format_records(rows))
    print(f"{len(rows)} row(s) from {registry.path}")
    return 0


def _cmd_show(args: argparse.Namespace) -> int:
    registry = _registry(args)
    record = registry.get(args.key)
    if record is None:
        print(f"error: no run registered for key {args.key!r} "
              f"under {registry.path}", file=sys.stderr)
        return 1
    doc = record.to_dict()
    doc["resolutions"] = len(registry.history(args.key))
    print(json.dumps(doc, indent=2))
    return 0


def _cmd_tail(args: argparse.Namespace) -> int:
    registry = _registry(args)
    rows = registry.tail(args.count)
    if args.json:
        print(json.dumps([r.to_dict() for r in rows], indent=2))
        return 0
    if not rows:
        print(f"no runs recorded under {registry.path}")
        return 0
    print(format_records(rows))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    registry = _registry(args)
    summary = registry.report()
    if args.json:
        print(json.dumps(summary, indent=2))
        return 0
    print(f"run registry: {summary['path']}")
    print(f"  rows: {summary['rows']}  "
          f"unique keys: {summary['unique_keys']}")
    for status, count in summary["by_status"].items():
        print(f"  {status}: {count}")
    for workload, count in summary["by_workload"].items():
        print(f"  workload {workload}: {count}")
    print(f"  hit rate: {summary['hit_rate']:.1%}")
    print(f"  compute wall time: "
          f"{summary['computed_wall_time_total']:.3f}s total, "
          f"{summary['computed_wall_time_mean']:.3f}s mean")
    return 0


def add_obs_subparser(sub: argparse._SubParsersAction) -> None:
    """Mount ``repro obs`` on the top-level subparser action."""
    p_obs = sub.add_parser(
        "obs",
        help="query the persistent run registry (provenance rows "
             "written by the jobs layer under the cache dir)")
    obs_sub = p_obs.add_subparsers(dest="obs_command", required=True)

    def add_common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--dir", default=None, metavar="DIR",
                       help="registry directory (default: "
                            "<cache root>/obs)")
        p.add_argument("--json", action="store_true",
                       help="print machine-readable rows")

    p_list = obs_sub.add_parser("list", help="list recorded runs")
    add_common(p_list)
    p_list.add_argument("--status", default=None,
                        help="filter by disposition (hit, computed, "
                             "failed, timeout, preflight-failed)")
    p_list.add_argument("--workload", default=None,
                        help="filter by workload name")
    p_list.add_argument("--limit", type=int, default=None, metavar="N",
                        help="keep only the last N matching rows")
    p_list.set_defaults(func=_cmd_list)

    p_show = obs_sub.add_parser(
        "show", help="show the latest run for a spec key")
    add_common(p_show)
    p_show.add_argument("key", help="spec content key (prefix accepted)")
    p_show.set_defaults(func=_cmd_show)

    p_tail = obs_sub.add_parser("tail", help="show the last N runs")
    add_common(p_tail)
    p_tail.add_argument("-n", "--count", type=int, default=10,
                        help="rows to show (default 10)")
    p_tail.set_defaults(func=_cmd_tail)

    p_report = obs_sub.add_parser(
        "report", help="aggregate summary over all recorded runs")
    add_common(p_report)
    p_report.set_defaults(func=_cmd_report)
