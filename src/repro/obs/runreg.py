"""Persistent run registry: one provenance row per resolved spec.

Answers the question the result cache cannot: not *what* did spec
``k`` produce, but *when* was it resolved, *where* (host fingerprint),
*how* (cache hit or computed, on which backend, how long), and *what
did FDT decide* — without re-running the experiment.

Rows are appended to ``runs.jsonl`` under the registry root (by
default ``<cache root>/obs``, so the registry rides along with the
result cache and honours ``REPRO_CACHE_DIR``).  JSON-lines because the
write path must be cheap and crash-tolerant: one ``O_APPEND`` write
per resolved spec, no index to corrupt, and a torn final line is
skipped on read rather than poisoning the file.

The jobs layer writes rows from its single bookkeeping point
(``JobRunner._record``, which also feeds the manifest), so the
registry and the manifest can never disagree.  The ``repro obs`` CLI
(:mod:`repro.obs.cli`) queries it: ``list``, ``show <key>``, ``tail``,
``report``.
"""

from __future__ import annotations

import json
import os
import platform
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable

from repro.obs.log import get_logger
from repro.obs.registry import default_registry

#: Bump on any incompatible change to the row layout.
SCHEMA = "repro-obs-run/1"

REGISTRY_FILENAME = "runs.jsonl"

_log = get_logger("obs")


def host_fingerprint() -> dict[str, Any]:
    """Identify the executing host well enough to judge comparability.

    The canonical implementation — ``repro.bench`` stamps its reports
    with the same fingerprint (same keys) by delegating here.
    """
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
    }


def default_runreg_dir() -> Path:
    """``<result-cache root>/obs`` — honours ``REPRO_CACHE_DIR``."""
    from repro.jobs.cache import default_cache_dir

    return default_cache_dir() / "obs"


@dataclass(frozen=True, slots=True)
class RunRecord:
    """One provenance row for one resolved job spec."""

    #: Content key of the spec (sha256 over canonical spec JSON).
    key: str
    workload: str
    policy: str
    #: Disposition: ``hit`` / ``computed`` / ``failed`` / ``timeout`` /
    #: ``preflight-failed``.
    status: str
    backend: str
    wall_time: float
    #: Wall-clock bounds, ISO-8601 with timezone.
    started_at: str
    finished_at: str
    #: Job-spec schema version the key was computed under.
    schema_version: int
    host: dict[str, Any] = field(default_factory=dict)
    #: Obs trace the resolution belongs to ("" when untraced).
    trace_id: str = ""
    trace_path: str = ""
    error: str = ""
    #: Per-kernel FDT decisions: ``[{"kernel", "threads", "estimates"}]``.
    fdt: list[dict[str, Any]] = field(default_factory=list)

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema": SCHEMA,
            "key": self.key,
            "workload": self.workload,
            "policy": self.policy,
            "status": self.status,
            "backend": self.backend,
            "wall_time": round(self.wall_time, 6),
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "schema_version": self.schema_version,
            "host": dict(self.host),
            "trace_id": self.trace_id,
            "trace_path": self.trace_path,
            "error": self.error,
            "fdt": [dict(d) for d in self.fdt],
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "RunRecord":
        return cls(
            key=data["key"], workload=data.get("workload", ""),
            policy=data.get("policy", ""), status=data["status"],
            backend=data.get("backend", ""),
            wall_time=float(data.get("wall_time", 0.0)),
            started_at=data.get("started_at", ""),
            finished_at=data.get("finished_at", ""),
            schema_version=int(data.get("schema_version", 0)),
            host=dict(data.get("host", {})),
            trace_id=data.get("trace_id", ""),
            trace_path=data.get("trace_path", ""),
            error=data.get("error", ""),
            fdt=[dict(d) for d in data.get("fdt", [])],
        )


class RunRegistry:
    """Append-only JSONL registry of :class:`RunRecord` rows."""

    def __init__(self, root: str | Path | None = None) -> None:
        self.root = Path(root) if root is not None else default_runreg_dir()
        self.path = self.root / REGISTRY_FILENAME
        self._lock = threading.Lock()
        #: True once an append failed: the registry keeps accepting
        #: rows (and dropping them) so the workload never stops, but
        #: the degradation is warned once and counted.
        self.degraded = False

    def append(self, record: RunRecord) -> None:
        line = json.dumps(record.to_dict(), sort_keys=True) + "\n"
        with self._lock:
            try:
                self.root.mkdir(parents=True, exist_ok=True)
                with open(self.path, "a", encoding="utf-8") as handle:
                    handle.write(line)
            except OSError as exc:
                # Provenance must never take the workload down: drop
                # the row, warn once, and count every drop.
                if not self.degraded:
                    self.degraded = True
                    _log.warning(
                        "run registry unwritable; provenance rows are "
                        "being dropped",
                        extra={"path": str(self.path), "error": str(exc)})
                default_registry().labeled_counter(
                    "repro_obs_degraded_total",
                    "Telemetry writes dropped because a sink is "
                    "unwritable.", "sink").inc("runreg")
            else:
                self.degraded = False

    def records(self) -> list[RunRecord]:
        """All rows in append order, skipping torn/corrupt lines."""
        try:
            text = self.path.read_text(encoding="utf-8")
        except OSError:
            return []
        out: list[RunRecord] = []
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                out.append(RunRecord.from_dict(json.loads(line)))
            except (KeyError, TypeError, ValueError):
                continue
        return out

    def tail(self, count: int = 10) -> list[RunRecord]:
        """The last ``count`` rows, oldest first."""
        rows = self.records()
        return rows[-count:] if count > 0 else []

    def get(self, key: str) -> RunRecord | None:
        """The most recent row whose key equals — or starts with —
        ``key`` (prefix match mirrors git's abbreviated-hash habit)."""
        match: RunRecord | None = None
        for record in self.records():
            if record.key == key or record.key.startswith(key):
                match = record
        return match

    def history(self, key: str) -> list[RunRecord]:
        """Every row for a key (exact or prefix), oldest first."""
        return [r for r in self.records()
                if r.key == key or r.key.startswith(key)]

    def report(self) -> dict[str, Any]:
        """Aggregate summary across all rows."""
        rows = self.records()
        by_status: dict[str, int] = {}
        by_workload: dict[str, int] = {}
        computed_wall: list[float] = []
        for record in rows:
            by_status[record.status] = by_status.get(record.status, 0) + 1
            if record.workload:
                by_workload[record.workload] = \
                    by_workload.get(record.workload, 0) + 1
            if record.status == "computed":
                computed_wall.append(record.wall_time)
        resolved = by_status.get("hit", 0) + by_status.get("computed", 0)
        return {
            "schema": SCHEMA,
            "path": str(self.path),
            "rows": len(rows),
            "unique_keys": len({r.key for r in rows}),
            "by_status": dict(sorted(by_status.items())),
            "by_workload": dict(sorted(by_workload.items())),
            "hit_rate": (by_status.get("hit", 0) / resolved
                         if resolved else 0.0),
            "computed_wall_time_total": round(sum(computed_wall), 6),
            "computed_wall_time_mean": (
                round(sum(computed_wall) / len(computed_wall), 6)
                if computed_wall else 0.0),
        }


def format_records(records: Iterable[RunRecord]) -> str:
    """One row per line: abbreviated key, status, workload, timing."""
    lines = []
    for r in records:
        lines.append(
            f"{r.key[:12]}  {r.status:<17} {r.workload:<12} "
            f"{r.policy:<8} {r.wall_time:8.3f}s  {r.finished_at}")
    return "\n".join(lines)
