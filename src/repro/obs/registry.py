"""Shared metrics registry: thread-safe instruments, one exposition.

Before this module, each layer grew its own counters — the serve layer
had an inline metrics panel, jobs counted hits in manifests, bench kept
trial times privately.  :class:`MetricsRegistry` is the one place any
subsystem registers an instrument; the serve layer's ``/metrics``
endpoint is just a renderer over it.

Four instrument kinds, matching what the Prometheus text exposition
(version 0.0.4) can carry:

* :class:`Counter` — monotonic total;
* :class:`LabeledCounter` — counter family with one label dimension;
* :class:`Gauge` — value that goes up and down;
* :class:`Histogram` — fixed-bucket cumulative histogram, with
  optional *exemplar* labels (the last observation's label per bucket,
  kept in memory for debugging; the 0.0.4 text format cannot carry
  them, so they never appear in the rendered exposition).

Every mutation takes the instrument's lock, so N threads incrementing
concurrently lose nothing — the registry is shared between the serving
event loop, its executor threads, and whatever the jobs layer runs.

A process-global default registry (:func:`default_registry`) collects
instruments from subsystems that have no natural owner object (jobs
cache counters, FDT decision gauges, bench trial timings).  Callsites
use the get-or-create accessors (:meth:`MetricsRegistry.counter` and
friends) rather than holding instrument references across a
:func:`reset_default_registry`, so tests can start from a clean slate.
"""

from __future__ import annotations

import math
import threading
from typing import Iterable, Union

#: Default latency buckets (seconds): sub-millisecond cache hits
#: through multi-second cold simulations.
LATENCY_BUCKETS = (0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
                   0.25, 0.5, 1.0, 2.5, 5.0, 10.0)


def _format_value(value: float) -> str:
    """Prometheus sample value: integers bare, floats via ``repr``."""
    if value == math.inf:
        return "+Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _escape_label(value: str) -> str:
    return (value.replace("\\", r"\\").replace('"', r"\"")
            .replace("\n", r"\n"))


class Counter:
    """Monotonic counter."""

    __slots__ = ("name", "help", "_value", "_lock")

    def __init__(self, name: str, help_text: str) -> None:
        self.name = name
        self.help = help_text
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def render(self) -> list[str]:
        return [f"# HELP {self.name} {self.help}",
                f"# TYPE {self.name} counter",
                f"{self.name} {_format_value(self._value)}"]


class LabeledCounter:
    """Counter family with a single label dimension."""

    __slots__ = ("name", "help", "label", "_values", "_lock")

    def __init__(self, name: str, help_text: str, label: str) -> None:
        self.name = name
        self.help = help_text
        self.label = label
        self._values: dict[str, float] = {}
        self._lock = threading.Lock()

    def inc(self, label_value: str, amount: float = 1.0) -> None:
        with self._lock:
            self._values[label_value] = self._values.get(label_value, 0.0) \
                + amount

    def value(self, label_value: str) -> float:
        return self._values.get(label_value, 0.0)

    @property
    def total(self) -> float:
        return sum(self._values.values())

    def render(self) -> list[str]:
        lines = [f"# HELP {self.name} {self.help}",
                 f"# TYPE {self.name} counter"]
        for label_value in sorted(self._values):
            lines.append(
                f'{self.name}{{{self.label}="{_escape_label(label_value)}"}}'
                f" {_format_value(self._values[label_value])}")
        return lines


class Gauge:
    """Value that goes up and down (in-flight requests, last estimate)."""

    __slots__ = ("name", "help", "_value", "_lock")

    def __init__(self, name: str, help_text: str) -> None:
        self.name = name
        self.help = help_text
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    @property
    def value(self) -> float:
        return self._value

    def render(self) -> list[str]:
        return [f"# HELP {self.name} {self.help}",
                f"# TYPE {self.name} gauge",
                f"{self.name} {_format_value(self._value)}"]


class Histogram:
    """Fixed-bucket cumulative histogram (Prometheus semantics).

    ``observe`` optionally takes an *exemplar* — a short label (a spec
    key, a scenario name) identifying the observation.  The last
    exemplar per bucket is retained and available via
    :attr:`exemplars`; the text exposition does not carry them.
    """

    __slots__ = ("name", "help", "buckets", "_counts", "_sum", "_count",
                 "_exemplars", "_lock")

    def __init__(self, name: str, help_text: str,
                 buckets: Iterable[float] = LATENCY_BUCKETS) -> None:
        self.name = name
        self.help = help_text
        self.buckets = tuple(sorted(buckets))
        self._counts = [0] * len(self.buckets)
        self._sum = 0.0
        self._count = 0
        self._exemplars: dict[float, str] = {}
        self._lock = threading.Lock()

    def observe(self, value: float, exemplar: str | None = None) -> None:
        with self._lock:
            self._sum += value
            self._count += 1
            # Per-bucket tallies; render() turns them cumulative.
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    self._counts[i] += 1
                    if exemplar is not None:
                        self._exemplars[bound] = exemplar
                    return
            if exemplar is not None:
                self._exemplars[math.inf] = exemplar

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def exemplars(self) -> dict[float, str]:
        """Last exemplar label per bucket bound (``inf`` = overflow)."""
        return dict(self._exemplars)

    def render(self) -> list[str]:
        lines = [f"# HELP {self.name} {self.help}",
                 f"# TYPE {self.name} histogram"]
        cumulative = 0
        for bound, bucket_count in zip(self.buckets, self._counts):
            cumulative += bucket_count
            lines.append(f'{self.name}_bucket{{le="{_format_value(bound)}"}}'
                         f" {cumulative}")
        lines.append(f'{self.name}_bucket{{le="+Inf"}} {self._count}')
        lines.append(f"{self.name}_sum {_format_value(self._sum)}")
        lines.append(f"{self.name}_count {self._count}")
        return lines


Instrument = Union[Counter, LabeledCounter, Gauge, Histogram]


class MetricsRegistry:
    """Named instruments, rendered together in registration order."""

    def __init__(self) -> None:
        self._instruments: dict[str, Instrument] = {}
        self._lock = threading.Lock()

    def register(self, instrument: Instrument) -> Instrument:
        """Add an instrument; the name must be new."""
        with self._lock:
            if instrument.name in self._instruments:
                raise ValueError(
                    f"instrument {instrument.name!r} already registered")
            self._instruments[instrument.name] = instrument
        return instrument

    def _get_or_create(self, kind: type, name: str, *args: object) -> Instrument:
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                if type(existing) is not kind:
                    raise ValueError(
                        f"instrument {name!r} already registered as "
                        f"{type(existing).__name__}, not {kind.__name__}")
                return existing
            instrument = kind(name, *args)
            self._instruments[name] = instrument
            return instrument

    # -- get-or-create accessors (idempotent per name) ----------------

    def counter(self, name: str, help_text: str) -> Counter:
        instrument = self._get_or_create(Counter, name, help_text)
        assert isinstance(instrument, Counter)
        return instrument

    def labeled_counter(self, name: str, help_text: str,
                        label: str) -> LabeledCounter:
        instrument = self._get_or_create(LabeledCounter, name, help_text,
                                         label)
        assert isinstance(instrument, LabeledCounter)
        return instrument

    def gauge(self, name: str, help_text: str) -> Gauge:
        instrument = self._get_or_create(Gauge, name, help_text)
        assert isinstance(instrument, Gauge)
        return instrument

    def histogram(self, name: str, help_text: str,
                  buckets: Iterable[float] = LATENCY_BUCKETS) -> Histogram:
        instrument = self._get_or_create(Histogram, name, help_text, buckets)
        assert isinstance(instrument, Histogram)
        return instrument

    # -- introspection and rendering ----------------------------------

    def get(self, name: str) -> Instrument | None:
        return self._instruments.get(name)

    def instruments(self) -> list[Instrument]:
        """Snapshot of the registered instruments, in order."""
        with self._lock:
            return list(self._instruments.values())

    def __len__(self) -> int:
        return len(self._instruments)

    def render_prometheus(self) -> str:
        """The full text exposition (version 0.0.4) of this registry."""
        lines: list[str] = []
        for instrument in self.instruments():
            lines.extend(instrument.render())
        if not lines:
            return ""
        return "\n".join(lines) + "\n"


# -- the process-global default registry ------------------------------

_default = MetricsRegistry()
_default_lock = threading.Lock()


def default_registry() -> MetricsRegistry:
    """The registry subsystem-level instruments register into."""
    return _default


def reset_default_registry() -> MetricsRegistry:
    """Replace the default registry with a fresh one (tests).

    Callsites that use the get-or-create accessors on every update pick
    up the new registry automatically; holding an instrument reference
    across a reset keeps updating the orphaned one.
    """
    global _default
    with _default_lock:
        _default = MetricsRegistry()
    return _default
