"""Unified telemetry spine: metrics, spans, structured logs, provenance.

Four pieces, all stdlib-only and all pure observers (simulated cycles
are bit-identical with obs on or off — ``tests/test_obs_parity.py``):

* :mod:`repro.obs.registry` — thread-safe metrics instruments and the
  shared :class:`MetricsRegistry`; serve's ``/metrics`` endpoint is a
  renderer over it, and jobs / FDT / bench register their own
  instruments into the process-global :func:`default_registry`.
* :mod:`repro.obs.tracing` — span-based tracing with explicit
  trace/span-ID propagation through serve → jobs → simulation,
  exported as JSON lines or Perfetto ``trace_event`` JSON.
* :mod:`repro.obs.log` — per-subsystem structured logging (JSON or
  human lines), configured once by the global ``--log-level`` /
  ``--log-json`` flags and inherited by worker processes.
* :mod:`repro.obs.runreg` — the persistent run registry under the
  cache dir: one provenance row per resolved spec, queryable with
  ``repro obs list | show | tail | report``.

See ``docs/obs.md``.
"""

from repro.obs.log import configure as configure_logging
from repro.obs.log import configure_from_env, get_logger, kv
from repro.obs.registry import (
    LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    LabeledCounter,
    MetricsRegistry,
    default_registry,
    reset_default_registry,
)
from repro.obs.runreg import (
    RunRecord,
    RunRegistry,
    default_runreg_dir,
    host_fingerprint,
)
from repro.obs.tracing import (
    Span,
    SpanRecorder,
    TraceContext,
    current_context,
    merged_perfetto,
    recorder,
    span,
    spans_to_perfetto,
    use_context,
)

__all__ = [
    "LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "LabeledCounter",
    "MetricsRegistry",
    "RunRecord",
    "RunRegistry",
    "Span",
    "SpanRecorder",
    "TraceContext",
    "configure_from_env",
    "configure_logging",
    "current_context",
    "default_registry",
    "default_runreg_dir",
    "get_logger",
    "host_fingerprint",
    "kv",
    "merged_perfetto",
    "recorder",
    "reset_default_registry",
    "span",
    "spans_to_perfetto",
    "use_context",
]
