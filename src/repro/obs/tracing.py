"""Span-based tracing with explicit trace/span-ID propagation.

The cycle-level tracer (:mod:`repro.trace`) answers "what did the
simulated machine do, cycle by cycle"; this module answers "what did
the *host* pipeline do with a request" — serve request → schema
canonicalization → cache probe → batch dispatch → simulation run —
as a tree of wall-clock spans sharing one trace ID.

Propagation is explicit and two-layered:

* within one thread (and across ``await`` points of one asyncio task)
  the current :class:`TraceContext` lives in a ``contextvars``
  variable; :func:`span` opens a child of it;
* across threads and queues — the serving pipeline hands a request to
  a worker task and then to an executor thread — the context is
  carried by hand and re-entered with :func:`use_context`, because
  executors do not copy context.

Finished spans land in the process-global :class:`SpanRecorder` (a
bounded ring) and, when a sink is configured (``set_sink`` or the
``REPRO_OBS_SPANS`` environment variable), are appended as JSON lines.
:func:`spans_to_perfetto` renders spans in the same Chrome
``trace_event`` dialect as :mod:`repro.trace.export`, and
:func:`merged_perfetto` folds a simulation's cycle-level trace into the
same document, so a served request and the simulation it triggered can
be read off one timeline.

Everything here is a pure observer of host time: nothing reads or
writes simulator state, so simulated cycles are bit-identical with
tracing active or not (``tests/test_obs_parity.py``).
"""

from __future__ import annotations

import contextvars
import json
import os
import threading
import uuid
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from time import time
from typing import Iterator, Sequence

#: Ring capacity of the in-process recorder.
MAX_RECORDED_SPANS = 4096


def new_trace_id() -> str:
    return uuid.uuid4().hex


def new_span_id() -> str:
    return uuid.uuid4().hex[:16]


@dataclass(frozen=True, slots=True)
class TraceContext:
    """The identity a span publishes and its children inherit."""

    trace_id: str
    span_id: str
    parent_id: str = ""

    def child(self) -> "TraceContext":
        return TraceContext(trace_id=self.trace_id, span_id=new_span_id(),
                            parent_id=self.span_id)

    @classmethod
    def root(cls, trace_id: str | None = None) -> "TraceContext":
        return cls(trace_id=trace_id or new_trace_id(),
                   span_id=new_span_id())


@dataclass(frozen=True, slots=True)
class Span:
    """One finished operation on the host timeline."""

    trace_id: str
    span_id: str
    parent_id: str
    name: str
    #: Wall-clock bounds (``time.time`` epoch seconds).
    start: float
    end: float
    status: str = "ok"
    attrs: dict = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return max(0.0, self.end - self.start)

    def to_dict(self) -> dict:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": round(self.start, 6),
            "end": round(self.end, 6),
            "duration": round(self.duration, 6),
            "status": self.status,
            "attrs": dict(self.attrs),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Span":
        return cls(trace_id=data["trace_id"], span_id=data["span_id"],
                   parent_id=data.get("parent_id", ""), name=data["name"],
                   start=float(data["start"]), end=float(data["end"]),
                   status=data.get("status", "ok"),
                   attrs=dict(data.get("attrs", {})))


class SpanRecorder:
    """Bounded in-memory span store with an optional JSONL sink."""

    def __init__(self, capacity: int = MAX_RECORDED_SPANS) -> None:
        self._spans: deque[Span] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._sink: Path | None = None
        #: True once a sink write failed: spans still land in the ring,
        #: the drop is warned once and counted (see ``record``).
        self.degraded = False
        env = os.environ.get("REPRO_OBS_SPANS")
        if env:
            self._sink = Path(env)

    def set_sink(self, path: str | Path | None) -> None:
        """Append finished spans as JSON lines to ``path`` (None stops)."""
        with self._lock:
            self._sink = None if path is None else Path(path)
            self.degraded = False

    def record(self, span: Span) -> None:
        with self._lock:
            self._spans.append(span)
            sink = self._sink
        if sink is not None:
            try:
                sink.parent.mkdir(parents=True, exist_ok=True)
                with open(sink, "a", encoding="utf-8") as handle:
                    handle.write(json.dumps(span.to_dict(),
                                            sort_keys=True) + "\n")
            except OSError as exc:
                # Observability must never take the workload down: the
                # span stays in the in-memory ring, the sink line is
                # dropped, warned once, and counted.
                from repro.obs.log import get_logger
                from repro.obs.registry import default_registry
                if not self.degraded:
                    self.degraded = True
                    get_logger("obs").warning(
                        "span sink unwritable; span lines are being "
                        "dropped",
                        extra={"path": str(sink), "error": str(exc)})
                default_registry().labeled_counter(
                    "repro_obs_degraded_total",
                    "Telemetry writes dropped because a sink is "
                    "unwritable.", "sink").inc("spans")
            else:
                self.degraded = False

    def spans(self, trace_id: str | None = None,
              name: str | None = None) -> list[Span]:
        """Recorded spans, optionally filtered by trace ID and/or name."""
        with self._lock:
            out = list(self._spans)
        if trace_id is not None:
            out = [s for s in out if s.trace_id == trace_id]
        if name is not None:
            out = [s for s in out if s.name == name]
        return out

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()


_recorder = SpanRecorder()

_current: contextvars.ContextVar[TraceContext | None] = \
    contextvars.ContextVar("repro_obs_trace_context", default=None)


def recorder() -> SpanRecorder:
    """The process-global span recorder."""
    return _recorder


def current_context() -> TraceContext | None:
    """The active trace context of this thread/task, if any."""
    return _current.get()


@contextmanager
def use_context(ctx: TraceContext | None) -> Iterator[TraceContext | None]:
    """Re-enter a context carried across a thread or queue boundary."""
    token = _current.set(ctx)
    try:
        yield ctx
    finally:
        _current.reset(token)


@contextmanager
def span(name: str, **attrs: object) -> Iterator[TraceContext]:
    """Open a span: child of the current context, or a new trace root.

    The span is recorded when the block exits; an escaping exception
    marks it ``status="error"`` (and re-raises).
    """
    parent = _current.get()
    ctx = parent.child() if parent is not None else TraceContext.root()
    token = _current.set(ctx)
    started = time()
    status = "ok"
    try:
        yield ctx
    except BaseException:
        status = "error"
        raise
    finally:
        _current.reset(token)
        _recorder.record(Span(
            trace_id=ctx.trace_id, span_id=ctx.span_id,
            parent_id=ctx.parent_id, name=name,
            start=started, end=time(), status=status,
            attrs={k: v for k, v in attrs.items()}))


# -- exporters --------------------------------------------------------

def spans_jsonl(spans: Sequence[Span]) -> str:
    """Spans as JSON lines (one object per line, sorted keys)."""
    return "".join(json.dumps(s.to_dict(), sort_keys=True) + "\n"
                   for s in spans)


def read_spans_jsonl(path: str | Path) -> list[Span]:
    """Parse a span JSONL file, skipping corrupt lines."""
    out: list[Span] = []
    try:
        text = Path(path).read_text(encoding="utf-8")
    except OSError:
        return out
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            out.append(Span.from_dict(json.loads(line)))
        except (KeyError, TypeError, ValueError):
            continue
    return out


def spans_to_trace_events(spans: Sequence[Span], pid: int = 1) -> list[dict]:
    """Spans as Chrome ``trace_event`` complete events.

    Timestamps are microseconds relative to the earliest span start, so
    the document opens at t=0 in the Perfetto UI.  Each trace gets its
    own track (``tid``), keeping concurrent requests visually separate.
    """
    if not spans:
        return []
    t0 = min(s.start for s in spans)
    tids: dict[str, int] = {}
    events: list[dict] = [{
        "name": "process_name", "ph": "M", "pid": pid,
        "args": {"name": "repro.obs request pipeline"},
    }]
    for s in spans:
        tid = tids.setdefault(s.trace_id, len(tids))
        events.append({
            "name": s.name, "cat": "obs", "ph": "X",
            "pid": pid, "tid": tid,
            "ts": (s.start - t0) * 1e6, "dur": s.duration * 1e6,
            "args": {"trace_id": s.trace_id, "span_id": s.span_id,
                     "parent_id": s.parent_id, "status": s.status,
                     **{k: v for k, v in s.attrs.items()}},
        })
    for trace_id, tid in tids.items():
        events.append({
            "name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
            "args": {"name": f"trace {trace_id[:8]}"},
        })
    return events


def spans_to_perfetto(spans: Sequence[Span]) -> dict:
    """A standalone Perfetto document of host-side spans."""
    return {
        "traceEvents": spans_to_trace_events(spans),
        "displayTimeUnit": "ms",
        "otherData": {"tool": "repro.obs",
                      "time_unit": "1 viewer us = 1 host us"},
    }


def merged_perfetto(spans: Sequence[Span], sim_trace: object) -> dict:
    """One timeline: host-side spans plus a cycle-level sim trace.

    ``sim_trace`` is a :class:`repro.trace.data.Trace`; its events keep
    :mod:`repro.trace.export`'s encoding (pid 0, 1 viewer us = 1 cycle)
    and the request spans ride alongside on pid 1.  The two clocks are
    different units on purpose — the point is correlation (which spans
    bracket which simulation), not a shared axis.
    """
    from repro.trace.export import to_perfetto

    doc = to_perfetto(sim_trace)  # type: ignore[arg-type]
    doc["traceEvents"] = list(doc["traceEvents"]) \
        + spans_to_trace_events(spans)
    other = dict(doc.get("otherData", {}))
    other["obs_spans"] = len(spans)
    doc["otherData"] = other
    return doc
