"""Live serving metrics with Prometheus text-format exposition.

A deliberately small metrics core — counters, one-label counters, a
gauge, and a fixed-bucket histogram — rendered in the Prometheus text
exposition format (version 0.0.4) on ``GET /metrics``.  All updates
happen on the server's event-loop thread, so no locking is needed; the
render is a consistent snapshot of whatever the loop has applied.

:class:`ServeMetrics` is the concrete instrument panel: request and
response counters, the cache hit/miss/coalesced/shed/timeout/failure
split the load generator reconciles against, an in-flight gauge, and a
request-latency histogram.
"""

from __future__ import annotations

import math
from typing import Iterable

#: Default latency buckets (seconds): sub-millisecond cache hits
#: through multi-second cold simulations.
LATENCY_BUCKETS = (0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
                   0.25, 0.5, 1.0, 2.5, 5.0, 10.0)


def _format_value(value: float) -> str:
    """Prometheus sample value: integers bare, floats via ``repr``."""
    if value == math.inf:
        return "+Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _escape_label(value: str) -> str:
    return (value.replace("\\", r"\\").replace('"', r"\"")
            .replace("\n", r"\n"))


class Counter:
    """Monotonic counter."""

    __slots__ = ("name", "help", "_value")

    def __init__(self, name: str, help_text: str) -> None:
        self.name = name
        self.help = help_text
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def render(self) -> list[str]:
        return [f"# HELP {self.name} {self.help}",
                f"# TYPE {self.name} counter",
                f"{self.name} {_format_value(self._value)}"]


class LabeledCounter:
    """Counter family with a single label dimension."""

    __slots__ = ("name", "help", "label", "_values")

    def __init__(self, name: str, help_text: str, label: str) -> None:
        self.name = name
        self.help = help_text
        self.label = label
        self._values: dict[str, float] = {}

    def inc(self, label_value: str, amount: float = 1.0) -> None:
        self._values[label_value] = self._values.get(label_value, 0.0) \
            + amount

    def value(self, label_value: str) -> float:
        return self._values.get(label_value, 0.0)

    @property
    def total(self) -> float:
        return sum(self._values.values())

    def render(self) -> list[str]:
        lines = [f"# HELP {self.name} {self.help}",
                 f"# TYPE {self.name} counter"]
        for label_value in sorted(self._values):
            lines.append(
                f'{self.name}{{{self.label}="{_escape_label(label_value)}"}}'
                f" {_format_value(self._values[label_value])}")
        return lines


class Gauge:
    """Value that goes up and down (in-flight requests)."""

    __slots__ = ("name", "help", "_value")

    def __init__(self, name: str, help_text: str) -> None:
        self.name = name
        self.help = help_text
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self._value -= amount

    def set(self, value: float) -> None:
        self._value = value

    @property
    def value(self) -> float:
        return self._value

    def render(self) -> list[str]:
        return [f"# HELP {self.name} {self.help}",
                f"# TYPE {self.name} gauge",
                f"{self.name} {_format_value(self._value)}"]


class Histogram:
    """Fixed-bucket cumulative histogram (Prometheus semantics)."""

    __slots__ = ("name", "help", "buckets", "_counts", "_sum", "_count")

    def __init__(self, name: str, help_text: str,
                 buckets: Iterable[float] = LATENCY_BUCKETS) -> None:
        self.name = name
        self.help = help_text
        self.buckets = tuple(sorted(buckets))
        self._counts = [0] * len(self.buckets)
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        self._sum += value
        self._count += 1
        # Per-bucket tallies; render() turns them cumulative.
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self._counts[i] += 1
                break

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def render(self) -> list[str]:
        lines = [f"# HELP {self.name} {self.help}",
                 f"# TYPE {self.name} histogram"]
        cumulative = 0
        for bound, bucket_count in zip(self.buckets, self._counts):
            cumulative += bucket_count
            lines.append(f'{self.name}_bucket{{le="{_format_value(bound)}"}}'
                         f" {cumulative}")
        lines.append(f'{self.name}_bucket{{le="+Inf"}} {self._count}')
        lines.append(f"{self.name}_sum {_format_value(self._sum)}")
        lines.append(f"{self.name}_count {self._count}")
        return lines


class ServeMetrics:
    """The experiment server's instrument panel."""

    def __init__(self) -> None:
        self.requests = LabeledCounter(
            "repro_serve_requests_total",
            "HTTP requests received, by endpoint.", "endpoint")
        self.responses = LabeledCounter(
            "repro_serve_responses_total",
            "HTTP responses sent, by status code.", "code")
        self.hits = Counter(
            "repro_serve_cache_hits_total",
            "Requests answered read-only from the result cache.")
        self.misses = Counter(
            "repro_serve_cache_misses_total",
            "Requests that required a simulation submission.")
        self.coalesced = Counter(
            "repro_serve_coalesced_total",
            "Requests folded into an identical in-flight request.")
        self.shed = Counter(
            "repro_serve_shed_total",
            "Requests refused by admission control (429).")
        self.timeouts = Counter(
            "repro_serve_timeouts_total",
            "Requests whose simulation exceeded the request timeout.")
        self.failures = Counter(
            "repro_serve_failures_total",
            "Requests whose simulation failed.")
        self.in_flight = Gauge(
            "repro_serve_in_flight",
            "Requests currently being handled.")
        self.latency = Histogram(
            "repro_serve_request_seconds",
            "Wall-clock request latency in seconds.")

    def render(self) -> str:
        """The full ``/metrics`` exposition."""
        instruments = (self.requests, self.responses, self.hits,
                       self.misses, self.coalesced, self.shed,
                       self.timeouts, self.failures, self.in_flight,
                       self.latency)
        lines: list[str] = []
        for instrument in instruments:
            lines.extend(instrument.render())
        return "\n".join(lines) + "\n"
