"""The experiment server's instrument panel over the shared registry.

The instrument classes themselves (counters, labeled counters, gauges,
fixed-bucket histograms) and the Prometheus text renderer now live in
:mod:`repro.obs.registry` — this module re-exports them for backward
compatibility and keeps :class:`ServeMetrics`, the concrete panel the
server wires into its request path.

``GET /metrics`` is a renderer over two registries: the server's own
panel (each :class:`ServeMetrics` owns a private
:class:`~repro.obs.registry.MetricsRegistry`, so concurrent servers in
one process never collide) followed by the process-global default
registry, where the jobs layer, FDT training, and bench register their
instruments.  The panel's exposition is byte-identical to the
pre-``repro.obs`` endpoint; the default registry only appends.
"""

from __future__ import annotations

from repro.obs.registry import (  # noqa: F401  (compat re-exports)
    LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    LabeledCounter,
    MetricsRegistry,
    _escape_label,
    _format_value,
)


class ServeMetrics:
    """The experiment server's instrument panel."""

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.requests = self.registry.labeled_counter(
            "repro_serve_requests_total",
            "HTTP requests received, by endpoint.", "endpoint")
        self.responses = self.registry.labeled_counter(
            "repro_serve_responses_total",
            "HTTP responses sent, by status code.", "code")
        self.hits = self.registry.counter(
            "repro_serve_cache_hits_total",
            "Requests answered read-only from the result cache.")
        self.misses = self.registry.counter(
            "repro_serve_cache_misses_total",
            "Requests that required a simulation submission.")
        self.coalesced = self.registry.counter(
            "repro_serve_coalesced_total",
            "Requests folded into an identical in-flight request.")
        self.shed = self.registry.counter(
            "repro_serve_shed_total",
            "Requests refused by admission control (429).")
        self.timeouts = self.registry.counter(
            "repro_serve_timeouts_total",
            "Requests whose simulation exceeded the request timeout.")
        self.failures = self.registry.counter(
            "repro_serve_failures_total",
            "Requests whose simulation failed.")
        self.in_flight = self.registry.gauge(
            "repro_serve_in_flight",
            "Requests currently being handled.")
        self.latency = self.registry.histogram(
            "repro_serve_request_seconds",
            "Wall-clock request latency in seconds.")

    def render(self) -> str:
        """The panel's exposition (without the default registry)."""
        return self.registry.render_prometheus()
