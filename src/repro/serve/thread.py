"""Run an experiment server on a background thread (tests, examples).

The server is an asyncio application; scripts and the blocking client
live in synchronous code.  :class:`ServerThread` bridges the two: it
spins up an event loop on a daemon thread, starts an
:class:`~repro.serve.server.ExperimentServer` on an ephemeral port,
and exposes the bound port plus a thread-safe :meth:`stop` that drains
the server exactly like SIGTERM would.

Usage::

    with ServerThread(ServeConfig(port=0)) as handle:
        client = ServeClient(port=handle.port)
        print(client.healthz())
"""

from __future__ import annotations

import asyncio
import threading

from repro.errors import ServeError
from repro.serve.config import ServeConfig
from repro.serve.pipeline import RunnerFactory
from repro.serve.server import ExperimentServer


class ServerThread:
    """An :class:`ExperimentServer` running on its own loop thread."""

    def __init__(self, config: ServeConfig | None = None,
                 runner_factory: RunnerFactory | None = None,
                 startup_timeout: float = 10.0) -> None:
        self.config = config or ServeConfig(port=0)
        self._runner_factory = runner_factory
        self._startup_timeout = startup_timeout
        self._ready = threading.Event()
        self._loop: asyncio.AbstractEventLoop | None = None
        self.server: ExperimentServer | None = None
        self._error: BaseException | None = None
        self._thread = threading.Thread(target=self._main,
                                        name="repro-serve-thread",
                                        daemon=True)

    # -- lifecycle ----------------------------------------------------

    def start(self) -> "ServerThread":
        self._thread.start()
        if not self._ready.wait(self._startup_timeout):
            raise ServeError("server thread did not start in time")
        if self._error is not None:
            raise ServeError(f"server failed to start: {self._error}")
        return self

    def stop(self, timeout: float = 30.0) -> None:
        """Drain the server (thread-safe) and join the loop thread."""
        loop, server = self._loop, self.server
        if loop is not None and server is not None and loop.is_running():
            asyncio.run_coroutine_threadsafe(server.drain(), loop)
        self._thread.join(timeout)

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    @property
    def port(self) -> int:
        if self.server is None:
            raise ServeError("server is not running")
        return self.server.port

    # -- loop thread --------------------------------------------------

    def _main(self) -> None:
        try:
            asyncio.run(self._serve())
        except BaseException as exc:  # surfaced by start()
            self._error = exc
            self._ready.set()

    async def _serve(self) -> None:
        self.server = ExperimentServer(
            self.config, runner_factory=self._runner_factory)
        self._loop = asyncio.get_running_loop()
        await self.server.start()
        self._ready.set()
        await self.server.serve_forever()
