"""Async experiment serving: the FDT decision services as a long-lived
network front end.

The paper's SAT/BAT controllers answer configuration queries — "how
many threads should this workload run with on this machine?" — and
this package serves those answers (plus full simulations and sweeps)
over HTTP with the shapes any inference-serving stack needs: a
content-addressed cache fast path, single-flight request coalescing,
bounded-queue admission control with load shedding, batched dispatch
over the :mod:`repro.jobs` backend, graceful drain, and live
Prometheus metrics.

Typical use::

    from repro.serve import ServeConfig, ServerThread, ServeClient

    with ServerThread(ServeConfig(port=0)) as handle:
        client = ServeClient(port=handle.port)
        decision = client.fdt("PageMine", scale=0.5)
        best = decision["chosen_threads"][0]
        run = client.run("PageMine", scale=0.5,
                         policy="static", threads=best)

Or from the command line: ``repro serve`` / ``repro loadgen``.
"""

from repro.serve.client import AsyncServeClient, ServeClient
from repro.serve.config import ServeConfig
from repro.serve.loadgen import LoadgenReport, run_loadgen, run_loadgen_blocking
from repro.serve.metrics import ServeMetrics
from repro.serve.pipeline import RequestPipeline, Resolution
from repro.serve.server import ExperimentServer, run_server
from repro.serve.thread import ServerThread

__all__ = [
    "AsyncServeClient",
    "ExperimentServer",
    "LoadgenReport",
    "RequestPipeline",
    "Resolution",
    "ServeClient",
    "ServeConfig",
    "ServeMetrics",
    "ServerThread",
    "run_loadgen",
    "run_loadgen_blocking",
    "run_server",
]
