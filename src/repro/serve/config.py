"""Serving configuration: every knob of the experiment server.

One frozen dataclass carries the whole surface — network endpoint,
admission control, batching, the jobs backend passed through to
:class:`~repro.jobs.JobRunner`, and operational outputs — so a server
is fully described by one value (easy to log, easy to build in tests).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ServeError


@dataclass(frozen=True, slots=True)
class ServeConfig:
    """Knobs of one :class:`~repro.serve.server.ExperimentServer`."""

    #: Bind address.  ``port=0`` asks the OS for an ephemeral port; the
    #: bound port is reported by ``ExperimentServer.port`` after start.
    host: str = "127.0.0.1"
    port: int = 0
    #: Extra bind attempts when the port is racily taken (EADDRINUSE)
    #: before startup fails — CI runs many servers on one host.
    bind_retries: int = 3

    # -- admission control ---------------------------------------------
    #: Maximum cache-miss requests queued for simulation.  When the
    #: queue is full new misses are shed with a 429 and ``Retry-After``
    #: instead of queuing without bound.  Hits, coalesced followers,
    #: and read-only endpoints are never queued, so they are never shed.
    queue_depth: int = 64
    #: ``Retry-After`` seconds advertised on shed responses.
    retry_after: float = 1.0

    # -- batching / worker pool ----------------------------------------
    #: Concurrent simulation batches (asyncio workers, each running one
    #: :class:`~repro.jobs.JobRunner` call in a thread at a time).
    workers: int = 2
    #: Most misses folded into one ``JobRunner`` submission.
    max_batch: int = 8
    #: Seconds a worker waits after picking up the first miss for more
    #: to arrive before dispatching the batch.  0 dispatches whatever
    #: is already queued (lowest latency; batching still happens under
    #: load because the queue backs up while workers are busy).
    batch_window: float = 0.0
    #: Wall-clock bound on one simulation batch; requests in a batch
    #: that exceeds it are answered 504 (the underlying computation is
    #: not interruptible — it keeps running and still warms the cache).
    request_timeout: float | None = None

    # -- jobs backend (passed through to JobRunner) --------------------
    #: Worker *processes* per batch; 1 simulates in the worker thread.
    jobs: int = 1
    #: Extra pool rounds for crashed workers (``jobs > 1`` only).
    retries: int = 1
    #: Per-job timeout inside the process pool (``jobs > 1`` only).
    job_timeout: float | None = None
    #: Result-cache directory (``None``: the jobs default) — ignored
    #: when ``no_cache`` is set.
    cache_dir: str | None = None
    #: Disable the on-disk result cache entirely (every request
    #: simulates; single-flight coalescing still applies).
    no_cache: bool = False
    #: Statically verify workloads before dispatch (cached verdicts).
    preflight: bool = False

    # -- circuit breaker -----------------------------------------------
    #: Consecutive totally-failed batches that trip the pipeline's
    #: circuit breaker to fast-shed (:mod:`repro.serve.breaker`);
    #: 0 disables the breaker.
    breaker_threshold: int = 5
    #: Shed decisions while open before the breaker half-opens to
    #: probe the backend with one real batch.
    breaker_probe_after: int = 8

    # -- operational outputs -------------------------------------------
    #: When set, the accumulated run manifest is flushed here on drain.
    manifest_path: str | None = None

    def __post_init__(self) -> None:
        if self.queue_depth < 1:
            raise ServeError("queue_depth must be >= 1")
        if self.workers < 1:
            raise ServeError("workers must be >= 1")
        if self.max_batch < 1:
            raise ServeError("max_batch must be >= 1")
        if self.batch_window < 0:
            raise ServeError("batch_window must be >= 0")
        if self.retry_after < 0:
            raise ServeError("retry_after must be >= 0")
        if self.request_timeout is not None and self.request_timeout <= 0:
            raise ServeError("request_timeout must be positive")
        if self.bind_retries < 0:
            raise ServeError("bind_retries must be >= 0")
        if self.breaker_threshold < 0:
            raise ServeError("breaker_threshold must be >= 0")
        if self.breaker_probe_after < 1:
            raise ServeError("breaker_probe_after must be >= 1")
