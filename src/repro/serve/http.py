"""Minimal HTTP/1.1 over asyncio streams — just enough for serving.

The server speaks a deliberately small dialect (stdlib only, no new
dependencies): request line + headers + ``Content-Length`` bodies,
keep-alive by default, ``Connection: close`` honored, no chunked
encoding, no multipart.  Both sides of the conversation live here —
:func:`read_request`/:func:`response_bytes` for the server,
:func:`request_bytes`/:func:`read_response` for the async client and
the load generator — so the wire format is defined exactly once.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from urllib.parse import unquote, urlsplit

from repro.errors import ServeError

#: Reason phrases for every status the server emits.
STATUS_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

#: Upper bound on header block and body sizes (1 MiB is generous for
#: JSON experiment specs; anything larger is a client bug).
MAX_HEADER_BYTES = 64 * 1024
MAX_BODY_BYTES = 1024 * 1024


class HttpProtocolError(ServeError):
    """The peer sent bytes this dialect cannot parse."""


@dataclass(slots=True)
class HttpRequest:
    """One parsed request."""

    method: str
    target: str
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    @property
    def path(self) -> str:
        """The decoded path component of the target."""
        return unquote(urlsplit(self.target).path)

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "").lower() != "close"

    def json(self) -> dict:
        """The body parsed as a JSON object (400-level on failure)."""
        if not self.body:
            return {}
        try:
            payload = json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise HttpProtocolError(f"request body is not JSON: {exc}")
        if not isinstance(payload, dict):
            raise HttpProtocolError("request body must be a JSON object")
        return payload


@dataclass(slots=True)
class HttpResponse:
    """One parsed response (client side)."""

    status: int
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def json(self) -> dict:
        if not self.body:
            return {}
        payload = json.loads(self.body.decode("utf-8"))
        if not isinstance(payload, dict):
            raise HttpProtocolError("response body must be a JSON object")
        return payload


async def _read_head(reader: asyncio.StreamReader) -> list[str] | None:
    """Read request/status line + headers; ``None`` on clean EOF."""
    lines: list[str] = []
    total = 0
    while True:
        raw = await reader.readline()
        if not raw:
            if lines:
                raise HttpProtocolError("connection closed mid-header")
            return None
        total += len(raw)
        if total > MAX_HEADER_BYTES:
            raise HttpProtocolError("header block too large")
        line = raw.rstrip(b"\r\n")
        if not line:
            if not lines:
                continue  # tolerate leading blank lines (RFC 9112 2.2)
            return lines
        try:
            lines.append(line.decode("latin-1"))
        except UnicodeDecodeError:
            raise HttpProtocolError("undecodable header bytes")


def _parse_headers(lines: list[str]) -> dict[str, str]:
    headers: dict[str, str] = {}
    for line in lines:
        name, sep, value = line.partition(":")
        if not sep or not name.strip():
            raise HttpProtocolError(f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()
    return headers


async def _read_body(reader: asyncio.StreamReader,
                     headers: dict[str, str]) -> bytes:
    length_text = headers.get("content-length", "0")
    try:
        length = int(length_text)
    except ValueError:
        raise HttpProtocolError(f"bad Content-Length {length_text!r}")
    if length < 0 or length > MAX_BODY_BYTES:
        raise HttpProtocolError(f"unacceptable Content-Length {length}")
    if length == 0:
        return b""
    try:
        return await reader.readexactly(length)
    except asyncio.IncompleteReadError:
        raise HttpProtocolError("connection closed mid-body")


async def read_request(reader: asyncio.StreamReader) -> HttpRequest | None:
    """Parse one request; ``None`` when the peer closed cleanly."""
    head = await _read_head(reader)
    if head is None:
        return None
    parts = head[0].split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise HttpProtocolError(f"malformed request line {head[0]!r}")
    headers = _parse_headers(head[1:])
    body = await _read_body(reader, headers)
    return HttpRequest(method=parts[0].upper(), target=parts[1],
                       headers=headers, body=body)


async def read_response(reader: asyncio.StreamReader) -> HttpResponse:
    """Parse one response (client side)."""
    head = await _read_head(reader)
    if head is None:
        raise HttpProtocolError("connection closed before response")
    parts = head[0].split(None, 2)
    if len(parts) < 2 or not parts[0].startswith("HTTP/1."):
        raise HttpProtocolError(f"malformed status line {head[0]!r}")
    try:
        status = int(parts[1])
    except ValueError:
        raise HttpProtocolError(f"malformed status code {parts[1]!r}")
    headers = _parse_headers(head[1:])
    body = await _read_body(reader, headers)
    return HttpResponse(status=status, headers=headers, body=body)


def response_bytes(status: int, body: bytes,
                   content_type: str = "application/json",
                   extra_headers: dict[str, str] | None = None,
                   keep_alive: bool = True) -> bytes:
    """Serialize one response."""
    reason = STATUS_REASONS.get(status, "Unknown")
    lines = [f"HTTP/1.1 {status} {reason}",
             f"Content-Type: {content_type}",
             f"Content-Length: {len(body)}",
             f"Connection: {'keep-alive' if keep_alive else 'close'}"]
    for name, value in (extra_headers or {}).items():
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body


def request_bytes(method: str, target: str, host: str,
                  body: bytes = b"",
                  content_type: str = "application/json",
                  keep_alive: bool = True) -> bytes:
    """Serialize one request (client side)."""
    lines = [f"{method} {target} HTTP/1.1",
             f"Host: {host}",
             f"Content-Length: {len(body)}",
             f"Connection: {'keep-alive' if keep_alive else 'close'}"]
    if body:
        lines.append(f"Content-Type: {content_type}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body


def json_body(payload: dict) -> bytes:
    """Canonical JSON response body (compact, sorted, UTF-8)."""
    return json.dumps(payload, sort_keys=True).encode("utf-8")
