"""Clients for the experiment server: blocking and asyncio flavors.

:class:`ServeClient` is the ergonomic blocking client (stdlib
``http.client``, keep-alive connection reuse) for scripts and examples.
:class:`AsyncServeClient` speaks the same wire dialect over asyncio
streams (one connection per request, so thousands of concurrent
open-loop requests never serialize on a shared socket) and is what the
load generator drives.

Both raise :class:`~repro.errors.ServeClientError` on non-2xx
responses, carrying the HTTP status and decoded body so callers can
react to shed (429) and timeout (504) distinctly.
"""

from __future__ import annotations

import asyncio
import http.client
import json
from typing import Any

from repro.errors import ServeClientError
from repro.serve.http import read_response, request_bytes


def _decode_body(body: bytes) -> dict:
    if not body:
        return {}
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, ValueError):
        return {"raw": body.decode("utf-8", "replace")}
    return payload if isinstance(payload, dict) else {"raw": payload}


def _check(status: int, payload: dict) -> dict:
    if 200 <= status < 300:
        return payload
    raise ServeClientError(
        f"server answered {status}: {payload.get('error', payload)}",
        status=status, body=payload)


class ServeClient:
    """Blocking client over one keep-alive connection."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8080,
                 timeout: float = 60.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self._conn: http.client.HTTPConnection | None = None

    # -- plumbing -----------------------------------------------------

    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout)
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def request(self, method: str, path: str,
                payload: dict | None = None) -> tuple[int, dict]:
        """One request; returns ``(status, decoded body)``, never raises
        on HTTP errors (only on transport failures)."""
        body = b"" if payload is None else json.dumps(payload).encode()
        headers = {"Content-Type": "application/json"} if payload else {}
        conn = self._connection()
        try:
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            raw = response.read()
        except (OSError, http.client.HTTPException) as exc:
            self.close()
            raise ServeClientError(
                f"request to {self.host}:{self.port} failed: {exc}")
        return response.status, _decode_body(raw)

    # -- endpoints ----------------------------------------------------

    def run(self, workload: str | None = None, **fields: Any) -> dict:
        """``POST /v1/run``; see :mod:`repro.serve.schema` for fields."""
        return _check(*self.request(
            "POST", "/v1/run", _body(workload, fields)))

    def sweep(self, workload: str | None = None, **fields: Any) -> dict:
        return _check(*self.request(
            "POST", "/v1/sweep", _body(workload, fields)))

    def fdt(self, workload: str | None = None, **fields: Any) -> dict:
        return _check(*self.request(
            "POST", "/v1/fdt", _body(workload, fields)))

    def result(self, key: str) -> dict:
        return _check(*self.request("GET", f"/v1/result/{key}"))

    def healthz(self) -> dict:
        return _check(*self.request("GET", "/healthz"))

    def metrics_text(self) -> str:
        conn = self._connection()
        try:
            conn.request("GET", "/metrics")
            response = conn.getresponse()
            raw = response.read()
        except (OSError, http.client.HTTPException) as exc:
            self.close()
            raise ServeClientError(f"metrics request failed: {exc}")
        if response.status != 200:
            raise ServeClientError(f"metrics answered {response.status}",
                                   status=response.status)
        return raw.decode("utf-8")


def _body(workload: str | None, fields: dict) -> dict:
    payload = dict(fields)
    if workload is not None:
        payload["workload"] = workload
    return payload


class AsyncServeClient:
    """Asyncio client: one short-lived connection per request."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8080,
                 timeout: float = 60.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    async def request(self, method: str, path: str,
                      payload: dict | None = None) -> tuple[int, dict]:
        body = b"" if payload is None else json.dumps(payload).encode()
        try:
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(self.host, self.port),
                timeout=self.timeout)
        except (OSError, asyncio.TimeoutError) as exc:
            raise ServeClientError(
                f"cannot connect to {self.host}:{self.port}: {exc}")
        try:
            writer.write(request_bytes(
                method, path, host=f"{self.host}:{self.port}", body=body,
                keep_alive=False))
            await writer.drain()
            response = await asyncio.wait_for(read_response(reader),
                                              timeout=self.timeout)
        except (OSError, asyncio.TimeoutError,
                asyncio.IncompleteReadError) as exc:
            raise ServeClientError(f"request {method} {path} failed: {exc}")
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
        return response.status, _decode_body(response.body)

    async def run(self, workload: str | None = None,
                  **fields: Any) -> dict:
        return _check(*await self.request(
            "POST", "/v1/run", _body(workload, fields)))

    async def fdt(self, workload: str | None = None,
                  **fields: Any) -> dict:
        return _check(*await self.request(
            "POST", "/v1/fdt", _body(workload, fields)))

    async def healthz(self) -> dict:
        return _check(*await self.request("GET", "/healthz"))
