"""Request canonicalization: JSON bodies → :class:`~repro.jobs.JobSpec`.

Every serving endpoint funnels through here, so two requests that mean
the same experiment always canonicalize to the same spec — and thus the
same sha256 content key — no matter how the client spelled them.  That
key is what the cache fast path, single-flight coalescing, and
``GET /v1/result/<key>`` all agree on.

Request shape (shared by ``/v1/run``, ``/v1/fdt``, and — minus
``policy`` — ``/v1/sweep``)::

    {
      "workload": "PageMine",          # Table 2 registry name, or ...
      "synthetic": {"cs_fraction": 0.2, "bus_lines": 4,
                    "iterations": 128, "compute_instr": 20000},
      "scale": 1.0,
      "policy": "fdt",                 # static | fdt | sat | bat
      "threads": 8,                    # static only
      "machine": {"cores": 32, "bandwidth": 1.0, "smt": 2}
    }

Validation failures raise :class:`~repro.errors.ServeRequestError`,
which the server maps to HTTP 400.
"""

from __future__ import annotations

from repro.errors import JobError, ServeRequestError, WorkloadError
from repro.jobs import JobSpec, PolicySpec, WorkloadRef
from repro.sim.config import MachineConfig

_FDT_POLICIES = ("fdt", "sat", "bat")
_ALL_POLICIES = ("static",) + _FDT_POLICIES
_MACHINE_KEYS = ("cores", "bandwidth", "smt")
_SYNTHETIC_KEYS = ("cs_fraction", "bus_lines", "iterations",
                   "compute_instr", "name")


def _require_number(data: dict, key: str, default: float,
                    minimum: float | None = None) -> float:
    value = data.get(key, default)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ServeRequestError(f"{key!r} must be a number")
    if minimum is not None and value < minimum:
        raise ServeRequestError(f"{key!r} must be >= {minimum}")
    return float(value)


def machine_from_request(data: dict) -> MachineConfig:
    """Build the machine: the Table 1 baseline plus request overrides."""
    overrides = data.get("machine", {})
    if not isinstance(overrides, dict):
        raise ServeRequestError("'machine' must be an object")
    unknown = set(overrides) - set(_MACHINE_KEYS)
    if unknown:
        raise ServeRequestError(
            f"unknown machine knob(s): {', '.join(sorted(unknown))}")
    config = MachineConfig.asplos08_baseline()
    try:
        if overrides.get("cores") is not None:
            config = config.with_cores(int(overrides["cores"]))
        if overrides.get("bandwidth") is not None:
            config = config.with_bandwidth(float(overrides["bandwidth"]))
        if overrides.get("smt") is not None:
            config = config.with_smt(int(overrides["smt"]))
    except (TypeError, ValueError) as exc:
        raise ServeRequestError(f"bad machine override: {exc}")
    return config


def workload_from_request(data: dict) -> WorkloadRef:
    """Resolve the workload reference (registry name or synthetic)."""
    name = data.get("workload")
    synthetic = data.get("synthetic")
    if (name is None) == (synthetic is None):
        raise ServeRequestError(
            "give exactly one of 'workload' (registry name) or "
            "'synthetic' (kernel knobs)")
    scale = _require_number(data, "scale", 1.0, minimum=0.0)
    if name is not None:
        if not isinstance(name, str):
            raise ServeRequestError("'workload' must be a string")
        # Resolve through the registry now so typos fail fast with a
        # 400 instead of poisoning the pipeline with an unbuildable
        # spec, and canonicalize capitalization ("pagemine" and
        # "PageMine" must map to the same content key).
        from repro.workloads import all_specs, get
        try:
            return WorkloadRef(name=get(name).name, scale=scale)
        except WorkloadError as exc:
            for spec in all_specs():
                if spec.name.lower() == name.lower():
                    return WorkloadRef(name=spec.name, scale=scale)
            raise ServeRequestError(str(exc))
        except JobError as exc:
            raise ServeRequestError(str(exc))
    if not isinstance(synthetic, dict):
        raise ServeRequestError("'synthetic' must be an object")
    unknown = set(synthetic) - set(_SYNTHETIC_KEYS)
    if unknown:
        raise ServeRequestError(
            f"unknown synthetic knob(s): {', '.join(sorted(unknown))}")
    try:
        return WorkloadRef.synthetic(
            cs_fraction=_require_number(synthetic, "cs_fraction", 0.0, 0.0),
            bus_lines=int(_require_number(synthetic, "bus_lines", 0, 0)),
            iterations=int(_require_number(synthetic, "iterations", 128, 1)),
            compute_instr=int(
                _require_number(synthetic, "compute_instr", 20_000, 1)),
            name=str(synthetic.get("name", "synthetic")))
    except JobError as exc:
        raise ServeRequestError(str(exc))


def policy_from_request(data: dict, *, default: str = "static",
                        allowed: tuple[str, ...] = _ALL_POLICIES
                        ) -> PolicySpec:
    """Resolve the policy reference."""
    kind = data.get("policy", default)
    if kind not in allowed:
        raise ServeRequestError(
            f"policy must be one of {', '.join(allowed)}; got {kind!r}")
    threads = data.get("threads")
    if threads is not None and kind != "static":
        raise ServeRequestError("'threads' is only valid for policy "
                                "'static'")
    if threads is not None:
        if isinstance(threads, bool) or not isinstance(threads, int):
            raise ServeRequestError("'threads' must be an integer")
        if threads < 1:
            raise ServeRequestError("'threads' must be >= 1")
    try:
        return PolicySpec(kind=kind, threads=threads)
    except JobError as exc:
        raise ServeRequestError(str(exc))


def parse_run_request(data: dict) -> JobSpec:
    """``POST /v1/run``: one complete simulation."""
    return JobSpec(workload=workload_from_request(data),
                   policy=policy_from_request(data),
                   config=machine_from_request(data))


def parse_fdt_request(data: dict) -> JobSpec:
    """``POST /v1/fdt``: a feedback-driven policy decision."""
    return JobSpec(workload=workload_from_request(data),
                   policy=policy_from_request(data, default="fdt",
                                              allowed=_FDT_POLICIES),
                   config=machine_from_request(data))


def parse_sweep_request(data: dict) -> tuple[WorkloadRef, list[int],
                                             MachineConfig]:
    """``POST /v1/sweep``: static runs across thread counts.

    Returns the counts deduplicated, ascending, and clamped to the
    machine's core count (the sweep's documented semantics).
    """
    workload = workload_from_request(data)
    config = machine_from_request(data)
    raw = data.get("threads", [1, 2, 4, 8, 16, 32])
    if not isinstance(raw, list) or not raw:
        raise ServeRequestError("'threads' must be a non-empty list")
    counts: list[int] = []
    for item in raw:
        if isinstance(item, bool) or not isinstance(item, int) or item < 1:
            raise ServeRequestError(
                f"thread counts must be positive integers; got {item!r}")
        counts.append(item)
    clamped = [t for t in sorted(set(counts)) if t <= config.num_cores]
    if not clamped:
        raise ServeRequestError(
            f"no requested thread count fits the "
            f"{config.num_cores}-core machine")
    return workload, clamped, config
