"""The serving request pipeline: cache → coalesce → admit → batch → run.

Every ``/v1`` simulation request resolves through one funnel:

1. **Cache fast path** — the spec's content key is looked up with the
   read-only :meth:`~repro.jobs.ResultCache.get_or_none`, so a repeated
   request is answered without touching the worker pool, the write
   lock, or manifest state.
2. **Single-flight coalescing** — identical in-flight requests (same
   sha256 key) share one computation: the first becomes the *leader*,
   the rest await the leader's future and are answered ``coalesced``.
3. **Admission control** — leaders enter a bounded queue; when it is
   full — or the circuit breaker (:mod:`repro.serve.breaker`) is open
   because the jobs backend keeps failing whole batches — the request
   is shed immediately (HTTP 429 + ``Retry-After``) instead of queuing
   without bound behind doomed work.
4. **Batched execution** — worker tasks drain the queue, fold up to
   ``max_batch`` misses into one :meth:`~repro.jobs.JobRunner.resolve`
   call, and run it on a thread pool with a per-batch timeout.  The
   jobs backend (memoization, on-disk cache writes, process pool,
   retries, preflight gating) is reused as-is.

All pipeline state (`_inflight`, the queue, metrics) is touched only on
the event-loop thread; only the ``JobRunner`` call itself runs on an
executor thread.  A timed-out batch is abandoned, not interrupted — the
simulation keeps running in its thread and still warms the cache, so a
retried request usually hits.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, replace
from time import perf_counter
from typing import Callable

from repro.faults import hooks as fault_hooks
from repro.jobs import (
    JobResolution,
    JobRunner,
    JobSpec,
    ResultCache,
    RunManifest,
)
from repro.obs import get_logger
from repro.obs.registry import default_registry
from repro.obs.tracing import TraceContext, current_context, span, use_context
from repro.serve.breaker import CircuitBreaker
from repro.serve.config import ServeConfig
from repro.serve.metrics import ServeMetrics

#: Resolution statuses added by the pipeline on top of the jobs ones.
STATUS_HIT = "hit"
STATUS_COMPUTED = "computed"
STATUS_COALESCED = "coalesced"
STATUS_SHED = "shed"
STATUS_TIMEOUT = "timeout"
STATUS_FAILED = "failed"
STATUS_PREFLIGHT = "preflight-failed"

RunnerFactory = Callable[[], JobRunner]

#: EMA weight of the newest drain-rate observation (see
#: :meth:`RequestPipeline.retry_after_seconds`).
_DRAIN_EMA_ALPHA = 0.25
#: Bounds on the derived ``Retry-After`` advice (seconds).
RETRY_AFTER_MIN = 1.0
RETRY_AFTER_MAX = 30.0

_log = get_logger("serve")


@dataclass(frozen=True, slots=True)
class Resolution:
    """What the pipeline decided for one request."""

    key: str
    #: ``hit`` | ``computed`` | ``coalesced`` | ``shed`` | ``timeout``
    #: | ``failed`` | ``preflight-failed``.
    status: str
    result: dict | None
    error: str = ""
    #: Advertised back-off for shed requests (``Retry-After`` seconds).
    retry_after: float = 0.0

    @property
    def ok(self) -> bool:
        return self.result is not None


@dataclass(slots=True)
class _Entry:
    """One admitted leader waiting for a worker."""

    key: str
    spec: JobSpec
    future: "asyncio.Future[Resolution]"
    #: Trace context captured at admission.  Executors do not copy
    #: contextvars, so the worker re-enters it by hand
    #: (:func:`repro.obs.tracing.use_context`) before running the batch.
    ctx: TraceContext | None = None


class RequestPipeline:
    """The funnel described in the module docstring.

    Args:
        config: serving knobs (queue depth, batching, timeouts).
        metrics: instrument panel to update.
        cache: read path for the cache fast path; ``None`` disables it
            (every request goes through the workers).
        runner_factory: builds the :class:`~repro.jobs.JobRunner` a
            worker uses for one batch.  Injectable so tests can count
            or stub simulator invocations; the default builds runners
            that share ``cache`` and this pipeline's manifest.
    """

    def __init__(self, config: ServeConfig, metrics: ServeMetrics,
                 cache: ResultCache | None,
                 runner_factory: RunnerFactory | None = None) -> None:
        self.config = config
        self.metrics = metrics
        self.cache = cache
        self.manifest = RunManifest()
        self._runner_factory = runner_factory or self._default_runner
        self._inflight: dict[str, asyncio.Future[Resolution]] = {}
        self._queue: asyncio.Queue[_Entry] = asyncio.Queue(
            maxsize=config.queue_depth)
        self._workers: list[asyncio.Task] = []
        self._executor: ThreadPoolExecutor | None = None
        #: EMA of observed batch drain rate (requests/second); 0 until
        #: the first batch completes.
        self._drain_rate = 0.0
        self.breaker = CircuitBreaker(
            threshold=config.breaker_threshold,
            probe_after=config.breaker_probe_after)

    def _default_runner(self) -> JobRunner:
        return JobRunner(cache=self.cache, jobs=self.config.jobs,
                         timeout=self.config.job_timeout,
                         retries=self.config.retries,
                         manifest=self.manifest,
                         preflight=self.config.preflight)

    # -- lifecycle ----------------------------------------------------

    async def start(self) -> None:
        """Spawn the worker tasks and the executor behind them."""
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.workers,
            thread_name_prefix="repro-serve")
        self._workers = [
            asyncio.create_task(self._worker(), name=f"serve-worker-{i}")
            for i in range(self.config.workers)]

    async def drain(self) -> None:
        """Finish every admitted request, then stop the workers."""
        while self._inflight:
            await asyncio.gather(*list(self._inflight.values()),
                                 return_exceptions=True)
        for task in self._workers:
            task.cancel()
        await asyncio.gather(*self._workers, return_exceptions=True)
        self._workers = []
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    # -- the funnel ---------------------------------------------------

    async def resolve(self, spec: JobSpec) -> Resolution:
        """Resolve one request through the cache/coalesce/admit funnel."""
        key = spec.key()

        # 1. Read-only cache fast path: no lock, no queue, no manifest.
        if self.cache is not None:
            with span("serve.cache_probe", key=key):
                cached = self.cache.get_or_none(key)
            if cached is not None:
                self.metrics.hits.inc()
                # A hit while the breaker is open is a drain signal: an
                # abandoned (timed-out) batch kept running and warmed
                # the cache, so the backend still finishes work.
                self.breaker.note_drain()
                return Resolution(key=key, status=STATUS_HIT, result=cached)

        # 2. Single-flight: identical in-flight work is joined, never
        #    duplicated.  (No awaits between the lookup and the queue
        #    put below, so leader registration is race-free on the
        #    event loop.)
        leader = self._inflight.get(key)
        if leader is not None:
            self.metrics.coalesced.inc()
            with span("serve.coalesce", key=key):
                resolution = await asyncio.shield(leader)
            if resolution.status in (STATUS_COMPUTED, STATUS_HIT):
                return replace(resolution, status=STATUS_COALESCED)
            return resolution

        # 3. Admission control: a full queue — or an open circuit
        #    breaker — sheds instead of queuing doomed work.
        if not self.breaker.allow():
            self.metrics.shed.inc()
            retry_after = self.retry_after_seconds()
            _log.warning("request shed: circuit open",
                         extra={"key": key, "retry_after": retry_after})
            return Resolution(
                key=key, status=STATUS_SHED, result=None,
                error="circuit open", retry_after=retry_after)
        future: asyncio.Future[Resolution] = (
            asyncio.get_running_loop().create_future())
        entry = _Entry(key=key, spec=spec, future=future,
                       ctx=current_context())
        try:
            self._queue.put_nowait(entry)
        except asyncio.QueueFull:
            self.metrics.shed.inc()
            retry_after = self.retry_after_seconds()
            _log.warning("request shed: queue full",
                         extra={"key": key, "retry_after": retry_after})
            resolution = Resolution(
                key=key, status=STATUS_SHED, result=None,
                error="queue full", retry_after=retry_after)
            future.set_result(resolution)  # nobody else can be waiting
            return resolution

        # 4. Admitted: this request leads the computation for its key.
        self.metrics.misses.inc()
        self._inflight[key] = future
        return await asyncio.shield(future)

    # -- workers ------------------------------------------------------

    async def _worker(self) -> None:
        while True:
            entry = await self._queue.get()
            batch = [entry]
            if self.config.batch_window > 0:
                await asyncio.sleep(self.config.batch_window)
            while len(batch) < self.config.max_batch:
                try:
                    batch.append(self._queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            try:
                await self._run_batch(batch)
            finally:
                for _ in batch:
                    self._queue.task_done()

    async def _run_batch(self, batch: list[_Entry]) -> None:
        """One JobRunner submission for up to ``max_batch`` misses."""
        runner = self._runner_factory()
        specs = [entry.spec for entry in batch]
        loop = asyncio.get_running_loop()
        # A batch serves up to max_batch independent requests but is one
        # unit of work; its span joins the first admitted request's
        # trace (re-entered by hand — executors don't copy contextvars).
        ctx = next((e.ctx for e in batch if e.ctx is not None), None)

        def call() -> list[JobResolution]:
            with use_context(ctx):
                with span("serve.batch", batch_size=len(batch),
                          keys=[e.key for e in batch]):
                    return runner.resolve(specs)

        started = perf_counter()
        try:
            # Clock-free timeout forcing: an armed fault plan can declare
            # this batch expired without waiting out the real budget.
            if fault_hooks.forced_timeout("serve.batch_timeout",
                                          key=batch[0].key):
                raise asyncio.TimeoutError
            resolutions = await asyncio.wait_for(
                loop.run_in_executor(self._executor, call),
                timeout=self.config.request_timeout)
        except asyncio.TimeoutError:
            _log.warning("batch timed out",
                         extra={"batch_size": len(batch),
                                "timeout": self.config.request_timeout})
            self.breaker.record_failure()
            self._finish(batch, [
                Resolution(key=entry.key, status=STATUS_TIMEOUT, result=None,
                           error=f"no result within "
                                 f"{self.config.request_timeout}s")
                for entry in batch])
            return
        except Exception as exc:  # runner bug: fail the batch, not the server
            _log.error("batch failed",
                       extra={"batch_size": len(batch), "error": str(exc)})
            self.breaker.record_failure()
            self._finish(batch, [
                Resolution(key=entry.key, status=STATUS_FAILED, result=None,
                           error=f"{type(exc).__name__}: {exc}")
                for entry in batch])
            return
        elapsed = perf_counter() - started
        # A batch counts as a breaker failure only when it served
        # nobody; one good resolution proves the backend still works.
        if any(r.result is not None for r in resolutions):
            self.breaker.record_success()
        else:
            self.breaker.record_failure()
        self._observe_drain(len(batch), elapsed)
        default_registry().histogram(
            "repro_serve_batch_seconds",
            "Wall-clock latency of one JobRunner batch submission."
        ).observe(elapsed, exemplar=batch[0].key)
        self._finish(batch, [self._from_job(r) for r in resolutions])

    # -- adaptive Retry-After -----------------------------------------

    def _observe_drain(self, completed: int, elapsed: float) -> None:
        """Fold one completed batch into the drain-rate EMA."""
        if completed <= 0 or elapsed <= 0:
            return
        rate = completed / elapsed
        if self._drain_rate <= 0:
            self._drain_rate = rate
        else:
            self._drain_rate = (_DRAIN_EMA_ALPHA * rate
                                + (1 - _DRAIN_EMA_ALPHA) * self._drain_rate)

    def retry_after_seconds(self) -> float:
        """Back-off advice for shed requests, from observed drain rate.

        Estimates how long the current backlog (plus the shed request
        itself) takes to drain at the EMA rate, clamped to
        ``[RETRY_AFTER_MIN, RETRY_AFTER_MAX]``.  Before any batch has
        completed there is no observation to derive from, so the
        configured static ``retry_after`` is advertised unchanged.
        """
        if self._drain_rate <= 0:
            return self.config.retry_after
        backlog = self._queue.qsize() + 1
        estimate = backlog / self._drain_rate
        return min(RETRY_AFTER_MAX, max(RETRY_AFTER_MIN, estimate))

    def _from_job(self, resolution: JobResolution) -> Resolution:
        """Map a jobs-layer resolution into a pipeline resolution."""
        status = {"hit": STATUS_HIT}.get(resolution.status,
                                        resolution.status)
        return Resolution(key=resolution.key, status=status,
                          result=resolution.result, error=resolution.error)

    def _finish(self, batch: list[_Entry],
                resolutions: list[Resolution]) -> None:
        for entry, resolution in zip(batch, resolutions):
            if resolution.status == STATUS_TIMEOUT:
                self.metrics.timeouts.inc()
            elif resolution.result is None:
                self.metrics.failures.inc()
            self._inflight.pop(entry.key, None)
            if not entry.future.done():
                entry.future.set_result(resolution)
