"""Circuit breaker for the serving pipeline: fail fast, probe, recover.

When the jobs backend is genuinely broken (cache device gone, workers
dying on arrival), every admitted request burns a worker slot and a
full batch timeout before failing — the queue stays saturated with
doomed work and healthy cache hits queue behind it.  The breaker cuts
that loop:

* **closed** (normal): batches flow; ``threshold`` *consecutive*
  totally-failed batches trip the breaker (one mixed batch — any
  served request — resets the streak);
* **open**: new leaders are shed immediately (HTTP 429, the same
  fast-shed path as admission control) without touching the queue.
  Recovery is probed on a drain-rate signal rather than a wall clock:
  after ``probe_after`` shed decisions — i.e. once enough demand has
  arrived to make a probe informative — the breaker half-opens.  Any
  batch completing meanwhile (a straggler from before the trip) also
  re-arms the probe, since it proves the backend can still drain;
* **half-open**: exactly one leader is admitted as a probe; its batch
  succeeding closes the breaker, failing re-opens it.

Deliberately clock-free: transitions depend only on the sequence of
batch outcomes and shed decisions, so a chaos run with a fixed fault
plan walks the state machine identically every time.

State changes publish to the shared registry
(``repro_serve_breaker_state`` gauge, coded closed=0 / half-open=1 /
open=2, and ``repro_serve_breaker_transitions_total``).
"""

from __future__ import annotations

import threading

from repro.obs import get_logger
from repro.obs.registry import default_registry

STATE_CLOSED = "closed"
STATE_OPEN = "open"
STATE_HALF_OPEN = "half-open"

_STATE_CODE = {STATE_CLOSED: 0, STATE_HALF_OPEN: 1, STATE_OPEN: 2}

_log = get_logger("serve")


class CircuitBreaker:
    """The deterministic state machine described in the module docstring.

    ``threshold=0`` disables the breaker entirely: :meth:`allow` always
    admits and outcomes are ignored.
    """

    def __init__(self, threshold: int = 5, probe_after: int = 8) -> None:
        self.threshold = max(0, threshold)
        self.probe_after = max(1, probe_after)
        self._state = STATE_CLOSED
        self._consecutive_failures = 0
        self._sheds_while_open = 0
        self._probe_outstanding = False
        self._lock = threading.Lock()

    @property
    def enabled(self) -> bool:
        return self.threshold > 0

    @property
    def state(self) -> str:
        return self._state

    def allow(self) -> bool:
        """May a new leader enter the queue right now?

        While open, every denial counts toward the probe budget; the
        ``probe_after``-th denial half-opens the breaker so the *next*
        arrival probes.  While half-open, exactly one caller is
        admitted (the probe); the rest are denied until it resolves.
        """
        if not self.enabled:
            return True
        with self._lock:
            if self._state == STATE_CLOSED:
                return True
            if self._state == STATE_OPEN:
                self._sheds_while_open += 1
                if self._sheds_while_open >= self.probe_after:
                    self._transition(STATE_HALF_OPEN)
                return False
            # Half-open: admit one probe, deny everyone else.
            if self._probe_outstanding:
                return False
            self._probe_outstanding = True
            return True

    def record_success(self) -> None:
        """A batch served at least one request."""
        if not self.enabled:
            return
        with self._lock:
            self._consecutive_failures = 0
            self._probe_outstanding = False
            if self._state != STATE_CLOSED:
                self._transition(STATE_CLOSED)

    def record_failure(self) -> None:
        """A batch failed outright (every request unserved)."""
        if not self.enabled:
            return
        with self._lock:
            self._probe_outstanding = False
            if self._state == STATE_HALF_OPEN:
                self._transition(STATE_OPEN)
                return
            self._consecutive_failures += 1
            if self._state == STATE_CLOSED \
                    and self._consecutive_failures >= self.threshold:
                self._transition(STATE_OPEN)

    def note_drain(self) -> None:
        """A drain observation arrived (some batch completed somewhere).

        While open this is evidence the backend still finishes work, so
        the next arrival probes immediately instead of waiting out the
        shed budget.
        """
        if not self.enabled:
            return
        with self._lock:
            if self._state == STATE_OPEN:
                self._transition(STATE_HALF_OPEN)

    def to_dict(self) -> dict:
        with self._lock:
            return {
                "state": self._state,
                "threshold": self.threshold,
                "probe_after": self.probe_after,
                "consecutive_failures": self._consecutive_failures,
            }

    def _transition(self, state: str) -> None:
        """Move to ``state`` and publish (callers hold the lock)."""
        previous, self._state = self._state, state
        if state == STATE_OPEN:
            self._sheds_while_open = 0
        registry = default_registry()
        registry.gauge(
            "repro_serve_breaker_state",
            "Circuit breaker state (0 closed, 1 half-open, 2 open)."
        ).set(_STATE_CODE[state])
        registry.labeled_counter(
            "repro_serve_breaker_transitions_total",
            "Circuit breaker transitions by edge.", "edge"
        ).inc(f"{previous}->{state}")
        _log.warning("circuit breaker transition",
                     extra={"breaker_from": previous, "breaker_to": state,
                            "failures": self._consecutive_failures})
