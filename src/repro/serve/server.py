"""The asyncio experiment server: HTTP front end over the pipeline.

Endpoints:

========================  ==================================================
``POST /v1/run``          one complete simulation (cache-served when warm)
``POST /v1/sweep``        static thread sweep; points resolved concurrently
``POST /v1/fdt``          FDT/SAT/BAT decision + the Eq. 3/5/7 estimates
``GET  /v1/result/<key>`` content-addressed cache lookup (read-only)
``GET  /healthz``         liveness and drain state
``GET  /metrics``         Prometheus text exposition
========================  ==================================================

Status mapping: ``200`` served (hit/computed/coalesced), ``400``
malformed request, ``404`` unknown route or missing key, ``422``
preflight-rejected workload, ``429`` shed by admission control (with
``Retry-After``), ``500`` simulation failure, ``503`` draining, ``504``
simulation timeout (body carries the spec key so the client can poll
``/v1/result/<key>`` once the abandoned computation lands).

On SIGTERM (or SIGINT) the server drains gracefully: the listening
socket closes (new connections are refused), requests already admitted
run to completion, keep-alive connections asking for more work get
``503``, and the accumulated run manifest is flushed to
``ServeConfig.manifest_path``.
"""

from __future__ import annotations

import asyncio
import errno
import signal
from time import perf_counter

from repro.errors import ServeError, ServeRequestError
from repro.faults import hooks as fault_hooks
from repro.jobs import JobSpec, PolicySpec, ResultCache, app_result_from_dict
from repro.obs import get_logger
from repro.obs.registry import default_registry
from repro.obs.tracing import span
from repro.serve import schema
from repro.serve.config import ServeConfig
from repro.serve.http import (
    HttpProtocolError,
    HttpRequest,
    json_body,
    read_request,
    response_bytes,
)
from repro.serve.metrics import ServeMetrics
from repro.serve.pipeline import (
    STATUS_COALESCED,
    STATUS_COMPUTED,
    STATUS_HIT,
    STATUS_PREFLIGHT,
    STATUS_SHED,
    STATUS_TIMEOUT,
    RequestPipeline,
    Resolution,
    RunnerFactory,
)

_SERVED = (STATUS_HIT, STATUS_COMPUTED, STATUS_COALESCED)

_log = get_logger("serve")


class _Reply(Exception):
    """Internal short-circuit carrying a ready HTTP reply."""

    def __init__(self, status: int, payload: dict,
                 headers: dict[str, str] | None = None) -> None:
        super().__init__(payload.get("error", ""))
        self.status = status
        self.payload = payload
        self.headers = headers or {}


class ExperimentServer:
    """One serving instance: sockets, pipeline, metrics, drain logic."""

    def __init__(self, config: ServeConfig | None = None,
                 runner_factory: RunnerFactory | None = None) -> None:
        self.config = config or ServeConfig()
        self.metrics = ServeMetrics()
        self.cache = (None if self.config.no_cache
                      else ResultCache(self.config.cache_dir))
        self.pipeline = RequestPipeline(self.config, self.metrics,
                                        self.cache,
                                        runner_factory=runner_factory)
        self._server: asyncio.AbstractServer | None = None
        self._draining = False
        self._stopped = asyncio.Event()
        #: Open connections -> busy flag (True while a request is being
        #: answered).  Drain closes idle ones; busy ones finish their
        #: response, notice the drain, and close themselves.
        self._connections: dict[asyncio.StreamWriter, bool] = {}
        self._conn_tasks: set[asyncio.Task] = set()
        self.port = self.config.port

    @property
    def manifest(self):
        return self.pipeline.manifest

    @property
    def draining(self) -> bool:
        return self._draining

    # -- lifecycle ----------------------------------------------------

    async def start(self) -> None:
        """Bind the socket and spawn the pipeline workers.

        A requested (non-ephemeral) port can be racily taken between
        the caller's check and our bind — TIME_WAIT stragglers, test
        suites cycling servers on one host.  EADDRINUSE is retried up
        to ``config.bind_retries`` times with a short growing pause
        before startup fails; any other bind error fails immediately.
        """
        await self.pipeline.start()
        for attempt in range(self.config.bind_retries + 1):
            try:
                self._server = await asyncio.start_server(
                    self._handle_connection, host=self.config.host,
                    port=self.config.port)
                break
            except OSError as exc:
                if (exc.errno != errno.EADDRINUSE
                        or attempt >= self.config.bind_retries):
                    raise
                _log.warning("bind failed: address in use; retrying",
                             extra={"port": self.config.port,
                                    "attempt": attempt + 1})
                await asyncio.sleep(0.05 * (attempt + 1))
        sockets = self._server.sockets if self._server else ()
        for sock in sockets or ():
            self.port = sock.getsockname()[1]
            break
        else:
            raise ServeError("server bound no listening socket")

    def install_signal_handlers(self) -> None:
        """Drain on SIGTERM/SIGINT (call from the loop's thread)."""
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(
                signum, lambda: asyncio.ensure_future(self.drain()))

    async def serve_forever(self) -> None:
        """Block until a drain completes."""
        await self._stopped.wait()

    async def drain(self) -> None:
        """Stop accepting, finish in-flight work, flush the manifest."""
        if self._draining:
            return
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        await self.pipeline.drain()
        # Idle keep-alive connections are parked in read_request with no
        # response owed; close them so their handlers see EOF.  Busy
        # handlers finish writing, re-check the drain flag, and exit.
        for writer, busy in list(self._connections.items()):
            if not busy:
                writer.close()
        while self._conn_tasks:
            await asyncio.gather(*list(self._conn_tasks),
                                 return_exceptions=True)
        if self.config.manifest_path:
            self.manifest.write(self.config.manifest_path)
        self._stopped.set()

    # -- connection handling ------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        self._connections[writer] = False
        try:
            # Fault site serve.connection: drop the socket on arrival,
            # mid-handshake from the client's point of view.
            if fault_hooks.drop_connection("serve.connection"):
                return
            while True:
                # Fault site serve.read: stall before reading, as a
                # slow-loris client trickling its request would.
                delay = fault_hooks.delay_seconds("serve.read")
                if delay > 0:
                    await asyncio.sleep(delay)
                try:
                    request = await read_request(reader)
                except HttpProtocolError as exc:
                    writer.write(response_bytes(
                        400, json_body({"error": str(exc)}),
                        keep_alive=False))
                    await writer.drain()
                    break
                if request is None:
                    break
                self._connections[writer] = True
                keep_alive = request.keep_alive and not self._draining
                status, payload, headers, raw = await self._respond(request)
                body = raw if raw is not None else json_body(payload)
                content_type = ("text/plain; version=0.0.4"
                                if raw is not None else "application/json")
                writer.write(response_bytes(
                    status, body, content_type=content_type,
                    extra_headers=headers, keep_alive=keep_alive))
                await writer.drain()
                self._connections[writer] = False
                if not keep_alive or self._draining:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # peer went away; nothing to answer
        finally:
            self._connections.pop(writer, None)
            if task is not None:
                self._conn_tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _respond(self, request: HttpRequest
                       ) -> tuple[int, dict, dict[str, str], bytes | None]:
        """Route, execute, and meter one request."""
        endpoint = self._endpoint_label(request.path)
        self.metrics.requests.inc(endpoint)
        self.metrics.in_flight.inc()
        started = perf_counter()
        raw: bytes | None = None
        headers: dict[str, str] = {}
        with span("serve.request", endpoint=endpoint,
                  method=request.method) as ctx:
            try:
                status, payload, headers, raw = \
                    await self._dispatch(request)
            except _Reply as reply:
                status, payload, headers = (reply.status, reply.payload,
                                            reply.headers)
            except ServeRequestError as exc:
                status, payload = 400, {"error": str(exc)}
            except Exception as exc:  # never let a handler kill the server
                status, payload = 500, {
                    "error": f"{type(exc).__name__}: {exc}"}
            finally:
                self.metrics.in_flight.dec()
                elapsed = perf_counter() - started
                self.metrics.latency.observe(elapsed)
            _log.info("request",
                      extra={"endpoint": endpoint, "status": status,
                             "duration_ms": round(elapsed * 1e3, 3),
                             "key": payload.get("key", "")})
        headers = dict(headers, **{"X-Repro-Trace-Id": ctx.trace_id})
        self.metrics.responses.inc(str(status))
        return status, payload, headers, raw

    @staticmethod
    def _endpoint_label(path: str) -> str:
        if path.startswith("/v1/result/"):
            return "/v1/result"
        return path

    async def _dispatch(self, request: HttpRequest
                        ) -> tuple[int, dict, dict[str, str], bytes | None]:
        path, method = request.path, request.method
        if path == "/healthz" and method == "GET":
            return 200, self._health_payload(), {}, None
        if path == "/metrics" and method == "GET":
            # The server's own panel first (byte-identical to the
            # pre-obs exposition), then whatever the jobs / FDT / bench
            # layers registered into the process-global registry.
            text = self.metrics.render() + \
                default_registry().render_prometheus()
            return 200, {}, {}, text.encode("utf-8")
        if path.startswith("/v1/result/") and method == "GET":
            return self._handle_result(path)
        if path in ("/v1/run", "/v1/sweep", "/v1/fdt"):
            if method != "POST":
                return 405, {"error": f"{path} takes POST"}, {}, None
            if self._draining:
                return 503, {"error": "server is draining"}, {}, None
            try:
                body = request.json()
            except HttpProtocolError as exc:
                return 400, {"error": str(exc)}, {}, None
            handler = {"/v1/run": self._handle_run,
                       "/v1/sweep": self._handle_sweep,
                       "/v1/fdt": self._handle_fdt}[path]
            return await handler(body)
        return 404, {"error": f"no route {method} {path}"}, {}, None

    def _health_payload(self) -> dict:
        return {
            "status": "draining" if self._draining else "ok",
            "in_flight": self.metrics.in_flight.value,
            "queue_depth": self.config.queue_depth,
            "breaker": self.pipeline.breaker.to_dict(),
        }

    # -- endpoint handlers --------------------------------------------

    def _handle_result(self, path: str
                       ) -> tuple[int, dict, dict[str, str], bytes | None]:
        key = path[len("/v1/result/"):]
        if self.cache is None:
            return 404, {"error": "server runs without a result cache"}, \
                {}, None
        cached = self.cache.get_or_none(key)
        if cached is None:
            return 404, {"error": "no cached result", "key": key}, {}, None
        self.metrics.hits.inc()
        return 200, {"key": key, "status": STATUS_HIT, "result": cached}, \
            {}, None

    async def _handle_run(self, body: dict
                          ) -> tuple[int, dict, dict[str, str], bytes | None]:
        with span("serve.schema", endpoint="/v1/run"):
            spec = schema.parse_run_request(body)
        resolution = await self.pipeline.resolve(spec)
        payload = self._run_payload(spec, resolution)
        return 200, payload, {}, None

    async def _handle_fdt(self, body: dict
                          ) -> tuple[int, dict, dict[str, str], bytes | None]:
        with span("serve.schema", endpoint="/v1/fdt"):
            spec = schema.parse_fdt_request(body)
        resolution = await self.pipeline.resolve(spec)
        self._raise_unserved(spec, resolution)
        assert resolution.result is not None
        kernels = []
        for info in resolution.result["kernel_infos"]:
            kernels.append({
                "kernel": info["kernel_name"],
                "threads": info["threads"],
                "trained_iterations": info["trained_iterations"],
                "training_cycles": info["training_cycles"],
                "execution_cycles": info["execution_cycles"],
                "estimates": info["estimates"],
            })
        payload = {
            "key": resolution.key,
            "status": resolution.status,
            "workload": spec.workload.label,
            "policy": spec.policy.label,
            "chosen_threads": [k["threads"] for k in kernels],
            "kernels": kernels,
        }
        return 200, payload, {}, None

    async def _handle_sweep(self, body: dict
                            ) -> tuple[int, dict, dict[str, str],
                                       bytes | None]:
        with span("serve.schema", endpoint="/v1/sweep"):
            workload, counts, config = schema.parse_sweep_request(body)
        specs = [JobSpec(workload=workload, policy=PolicySpec.static(t),
                         config=config)
                 for t in counts]
        resolutions = await asyncio.gather(
            *[self.pipeline.resolve(spec) for spec in specs])
        points = []
        for threads, spec, resolution in zip(counts, specs, resolutions):
            self._raise_unserved(spec, resolution)
            point = self._point_payload(resolution)
            point.update(threads=threads, key=resolution.key,
                         status=resolution.status)
            points.append(point)
        best = min(points, key=lambda p: (p["cycles"], p["threads"]))
        payload = {
            "workload": workload.label,
            "points": points,
            "best_threads": best["threads"],
        }
        return 200, payload, {}, None

    # -- payload shaping ----------------------------------------------

    def _raise_unserved(self, spec: JobSpec,
                        resolution: Resolution) -> None:
        """Map a non-served resolution to its HTTP reply."""
        if resolution.status in _SERVED:
            return
        base = {"key": resolution.key, "status": resolution.status,
                "error": resolution.error}
        if resolution.status == STATUS_SHED:
            # The pipeline derives the back-off from the queue's
            # observed drain rate; before any observation it falls back
            # to the configured static value.
            retry_after = resolution.retry_after or self.config.retry_after
            raise _Reply(
                429, dict(base, error="shed by admission control: "
                          + resolution.error),
                {"Retry-After": f"{retry_after:g}"})
        if resolution.status == STATUS_TIMEOUT:
            # The spec key is in the body: the computation was
            # abandoned, not cancelled, so the client can poll
            # /v1/result/<key> for the late-arriving result.
            raise _Reply(504, dict(base, workload=spec.workload.label))
        if resolution.status == STATUS_PREFLIGHT:
            raise _Reply(422, base)
        raise _Reply(500, base)

    @staticmethod
    def _point_payload(resolution: Resolution) -> dict:
        """Headline metrics of a served resolution's result dict."""
        assert resolution.result is not None
        app = app_result_from_dict(resolution.result)
        run = app.result
        return {
            "cycles": app.cycles,
            "power": run.power,
            "bus_utilization": run.bus_utilization,
            "ipc": run.ipc,
            "energy": run.energy,
        }

    def _run_payload(self, spec: JobSpec, resolution: Resolution) -> dict:
        self._raise_unserved(spec, resolution)
        assert resolution.result is not None
        payload = self._point_payload(resolution)
        app = app_result_from_dict(resolution.result)
        payload.update(
            key=resolution.key,
            status=resolution.status,
            workload=spec.workload.label,
            policy=spec.policy.label,
            threads=list(app.threads_used),
            result=resolution.result,
        )
        return payload


async def run_server(config: ServeConfig,
                     runner_factory: RunnerFactory | None = None,
                     ready: "asyncio.Event | None" = None,
                     announce=print) -> ExperimentServer:
    """Start a server, announce its address, and serve until drained."""
    server = ExperimentServer(config, runner_factory=runner_factory)
    await server.start()
    try:
        server.install_signal_handlers()
    except (NotImplementedError, RuntimeError, ValueError):
        pass  # non-main thread or platform without signal support
    if announce is not None:
        announce(f"repro serve: listening on "
                 f"http://{config.host}:{server.port}", flush=True)
    if ready is not None:
        ready.set()
    await server.serve_forever()
    return server
