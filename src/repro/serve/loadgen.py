"""Open-loop load generation against a running experiment server.

Open-loop means request *start* times are fixed by the target RPS —
request ``i`` fires at ``i / rps`` seconds regardless of whether
earlier requests have completed — so a slow server accumulates
concurrency instead of silently throttling the offered load (the
coordinated-omission trap of closed-loop generators).

Each request runs on its own task and connection via
:class:`~repro.serve.client.AsyncServeClient`.  The report carries
latency percentiles, the hit/computed/coalesced/shed/timeout split as
observed from response bodies and status codes, and the error count —
everything the ``/metrics`` endpoint must reconcile with.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from time import perf_counter

from repro.errors import ServeError
from repro.serve.client import AsyncServeClient


@dataclass(slots=True)
class LoadgenReport:
    """Everything one load-generation run observed."""

    target_rps: float
    duration: float
    sent: int = 0
    completed: int = 0
    #: Transport-level failures (connect/read errors), not HTTP errors.
    errors: int = 0
    #: Responses by HTTP status code.
    status_codes: dict[str, int] = field(default_factory=dict)
    #: Served responses by pipeline status (hit/computed/coalesced...).
    outcomes: dict[str, int] = field(default_factory=dict)
    #: Sorted request latencies in seconds (successes and HTTP errors;
    #: transport failures carry no meaningful latency).
    latencies: list[float] = field(default_factory=list)
    elapsed: float = 0.0

    def percentile(self, fraction: float) -> float:
        """Nearest-rank percentile of observed latency, in seconds."""
        if not self.latencies:
            return 0.0
        rank = min(len(self.latencies) - 1,
                   max(0, round(fraction * (len(self.latencies) - 1))))
        return self.latencies[rank]

    @property
    def hit_rate(self) -> float:
        """Cache hits (including coalesced joins) per completed request."""
        if not self.completed:
            return 0.0
        served_warm = (self.outcomes.get("hit", 0)
                       + self.outcomes.get("coalesced", 0))
        return served_warm / self.completed

    @property
    def shed_rate(self) -> float:
        if not self.completed:
            return 0.0
        return self.status_codes.get("429", 0) / self.completed

    @property
    def error_5xx(self) -> int:
        return sum(count for code, count in self.status_codes.items()
                   if code.startswith("5"))

    @property
    def achieved_rps(self) -> float:
        if self.elapsed <= 0:
            return 0.0
        return self.completed / self.elapsed

    @property
    def hits(self) -> int:
        """Warm-served responses (cache hits plus coalesced joins)."""
        return (self.outcomes.get("hit", 0)
                + self.outcomes.get("coalesced", 0))

    @property
    def shed(self) -> int:
        return self.status_codes.get("429", 0)

    def to_dict(self) -> dict:
        return {
            "target_rps": self.target_rps,
            "duration": self.duration,
            "elapsed": round(self.elapsed, 6),
            "sent": self.sent,
            "completed": self.completed,
            "errors": self.errors,
            "achieved_rps": round(self.achieved_rps, 3),
            "latency_ms": {
                "p50": round(self.percentile(0.50) * 1e3, 3),
                "p95": round(self.percentile(0.95) * 1e3, 3),
                "p99": round(self.percentile(0.99) * 1e3, 3),
            },
            "hits": self.hits,
            "shed": self.shed,
            "error_5xx": self.error_5xx,
            "hit_rate": round(self.hit_rate, 4),
            "shed_rate": round(self.shed_rate, 4),
            "status_codes": dict(sorted(self.status_codes.items())),
            "outcomes": dict(sorted(self.outcomes.items())),
        }

    def format(self) -> str:
        d = self.to_dict()
        lat = d["latency_ms"]
        lines = [
            f"loadgen: {self.completed}/{self.sent} completed "
            f"({self.errors} transport error(s)) in {self.elapsed:.2f}s "
            f"-> {d['achieved_rps']:.1f} rps (target {self.target_rps:g})",
            f"latency ms: p50 {lat['p50']:.3f}  p95 {lat['p95']:.3f}  "
            f"p99 {lat['p99']:.3f}",
            f"hit rate {self.hit_rate:.1%}, shed rate {self.shed_rate:.1%}",
            "outcomes: " + (", ".join(
                f"{name}={count}"
                for name, count in sorted(self.outcomes.items()))
                or "none"),
            "status codes: " + (", ".join(
                f"{code}={count}"
                for code, count in sorted(self.status_codes.items()))
                or "none"),
        ]
        return "\n".join(lines)


async def run_loadgen(host: str, port: int, payload: dict,
                      rps: float = 20.0, duration: float = 2.0,
                      endpoint: str = "/v1/run",
                      timeout: float = 60.0) -> LoadgenReport:
    """Drive ``endpoint`` open-loop at ``rps`` for ``duration`` seconds."""
    if rps <= 0:
        raise ServeError("rps must be positive")
    if duration <= 0:
        raise ServeError("duration must be positive")
    total = max(1, int(rps * duration))
    client = AsyncServeClient(host, port, timeout=timeout)
    report = LoadgenReport(target_rps=rps, duration=duration, sent=total)
    started = perf_counter()

    async def one(index: int) -> None:
        delay = index / rps - (perf_counter() - started)
        if delay > 0:
            await asyncio.sleep(delay)
        fired = perf_counter()
        try:
            status, body = await client.request("POST", endpoint, payload)
        except ServeError:
            report.errors += 1
            return
        report.completed += 1
        report.latencies.append(perf_counter() - fired)
        code = str(status)
        report.status_codes[code] = report.status_codes.get(code, 0) + 1
        outcome = body.get("status")
        if isinstance(outcome, str):
            report.outcomes[outcome] = report.outcomes.get(outcome, 0) + 1

    await asyncio.gather(*[one(i) for i in range(total)])
    report.elapsed = perf_counter() - started
    report.latencies.sort()
    return report


def run_loadgen_blocking(host: str, port: int, payload: dict,
                         rps: float = 20.0, duration: float = 2.0,
                         endpoint: str = "/v1/run",
                         timeout: float = 60.0) -> LoadgenReport:
    """Synchronous wrapper around :func:`run_loadgen`."""
    return asyncio.run(run_loadgen(host, port, payload, rps=rps,
                                   duration=duration, endpoint=endpoint,
                                   timeout=timeout))


def format_report_json(report: LoadgenReport) -> str:
    return json.dumps(report.to_dict(), indent=2)
