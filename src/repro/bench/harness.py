"""Run the benchmark suite: warmup, repeated trials, median/MAD, JSON.

The unit of measurement is one *trial*: a complete, fresh simulation of
a scenario, timed with ``time.perf_counter``.  Warmup trials absorb
one-time costs (imports, allocator warmup, branch-predictor-unfriendly
first passes) and are discarded.  The reported statistics are the
median and the median absolute deviation (MAD) of the kept trials —
robust against the occasional slow outlier on shared CI runners.

Reports are schema-versioned (:data:`SCHEMA`) and host-fingerprinted so
a reader can tell whether two ``BENCH_sim.json`` files are comparable.
"""

from __future__ import annotations

import json
import os
import statistics
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.bench.scenarios import Scenario, select
from repro.obs.registry import default_registry

#: Bump on any incompatible change to the report layout.
SCHEMA = "repro-bench/1"


def host_fingerprint() -> dict[str, Any]:
    """Identify the measuring host well enough to judge comparability.

    Delegates to :func:`repro.obs.runreg.host_fingerprint` — the
    canonical implementation the run registry stamps provenance rows
    with — so a bench report and a registry row from the same host
    carry the same keys and values.
    """
    from repro.obs.runreg import host_fingerprint as obs_fingerprint

    return obs_fingerprint()


@dataclass(slots=True)
class ScenarioResult:
    """Measured statistics for one scenario."""

    name: str
    description: str
    trials: int
    warmup: int
    sim_cycles: int
    sim_ops: int
    host_seconds: list[float] = field(default_factory=list)

    @property
    def median_host_seconds(self) -> float:
        return statistics.median(self.host_seconds)

    @property
    def mad_host_seconds(self) -> float:
        med = self.median_host_seconds
        return statistics.median(abs(s - med) for s in self.host_seconds)

    @property
    def sim_cycles_per_host_second(self) -> float:
        return self.sim_cycles / self.median_host_seconds

    @property
    def ops_per_host_second(self) -> float:
        return self.sim_ops / self.median_host_seconds

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "description": self.description,
            "trials": self.trials,
            "warmup": self.warmup,
            "sim_cycles": self.sim_cycles,
            "sim_ops": self.sim_ops,
            "host_seconds": [round(s, 6) for s in self.host_seconds],
            "median_host_seconds": round(self.median_host_seconds, 6),
            "mad_host_seconds": round(self.mad_host_seconds, 6),
            "sim_cycles_per_host_second":
                round(self.sim_cycles_per_host_second, 1),
            "ops_per_host_second": round(self.ops_per_host_second, 1),
        }


@dataclass(slots=True)
class BenchResult:
    """One full suite run, serializable as ``BENCH_sim.json``."""

    quick: bool
    scenarios: list[ScenarioResult]

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema": SCHEMA,
            "host": host_fingerprint(),
            "quick": self.quick,
            "slow_paths": os.environ.get("REPRO_SLOW_PATHS", "") not in ("", "0"),
            "scenarios": [s.to_dict() for s in self.scenarios],
        }


def _run_one(scenario: Scenario, quick: bool, trials: int,
             warmup: int) -> ScenarioResult:
    sim_cycles = sim_ops = 0
    seconds: list[float] = []
    for i in range(warmup + trials):
        body = scenario.prepare(quick)  # setup is not timed
        t0 = time.perf_counter()
        stats = body()
        elapsed = time.perf_counter() - t0
        if i == 0:
            sim_cycles, sim_ops = stats.sim_cycles, stats.sim_ops
        elif (stats.sim_cycles, stats.sim_ops) != (sim_cycles, sim_ops):
            # The simulator is deterministic; a trial that simulated a
            # different cycle count is a bug, not measurement noise.
            raise AssertionError(
                f"bench scenario {scenario.name!r} is nondeterministic: "
                f"trial {i} simulated {stats.sim_cycles} cycles / "
                f"{stats.sim_ops} ops, trial 0 simulated "
                f"{sim_cycles} / {sim_ops}")
        if i >= warmup:
            seconds.append(elapsed)
            # Kept trials feed the shared registry with the scenario
            # name as the exemplar, so an outlier bucket names its
            # culprit.
            default_registry().histogram(
                "repro_bench_trial_seconds",
                "Wall-clock duration of kept bench trials."
            ).observe(elapsed, exemplar=scenario.name)
    return ScenarioResult(name=scenario.name,
                          description=scenario.description,
                          trials=trials, warmup=warmup,
                          sim_cycles=sim_cycles, sim_ops=sim_ops,
                          host_seconds=seconds)


def run_suite(names: list[str] | None = None, quick: bool = False,
              trials: int = 5, warmup: int = 1,
              progress: Any = None) -> BenchResult:
    """Measure the (selected) suite and return a :class:`BenchResult`.

    Args:
        names: scenario subset (None runs everything).
        quick: shrink inputs for CI.
        trials: kept timed trials per scenario.
        warmup: discarded leading trials per scenario.
        progress: optional ``print``-like callable for per-scenario lines.
    """
    if trials < 1:
        raise ValueError("trials must be >= 1")
    if warmup < 0:
        raise ValueError("warmup must be >= 0")
    results = []
    for scenario in select(names):
        result = _run_one(scenario, quick, trials, warmup)
        if progress is not None:
            progress(f"{result.name}: "
                     f"{result.median_host_seconds:.3f}s median "
                     f"(+/- {result.mad_host_seconds:.3f} MAD), "
                     f"{result.sim_cycles_per_host_second:,.0f} sim-cycles/s, "
                     f"{result.ops_per_host_second:,.0f} ops/s")
        results.append(result)
    return BenchResult(quick=quick, scenarios=results)


def write_json(result: BenchResult, path: str | Path) -> Path:
    """Write ``result`` as a ``BENCH_sim.json`` document; return the path."""
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(result.to_dict(), indent=2) + "\n")
    return out
