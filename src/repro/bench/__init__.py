"""Simulator micro-benchmark harness (host throughput, not paper results).

``repro bench`` runs a fixed suite of representative scenarios —
compute-bound, miss-bound, critical-section-heavy, and a full FDT
train+run — and reports how fast the *simulator itself* executes them:
simulated cycles per host second and dynamic ops per host second, with
warmup, repeated trials, and median/MAD statistics.  Results are written
as schema-versioned, host-fingerprinted ``BENCH_sim.json`` documents so
the performance trajectory is comparable across PRs, and
:mod:`repro.bench.compare` gates CI on regressions against the committed
baseline in ``benchmarks/results/bench_baseline.json``.
"""

from repro.bench.compare import CompareReport, ScenarioDelta, compare_reports
from repro.bench.harness import (
    SCHEMA,
    BenchResult,
    host_fingerprint,
    run_suite,
    write_json,
)
from repro.bench.scenarios import SCENARIOS, Scenario, ScenarioStats

__all__ = [
    "SCHEMA",
    "SCENARIOS",
    "BenchResult",
    "CompareReport",
    "Scenario",
    "ScenarioDelta",
    "ScenarioStats",
    "compare_reports",
    "host_fingerprint",
    "run_suite",
    "write_json",
]
