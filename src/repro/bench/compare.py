"""Compare two ``BENCH_sim.json`` reports and gate on regressions.

Used three ways:

* ``repro bench --compare BASELINE`` after a suite run (the CLI);
* ``python -m repro.bench.compare BASELINE CURRENT`` standalone (CI);
* :func:`compare_reports` programmatically (tests).

The gated metric is ``sim_cycles_per_host_second`` (median-based, so
one slow outlier trial cannot fail the gate).  A scenario *regresses*
when its current rate drops more than ``threshold`` below the baseline
rate; scenarios present in the baseline but missing from the current
report also fail the gate.  The default threshold is deliberately
generous (30%) because shared CI runners are noisy.
"""

from __future__ import annotations

import json
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Sequence

from repro.errors import ReproError

DEFAULT_THRESHOLD = 0.30


@dataclass(frozen=True, slots=True)
class ScenarioDelta:
    """One scenario's baseline-vs-current comparison."""

    name: str
    baseline_rate: float
    current_rate: float
    threshold: float

    @property
    def ratio(self) -> float:
        """current / baseline sim-cycles-per-host-second (1.0 = parity)."""
        if self.baseline_rate <= 0:
            return float("inf")
        return self.current_rate / self.baseline_rate

    @property
    def regressed(self) -> bool:
        return self.ratio < 1.0 - self.threshold


@dataclass(frozen=True, slots=True)
class CompareReport:
    """Outcome of comparing a current report against a baseline."""

    threshold: float
    deltas: tuple[ScenarioDelta, ...]
    missing: tuple[str, ...]
    extra: tuple[str, ...]
    host_matches: bool

    @property
    def regressions(self) -> tuple[ScenarioDelta, ...]:
        return tuple(d for d in self.deltas if d.regressed)

    @property
    def ok(self) -> bool:
        return not self.regressions and not self.missing

    def format(self) -> str:
        lines = [f"bench compare (threshold: -{self.threshold:.0%} "
                 f"sim-cycles/host-second)"]
        if not self.host_matches:
            lines.append("note: host fingerprints differ; absolute rates "
                         "are only loosely comparable")
        for d in self.deltas:
            verdict = "REGRESSED" if d.regressed else "ok"
            lines.append(f"  {d.name}: {d.baseline_rate:,.0f} -> "
                         f"{d.current_rate:,.0f} sim-cycles/s "
                         f"({d.ratio:.2f}x)  {verdict}")
        for name in self.missing:
            lines.append(f"  {name}: MISSING from current report")
        for name in self.extra:
            lines.append(f"  {name}: new scenario (no baseline; not gated)")
        lines.append("result: " + ("PASS" if self.ok else "FAIL"))
        return "\n".join(lines)


def load_report(path: str | Path) -> dict[str, Any]:
    """Load and schema-check one ``BENCH_sim.json`` document."""
    try:
        doc = json.loads(Path(path).read_text())
    except OSError as exc:
        raise ReproError(f"cannot read bench report {path}: {exc}")
    except json.JSONDecodeError as exc:
        raise ReproError(f"bench report {path} is not valid JSON: {exc}")
    schema = doc.get("schema") if isinstance(doc, dict) else None
    from repro.bench.harness import SCHEMA
    if schema != SCHEMA:
        raise ReproError(f"bench report {path} has schema {schema!r}; "
                         f"this tool reads {SCHEMA!r}")
    return doc


def _rates(doc: dict[str, Any]) -> dict[str, float]:
    out: dict[str, float] = {}
    for entry in doc.get("scenarios", []):
        out[entry["name"]] = float(entry["sim_cycles_per_host_second"])
    return out


def compare_reports(baseline: dict[str, Any], current: dict[str, Any],
                    threshold: float = DEFAULT_THRESHOLD) -> CompareReport:
    """Compare two loaded reports; see the module docstring for rules."""
    if not 0.0 < threshold < 1.0:
        raise ReproError(f"threshold must be in (0, 1), got {threshold}")
    base_rates = _rates(baseline)
    cur_rates = _rates(current)
    deltas = tuple(
        ScenarioDelta(name=name, baseline_rate=rate,
                      current_rate=cur_rates[name], threshold=threshold)
        for name, rate in base_rates.items() if name in cur_rates)
    return CompareReport(
        threshold=threshold,
        deltas=deltas,
        missing=tuple(n for n in base_rates if n not in cur_rates),
        extra=tuple(n for n in cur_rates if n not in base_rates),
        host_matches=baseline.get("host") == current.get("host"),
    )


def compare_files(baseline_path: str | Path, current_path: str | Path,
                  threshold: float = DEFAULT_THRESHOLD) -> CompareReport:
    """File-path convenience wrapper around :func:`compare_reports`."""
    return compare_reports(load_report(baseline_path),
                           load_report(current_path), threshold)


def main(argv: Sequence[str] | None = None) -> int:
    import argparse
    parser = argparse.ArgumentParser(
        prog="repro.bench.compare",
        description="Gate a BENCH_sim.json against a committed baseline")
    parser.add_argument("baseline", help="baseline BENCH_sim.json")
    parser.add_argument("current", help="current BENCH_sim.json")
    parser.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD,
                        help="allowed fractional drop before failing "
                             "(default 0.30)")
    args = parser.parse_args(argv)
    try:
        report = compare_files(args.baseline, args.current, args.threshold)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(report.format())
    return 0 if report.ok else 1


if __name__ == "__main__":  # pragma: no cover - module runner
    sys.exit(main())
