"""The fixed benchmark suite: four representative simulator workloads.

Each scenario stresses one hot path of the simulator:

* ``compute-bound`` — the event-loop core: long homogeneous Compute
  runs on a small machine, almost no memory traffic.
* ``miss-bound`` — the memory walk: every load misses all the way to
  DRAM through the ring, L3 directory, bus, and bank model.
* ``cs-heavy`` — the runtime managers: short critical sections under
  heavy lock contention, plus the L1-hit path inside the sections.
* ``fdt-train-run`` — end to end: a full PageMine run under the
  combined FDT policy, training included.

Scenarios are deterministic: the same scenario at the same size always
simulates the same number of cycles, which the harness asserts — a
trial that simulates a different cycle count is a correctness bug, not
noise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.errors import ReproError
from repro.isa.ops import Compute, Load, Lock, Store, Unlock
from repro.sim.config import MachineConfig
from repro.sim.machine import Machine


@dataclass(frozen=True, slots=True)
class ScenarioStats:
    """What one scenario execution simulated (host time is measured outside)."""

    sim_cycles: int
    sim_ops: int


#: The timed body of one trial: executes one full simulation and
#: reports its size.
ScenarioBody = Callable[[], ScenarioStats]

#: ``prepare(quick)`` does all per-trial setup (machine construction,
#: input generation) *outside* the timed region and returns the timed
#: body.  ``quick=True`` shrinks the input for CI.  The ``fdt-train-run``
#: scenario deliberately keeps machine construction inside the body:
#: end-to-end means end-to-end.
ScenarioSetup = Callable[[bool], ScenarioBody]


@dataclass(frozen=True, slots=True)
class Scenario:
    """One named entry of the benchmark suite."""

    name: str
    description: str
    prepare: ScenarioSetup

    def run(self, quick: bool) -> ScenarioStats:
        """Convenience: one untimed setup + body execution."""
        return self.prepare(quick)()


def _compute_bound(quick: bool) -> ScenarioBody:
    ops_per_thread = 4_000 if quick else 20_000
    machine = Machine(MachineConfig.small())

    def factory(tid: int, team: int):
        for _ in range(ops_per_thread):
            yield Compute(64)

    def body() -> ScenarioStats:
        machine.run_parallel([factory] * 4, spawn_overhead=False)
        return ScenarioStats(sim_cycles=machine.now,
                             sim_ops=4 * ops_per_thread * 64)
    return body


def _miss_bound(quick: bool) -> ScenarioBody:
    loads_per_thread = 1_000 if quick else 4_000
    machine = Machine(MachineConfig.asplos08_baseline())

    def factory(tid: int, team: int):
        # Disjoint 1-MB streams: every load is a cold L3 miss.
        base = (1 << 22) + tid * (1 << 22)
        for k in range(loads_per_thread):
            yield Load(base + k * 64)

    def body() -> ScenarioStats:
        machine.run_parallel([factory] * 8, spawn_overhead=False)
        return ScenarioStats(sim_cycles=machine.now,
                             sim_ops=8 * loads_per_thread)
    return body


def _cs_heavy(quick: bool) -> ScenarioBody:
    sections_per_thread = 300 if quick else 1_200
    machine = Machine(MachineConfig.small())

    def factory(tid: int, team: int):
        shared = 1 << 22
        for k in range(sections_per_thread):
            yield Compute(60)
            yield Lock(0)
            yield Load(shared)
            yield Compute(24)
            yield Store(shared)
            yield Unlock(0)

    def body() -> ScenarioStats:
        machine.run_parallel([factory] * 8, spawn_overhead=False)
        # 6 ops per section; Computes weighted by instruction count.
        ops = 8 * sections_per_thread * (60 + 24 + 4)
        return ScenarioStats(sim_cycles=machine.now, sim_ops=ops)
    return body


def _fdt_train_run(quick: bool) -> ScenarioBody:
    from repro.fdt.policies import FdtMode, FdtPolicy
    from repro.fdt.runner import run_application
    from repro.workloads import get

    scale = 0.05 if quick else 0.2
    spec = get("PageMine")

    def body() -> ScenarioStats:
        # App and machine construction stay inside the timed region:
        # this scenario measures the end-to-end train+run pipeline,
        # and a fresh app per trial keeps trials independent.
        result = run_application(spec.build(scale),
                                 FdtPolicy(FdtMode.COMBINED),
                                 MachineConfig.asplos08_baseline())
        return ScenarioStats(sim_cycles=result.cycles,
                             sim_ops=result.result.retired_instructions)
    return body


SCENARIOS: tuple[Scenario, ...] = (
    Scenario("compute-bound",
             "homogeneous Compute runs; stresses the event loop",
             _compute_bound),
    Scenario("miss-bound",
             "all-miss load streams; stresses the full memory walk",
             _miss_bound),
    Scenario("cs-heavy",
             "contended short critical sections; stresses the runtime",
             _cs_heavy),
    Scenario("fdt-train-run",
             "full PageMine run under combined FDT, training included",
             _fdt_train_run),
)


def select(names: list[str] | None) -> tuple[Scenario, ...]:
    """The suite subset for ``names`` (all scenarios when None/empty)."""
    if not names:
        return SCENARIOS
    by_name = {s.name: s for s in SCENARIOS}
    missing = [n for n in names if n not in by_name]
    if missing:
        known = ", ".join(s.name for s in SCENARIOS)
        raise ReproError(
            f"unknown bench scenario(s) {', '.join(missing)}; known: {known}")
    return tuple(by_name[n] for n in names)
