"""Tables 1 and 2: the simulated machine and the workload roster."""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.report import ascii_table
from repro.sim.config import MachineConfig
from repro.workloads import WorkloadSpec, all_specs


@dataclass(frozen=True, slots=True)
class Table1Result:
    config: MachineConfig

    def rows(self) -> list[tuple[str, str]]:
        c = self.config
        return [
            ("System", f"{c.num_cores}-core CMP with shared L3 cache"),
            ("Core", f"in-order, {c.issue_width}-wide, "
                     f"{c.pipeline_depth}-stage pipeline, "
                     f"{c.gshare_bytes // 1024}-KB gshare"),
            ("L1", f"{c.l1_bytes // 1024} KB write-through private, "
                   f"{c.l1_latency}-cycle"),
            ("L2", f"{c.l2_bytes // 1024} KB, {c.l2_assoc}-way, inclusive "
                   f"private, {c.l2_latency}-cycle"),
            ("Interconnect", f"bi-directional ring, "
                             f"{c.ring_hop_latency}-cycle hop"),
            ("Coherence", "distributed directory-based MESI"),
            ("L3", f"{c.l3_bytes // (1024 * 1024)} MB, {c.l3_assoc}-way, "
                   f"{c.l3_banks} banks, {c.l3_latency}-cycle, "
                   f"{c.line_bytes}-byte lines"),
            ("Data bus", f"{c.cpu_bus_ratio}:1 cpu/bus ratio, "
                         f"{c.bus_width_bytes * 8}-bit, split-transaction, "
                         f"{c.bus_latency}-cycle latency, one line per "
                         f"{c.bus_cycles_per_line} cycles at peak"),
            ("Memory", f"{c.dram_banks} DRAM banks, "
                       f"row hit/closed/conflict "
                       f"{c.dram_row_hit_latency}/{c.dram_closed_row_latency}/"
                       f"{c.dram_row_conflict_latency} cycles, "
                       f"open-page row buffers"),
        ]

    def format(self) -> str:
        return ("Table 1: configuration of the simulated machine\n"
                + ascii_table(("component", "configuration"), self.rows()))


@dataclass(frozen=True, slots=True)
class Table2Result:
    specs: tuple[WorkloadSpec, ...]

    def format(self) -> str:
        rows = [(s.category.value, s.name, s.description, s.paper_input,
                 s.repro_input) for s in self.specs]
        return ("Table 2: simulated workloads\n"
                + ascii_table(("type", "workload", "description",
                               "paper input", "repro input"), rows))


def run_table1(config: MachineConfig | None = None) -> Table1Result:
    return Table1Result(config=config or MachineConfig.asplos08_baseline())


def run_table2() -> Table2Result:
    return Table2Result(specs=tuple(all_specs()))


if __name__ == "__main__":  # pragma: no cover - manual runner
    print(run_table1().format())
    print()
    print(run_table2().format())
