"""Figure 4: ED normalized execution time (a) and bus utilization (b).

Paper shape: execution time drops as 1/P until ~8 threads then goes
flat; bus utilization climbs linearly to 100 % at the same knee.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.analysis.report import ascii_series
from repro.analysis.sweep import COARSE_GRID, SweepResult, sweep_threads
from repro.sim.config import MachineConfig
from repro.workloads import get


@dataclass(frozen=True, slots=True)
class Fig4Result:
    """Both panels of the figure."""

    sweep: SweepResult

    @property
    def thread_counts(self) -> tuple[int, ...]:
        return self.sweep.thread_counts

    @property
    def normalized_times(self) -> list[float]:
        return self.sweep.normalized_curve(base_threads=1)

    @property
    def bus_utilizations(self) -> list[float]:
        return self.sweep.utilization_curve()

    @property
    def saturation_threads(self) -> int:
        """First thread count at which bus utilization reaches ~100 %."""
        for p in self.sweep.points:
            if p.bus_utilization >= 0.97:
                return p.threads
        return self.sweep.points[-1].threads

    def format(self) -> str:
        xs = list(self.thread_counts)
        a = ascii_series(xs, self.normalized_times,
                         title="Figure 4a: ED normalized execution time")
        b = ascii_series(xs, self.bus_utilizations,
                         title="Figure 4b: ED bus utilization")
        return (f"{a}\n\n{b}\n"
                f"bus saturates at {self.saturation_threads} threads "
                f"(paper: 8)")


def run_fig4(scale: float = 0.25,
             thread_counts: Sequence[int] = COARSE_GRID,
             config: MachineConfig | None = None) -> Fig4Result:
    """Regenerate Figure 4 at the given workload scale."""
    spec = get("ED")
    sweep = sweep_threads(lambda: spec.build(scale), thread_counts, config)
    return Fig4Result(sweep=sweep)


if __name__ == "__main__":  # pragma: no cover - manual runner
    print(run_fig4().format())
