"""Figure 6: the paper's worked critical-section example.

A program spends 20 % of single-threaded time in the critical section
(2 of 10 units).  Eq. 1 gives exactly the paper's numbers: 10 units at
P=1, 8 at P=2, back to 10 at P=4, and 17 at P=8 — with the optimum at
P = sqrt(8/2) = 2.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.report import ascii_table
from repro.models.sat_model import SatModel


@dataclass(frozen=True, slots=True)
class Fig6Result:
    """The example's model and its evaluation at the paper's points."""

    model: SatModel
    thread_counts: tuple[int, ...]
    times: tuple[float, ...]

    def format(self) -> str:
        rows = [(p, t) for p, t in zip(self.thread_counts, self.times)]
        table = ascii_table(("threads", "execution time (units)"), rows,
                            float_format="{:.0f}")
        return (f"Figure 6: 20% critical section, Eq. 1\n{table}\n"
                f"optimum at P = {self.model.optimal_threads():.0f} threads")


def run_fig6(t_nocs: float = 8.0, t_cs: float = 2.0) -> Fig6Result:
    """Evaluate the worked example (defaults are the paper's values)."""
    model = SatModel(t_nocs=t_nocs, t_cs=t_cs)
    threads = (1, 2, 4, 8)
    return Fig6Result(
        model=model,
        thread_counts=threads,
        times=tuple(model.execution_time(p) for p in threads),
    )


if __name__ == "__main__":  # pragma: no cover - manual runner
    print(run_fig6().format())
