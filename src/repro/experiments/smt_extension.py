"""Section 9 extension: FDT on a CMP with SMT-enabled cores.

"We assumed that only one thread executes per core ... However, the
conclusions derived in this paper are also applicable to CMP systems
with SMT-enabled cores."  This experiment runs three representative
kernels on the baseline machine with 2 contexts per core (64 hardware
thread slots) and shows:

* the CS-limited kernel (PageMine) is still curtailed to a handful of
  threads — running 64 is even worse than 32;
* the BW-limited kernel (ED) still saturates at the same *thread* count,
  so SMT lets BAT park the work on half as many cores;
* the compute-bound kernel (BScholes) exposes a genuine SMT interaction
  the paper's model misses: with 64 slots, BAT's ``BU_1 * slots >= 1``
  test no longer rules out saturation, so it picks an intermediate
  count — and an intermediate count on SMT is *imbalanced* (threads on
  doubled-up cores run at half speed while single-context cores wait at
  the join).  Eq. 6's "more threads never hurt" premise breaks when
  slots have heterogeneous throughput; a per-core-aware chunking or a
  restrict-to-core-multiples rule fixes it.  The experiment reports the
  effect rather than hiding it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.analysis.report import ascii_table
from repro.fdt.policies import FdtMode, FdtPolicy, StaticPolicy
from repro.fdt.runner import run_application
from repro.sim.config import MachineConfig
from repro.workloads import get


@dataclass(frozen=True, slots=True)
class SmtRow:
    """One workload under FDT on the SMT machine vs the 64-slot baseline."""

    workload: str
    fdt_threads: tuple[int, ...]
    norm_time: float       # FDT vs 64-thread conventional
    norm_power: float
    baseline_power: float


@dataclass(frozen=True, slots=True)
class SmtResult:
    smt_threads: int
    rows: tuple[SmtRow, ...]

    def row(self, workload: str) -> SmtRow:
        for r in self.rows:
            if r.workload == workload:
                return r
        raise KeyError(workload)

    def format(self) -> str:
        table_rows = [(r.workload, "/".join(map(str, r.fdt_threads)),
                       r.norm_time, r.norm_power) for r in self.rows]
        return (f"Section 9 extension: FDT on SMT-{self.smt_threads} "
                f"(64 thread slots), vs all-slots conventional\n"
                + ascii_table(("workload", "FDT threads", "norm time",
                               "norm power"), table_rows))


def run_smt(scale: float = 0.25, smt_threads: int = 2,
            workloads: Sequence[str] = ("PageMine", "ED", "BScholes"),
            mode: FdtMode = FdtMode.COMBINED) -> SmtResult:
    """Run the SMT experiment at the given workload scale."""
    cfg = MachineConfig.asplos08_baseline().with_smt(smt_threads)
    slots = cfg.num_thread_slots
    rows = []
    for name in workloads:
        spec = get(name)
        baseline = run_application(spec.build(scale),
                                   StaticPolicy(slots), cfg)
        fdt = run_application(spec.build(scale), FdtPolicy(mode), cfg)
        rows.append(SmtRow(
            workload=name,
            fdt_threads=fdt.threads_used,
            norm_time=fdt.cycles / baseline.cycles,
            norm_power=fdt.power / baseline.power,
            baseline_power=baseline.power,
        ))
    return SmtResult(smt_threads=smt_threads, rows=tuple(rows))


if __name__ == "__main__":  # pragma: no cover - manual runner
    print(run_smt().format())
