"""Figure 14: SAT+BAT on all twelve workloads vs the 32-thread baseline.

Execution time and power normalized to conventional threading (one
thread per core).  Paper outcome: large time *and* power cuts for the
synchronization-limited group, large power cuts at flat time for the
bandwidth-limited group, no change for the scalable group; geometric
means of 0.83 (time) and 0.41 (power) — i.e. −17 % / −59 %.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.analysis.report import ascii_bars, ascii_table, gmean
from repro.jobs import JobRunner, JobSpec, PolicySpec, WorkloadRef
from repro.sim.config import MachineConfig
from repro.workloads import all_specs

#: Table 2 order, as plotted in the figure.
ALL_WORKLOADS = ("PageMine", "ISort", "GSearch", "EP",
                 "ED", "convert", "Transpose", "MTwister",
                 "BT", "MG", "BScholes", "SConv")

#: Per-workload scale factors: MTwister must stay near full size so its
#: second kernel misses the L3 (the property the paper relies on).
DEFAULT_SCALES = {"MTwister": 1.0}


@dataclass(frozen=True, slots=True)
class CombinedRow:
    """One workload's bar pair."""

    workload: str
    category: str
    norm_time: float
    norm_power: float
    fdt_threads: tuple[int, ...]


@dataclass(frozen=True, slots=True)
class Fig14Result:
    rows: tuple[CombinedRow, ...]

    def row(self, workload: str) -> CombinedRow:
        for r in self.rows:
            if r.workload == workload:
                return r
        raise KeyError(workload)

    @property
    def gmean_time(self) -> float:
        return gmean(r.norm_time for r in self.rows)

    @property
    def gmean_power(self) -> float:
        return gmean(r.norm_power for r in self.rows)

    def format(self) -> str:
        table_rows = [(r.workload, r.category, r.norm_time, r.norm_power,
                       "/".join(map(str, r.fdt_threads))) for r in self.rows]
        table_rows.append(("gmean", "", self.gmean_time, self.gmean_power, ""))
        table = ascii_table(
            ("workload", "class", "norm time", "norm power", "FDT threads"),
            table_rows)
        bars = ascii_bars([r.workload for r in self.rows],
                          [r.norm_time for r in self.rows], max_value=1.2)
        return (f"Figure 14: (SAT+BAT) normalized to 32 threads\n{table}\n\n"
                f"execution time bars:\n{bars}")


def run_fig14(scale: float = 0.25,
              workloads: Sequence[str] = ALL_WORKLOADS,
              config: MachineConfig | None = None,
              scales: dict[str, float] | None = None,
              runner: JobRunner | None = None) -> Fig14Result:
    """Regenerate Figure 14 over the given workloads.

    All runs are submitted through ``runner`` (a fresh serial, memo-only
    runner when omitted), so the 32-thread baselines and FDT runs shared
    with other figures come from the cache when one is attached.
    """
    cfg = config or MachineConfig.asplos08_baseline()
    runner = runner or JobRunner()
    per_wl = dict(DEFAULT_SCALES)
    if scales:
        per_wl.update(scales)
    categories = {s.name: s.category.value for s in all_specs()}
    rows = []
    for name in workloads:
        wl_scale = per_wl.get(name, scale)
        ref = WorkloadRef(name=name, scale=wl_scale)
        baseline = runner.run_one(
            JobSpec(workload=ref, policy=PolicySpec.static(), config=cfg))
        fdt = runner.run_one(
            JobSpec(workload=ref, policy=PolicySpec.fdt(), config=cfg))
        rows.append(CombinedRow(
            workload=name,
            category=categories[name].split("-")[0],
            norm_time=fdt.cycles / baseline.cycles,
            norm_power=fdt.power / baseline.power,
            fdt_threads=fdt.threads_used,
        ))
    return Fig14Result(rows=tuple(rows))


if __name__ == "__main__":  # pragma: no cover - manual runner
    print(run_fig14().format())
