"""Figures 9 and 10: SAT's adaptation to the input set.

Figure 9 plots the best thread count for PageMine as the page size
varies from 1 KB to 25 KB — it grows roughly as the square root of the
page size, so no static choice works across inputs.  Figure 10 overlays
the 2.5 KB and 10 KB sweeps with SAT's picks, showing SAT tracks both.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.analysis.report import ascii_table
from repro.analysis.sweep import COARSE_GRID, SweepResult, sweep_threads
from repro.fdt.policies import FdtMode, FdtPolicy
from repro.fdt.runner import run_application
from repro.sim.config import MachineConfig
from repro.workloads.pagemine import build as build_pagemine

#: The paper's page-size axis (bytes), 1 KB - 25 KB.
PAGE_SIZES = (1024, 2560, 5280, 10240, 16384, 25600)


@dataclass(frozen=True, slots=True)
class PageSizePoint:
    """One page size: the sweep's best count and SAT's pick."""

    page_bytes: int
    best_static_threads: int
    sat_threads: int
    sat_vs_best: float


@dataclass(frozen=True, slots=True)
class Fig9Result:
    points: tuple[PageSizePoint, ...]
    sweeps: tuple[SweepResult, ...]

    @property
    def best_counts(self) -> list[int]:
        return [p.best_static_threads for p in self.points]

    def format(self) -> str:
        rows = [(f"{p.page_bytes / 1024:.1f} KB", p.best_static_threads,
                 p.sat_threads, p.sat_vs_best) for p in self.points]
        table = ascii_table(
            ("page size", "best static T", "SAT T", "SAT/min time"), rows)
        return ("Figures 9/10: PageMine best thread count vs page size\n"
                f"{table}")


def run_fig9(page_sizes: Sequence[int] = PAGE_SIZES, scale: float = 0.5,
             thread_counts: Sequence[int] = COARSE_GRID,
             config: MachineConfig | None = None) -> Fig9Result:
    """Regenerate Figure 9 (and the Figure 10 overlay data)."""
    points = []
    sweeps = []
    for page_bytes in page_sizes:
        sweep = sweep_threads(
            lambda: build_pagemine(scale=scale, page_bytes=page_bytes),
            thread_counts, config)
        res = run_application(build_pagemine(scale=scale, page_bytes=page_bytes),
                              FdtPolicy(FdtMode.SAT), config)
        points.append(PageSizePoint(
            page_bytes=page_bytes,
            best_static_threads=sweep.best_threads,
            sat_threads=res.kernel_infos[0].threads,
            sat_vs_best=res.cycles / sweep.min_cycles,
        ))
        sweeps.append(sweep)
    return Fig9Result(points=tuple(points), sweeps=tuple(sweeps))


if __name__ == "__main__":  # pragma: no cover - manual runner
    print(run_fig9().format())
