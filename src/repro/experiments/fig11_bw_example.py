"""Figure 11: the paper's worked bandwidth example.

A data-parallel loop uses 25 % of the bus with one thread.  Eq. 4-6 give
the figure's numbers: utilization 25/50/100/100 % and execution time
1, 1/2, 1/4, 1/4 at P = 1, 2, 4, 8 — P=4 and P=8 take the same time.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.report import ascii_table
from repro.models.bat_model import BatModel


@dataclass(frozen=True, slots=True)
class Fig11Result:
    model: BatModel
    thread_counts: tuple[int, ...]
    times: tuple[float, ...]
    utilizations: tuple[float, ...]

    def format(self) -> str:
        rows = [(p, t, f"{u * 100:.0f}%") for p, t, u in
                zip(self.thread_counts, self.times, self.utilizations)]
        table = ascii_table(
            ("threads", "normalized time", "bus utilization"), rows)
        return (f"Figure 11: BU_1 = 25%, Eq. 4-6\n{table}\n"
                f"saturation at P_BW = "
                f"{self.model.saturation_threads():.0f} threads")


def run_fig11(bu1: float = 0.25) -> Fig11Result:
    """Evaluate the worked example (default is the paper's 25 %)."""
    model = BatModel(t1=1.0, bu1=bu1)
    threads = (1, 2, 4, 8)
    return Fig11Result(
        model=model,
        thread_counts=threads,
        times=tuple(model.execution_time(p) for p in threads),
        utilizations=tuple(model.bus_utilization(p) for p in threads),
    )


if __name__ == "__main__":  # pragma: no cover - manual runner
    print(run_fig11().format())
