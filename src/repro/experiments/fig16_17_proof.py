"""Figures 16/17 (appendix): min(P_CS, P_BW) minimizes execution time.

The appendix argues both orderings: when P_CS < P_BW the curve turns up
at P_CS (Figure 16); when P_BW < P_CS the parallel part stops shrinking
at P_BW so the effective optimum shifts there (Figure 17).  This runner
evaluates the combined model in both regimes and brute-force-checks that
Eq. 7's choice is the argmin.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.report import ascii_series
from repro.models.bat_model import BatModel
from repro.models.combined import CombinedModel
from repro.models.sat_model import SatModel


@dataclass(frozen=True, slots=True)
class ProofCase:
    """One ordering: the model, its curve, and the two choices."""

    label: str
    model: CombinedModel
    max_threads: int

    @property
    def curve(self) -> list[float]:
        return self.model.curve(self.max_threads)

    @property
    def eq7_choice(self) -> int:
        return self.model.eq7_choice(self.max_threads)

    @property
    def brute_force_minimizer(self) -> int:
        return self.model.minimizer(self.max_threads)

    @property
    def eq7_is_optimal(self) -> bool:
        """Eq. 7's time must equal the brute-force minimum (rounding can
        pick a neighbouring integer with identical time)."""
        t_eq7 = self.model.execution_time(self.eq7_choice)
        t_min = self.model.execution_time(self.brute_force_minimizer)
        return t_eq7 <= t_min * 1.05


@dataclass(frozen=True, slots=True)
class Fig16_17Result:
    cases: tuple[ProofCase, ...]

    def format(self) -> str:
        parts = []
        for c in self.cases:
            chart = ascii_series(list(range(1, c.max_threads + 1)), c.curve,
                                 title=f"{c.label}: combined-model curve")
            parts.append(
                f"{chart}\n"
                f"Eq.7 -> {c.eq7_choice}, brute force -> "
                f"{c.brute_force_minimizer}, optimal: {c.eq7_is_optimal}")
        return "\n\n".join(parts)


def run_fig16_17(max_threads: int = 32) -> Fig16_17Result:
    """Evaluate both appendix orderings."""
    # Figure 16: P_CS (= sqrt(400) = 20... choose CS-bound first) < P_BW.
    case16 = ProofCase(
        label="Figure 16 (P_CS < P_BW)",
        model=CombinedModel(sat=SatModel(t_nocs=100.0, t_cs=4.0),   # P_CS = 5
                            bat=BatModel(t1=100.0, bu1=0.05)),      # P_BW = 20
        max_threads=max_threads,
    )
    # Figure 17: P_BW < P_CS.
    case17 = ProofCase(
        label="Figure 17 (P_BW < P_CS)",
        model=CombinedModel(sat=SatModel(t_nocs=100.0, t_cs=0.25),  # P_CS = 20
                            bat=BatModel(t1=100.0, bu1=0.2)),       # P_BW = 5
        max_threads=max_threads,
    )
    return Fig16_17Result(cases=(case16, case17))


if __name__ == "__main__":  # pragma: no cover - manual runner
    print(run_fig16_17().format())
