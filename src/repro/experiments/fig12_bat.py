"""Figure 12: BAT on the four bandwidth-limited workloads.

For ED, convert, Transpose, and MTwister the paper overlays the static
sweep with BAT's run: BAT stays within a few percent of the minimum
execution time while cutting power by 78/47/75/31 % (ED/convert/
Transpose/MTwister) versus 32 threads.  BAT's picks on the paper's
machine: 7, 17, 8, and 32+12 (per kernel).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.analysis.report import ascii_table
from repro.analysis.sweep import COARSE_GRID, SweepResult, sweep_threads
from repro.jobs import JobRunner, JobSpec, PolicySpec, WorkloadRef
from repro.sim.config import MachineConfig

BW_WORKLOADS = ("ED", "convert", "Transpose", "MTwister")


@dataclass(frozen=True, slots=True)
class BatPanel:
    """One sub-figure: a workload's sweep plus its BAT run."""

    workload: str
    sweep: SweepResult
    bat_threads: tuple[int, ...]  # per kernel
    bat_cycles: int
    bat_power: float

    @property
    def bat_vs_best(self) -> float:
        return self.bat_cycles / self.sweep.min_cycles

    @property
    def power_saving_vs_32(self) -> float:
        """Fractional power reduction vs the 32-thread baseline run."""
        baseline = self.sweep.points[-1]
        if baseline.power <= 0:
            return 0.0
        return 1.0 - self.bat_power / baseline.power


@dataclass(frozen=True, slots=True)
class Fig12Result:
    panels: tuple[BatPanel, ...]

    def panel(self, workload: str) -> BatPanel:
        for p in self.panels:
            if p.workload == workload:
                return p
        raise KeyError(workload)

    def format(self) -> str:
        rows = [(p.workload, "/".join(map(str, p.bat_threads)),
                 p.bat_vs_best, f"{p.power_saving_vs_32 * 100:.0f}%")
                for p in self.panels]
        table = ascii_table(
            ("workload", "BAT T", "BAT/min time", "power saved vs 32T"), rows)
        return f"Figure 12: BAT on bandwidth-limited workloads\n{table}"


def run_fig12(scale: float = 0.25,
              thread_counts: Sequence[int] = COARSE_GRID,
              config: MachineConfig | None = None,
              workloads: Sequence[str] = BW_WORKLOADS,
              mtwister_scale: float = 1.0,
              runner: JobRunner | None = None) -> Fig12Result:
    """Regenerate Figure 12's four panels.

    MTwister keeps its own scale because its second kernel is only
    bandwidth-limited while the data set exceeds the L3 (see the
    workload's docstring).  All runs are submitted through ``runner``
    (a fresh serial, memo-only runner when omitted).
    """
    cfg = config or MachineConfig.asplos08_baseline()
    runner = runner or JobRunner()
    panels = []
    for name in workloads:
        wl_scale = mtwister_scale if name == "MTwister" else scale
        ref = WorkloadRef(name=name, scale=wl_scale)
        sweep = sweep_threads(ref, thread_counts, cfg, runner=runner)
        res = runner.run_one(
            JobSpec(workload=ref, policy=PolicySpec.bat(), config=cfg))
        panels.append(BatPanel(
            workload=name,
            sweep=sweep,
            bat_threads=res.threads_used,
            bat_cycles=res.cycles,
            bat_power=res.power,
        ))
    return Fig12Result(panels=tuple(panels))


if __name__ == "__main__":  # pragma: no cover - manual runner
    print(run_fig12().format())
