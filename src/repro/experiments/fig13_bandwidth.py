"""Figure 13: BAT's adaptation to the machine configuration.

convert is swept on two machines: one with half the baseline off-chip
bandwidth and one with double.  The half-bandwidth curve saturates at
~8 threads while the double-bandwidth one keeps scaling to 32; a static
choice tuned to either machine misbehaves on the other, and BAT tracks
both (the paper reports picks of 8 and 32).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.analysis.report import ascii_table
from repro.analysis.sweep import COARSE_GRID, SweepResult, sweep_threads
from repro.fdt.policies import FdtMode, FdtPolicy
from repro.fdt.runner import run_application
from repro.sim.config import MachineConfig
from repro.workloads import get


@dataclass(frozen=True, slots=True)
class BandwidthPanel:
    """One machine variant: sweep plus BAT's pick."""

    bandwidth_factor: float
    sweep: SweepResult
    bat_threads: int
    bat_cycles: int

    @property
    def bat_vs_best(self) -> float:
        return self.bat_cycles / self.sweep.min_cycles


@dataclass(frozen=True, slots=True)
class Fig13Result:
    panels: tuple[BandwidthPanel, ...]

    def panel(self, factor: float) -> BandwidthPanel:
        for p in self.panels:
            if p.bandwidth_factor == factor:
                return p
        raise KeyError(factor)

    def format(self) -> str:
        rows = [(f"{p.bandwidth_factor:g}x", p.bat_threads,
                 p.sweep.best_threads, p.bat_vs_best) for p in self.panels]
        table = ascii_table(
            ("bus bandwidth", "BAT T", "best static T", "BAT/min time"), rows)
        return f"Figure 13: BAT vs off-chip bandwidth (convert)\n{table}"


def run_fig13(factors: Sequence[float] = (0.5, 2.0), scale: float = 1.0,
              thread_counts: Sequence[int] = COARSE_GRID) -> Fig13Result:
    """Regenerate Figure 13 for the given bandwidth factors."""
    spec = get("convert")
    panels = []
    for factor in factors:
        cfg = MachineConfig.asplos08_baseline().with_bandwidth(factor)
        sweep = sweep_threads(lambda: spec.build(scale), thread_counts, cfg)
        res = run_application(spec.build(scale), FdtPolicy(FdtMode.BAT), cfg)
        panels.append(BandwidthPanel(
            bandwidth_factor=factor,
            sweep=sweep,
            bat_threads=res.kernel_infos[0].threads,
            bat_cycles=res.cycles,
        ))
    return Fig13Result(panels=tuple(panels))


if __name__ == "__main__":  # pragma: no cover - manual runner
    print(run_fig13().format())
