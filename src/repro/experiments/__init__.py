"""One runner per paper table/figure (the per-experiment index lives in
DESIGN.md §5; paper-vs-measured numbers land in EXPERIMENTS.md).

Every module exposes a ``run_*`` function returning a small result
dataclass with a ``format()`` method, so the same code backs the
benchmark harness, the examples, and ad-hoc exploration::

    from repro.experiments import fig02_pagemine
    print(fig02_pagemine.run_fig2(scale=0.25).format())
"""

from repro.experiments import (  # noqa: F401
    crossover,
    fig02_pagemine,
    fig04_ed,
    fig06_cs_example,
    fig08_sat,
    fig09_pagesize,
    fig11_bw_example,
    fig12_bat,
    fig13_bandwidth,
    fig14_combined,
    fig15_oracle,
    fig16_17_proof,
    smt_extension,
    tables,
)

__all__ = [
    "crossover",
    "fig02_pagemine",
    "fig04_ed",
    "fig06_cs_example",
    "fig08_sat",
    "fig09_pagesize",
    "fig11_bw_example",
    "fig12_bat",
    "fig13_bandwidth",
    "fig14_combined",
    "fig15_oracle",
    "fig16_17_proof",
    "smt_extension",
    "tables",
]
