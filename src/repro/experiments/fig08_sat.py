"""Figure 8: SAT on the four synchronization-limited workloads.

For PageMine, ISort, GSearch, and EP the paper overlays the static
sweep (1-32 threads) with the single SAT point, showing SAT lands within
1 % of the sweep minimum (best counts: ~4, 7, 5, 4; SAT picks 7, 7, 5, 5
on the paper's machine).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.analysis.report import ascii_table
from repro.analysis.sweep import COARSE_GRID, SweepResult, sweep_threads
from repro.jobs import JobRunner, JobSpec, PolicySpec, WorkloadRef
from repro.sim.config import MachineConfig

CS_WORKLOADS = ("PageMine", "ISort", "GSearch", "EP")


@dataclass(frozen=True, slots=True)
class SatPanel:
    """One sub-figure: a workload's sweep plus its SAT run."""

    workload: str
    sweep: SweepResult
    sat_threads: int
    sat_cycles: int
    sat_power: float

    @property
    def best_static_threads(self) -> int:
        return self.sweep.best_threads

    @property
    def sat_vs_best(self) -> float:
        """SAT execution time over the sweep minimum."""
        return self.sat_cycles / self.sweep.min_cycles

    @property
    def sat_normalized(self) -> float:
        """SAT time normalized to the single-thread point (figure axis)."""
        return self.sat_cycles / self.sweep.point(1).cycles


@dataclass(frozen=True, slots=True)
class Fig8Result:
    panels: tuple[SatPanel, ...]

    def panel(self, workload: str) -> SatPanel:
        for p in self.panels:
            if p.workload == workload:
                return p
        raise KeyError(workload)

    def format(self) -> str:
        rows = [(p.workload, p.best_static_threads, p.sat_threads,
                 p.sat_vs_best, p.sat_power) for p in self.panels]
        table = ascii_table(
            ("workload", "best static T", "SAT T", "SAT/min time", "SAT power"),
            rows)
        return f"Figure 8: SAT on synchronization-limited workloads\n{table}"


def run_fig8(scale: float = 0.5,
             thread_counts: Sequence[int] = COARSE_GRID,
             config: MachineConfig | None = None,
             workloads: Sequence[str] = CS_WORKLOADS,
             runner: JobRunner | None = None) -> Fig8Result:
    """Regenerate Figure 8's four panels.

    All runs are submitted through ``runner`` (a fresh serial, memo-only
    :class:`~repro.jobs.JobRunner` when omitted), so a shared runner
    with a warm cache regenerates the figure without simulating.
    """
    cfg = config or MachineConfig.asplos08_baseline()
    runner = runner or JobRunner()
    panels = []
    for name in workloads:
        ref = WorkloadRef(name=name, scale=scale)
        sweep = sweep_threads(ref, thread_counts, cfg, runner=runner)
        res = runner.run_one(
            JobSpec(workload=ref, policy=PolicySpec.sat(), config=cfg))
        panels.append(SatPanel(
            workload=name,
            sweep=sweep,
            sat_threads=res.kernel_infos[0].threads,
            sat_cycles=res.cycles,
            sat_power=res.power,
        ))
    return Fig8Result(panels=tuple(panels))


if __name__ == "__main__":  # pragma: no cover - manual runner
    print(run_fig8().format())
