"""Figure 15: SAT+BAT vs the best static (oracle) policy.

The oracle picks, per application, the fewest threads within 1 % of the
minimum execution time found by an exhaustive offline sweep — but it
must pick *one* number for the whole program.  Paper outcome: FDT
matches the oracle everywhere except MTwister, where per-kernel
retraining (32 then 12 threads) cuts power 31 % below the oracle's
whole-program choice of 32.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.analysis.oracle import oracle_choice
from repro.analysis.report import ascii_table
from repro.analysis.sweep import COARSE_GRID, sweep_threads
from repro.experiments.fig14_combined import ALL_WORKLOADS, DEFAULT_SCALES
from repro.jobs import JobRunner, JobSpec, PolicySpec, WorkloadRef
from repro.sim.config import MachineConfig


@dataclass(frozen=True, slots=True)
class OracleRow:
    """One workload: FDT vs the oracle, both normalized to 32 threads."""

    workload: str
    oracle_threads: int
    fdt_threads: tuple[int, ...]
    fdt_time: float
    oracle_time: float
    fdt_power: float
    oracle_power: float

    @property
    def fdt_power_vs_oracle(self) -> float:
        if self.oracle_power <= 0:
            return 1.0
        return self.fdt_power / self.oracle_power


@dataclass(frozen=True, slots=True)
class Fig15Result:
    rows: tuple[OracleRow, ...]

    def row(self, workload: str) -> OracleRow:
        for r in self.rows:
            if r.workload == workload:
                return r
        raise KeyError(workload)

    def format(self) -> str:
        table_rows = [(r.workload, r.oracle_threads,
                       "/".join(map(str, r.fdt_threads)),
                       r.fdt_time, r.oracle_time, r.fdt_power,
                       r.oracle_power) for r in self.rows]
        table = ascii_table(
            ("workload", "oracle T", "FDT T", "FDT time", "oracle time",
             "FDT power", "oracle power"), table_rows)
        return ("Figure 15: (SAT+BAT) vs oracle, normalized to 32 threads\n"
                f"{table}")


def run_fig15(scale: float = 0.25,
              workloads: Sequence[str] = ALL_WORKLOADS,
              thread_counts: Sequence[int] = COARSE_GRID,
              config: MachineConfig | None = None,
              scales: dict[str, float] | None = None,
              runner: JobRunner | None = None) -> Fig15Result:
    """Regenerate Figure 15 over the given workloads.

    All runs are submitted through ``runner`` (a fresh serial, memo-only
    runner when omitted).  The oracle's re-run is always a job the sweep
    already computed — the oracle picks one of the sweep's own thread
    counts — so even without a disk cache it is a memo hit, not a second
    simulation.
    """
    cfg = config or MachineConfig.asplos08_baseline()
    runner = runner or JobRunner()
    per_wl = dict(DEFAULT_SCALES)
    if scales:
        per_wl.update(scales)
    rows = []
    for name in workloads:
        wl_scale = per_wl.get(name, scale)
        ref = WorkloadRef(name=name, scale=wl_scale)
        sweep = sweep_threads(ref, thread_counts, cfg, runner=runner)
        oracle = oracle_choice(sweep)
        baseline = sweep.points[-1]  # the 32-thread point
        fdt = runner.run_one(
            JobSpec(workload=ref, policy=PolicySpec.fdt(), config=cfg))
        oracle_run = runner.run_one(
            JobSpec(workload=ref, policy=PolicySpec.static(oracle.threads),
                    config=cfg))
        rows.append(OracleRow(
            workload=name,
            oracle_threads=oracle.threads,
            fdt_threads=fdt.threads_used,
            fdt_time=fdt.cycles / baseline.cycles,
            oracle_time=oracle_run.cycles / baseline.cycles,
            fdt_power=fdt.power / baseline.power,
            oracle_power=oracle_run.power / baseline.power,
        ))
    return Fig15Result(rows=tuple(rows))


if __name__ == "__main__":  # pragma: no cover - manual runner
    print(run_fig15().format())
