"""Crossover study: Eq. 7 inside the simulator, not just the model.

The appendix proves ``min(P_CS, P_BW)`` optimal for the *analytical*
execution-time model.  This experiment checks the claim end-to-end:
a synthetic kernel's bandwidth demand is swept while its critical
section is held fixed, moving the binding constraint from SAT's bound
to BAT's, and at every point the combined FDT run is compared with the
simulated static sweep's optimum.

This is an experiment the paper does not include; it closes the loop
between the appendix's Figures 16/17 and the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.analysis.report import ascii_table
from repro.analysis.sweep import sweep_threads
from repro.jobs import JobRunner, JobSpec, PolicySpec, WorkloadRef
from repro.sim.config import MachineConfig


@dataclass(frozen=True, slots=True)
class CrossoverPoint:
    """One bandwidth-demand setting of the synthetic kernel."""

    bus_lines: int
    p_cs: int
    p_bw: int
    fdt_threads: int
    best_static_threads: int
    fdt_vs_best: float

    @property
    def binding(self) -> str:
        """Which bound Eq. 7 selected."""
        if self.p_bw < self.p_cs:
            return "BAT"
        if self.p_cs < self.p_bw:
            return "SAT"
        return "tie"


@dataclass(frozen=True, slots=True)
class CrossoverResult:
    points: tuple[CrossoverPoint, ...]

    @property
    def crossed(self) -> bool:
        """The sweep moved the binding constraint at least once."""
        kinds = {p.binding for p in self.points if p.binding != "tie"}
        return len(kinds) == 2

    def format(self) -> str:
        rows = [(p.bus_lines, p.p_cs, p.p_bw, p.binding, p.fdt_threads,
                 p.best_static_threads, p.fdt_vs_best) for p in self.points]
        return ("Crossover study: Eq. 7 with the binding limiter swept\n"
                + ascii_table(("bus lines/iter", "P_CS", "P_BW", "binding",
                               "FDT T", "best static T", "FDT/min time"),
                              rows))


def run_crossover(bus_lines: Sequence[int] = (0, 16, 64, 160),
                  cs_fraction: float = 0.02,
                  iterations: int = 192,
                  thread_counts: Sequence[int] = (1, 2, 3, 4, 5, 6, 7, 8,
                                                  10, 12, 16, 24, 32),
                  config: MachineConfig | None = None,
                  runner: JobRunner | None = None) -> CrossoverResult:
    """Sweep bandwidth demand across the SAT/BAT crossover.

    All runs are submitted through ``runner`` (a fresh serial, memo-only
    runner when omitted); the synthetic kernel's knobs are part of each
    job's content hash.
    """
    cfg = config or MachineConfig.asplos08_baseline()
    runner = runner or JobRunner()
    points = []
    for lines in bus_lines:
        ref = WorkloadRef.synthetic(cs_fraction=cs_fraction, bus_lines=lines,
                                    iterations=iterations)
        sweep = sweep_threads(ref, thread_counts, cfg, runner=runner)
        fdt = runner.run_one(
            JobSpec(workload=ref, policy=PolicySpec.fdt(), config=cfg))
        info = fdt.kernel_infos[0]
        points.append(CrossoverPoint(
            bus_lines=lines,
            p_cs=info.estimates.p_cs,
            p_bw=info.estimates.p_bw,
            fdt_threads=info.threads,
            best_static_threads=sweep.best_threads,
            fdt_vs_best=fdt.cycles / sweep.min_cycles,
        ))
    return CrossoverResult(points=tuple(points))


if __name__ == "__main__":  # pragma: no cover - manual runner
    print(run_crossover().format())
