"""Figure 2: PageMine normalized execution time vs. 1-32 threads.

Paper shape: execution time falls until ~4 threads, turns upward beyond
~6, and by 32 threads is worse than single-threaded — the critical
section has taken over.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.analysis.report import ascii_series
from repro.analysis.sweep import COARSE_GRID, SweepResult, sweep_threads
from repro.sim.config import MachineConfig
from repro.workloads import get


@dataclass(frozen=True, slots=True)
class Fig2Result:
    """The figure's single series."""

    sweep: SweepResult

    @property
    def thread_counts(self) -> tuple[int, ...]:
        return self.sweep.thread_counts

    @property
    def normalized_times(self) -> list[float]:
        return self.sweep.normalized_curve(base_threads=1)

    @property
    def best_threads(self) -> int:
        return self.sweep.best_threads

    def format(self) -> str:
        chart = ascii_series(
            list(self.thread_counts), self.normalized_times,
            title="Figure 2: PageMine normalized execution time vs threads")
        return (f"{chart}\n"
                f"best thread count: {self.best_threads} "
                f"(paper: minimum near 4, rising beyond 6)")


def run_fig2(scale: float = 0.5,
             thread_counts: Sequence[int] = COARSE_GRID,
             config: MachineConfig | None = None) -> Fig2Result:
    """Regenerate Figure 2 at the given workload scale."""
    spec = get("PageMine")
    sweep = sweep_threads(lambda: spec.build(scale), thread_counts, config)
    return Fig2Result(sweep=sweep)


if __name__ == "__main__":  # pragma: no cover - manual runner
    print(run_fig2().format())
