"""Threading runtime executed *inside* the simulated machine.

This is the library-level support the paper says FDT needs ("minimal
support from the threading library"): spawning a team of threads pinned
one-per-core, FIFO-granted locks for critical sections, sense-reversing
barriers, and the ability to pick a different ``num_threads`` for every
parallel region — the OpenMP ``num_threads`` clause analogue the paper
uses to act on FDT's decision.
"""

from repro.runtime.locks import LockManager
from repro.runtime.barriers import BarrierManager
from repro.runtime.parallel import ParallelFor, static_chunks

__all__ = ["LockManager", "BarrierManager", "ParallelFor", "static_chunks"]
