"""Sense-reversing barriers for thread teams.

A barrier is identified by an integer id and is reusable: the generation
counter flips each time the whole team arrives, so the same id can be used
in a loop (the common OpenMP pattern the paper's kernels rely on —
PageMine's per-page barrier, for example).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - break the sim <-> runtime cycle
    from repro.check.events import SanitizerHooks
    from repro.sim.config import MachineConfig
    from repro.sim.ring import Ring
    from repro.trace.events import TraceHooks


@dataclass(slots=True)
class BarrierStats:
    """Aggregate barrier counters."""

    episodes: int = 0
    total_wait_cycles: int = 0


@dataclass(slots=True)
class _BarrierState:
    generation: int = 0
    arrived: list = field(default_factory=list)  # (core, arrival_time)


class BarrierManager:
    """All barriers of the machine."""

    def __init__(self, config: "MachineConfig", ring: "Ring",
                 core_nodes: list[int],
                 hooks: "SanitizerHooks | None" = None,
                 trace: "TraceHooks | None" = None) -> None:
        self._config = config
        self._ring = ring
        self._core_nodes = core_nodes
        self._barriers: dict[int, _BarrierState] = {}
        #: Sanitizer observer (repro.check); never affects release timing.
        self._hooks = hooks
        #: Trace observer (repro.trace); never affects release timing.
        self._trace = trace
        self.stats = BarrierStats()

    def arrive(self, barrier_id: int, core: int, team_size: int,
               now: int) -> list[tuple[int, int]] | None:
        """Register ``core`` at the barrier.

        Returns None while the team is incomplete (the core spins).  When
        the last member arrives, returns ``[(core, release_cycle), ...]``
        for *every* member including the last: release propagates from the
        last arriver over the ring, so nearer cores wake sooner.

        Raises:
            SimulationError: if a core arrives twice in one generation.
        """
        if team_size < 1:
            raise SimulationError("barrier team size must be >= 1")
        if self._hooks is not None:
            self._hooks.on_barrier_arrive(barrier_id, core, team_size, now)
        if self._trace is not None:
            self._trace.on_barrier_arrive(barrier_id, core, now)
        st = self._barriers.get(barrier_id)
        if st is None:
            st = _BarrierState()
            self._barriers[barrier_id] = st
        if any(c == core for c, _t in st.arrived):
            raise SimulationError(
                f"core {core} arrived twice at barrier {barrier_id}")
        st.arrived.append((core, now))
        if len(st.arrived) < team_size:
            return None

        # Last arriver: release everyone.
        self.stats.episodes += 1
        if self._hooks is not None:
            self._hooks.on_barrier_release(
                barrier_id, [c for c, _t in st.arrived], now)
        last_node = self._core_nodes[core]
        releases = []
        for c, arrived_at in st.arrived:
            hops = self._ring.hops(last_node, self._core_nodes[c])
            release = now + hops * self._config.ring_hop_latency
            releases.append((c, release))
            self.stats.total_wait_cycles += release - arrived_at
        if self._trace is not None:
            self._trace.on_barrier_release(barrier_id, releases, now)
        st.arrived = []
        st.generation += 1
        return releases

    def pending(self, barrier_id: int) -> int:
        """Cores currently waiting at ``barrier_id``."""
        st = self._barriers.get(barrier_id)
        return len(st.arrived) if st else 0

    def any_waiting(self) -> bool:
        """True if any barrier has waiters (deadlock diagnosis)."""
        return any(st.arrived for st in self._barriers.values())
