"""OpenMP-style ``parallel for`` helpers.

Workloads express a kernel as a *loop body generator*; these helpers split
the iteration space statically across a team (OpenMP ``schedule(static)``,
which is what the paper's kernels use) and adapt the body into the program
factories :meth:`repro.sim.machine.Machine.run_parallel` expects.
"""

from __future__ import annotations

from typing import Callable, Iterator

from repro.errors import ConfigError
from repro.isa.ops import Op
from repro.isa.program import ProgramFactory, ThreadProgram

# A loop body: (iterations, thread_id, num_threads) -> op generator.
LoopBody = Callable[[range, int, int], ThreadProgram]


def static_chunks(total_iterations: int, num_threads: int,
                  start: int = 0) -> list[range]:
    """Split ``total_iterations`` into ``num_threads`` contiguous ranges.

    Matches OpenMP static scheduling: the first ``total % num_threads``
    threads receive one extra iteration, so chunk sizes differ by at most
    one.  Threads beyond the iteration count receive empty ranges.
    """
    if num_threads < 1:
        raise ConfigError("num_threads must be >= 1")
    if total_iterations < 0:
        raise ConfigError("iteration count must be non-negative")
    base = total_iterations // num_threads
    extra = total_iterations % num_threads
    chunks = []
    lo = start
    for t in range(num_threads):
        size = base + (1 if t < extra else 0)
        chunks.append(range(lo, lo + size))
        lo += size
    return chunks


class ParallelFor:
    """Adapter from a loop body to per-thread program factories.

    Example::

        pfor = ParallelFor(total_iterations=1000, body=my_body)
        machine.run_parallel(pfor.factories(num_threads=8))
    """

    def __init__(self, total_iterations: int, body: LoopBody,
                 start: int = 0) -> None:
        if total_iterations < 0:
            raise ConfigError("iteration count must be non-negative")
        self.total_iterations = total_iterations
        self.body = body
        self.start = start

    def factories(self, num_threads: int) -> list[ProgramFactory]:
        """Program factories for a team of ``num_threads`` threads."""
        chunks = static_chunks(self.total_iterations, num_threads, self.start)

        def make_factory(chunk: range) -> ProgramFactory:
            def factory(thread_id: int, team: int) -> ThreadProgram:
                return self.body(chunk, thread_id, team)
            return factory

        return [make_factory(chunk) for chunk in chunks]

    def subrange(self, lo: int, hi: int) -> "ParallelFor":
        """A ParallelFor over iterations ``[lo, hi)`` of the same body.

        Used by FDT: train on a leading slice, execute the rest.
        """
        if not (self.start <= lo <= hi <= self.start + self.total_iterations):
            raise ConfigError(f"subrange [{lo}, {hi}) outside the loop bounds")
        return ParallelFor(total_iterations=hi - lo, body=self.body, start=lo)


def ops(*items: Op) -> Iterator[Op]:
    """Tiny helper to turn a fixed op tuple into a program (tests)."""
    yield from items
