"""Dynamic loop scheduling (OpenMP ``schedule(dynamic, chunk)``).

Static chunking assigns iterations up front; dynamic scheduling lets
threads pull chunks from a shared cursor at run time, trading scheduler
overhead for load balance.  The cursor is guarded by the simulator's
*own* lock machinery, so the scheduler's serialization cost is modeled,
not assumed — with many threads and small chunks the scheduler lock
itself becomes a critical section, exactly the pathology OpenMP manuals
warn about.

Determinism note: the assignment decision executes inside the simulated
critical section (the generator resumes only when the lock manager
grants the lock), and the event engine is deterministic, so dynamic
schedules are reproducible run to run.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.fdt.kernel import Kernel
from repro.isa.ops import Compute, Lock, Unlock
from repro.isa.program import ProgramFactory

#: Lock id reserved for the loop scheduler (workloads use small ids;
#: this stays out of their way).
SCHEDULER_LOCK = 1_000_003

#: Cost of one cursor grab: fetch-and-add plus bounds checks.
GRAB_INSTR = 60


@dataclass(slots=True)
class _Cursor:
    next: int
    stop: int


def dynamic_factories(kernel: Kernel, iterations: range, num_threads: int,
                      chunk_size: int = 1) -> list[ProgramFactory]:
    """Team factories executing ``iterations`` with dynamic scheduling.

    Each thread repeatedly takes the scheduler lock, claims the next
    ``chunk_size`` iterations, releases, and executes them — until the
    cursor is exhausted.

    Args:
        kernel: supplies ``serial_iteration``.
        iterations: the iteration range to distribute.
        num_threads: team size.
        chunk_size: iterations claimed per grab (OpenMP's chunk).

    Raises:
        ConfigError: non-positive team or chunk.
    """
    if num_threads < 1:
        raise ConfigError("num_threads must be >= 1")
    if chunk_size < 1:
        raise ConfigError("chunk_size must be >= 1")
    cursor = _Cursor(next=iterations.start, stop=iterations.stop)

    def factory(thread_id: int, team: int):
        while True:
            yield Lock(SCHEDULER_LOCK)
            yield Compute(GRAB_INSTR)
            # This assignment runs while the simulated lock is held
            # (the generator resumed only after the grant), so it is
            # serialized and deterministic.
            start = cursor.next
            stop = min(start + chunk_size, cursor.stop)
            cursor.next = stop
            yield Unlock(SCHEDULER_LOCK)
            if start >= cursor.stop:
                return
            for i in range(start, stop):
                yield from kernel.serial_iteration(i)

    return [factory] * num_threads


class DynamicScheduleKernel(Kernel):
    """Wrap a kernel so its execution phase uses dynamic scheduling.

    Training (``serial_iteration``) is unchanged — FDT's peeled loop is
    inherently sequential — while ``factories`` pulls chunks from the
    shared cursor.  Useful when per-iteration cost varies (the case
    static chunking handles badly).
    """

    def __init__(self, inner: Kernel, chunk_size: int = 1) -> None:
        if chunk_size < 1:
            raise ConfigError("chunk_size must be >= 1")
        self.inner = inner
        self.chunk_size = chunk_size
        self.name = f"{inner.name}-dynamic{chunk_size}"

    @property
    def total_iterations(self) -> int:
        return self.inner.total_iterations

    def serial_iteration(self, i: int):
        return self.inner.serial_iteration(i)

    def factories(self, iterations: range,
                  num_threads: int) -> list[ProgramFactory]:
        return dynamic_factories(self.inner, iterations, num_threads,
                                 self.chunk_size)
