"""FIFO lock manager: the simulator's critical-section machinery.

Locks serialize critical sections exactly as the paper's model assumes:
one holder at a time, waiters granted in arrival order.  Handoff between
cores costs ring-distance-dependent cycles (the lock line migrates between
private caches), so the *effective* critical-section length grows slightly
with physical distance — one of the second-order effects the analytical
model ignores and the simulator captures.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - break the sim <-> runtime cycle
    from repro.check.events import SanitizerHooks
    from repro.sim.config import MachineConfig
    from repro.sim.ring import Ring
    from repro.trace.events import TraceHooks


@dataclass(slots=True)
class LockStats:
    """Aggregate contention counters across all locks."""

    acquisitions: int = 0
    contended_acquisitions: int = 0
    total_wait_cycles: int = 0
    total_hold_cycles: int = 0


@dataclass(slots=True)
class _LockState:
    holder: int | None = None
    last_holder: int | None = None
    acquired_at: int = 0
    waiters: deque = field(default_factory=deque)  # (core, enqueue_time)


class LockManager:
    """All locks of the machine, granted in FIFO order."""

    def __init__(self, config: "MachineConfig", ring: "Ring",
                 core_nodes: list[int],
                 hooks: "SanitizerHooks | None" = None,
                 trace: "TraceHooks | None" = None) -> None:
        self._config = config
        self._ring = ring
        self._core_nodes = core_nodes
        self._locks: dict[int, _LockState] = {}
        #: Sanitizer observer (repro.check); never affects grant timing.
        self._hooks = hooks
        #: Trace observer (repro.trace); never affects grant timing.
        self._trace = trace
        self.stats = LockStats()

    def _state(self, lock_id: int) -> _LockState:
        st = self._locks.get(lock_id)
        if st is None:
            st = _LockState()
            self._locks[lock_id] = st
        return st

    def _handoff_latency(self, from_core: int | None, to_core: int) -> int:
        """Cycles to move lock ownership between two cores."""
        base = self._config.lock_handoff_base
        if from_core is None or from_core == to_core:
            return 2  # lock line already resident in M
        hops = self._ring.hops(self._core_nodes[from_core],
                               self._core_nodes[to_core])
        return base + 2 * hops * self._config.ring_hop_latency

    def acquire(self, lock_id: int, core: int, now: int) -> int | None:
        """Try to take ``lock_id`` for ``core`` at cycle ``now``.

        Returns the cycle the lock is held from, or None if the core must
        wait (it will be granted later via :meth:`release`).
        """
        st = self._state(lock_id)
        if st.holder is None and not st.waiters:
            grant = now + self._handoff_latency(st.last_holder, core)
            st.holder = core
            st.acquired_at = grant
            self.stats.acquisitions += 1
            if self._hooks is not None:
                self._hooks.on_lock_acquired(lock_id, core, grant)
            if self._trace is not None:
                self._trace.on_lock_acquired(lock_id, core, grant)
            return grant
        st.waiters.append((core, now))
        self.stats.contended_acquisitions += 1
        if self._trace is not None:
            self._trace.on_lock_spin_begin(lock_id, core, now)
        return None

    def release(self, lock_id: int, core: int, now: int) -> tuple[int, int] | None:
        """Release ``lock_id``; hand it to the next waiter if any.

        Returns ``(next_core, grant_cycle)`` when a waiter takes over, or
        None when the lock goes free.

        Raises:
            SimulationError: if ``core`` does not hold the lock.
        """
        st = self._locks.get(lock_id)
        if st is None or st.holder != core:
            raise SimulationError(
                f"core {core} released lock {lock_id} it does not hold")
        self.stats.total_hold_cycles += now - st.acquired_at
        st.last_holder = core
        st.holder = None
        if self._hooks is not None:
            self._hooks.on_lock_released(lock_id, core, now)
        if self._trace is not None:
            self._trace.on_lock_released(lock_id, core, now)
        if not st.waiters:
            return None
        if self._config.lock_grant_order == "lifo":
            next_core, enqueued = st.waiters.pop()
        else:
            next_core, enqueued = st.waiters.popleft()
        grant = now + self._handoff_latency(core, next_core)
        st.holder = next_core
        st.acquired_at = grant
        self.stats.acquisitions += 1
        self.stats.total_wait_cycles += grant - enqueued
        if self._hooks is not None:
            self._hooks.on_lock_acquired(lock_id, next_core, grant)
        if self._trace is not None:
            self._trace.on_lock_acquired(lock_id, next_core, grant)
        return next_core, grant

    def holder(self, lock_id: int) -> int | None:
        """Core currently holding ``lock_id`` (None when free/unknown)."""
        st = self._locks.get(lock_id)
        return st.holder if st else None

    def waiters(self, lock_id: int) -> int:
        """Number of cores queued on ``lock_id``."""
        st = self._locks.get(lock_id)
        return len(st.waiters) if st else 0

    def any_held(self) -> bool:
        """True if any lock is held or has waiters (deadlock diagnosis)."""
        return any(st.holder is not None or st.waiters
                   for st in self._locks.values())
