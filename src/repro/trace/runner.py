"""Record a trace for one workload run: the ``repro trace`` entry point.

:func:`run_traced` is the programmatic mirror of the CLI: build a
machine with a :class:`~repro.sim.config.TraceConfig` attached, run the
application under a policy, and hand back both the normal
:class:`~repro.fdt.runner.AppRunResult` and the recorded
:class:`~repro.trace.data.Trace`.  Because the tracer is a pure
observer, the result is bit-identical to an untraced run of the same
spec.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.fdt.policies import ThreadingPolicy
from repro.fdt.runner import Application, AppRunResult, run_application
from repro.sim.config import MachineConfig, TraceConfig
from repro.sim.machine import Machine
from repro.trace.data import Trace


@dataclass(frozen=True, slots=True)
class TracedRun:
    """An application run plus the trace it recorded."""

    result: AppRunResult
    trace: Trace


def run_traced(app: Application, policy: ThreadingPolicy,
               config: MachineConfig | None = None,
               trace_config: TraceConfig | None = None) -> TracedRun:
    """Run ``app`` under ``policy`` on a machine that records a trace.

    Args:
        app: the application to execute.
        policy: threading policy driving the run.
        config: machine configuration (baseline when omitted); any
            tracer already attached to it is replaced.
        trace_config: tracer knobs (defaults when omitted).

    Returns:
        The run result and the recorded trace.
    """
    base = config or MachineConfig.asplos08_baseline()
    cfg = base.with_trace(trace_config)
    machine = Machine(cfg)
    result = run_application(app, policy, cfg, machine=machine)
    if machine.trace is None:  # pragma: no cover - defensive
        raise ConfigError("trace recording was disabled by the config")
    return TracedRun(result=result, trace=machine.trace.data)
