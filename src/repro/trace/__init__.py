"""Cycle-level tracing: state timelines, counter series, decision logs.

The paper's argument is about *when* time goes — cycles inside critical
sections versus outside (SAT, Eq. 3) and cycles the off-chip bus is
busy (BAT, Eq. 5) — so this package records exactly that, below the
end-of-run aggregates of :class:`~repro.sim.stats.RunResult`:

* a **per-core state timeline** (compute / critical-section /
  lock-spin / barrier-wait / memory-stall spans);
* **interval-sampled counter time series** (active cores, bus
  occupancy, L3 misses, lock acquisitions every N cycles);
* an **FDT decision log** capturing each training run's samples, the
  derived T_CS/T_NoCS/BU_1, the Eq. 3/5/7 arithmetic, and the chosen
  thread count — replayable from its own recorded inputs.

Attach a :class:`~repro.sim.config.TraceConfig` to a machine config
(``config.with_trace()``) and the machine records while it runs; the
tracer is a pure observer, so simulated cycles are bit-identical with
it on or off.  Export with :func:`~repro.trace.export.write_artifacts`
(Perfetto ``trace_event`` JSON, CSV counter series, decision-log JSON,
text summary), or from the CLI::

    python -m repro trace PageMine --policy fdt --out traces/pagemine
    python -m repro run ED --policy fdt --trace traces/ed

Typical programmatic use::

    from repro.fdt.policies import FdtPolicy
    from repro.trace import run_traced, write_artifacts
    from repro.workloads import get

    traced = run_traced(get("PageMine").build(0.5), FdtPolicy())
    print(traced.trace.critical_section_cycles)
    write_artifacts(traced.trace, "traces/pagemine")
"""

from repro.trace.data import (
    SPAN_STATES,
    STATE_BARRIER_WAIT,
    STATE_COMPUTE,
    STATE_CRITICAL_SECTION,
    STATE_LOCK_SPIN,
    STATE_MEMORY_STALL,
    CounterSample,
    FdtDecisionRecord,
    Mark,
    Span,
    Trace,
)
from repro.trace.events import TraceHooks
from repro.trace.export import (
    counters_csv,
    decisions_json,
    perfetto_json,
    text_summary,
    to_perfetto,
    write_artifacts,
)
from repro.trace.recorder import TraceRecorder
from repro.trace.runner import TracedRun, run_traced

__all__ = [
    "SPAN_STATES",
    "STATE_BARRIER_WAIT",
    "STATE_COMPUTE",
    "STATE_CRITICAL_SECTION",
    "STATE_LOCK_SPIN",
    "STATE_MEMORY_STALL",
    "CounterSample",
    "FdtDecisionRecord",
    "Mark",
    "Span",
    "Trace",
    "TraceHooks",
    "TraceRecorder",
    "TracedRun",
    "counters_csv",
    "decisions_json",
    "perfetto_json",
    "run_traced",
    "text_summary",
    "to_perfetto",
    "write_artifacts",
]
