"""Trace exporters: Perfetto/Chrome ``trace_event`` JSON, CSV, text.

Three renderings of one :class:`~repro.trace.data.Trace`:

* :func:`to_perfetto` / :func:`perfetto_json` — the Chrome trace-event
  format (https://ui.perfetto.dev loads it directly): one track per
  core carrying the state timeline as complete (``ph="X"``) events,
  counter tracks (``ph="C"``) for the sampled series, and instant
  events for region/kernel boundaries and FDT decisions.  Timestamps
  are simulated cycles passed through as microseconds — 1 us in the
  viewer is 1 cpu cycle.
* :func:`counters_csv` — the interval-sampled counter time series with
  per-interval rates (bus utilization, L3 miss rate, IPC) derived by
  differencing the cumulative samples.
* :func:`text_summary` — a terminal-friendly digest: where cycles went
  per state, counter totals, and every FDT decision with its inputs.

:func:`write_artifacts` writes all of them (plus the decision log as
standalone JSON) into a directory.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.trace.data import SPAN_STATES, Trace

#: Artifact filenames written by :func:`write_artifacts`.
PERFETTO_FILE = "trace.json"
COUNTERS_FILE = "counters.csv"
DECISIONS_FILE = "decisions.json"
SUMMARY_FILE = "summary.txt"

_PID = 0  # one simulated machine = one Perfetto "process"


def to_perfetto(trace: Trace) -> dict:
    """Render the trace as a Chrome/Perfetto ``trace_event`` document."""
    events: list[dict] = [{
        "name": "process_name", "ph": "M", "pid": _PID,
        "args": {"name": "simulated CMP"},
    }]
    for core in range(trace.num_cores):
        events.append({
            "name": "thread_name", "ph": "M", "pid": _PID, "tid": core,
            "args": {"name": f"core {core}"},
        })
        events.append({
            "name": "thread_sort_index", "ph": "M", "pid": _PID,
            "tid": core, "args": {"sort_index": core},
        })
    for span in trace.spans:
        events.append({
            "name": span.state, "cat": "timeline", "ph": "X",
            "pid": _PID, "tid": span.core,
            "ts": span.start, "dur": span.cycles,
            "args": {"agent": span.agent, "detail": span.detail},
        })
    for sample in trace.samples:
        events.append({
            "name": "active_cores", "cat": "counters", "ph": "C",
            "pid": _PID, "ts": sample.cycle,
            "args": {"active_cores": sample.active_cores},
        })
        events.append({
            "name": "bus_busy_cycles", "cat": "counters", "ph": "C",
            "pid": _PID, "ts": sample.cycle,
            "args": {"bus_busy_cycles": sample.bus_busy_cycles},
        })
    for mark in trace.marks:
        events.append({
            "name": mark.name, "cat": mark.kind, "ph": "i",
            "pid": _PID, "ts": mark.cycle, "s": "g",
            "args": dict(mark.args),
        })
    for decision in trace.decisions:
        events.append({
            "name": f"FDT decision: {decision.kernel_name}",
            "cat": "fdt", "ph": "i", "pid": _PID,
            "ts": decision.decided_at, "s": "g",
            "args": decision.to_dict(),
        })
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "tool": "repro.trace",
            "time_unit": "1 viewer us = 1 simulated cpu cycle",
            "dropped_spans": trace.dropped_spans,
            "dropped_samples": trace.dropped_samples,
            "final_cycle": trace.final_cycle,
        },
    }


def perfetto_json(trace: Trace) -> str:
    return json.dumps(to_perfetto(trace), indent=None,
                      separators=(",", ":"))


def counters_csv(trace: Trace) -> str:
    """The sampled counter series as CSV with per-interval rates."""
    header = ("cycle,active_cores,bus_busy_cycles,bus_utilization,"
              "bus_transfers,l3_misses,l3_accesses,l3_miss_rate,"
              "lock_acquisitions,retired_instructions,ipc")
    lines = [header]
    prev_cycle = 0
    prev_busy = 0
    prev_misses = 0
    prev_accesses = 0
    prev_retired = 0
    for s in trace.samples:
        interval = s.cycle - prev_cycle
        bus_util = ((s.bus_busy_cycles - prev_busy) / interval
                    if interval > 0 else 0.0)
        d_accesses = s.l3_accesses - prev_accesses
        miss_rate = ((s.l3_misses - prev_misses) / d_accesses
                     if d_accesses > 0 else 0.0)
        ipc = ((s.retired_instructions - prev_retired) / interval
               if interval > 0 else 0.0)
        lines.append(
            f"{s.cycle},{s.active_cores},{s.bus_busy_cycles},"
            f"{min(1.0, bus_util):.6f},{s.bus_transfers},{s.l3_misses},"
            f"{s.l3_accesses},{miss_rate:.6f},{s.lock_acquisitions},"
            f"{s.retired_instructions},{ipc:.6f}")
        prev_cycle = s.cycle
        prev_busy = s.bus_busy_cycles
        prev_misses = s.l3_misses
        prev_accesses = s.l3_accesses
        prev_retired = s.retired_instructions
    return "\n".join(lines) + "\n"


def decisions_json(trace: Trace) -> str:
    """The FDT decision log as standalone strict JSON."""
    return json.dumps({"decisions": [d.to_dict()
                                     for d in trace.decisions]},
                      indent=2)


def text_summary(trace: Trace) -> str:
    """A terminal-friendly digest of the recorded trace."""
    out: list[str] = []
    out.append(f"trace: {len(trace.spans)} spans, "
               f"{len(trace.samples)} counter samples, "
               f"{len(trace.marks)} marks, "
               f"{len(trace.decisions)} FDT decision(s); "
               f"final cycle {trace.final_cycle:,}")
    if trace.dropped_spans or trace.dropped_samples:
        out.append(f"  (dropped past max_events: {trace.dropped_spans} "
                   f"spans, {trace.dropped_samples} samples)")

    out.append("")
    out.append("cycles by state (all cores):")
    for state in SPAN_STATES:
        spans = trace.spans_of_state(state)
        if not spans:
            continue
        cycles = sum(s.cycles for s in spans)
        cores = len({s.core for s in spans})
        out.append(f"  {state:<18} {cycles:>14,} cycles in "
                   f"{len(spans):>7,} spans on {cores} core(s)")

    if trace.samples:
        last = trace.samples[-1]
        peak = max(s.active_cores for s in trace.samples)
        out.append("")
        out.append(f"counters at last sample (cycle {last.cycle:,}): "
                   f"bus busy {last.bus_busy_cycles:,}, "
                   f"L3 {last.l3_misses:,}/{last.l3_accesses:,} misses, "
                   f"{last.lock_acquisitions:,} lock acquisitions; "
                   f"peak active cores {peak}")

    for d in trace.decisions:
        out.append("")
        out.append(f"FDT decision for {d.kernel_name} ({d.mode}): "
                   f"{d.chosen_threads} threads at cycle "
                   f"{d.decided_at:,}")
        out.append(f"  trained {d.trained_iterations} iters "
                   f"({d.stop_reason}); T_CS {d.t_cs:.1f}, "
                   f"T_NoCS {d.t_nocs:.1f}, BU_1 {d.bu1:.2%}")
        out.append(f"  P_CS {d.p_cs}, P_BW {d.p_bw}, P_FDT {d.p_fdt} "
                   f"(clamp {d.num_slots})")
    return "\n".join(out)


def write_artifacts(trace: Trace, out_dir: str | Path) -> dict[str, Path]:
    """Write every exporter's output into ``out_dir``.

    Returns the artifact paths keyed by kind (``perfetto``,
    ``counters``, ``decisions``, ``summary``).
    """
    root = Path(out_dir)
    root.mkdir(parents=True, exist_ok=True)
    paths = {
        "perfetto": root / PERFETTO_FILE,
        "counters": root / COUNTERS_FILE,
        "decisions": root / DECISIONS_FILE,
        "summary": root / SUMMARY_FILE,
    }
    paths["perfetto"].write_text(perfetto_json(trace), encoding="utf-8")
    paths["counters"].write_text(counters_csv(trace), encoding="utf-8")
    paths["decisions"].write_text(decisions_json(trace) + "\n",
                                  encoding="utf-8")
    paths["summary"].write_text(text_summary(trace) + "\n",
                                encoding="utf-8")
    return paths
