"""The trace recorder: one observer turning machine events into a Trace.

A :class:`TraceRecorder` is attached by :class:`~repro.sim.machine.
Machine` when its config carries an enabled
:class:`~repro.sim.config.TraceConfig`.  It implements every
:class:`~repro.trace.events.TraceHooks` method plus the event queue's
``on_advance`` sampling callback, and owns the in-flight state the
timeline needs (open lock-wait / critical-section / barrier-wait
intervals keyed by agent).

The recorder is a pure observer: it reads machine counters and appends
to its :class:`~repro.trace.data.Trace`, never schedules events, and
never mutates machine state — simulated cycle counts are bit-identical
with a recorder attached or not (``tests/test_trace_parity.py``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.trace.data import (
    STATE_BARRIER_WAIT,
    STATE_COMPUTE,
    STATE_CRITICAL_SECTION,
    STATE_LOCK_SPIN,
    STATE_MEMORY_STALL,
    CounterSample,
    FdtDecisionRecord,
    Mark,
    Span,
    Trace,
)
from repro.trace.events import TraceHooks

if TYPE_CHECKING:  # pragma: no cover - import cycle guards
    from repro.fdt.estimators import Estimates
    from repro.fdt.training import TrainingLog, TrainingSample
    from repro.sim.config import TraceConfig
    from repro.sim.machine import Machine


class TraceRecorder(TraceHooks):
    """Records timeline spans, counter samples, and FDT decisions."""

    def __init__(self, config: "TraceConfig", machine: "Machine") -> None:
        self.config = config
        self.machine = machine
        self.data = Trace(config=config,
                          num_cores=machine.config.num_cores)
        #: Next counter-sample boundary cycle.
        self._next_sample = config.sample_interval
        #: Open lock-wait intervals: (agent, lock_id) -> spin start.
        self._lock_waits: dict[tuple[int, int], int] = {}
        #: Open critical sections: (agent, lock_id) -> grant cycle.
        self._held_since: dict[tuple[int, int], int] = {}
        #: Open barrier waits: (agent, barrier_id) -> arrival cycle.
        self._barrier_waits: dict[tuple[int, int], int] = {}

    # -- span / mark plumbing ------------------------------------------------

    def _core_of(self, agent: int) -> int:
        return self.machine.core_of_agent(agent)

    def _add_span(self, core: int, agent: int, state: str, start: int,
                  end: int, detail: str = "") -> None:
        if end <= start or not self.config.timeline:
            return
        data = self.data
        if end > data.final_cycle:
            data.final_cycle = end
        if len(data.spans) >= self.config.max_events:
            data.dropped_spans += 1
            return
        data.spans.append(Span(core=core, agent=agent, state=state,
                               start=start, end=end, detail=detail))

    def _add_mark(self, kind: str, name: str, cycle: int,
                  args: dict | None = None) -> None:
        self.data.marks.append(Mark(kind=kind, name=name, cycle=cycle,
                                    args=args or {}))
        if cycle > self.data.final_cycle:
            self.data.final_cycle = cycle

    # -- counter sampling (driven from the event queue) -----------------------

    def on_advance(self, now: int) -> None:
        """The event queue is about to advance to cycle ``now``.

        Emits one :class:`CounterSample` per crossed sample boundary;
        counter values reflect every event processed strictly before
        the boundary, which is deterministic because the queue itself
        is.
        """
        while self._next_sample <= now:
            self._emit_sample(self._next_sample)
            self._next_sample += self.config.sample_interval

    def _emit_sample(self, cycle: int) -> None:
        data = self.data
        if len(data.samples) >= self.config.max_events:
            data.dropped_samples += 1
            return
        m = self.machine
        bus = m.memsys.bus.stats
        data.samples.append(CounterSample(
            cycle=cycle,
            active_cores=sum(1 for c in m.cores if not c.is_idle),
            bus_busy_cycles=bus.busy_cycles,
            bus_transfers=bus.transfers,
            l3_misses=m.memsys.l3.misses,
            l3_accesses=m.memsys.l3.accesses,
            lock_acquisitions=m.locks.stats.acquisitions,
            retired_instructions=sum(c.retired_instructions
                                     for c in m.cores),
        ))
        if cycle > data.final_cycle:
            data.final_cycle = cycle

    # -- region / thread lifecycle --------------------------------------------

    def on_region_begin(self, num_threads: int, now: int) -> None:
        self._add_mark("region", f"region-begin({num_threads} threads)",
                       now, {"num_threads": num_threads})

    def on_region_end(self, now: int) -> None:
        self._add_mark("region", "region-end", now)

    def on_thread_start(self, core: int, agent: int, now: int) -> None:
        self._add_mark("thread", f"thread-{agent}-start", now,
                       {"core": core, "agent": agent})

    def on_thread_exit(self, core: int, agent: int, now: int) -> None:
        self._add_mark("thread", f"thread-{agent}-exit", now,
                       {"core": core, "agent": agent})

    # -- core execution ----------------------------------------------------------

    def on_compute(self, core: int, agent: int, start: int,
                   end: int) -> None:
        self._add_span(core, agent, STATE_COMPUTE, start, end)

    # -- memory ------------------------------------------------------------------

    def on_mem_access(self, core: int, line: int, is_write: bool,
                      start: int, end: int) -> None:
        if end - start < self.config.min_mem_stall_cycles:
            return
        kind = "store" if is_write else "load"
        self._add_span(core, core, STATE_MEMORY_STALL, start, end,
                       detail=f"{kind} line {line:#x}")

    # -- locks --------------------------------------------------------------------

    def on_lock_spin_begin(self, lock_id: int, agent: int,
                           now: int) -> None:
        self._lock_waits[(agent, lock_id)] = now

    def on_lock_acquired(self, lock_id: int, agent: int,
                         grant: int) -> None:
        spin_since = self._lock_waits.pop((agent, lock_id), None)
        if spin_since is not None:
            self._add_span(self._core_of(agent), agent, STATE_LOCK_SPIN,
                           spin_since, grant, detail=f"lock {lock_id}")
        self._held_since[(agent, lock_id)] = grant

    def on_lock_released(self, lock_id: int, agent: int, now: int) -> None:
        grant = self._held_since.pop((agent, lock_id), None)
        if grant is not None:
            self._add_span(self._core_of(agent), agent,
                           STATE_CRITICAL_SECTION, grant, now,
                           detail=f"lock {lock_id}")

    # -- barriers ---------------------------------------------------------------------

    def on_barrier_arrive(self, barrier_id: int, agent: int,
                          now: int) -> None:
        self._barrier_waits[(agent, barrier_id)] = now

    def on_barrier_release(self, barrier_id: int,
                           releases: list[tuple[int, int]],
                           now: int) -> None:
        for agent, release in releases:
            arrived = self._barrier_waits.pop((agent, barrier_id), None)
            if arrived is not None:
                self._add_span(self._core_of(agent), agent,
                               STATE_BARRIER_WAIT, arrived, release,
                               detail=f"barrier {barrier_id}")

    # -- FDT --------------------------------------------------------------------------

    def on_training_sample(self, kernel_name: str,
                           sample: "TrainingSample") -> None:
        if not self.config.decisions:
            return
        self._add_mark("training", f"{kernel_name} iter {sample.iteration}",
                       self.machine.events.now, {
                           "iteration": sample.iteration,
                           "total_cycles": sample.total_cycles,
                           "cs_cycles": sample.cs_cycles,
                           "bus_busy_cycles": sample.bus_busy_cycles,
                       })

    def on_fdt_decision(self, kernel_name: str, policy_name: str,
                        mode: str, log: "TrainingLog",
                        estimates: "Estimates", chosen_threads: int,
                        num_slots: int, now: int) -> None:
        if not self.config.decisions:
            return
        self.data.decisions.append(FdtDecisionRecord(
            kernel_name=kernel_name,
            policy_name=policy_name,
            mode=mode,
            num_slots=num_slots,
            total_iterations=log.total_iterations,
            trained_iterations=log.trained_iterations,
            stop_reason=log.stop_reason,
            samples=tuple(log.samples),
            t_cs=estimates.t_cs,
            t_nocs=estimates.t_nocs,
            bu1=estimates.bu1,
            p_cs_real=estimates.p_cs_real,
            p_bw_real=estimates.p_bw_real,
            p_cs=estimates.p_cs,
            p_bw=estimates.p_bw,
            p_fdt=estimates.p_fdt,
            chosen_threads=chosen_threads,
            decided_at=now,
        ))
        self._add_mark("decision", f"{kernel_name}: {chosen_threads} threads",
                       now, {
                           "kernel": kernel_name,
                           "mode": mode,
                           "p_cs": estimates.p_cs,
                           "p_bw": estimates.p_bw,
                           "p_fdt": estimates.p_fdt,
                           "chosen_threads": chosen_threads,
                       })

    def on_app_begin(self, app_name: str, policy_name: str,
                     now: int) -> None:
        self._add_mark("app", f"{app_name} under {policy_name}", now,
                       {"app": app_name, "policy": policy_name})

    def on_kernel_complete(self, kernel_name: str, threads: int,
                           training_cycles: int, execution_cycles: int,
                           now: int) -> None:
        self._add_mark("kernel", f"{kernel_name} done", now, {
            "kernel": kernel_name,
            "threads": threads,
            "training_cycles": training_cycles,
            "execution_cycles": execution_cycles,
        })
