"""The recorded trace: spans, counter samples, marks, FDT decisions.

Everything in this module is plain recorded data plus lossless
``to_dict`` encoders — the exporters (:mod:`repro.trace.export`) render
these structures, the recorder (:mod:`repro.trace.recorder`) fills
them, and nothing here touches the simulator.

The one behavioral piece is :meth:`FdtDecisionRecord.replay`, which
re-runs the estimation stage on the decision's own recorded samples —
the audit trail the decision log exists for: a logged thread-count
choice must be reproducible from its logged inputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.fdt.training import TrainingSample
from repro.sim.config import TraceConfig

#: Timeline span states, in display order.
STATE_COMPUTE = "compute"
STATE_CRITICAL_SECTION = "critical-section"
STATE_LOCK_SPIN = "lock-spin"
STATE_BARRIER_WAIT = "barrier-wait"
STATE_MEMORY_STALL = "memory-stall"

SPAN_STATES = (
    STATE_COMPUTE,
    STATE_CRITICAL_SECTION,
    STATE_LOCK_SPIN,
    STATE_BARRIER_WAIT,
    STATE_MEMORY_STALL,
)


@dataclass(frozen=True, slots=True)
class Span:
    """One contiguous per-core state interval ``[start, end)``."""

    core: int
    agent: int
    state: str
    start: int
    end: int
    #: State-specific detail: lock/barrier id, memory line, instruction
    #: count — whatever names the span in a viewer.
    detail: str = ""

    @property
    def cycles(self) -> int:
        return self.end - self.start

    def to_dict(self) -> dict:
        return {
            "core": self.core,
            "agent": self.agent,
            "state": self.state,
            "start": self.start,
            "end": self.end,
            "detail": self.detail,
        }


@dataclass(frozen=True, slots=True)
class CounterSample:
    """Cumulative machine counters at one sample cycle.

    Counters are stored cumulative (exactly as the machine keeps them);
    per-interval rates are derived at export time by differencing
    consecutive samples.
    """

    cycle: int
    active_cores: int
    bus_busy_cycles: int
    bus_transfers: int
    l3_misses: int
    l3_accesses: int
    lock_acquisitions: int
    retired_instructions: int

    def to_dict(self) -> dict:
        return {
            "cycle": self.cycle,
            "active_cores": self.active_cores,
            "bus_busy_cycles": self.bus_busy_cycles,
            "bus_transfers": self.bus_transfers,
            "l3_misses": self.l3_misses,
            "l3_accesses": self.l3_accesses,
            "lock_acquisitions": self.lock_acquisitions,
            "retired_instructions": self.retired_instructions,
        }


@dataclass(frozen=True, slots=True)
class Mark:
    """An instant annotation: region/app/kernel boundaries, training
    samples — anything without a duration."""

    kind: str
    name: str
    cycle: int
    args: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {"kind": self.kind, "name": self.name,
                "cycle": self.cycle, "args": dict(self.args)}


@dataclass(frozen=True, slots=True)
class FdtDecisionRecord:
    """One FDT thread-count decision with its complete provenance.

    Carries the raw training samples, the derived measurements
    (T_CS/T_NoCS/BU_1), every intermediate of the Eq. 3/5/7 arithmetic,
    and the chosen thread count — enough to re-derive the decision from
    the record alone (:meth:`replay`).
    """

    kernel_name: str
    policy_name: str
    #: FDT mode: ``"sat"`` | ``"bat"`` | ``"sat+bat"``.
    mode: str
    #: Hardware thread slots (the clamp in Eq. 7).
    num_slots: int
    total_iterations: int
    trained_iterations: int
    stop_reason: str
    #: The raw per-iteration training measurements.
    samples: tuple[TrainingSample, ...]
    # -- derived measurements (Sections 4.2.2 / 5.2) -------------------
    t_cs: float
    t_nocs: float
    bu1: float
    # -- model arithmetic (Eq. 3 / Eq. 5 / Eq. 7) ----------------------
    p_cs_real: float
    p_bw_real: float
    p_cs: int
    p_bw: int
    p_fdt: int
    #: What the policy actually ran the execution phase with.
    chosen_threads: int
    #: Machine cycle at which the decision was taken.
    decided_at: int

    def replay(self) -> int:
        """Recompute the thread-count decision from the recorded samples.

        Rebuilds a training log from :attr:`samples`, re-runs the
        estimation stage, and applies this record's mode — the returned
        count must equal :attr:`chosen_threads` for any faithful record.
        """
        from repro.fdt.estimators import estimate
        from repro.fdt.training import TrainingConfig, TrainingLog

        log = TrainingLog(config=TrainingConfig(),
                          total_iterations=max(1, self.total_iterations),
                          num_cores=self.num_slots,
                          samples=list(self.samples))
        est = estimate(log, self.num_slots)
        if self.mode == "sat":
            return est.p_cs
        if self.mode == "bat":
            return est.p_bw
        return est.p_fdt

    def to_dict(self) -> dict:
        return {
            "kernel_name": self.kernel_name,
            "policy_name": self.policy_name,
            "mode": self.mode,
            "num_slots": self.num_slots,
            "total_iterations": self.total_iterations,
            "trained_iterations": self.trained_iterations,
            "stop_reason": self.stop_reason,
            "samples": [
                {"iteration": s.iteration,
                 "total_cycles": s.total_cycles,
                 "cs_cycles": s.cs_cycles,
                 "bus_busy_cycles": s.bus_busy_cycles}
                for s in self.samples],
            "t_cs": self.t_cs,
            "t_nocs": self.t_nocs,
            "bu1": self.bu1,
            "p_cs_real": self.p_cs_real if self.p_cs_real != float("inf")
            else "inf",
            "p_bw_real": self.p_bw_real if self.p_bw_real != float("inf")
            else "inf",
            "p_cs": self.p_cs,
            "p_bw": self.p_bw,
            "p_fdt": self.p_fdt,
            "chosen_threads": self.chosen_threads,
            "decided_at": self.decided_at,
        }


@dataclass(slots=True)
class Trace:
    """Everything one traced machine recorded."""

    config: TraceConfig
    num_cores: int
    spans: list[Span] = field(default_factory=list)
    samples: list[CounterSample] = field(default_factory=list)
    marks: list[Mark] = field(default_factory=list)
    decisions: list[FdtDecisionRecord] = field(default_factory=list)
    #: Spans/samples discarded after :attr:`TraceConfig.max_events`.
    dropped_spans: int = 0
    dropped_samples: int = 0
    #: Last cycle the recorder observed.
    final_cycle: int = 0

    # -- aggregate views -----------------------------------------------------

    def spans_of_state(self, state: str) -> list[Span]:
        return [s for s in self.spans if s.state == state]

    def state_cycles(self, state: str) -> int:
        """Total cycles across all cores spent in ``state``."""
        return sum(s.cycles for s in self.spans if s.state == state)

    def state_cycles_by_core(self, state: str) -> dict[int, int]:
        out: dict[int, int] = {}
        for s in self.spans:
            if s.state == state:
                out[s.core] = out.get(s.core, 0) + s.cycles
        return out

    @property
    def critical_section_cycles(self) -> int:
        """Summed critical-section span cycles (lock hold time)."""
        return self.state_cycles(STATE_CRITICAL_SECTION)
