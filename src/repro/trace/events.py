"""The event-emission hook interface between the simulator and the tracer.

The machine components (:class:`~repro.sim.core.Core`,
:class:`~repro.sim.memsys.MemorySystem`,
:class:`~repro.runtime.locks.LockManager`,
:class:`~repro.runtime.barriers.BarrierManager`,
:class:`~repro.sim.machine.Machine`) and the FDT layer
(:class:`~repro.fdt.training.TrainingLog`,
:class:`~repro.fdt.policies.FdtPolicy`,
:func:`~repro.fdt.runner.run_application`) call these hooks, guarded by
a single ``is None`` test per site — the whole cost when no tracer is
attached.  Hooks are pure observers: they must not schedule events or
mutate machine state, so simulated timing is bit-identical with a
tracer on or off.

``agent`` is always the hardware thread slot (the id locks and barriers
are keyed by); ``core`` is a physical core index; cycle arguments are
absolute machine cycles.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - avoid runtime import cycles
    from repro.fdt.estimators import Estimates
    from repro.fdt.training import TrainingLog, TrainingSample


class TraceHooks:
    """No-op base implementation of every trace hook.

    Subclass and override what you need; :class:`repro.trace.recorder.
    TraceRecorder` overrides all of them.  Keeping a concrete no-op base
    (rather than an ABC) lets tests attach partial observers.
    """

    # -- region / thread lifecycle -----------------------------------------

    def on_region_begin(self, num_threads: int, now: int) -> None:
        """A parallel region with ``num_threads`` threads is starting."""

    def on_region_end(self, now: int) -> None:
        """The region completed, join overhead included."""

    def on_thread_start(self, core: int, agent: int, now: int) -> None:
        """``agent``'s program begins executing on ``core``."""

    def on_thread_exit(self, core: int, agent: int, now: int) -> None:
        """``agent``'s program is exhausted."""

    # -- core execution ------------------------------------------------------

    def on_compute(self, core: int, agent: int, start: int,
                   end: int) -> None:
        """A compute op occupies ``core`` over ``[start, end)``."""

    # -- memory --------------------------------------------------------------

    def on_mem_access(self, core: int, line: int, is_write: bool,
                      start: int, end: int) -> None:
        """``core`` stalled on the memory system over ``[start, end)``
        resolving ``line`` (L2 misses and coherence upgrades; private
        cache hits are not stalls and are not reported)."""

    # -- locks ---------------------------------------------------------------

    def on_lock_spin_begin(self, lock_id: int, agent: int,
                           now: int) -> None:
        """``agent`` queued on a held lock and begins spinning."""

    def on_lock_acquired(self, lock_id: int, agent: int,
                         grant: int) -> None:
        """``agent`` holds ``lock_id`` from cycle ``grant``."""

    def on_lock_released(self, lock_id: int, agent: int, now: int) -> None:
        """``agent`` released ``lock_id`` at cycle ``now``."""

    # -- barriers ---------------------------------------------------------------

    def on_barrier_arrive(self, barrier_id: int, agent: int,
                          now: int) -> None:
        """``agent`` arrived at ``barrier_id`` and begins waiting."""

    def on_barrier_release(self, barrier_id: int,
                           releases: list[tuple[int, int]],
                           now: int) -> None:
        """The last arriver completed a generation; ``releases`` lists
        ``(agent, release_cycle)`` for every participant."""

    # -- FDT ----------------------------------------------------------------------

    def on_training_sample(self, kernel_name: str,
                           sample: "TrainingSample") -> None:
        """The instrumented training loop recorded one iteration.

        No cycle argument: :class:`~repro.fdt.training.TrainingLog` has
        no clock of its own — observers with machine access may read
        ``machine.events.now``."""

    def on_fdt_decision(self, kernel_name: str, policy_name: str,
                        mode: str, log: "TrainingLog",
                        estimates: "Estimates", chosen_threads: int,
                        num_slots: int, now: int) -> None:
        """The estimation stage chose ``chosen_threads`` for a kernel."""

    def on_app_begin(self, app_name: str, policy_name: str,
                     now: int) -> None:
        """An application (sequence of kernels) starts executing."""

    def on_kernel_complete(self, kernel_name: str, threads: int,
                           training_cycles: int, execution_cycles: int,
                           now: int) -> None:
        """One kernel of the application ran to completion."""
