"""Exception hierarchy for the repro package.

Every exception raised deliberately by this library derives from
:class:`ReproError` so callers can catch library failures with a single
``except`` clause while letting programming errors (``TypeError`` etc.)
propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """A machine or workload configuration is invalid."""


class SimulationError(ReproError):
    """The simulator reached an inconsistent state."""


class DeadlockError(SimulationError):
    """No events remain but one or more threads have not finished.

    Raised by :class:`repro.sim.machine.Machine` when the event queue
    drains while cores are still blocked on locks or barriers, which
    indicates a synchronization bug in the workload program.
    """


class ProgramError(ReproError):
    """A thread program emitted an invalid instruction sequence."""


class TrainingError(ReproError):
    """FDT training could not produce an estimate."""


class WorkloadError(ReproError):
    """A workload was asked for an unsupported configuration."""


class JobError(ReproError):
    """A batch job could not be specified or executed.

    Raised by :mod:`repro.jobs` for invalid job specs and for jobs that
    failed (or timed out) in every execution attempt.
    """


class FaultError(ReproError):
    """A fault-injection plan is malformed or a chaos run misconfigured.

    Raised by :mod:`repro.faults` for invalid plans; never raised *by*
    an injected fault (those surface as the host-layer exceptions the
    site would see from a real failure).
    """


class ServeError(ReproError):
    """The experiment server (:mod:`repro.serve`) hit a fatal condition."""


class ServeRequestError(ServeError):
    """A serving request could not be parsed or validated (HTTP 400)."""


class ServeClientError(ServeError):
    """A serve client call failed (connection error or non-2xx response).

    Carries the HTTP status code (``0`` for transport failures) so
    callers can distinguish shed (429) and timeout (504) responses.
    """

    def __init__(self, message: str, status: int = 0,
                 body: dict | None = None) -> None:
        super().__init__(message)
        self.status = status
        self.body = body if body is not None else {}
