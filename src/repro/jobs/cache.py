"""Content-addressed, schema-versioned on-disk result cache.

Layout::

    <root>/v<SCHEMA_VERSION>/<key[:2]>/<key>.json

Each entry is a strict-JSON document ``{"schema", "key", "spec",
"result"}`` — the spec is stored alongside the result so entries are
self-describing (``repro``-independent tools can inspect what a hash
means).  The schema version appears both in the directory name and
inside the file: entries written by an older (or newer) encoding are
simply never found, so stale results self-invalidate without any
migration logic.

Corruption is treated as a miss, never an error: a truncated file, a
garbage byte, a schema/key mismatch, or an unreadable entry makes
:meth:`ResultCache.get` return ``None`` (after best-effort deletion of
the bad file) and the caller recomputes.  Writes are atomic
(temp file + ``os.replace``) so a crashed writer can leave at worst a
stray temp file, never a half-written entry under the final name.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path

from repro.jobs.spec import SCHEMA_VERSION


def default_cache_dir() -> Path:
    """The cache root used when no ``--cache-dir`` is given.

    ``$REPRO_CACHE_DIR`` wins, then ``$XDG_CACHE_HOME/repro``, then
    ``~/.cache/repro``.
    """
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    if xdg:
        return Path(xdg) / "repro"
    return Path.home() / ".cache" / "repro"


class ResultCache:
    """Key -> serialized-result store under one root directory."""

    def __init__(self, root: str | Path | None = None) -> None:
        self._root = Path(root) if root is not None else default_cache_dir()

    @property
    def root(self) -> Path:
        return self._root

    def path_for(self, key: str) -> Path:
        """The entry file a key maps to (whether or not it exists)."""
        return self._root / f"v{SCHEMA_VERSION}" / key[:2] / f"{key}.json"

    def get(self, key: str) -> dict | None:
        """Return the stored result dict, or ``None`` on miss/corruption."""
        path = self.path_for(key)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            return None
        except (OSError, ValueError):
            self._discard(path)
            return None
        if (not isinstance(payload, dict)
                or payload.get("schema") != SCHEMA_VERSION
                or payload.get("key") != key
                or not isinstance(payload.get("result"), dict)):
            self._discard(path)
            return None
        return payload["result"]

    def put(self, key: str, spec: dict, result: dict) -> None:
        """Atomically store a result (spec kept for self-description)."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "schema": SCHEMA_VERSION,
            "key": key,
            "spec": spec,
            "result": result,
        }
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=f".{key[:8]}-", suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, sort_keys=True)
            os.replace(tmp_name, path)
        except BaseException:
            self._discard(Path(tmp_name))
            raise

    def __len__(self) -> int:
        """Number of entries currently stored (current schema only)."""
        version_dir = self._root / f"v{SCHEMA_VERSION}"
        if not version_dir.is_dir():
            return 0
        return sum(1 for _ in version_dir.glob("*/*.json"))

    @staticmethod
    def _discard(path: Path) -> None:
        try:
            path.unlink()
        except OSError:
            pass
