"""Content-addressed, schema-versioned on-disk result cache.

Layout::

    <root>/v<SCHEMA_VERSION>/<key[:2]>/<key>.json

Each entry is a strict-JSON document ``{"schema", "key", "spec",
"result"}`` — the spec is stored alongside the result so entries are
self-describing (``repro``-independent tools can inspect what a hash
means).  The schema version appears both in the directory name and
inside the file: entries written by an older (or newer) encoding are
simply never found, so stale results self-invalidate without any
migration logic.

Corruption is treated as a miss, never an error: a truncated file, a
garbage byte, a schema/key mismatch, or an unreadable entry makes
:meth:`ResultCache.get` return ``None`` and the caller recomputes.  The
bad file is *quarantined* — moved aside into ``<root>/quarantine/``
(outside the versioned lookup tree, so it can never be read again),
counted in ``repro_jobs_cache_quarantined_total`` — rather than
silently deleted, so a chaos run or an operator can audit exactly what
the store refused to serve.  Writes are atomic (temp file +
``os.replace``) so a crashed writer can leave at worst a stray temp
file, never a half-written entry under the final name.

Both the read and write paths carry fault-injection hooks
(``cache.read``, ``cache.write`` — see :mod:`repro.faults`): injected
I/O errors flow through the same ``except OSError`` handling as real
ones, and injected torn/corrupt payloads must be caught by the same
validation that guards against real disk rot.

Two lookup flavors exist because two callers with different contracts
share the store.  :meth:`ResultCache.get` is the *batch* path: it may
repair the store (deleting corrupt entries) and therefore takes the
write lock when it does.  :meth:`ResultCache.get_or_none` is the
*serving* hit path: strictly read-only — no lock, no deletion, no
state mutation of any kind — so concurrent readers (the server's event
loop vs. its worker threads) never contend on a pure lookup.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
from pathlib import Path

from repro.faults import hooks as fault_hooks
from repro.jobs.spec import SCHEMA_VERSION
from repro.obs.registry import default_registry

#: Subdirectory (under the cache root) corrupt entries are moved into.
QUARANTINE_DIRNAME = "quarantine"


def default_cache_dir() -> Path:
    """The cache root used when no ``--cache-dir`` is given.

    ``$REPRO_CACHE_DIR`` wins, then ``$XDG_CACHE_HOME/repro``, then
    ``~/.cache/repro``.
    """
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    if xdg:
        return Path(xdg) / "repro"
    return Path.home() / ".cache" / "repro"


class ResultCache:
    """Key -> serialized-result store under one root directory."""

    def __init__(self, root: str | Path | None = None) -> None:
        self._root = Path(root) if root is not None else default_cache_dir()
        # Serializes mutations (put, corrupt-entry deletion) between
        # threads sharing one cache object; pure lookups never take it.
        self._write_lock = threading.Lock()

    @property
    def root(self) -> Path:
        return self._root

    def path_for(self, key: str) -> Path:
        """The entry file a key maps to (whether or not it exists)."""
        return self._root / f"v{SCHEMA_VERSION}" / key[:2] / f"{key}.json"

    def get(self, key: str) -> dict | None:
        """Return the stored result dict, or ``None`` on miss/corruption.

        This is the batch path: a corrupt entry is quarantined (under
        the write lock) so the recomputed result can replace it cleanly
        and the bad bytes can never be re-read.
        """
        result = self._read(key)
        if result is None:
            path = self.path_for(key)
            if path.exists():
                with self._write_lock:
                    self._quarantine(path)
        return result

    def get_or_none(self, key: str) -> dict | None:
        """Strictly read-only lookup: the serving fast path.

        Behaves like :meth:`get` for well-formed entries but never
        mutates anything — no write lock, no corrupt-entry deletion, no
        manifest or bookkeeping side effects.  A corrupt entry is simply
        reported as a miss and left for the next batch-path caller (or
        an overwriting :meth:`put`) to repair.
        """
        return self._read(key)

    def put(self, key: str, spec: dict, result: dict) -> None:
        """Atomically store a result (spec kept for self-description)."""
        path = self.path_for(key)
        payload = {
            "schema": SCHEMA_VERSION,
            "key": key,
            "spec": spec,
            "result": result,
        }
        fault_hooks.maybe_raise("cache.write", key=key)
        with self._write_lock:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(
                dir=path.parent, prefix=f".{key[:8]}-", suffix=".tmp")
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    json.dump(payload, handle, sort_keys=True)
                os.replace(tmp_name, path)
            except BaseException:
                self._discard(Path(tmp_name))
                raise

    def _read(self, key: str) -> dict | None:
        """Shared read: ``None`` on miss or on any malformed entry."""
        try:
            fault_hooks.maybe_raise("cache.read", key=key)
            text = fault_hooks.corrupt_text(
                "cache.read", self.path_for(key).read_text(encoding="utf-8"),
                key=key)
            payload = json.loads(text)
        except (OSError, ValueError):
            return None
        if (not isinstance(payload, dict)
                or payload.get("schema") != SCHEMA_VERSION
                or payload.get("key") != key
                or not isinstance(payload.get("result"), dict)):
            return None
        return payload["result"]

    def __len__(self) -> int:
        """Number of entries currently stored (current schema only)."""
        version_dir = self._root / f"v{SCHEMA_VERSION}"
        if not version_dir.is_dir():
            return 0
        return sum(1 for _ in version_dir.glob("*/*.json"))

    # -- quarantine ----------------------------------------------------

    @property
    def quarantine_dir(self) -> Path:
        """Where refused entries land (outside the lookup tree)."""
        return self._root / QUARANTINE_DIRNAME

    def quarantined_count(self) -> int:
        """How many corrupt entries this store has moved aside."""
        if not self.quarantine_dir.is_dir():
            return 0
        return sum(1 for _ in self.quarantine_dir.glob("*.json*"))

    def _quarantine(self, path: Path) -> None:
        """Move a corrupt entry aside so it can never be re-read.

        The destination name keeps the original file name (a numeric
        suffix disambiguates repeat offenders), the move is a rename —
        atomic on one filesystem — and any failure falls back to plain
        deletion: a corrupt entry must leave the lookup tree either way.
        """
        dest = self.quarantine_dir / path.name
        suffix = 0
        while dest.exists():
            suffix += 1
            dest = self.quarantine_dir / f"{path.name}.{suffix}"
        try:
            self.quarantine_dir.mkdir(parents=True, exist_ok=True)
            os.replace(path, dest)
        except OSError:
            self._discard(path)
            return
        default_registry().counter(
            "repro_jobs_cache_quarantined_total",
            "Corrupt result-cache entries moved aside, never re-read."
        ).inc()

    @staticmethod
    def _discard(path: Path) -> None:
        try:
            path.unlink()
        except OSError:
            pass
