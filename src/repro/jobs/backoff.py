"""Exponential backoff with deterministic jitter for job retries.

Retrying transient failures back-to-back just re-hits whatever broke;
classic exponential backoff fixes the pacing but naive ``random``
jitter makes every run unreproducible — the opposite of what a
content-addressed, bit-identical pipeline wants.  Here jitter is
*derived*, not drawn: each delay is scaled by a factor in
``[0.5, 1.0)`` computed from a SHA-256 over ``(seed, key, attempt)``,
so two runs of the same batch sleep identically while distinct keys
still decorrelate (no thundering herd when a shared dependency
recovers).
"""

from __future__ import annotations

import hashlib

#: Defaults used by :class:`~repro.jobs.api.JobRunner`.
DEFAULT_RETRY_BUDGET = 2
DEFAULT_BACKOFF_BASE = 0.05
DEFAULT_BACKOFF_CAP = 2.0


def _jitter_fraction(key: str, attempt: int, seed: int) -> float:
    """Deterministic factor in ``[0.5, 1.0)`` for one (key, attempt)."""
    digest = hashlib.sha256(
        f"{seed}:{key}:{attempt}".encode("utf-8")).digest()
    unit = int.from_bytes(digest[:8], "big") / 2 ** 64
    return 0.5 + unit / 2


def backoff_delay(key: str, attempt: int,
                  base: float = DEFAULT_BACKOFF_BASE,
                  cap: float = DEFAULT_BACKOFF_CAP,
                  seed: int = 0) -> float:
    """Seconds to wait before retry ``attempt`` (1-based) of ``key``."""
    if attempt < 1:
        raise ValueError("attempt is 1-based")
    raw = min(cap, base * 2 ** (attempt - 1))
    return raw * _jitter_fraction(key, attempt, seed)


def backoff_schedule(key: str, budget: int,
                     base: float = DEFAULT_BACKOFF_BASE,
                     cap: float = DEFAULT_BACKOFF_CAP,
                     seed: int = 0) -> list[float]:
    """The full delay sequence a key would sleep through its budget."""
    return [backoff_delay(key, attempt, base=base, cap=cap, seed=seed)
            for attempt in range(1, budget + 1)]
