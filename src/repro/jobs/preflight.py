"""Pre-flight gate: statically verify a job's workload before dispatch.

A batch that deadlocks 40 minutes into a sweep wastes every core it was
scheduled on.  The pre-flight gate runs the static analyzer
(:mod:`repro.check.static`) over a job's workload *before* the job is
dispatched and refuses to run specs whose programs provably hang or
corrupt the lock manager.  Verdicts are content-addressed — hashed from
the workload reference, the analyzed team sizes, and the machine's cost
parameters — and stored in the same :class:`~repro.jobs.cache.
ResultCache` as job results, so a sweep re-analyzes each distinct
workload once, not once per point.

Only *proved* defects block dispatch (:data:`FATAL_KINDS`): barrier
mismatches and structural lock faults.  Potential lock-order cycles and
lints are advisory — the FIFO lock manager may well dodge a latent
inversion, and killing a job over a lint would gate style, not safety.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any

from repro.jobs.spec import SCHEMA_VERSION, JobSpec, config_to_dict

#: Finding kinds that prove the run cannot complete correctly.
FATAL_KINDS = frozenset({
    "static-barrier-count-mismatch",
    "static-barrier-sequence-divergence",
    "static-double-acquire",
    "static-unlock-of-unheld",
    "static-unlock-mismatch",
    "static-held-at-exit",
})

#: Team sizes the gate analyzes: one (priors/pairing), the sanitizer's
#: default contention team, and a wide team (chunk-shape effects).
PREFLIGHT_THREAD_COUNTS = (1, 4, 16)


@dataclass(frozen=True, slots=True)
class PreflightVerdict:
    """Outcome of one pre-flight analysis."""

    workload: str
    ok: bool
    #: kind -> count over all findings (fatal and advisory alike).
    counts: dict[str, int] = field(default_factory=dict)
    #: Messages of the fatal findings (empty when ok).
    fatal: tuple[str, ...] = ()

    def to_dict(self) -> dict[str, Any]:
        return {"workload": self.workload, "ok": self.ok,
                "counts": dict(self.counts), "fatal": list(self.fatal)}

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "PreflightVerdict":
        return cls(workload=str(data["workload"]), ok=bool(data["ok"]),
                   counts={str(k): int(v)
                           for k, v in data.get("counts", {}).items()},
                   fatal=tuple(str(m) for m in data.get("fatal", ())))


def preflight_key(spec: JobSpec) -> str:
    """Content address of a spec's pre-flight verdict.

    Distinct from the job's result key: the verdict depends only on the
    workload, the analyzed team sizes, and the machine (whose cost
    parameters drive the abstract model) — not on the threading policy —
    so every policy variant of one workload shares one verdict.
    """
    payload = {
        "schema": SCHEMA_VERSION,
        "preflight": 1,
        "workload": spec.workload.to_dict(),
        "config": config_to_dict(spec.config),
        "thread_counts": list(PREFLIGHT_THREAD_COUNTS),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def run_preflight(spec: JobSpec) -> PreflightVerdict:
    """Statically analyze a job's workload; never raises on findings."""
    from repro.check.static import analyze_application

    report = analyze_application(spec.workload.build,
                                 thread_counts=PREFLIGHT_THREAD_COUNTS,
                                 config=spec.config)
    counts: dict[str, int] = {}
    fatal: list[str] = []
    for f in report.findings:
        counts[f.kind] = counts.get(f.kind, 0) + 1
        if f.kind in FATAL_KINDS:
            fatal.append(f.message)
    return PreflightVerdict(workload=spec.workload.label,
                            ok=not fatal,
                            counts=counts,
                            fatal=tuple(fatal))
