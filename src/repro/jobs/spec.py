"""Job specifications: one complete simulation, canonically serialized.

A :class:`JobSpec` names everything a run depends on — the workload
(:class:`WorkloadRef`), the threading policy (:class:`PolicySpec`), and
the :class:`~repro.sim.config.MachineConfig` — and nothing it does not.
Because the simulator is deterministic, that triple fully determines the
run's outputs, so its canonical JSON form (sorted keys, no whitespace)
hashed with SHA-256 is a sound content address for the result cache.

The schema version is part of the hashed payload *and* of the cache
directory layout: bump :data:`SCHEMA_VERSION` whenever the simulator's
timing model, the result serialization, or the spec encoding changes,
and every stale cache entry self-invalidates.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, fields
from pathlib import Path

from repro.errors import JobError
from repro.fdt.policies import FdtMode, FdtPolicy, StaticPolicy, ThreadingPolicy
from repro.fdt.runner import Application, AppRunResult, run_application
from repro.sim.config import MachineConfig, SanitizerConfig, TraceConfig

#: Version tag of the job-spec encoding and result serialization.
#: Bump on any change that alters simulated outputs or their encoding.
#: v2: MachineConfig gained the ``trace`` field (in the hashed payload)
#: and result dicts carry the derived metrics of ``RunResult.to_dict``.
SCHEMA_VERSION = 2

_WORKLOAD_KINDS = ("registry", "synthetic")
_POLICY_KINDS = ("static", "fdt", "sat", "bat")


@dataclass(frozen=True, slots=True)
class WorkloadRef:
    """A declarative, hashable reference to an application to build.

    ``kind="registry"`` names a Table 2 workload by its registry name;
    ``kind="synthetic"`` describes a :func:`~repro.workloads.synthetic.
    build_synthetic` kernel by its knobs (the crossover study's case).
    Unlike an ``AppFactory`` callable, a ref can cross process
    boundaries and contributes to the job's content hash.
    """

    name: str
    scale: float = 1.0
    kind: str = "registry"
    # -- synthetic knobs (used only when kind == "synthetic") ----------
    cs_fraction: float = 0.0
    bus_lines: int = 0
    iterations: int = 128
    compute_instr: int = 20_000

    def __post_init__(self) -> None:
        if self.kind not in _WORKLOAD_KINDS:
            raise JobError(f"unknown workload kind {self.kind!r}")
        if not self.name:
            raise JobError("workload name must be non-empty")

    @classmethod
    def registry(cls, name: str, scale: float = 1.0) -> "WorkloadRef":
        """Reference a Table 2 workload by registry name."""
        return cls(name=name, scale=scale)

    @classmethod
    def synthetic(cls, cs_fraction: float = 0.0, bus_lines: int = 0,
                  iterations: int = 128, compute_instr: int = 20_000,
                  name: str = "synthetic") -> "WorkloadRef":
        """Reference a dial-a-limiter synthetic kernel by its knobs."""
        return cls(name=name, kind="synthetic", cs_fraction=cs_fraction,
                   bus_lines=bus_lines, iterations=iterations,
                   compute_instr=compute_instr)

    @property
    def label(self) -> str:
        """Human-readable identity for tables and manifests."""
        if self.kind == "synthetic":
            return (f"{self.name}(cs={self.cs_fraction}, "
                    f"lines={self.bus_lines}, iters={self.iterations})")
        return f"{self.name}@{self.scale:g}"

    def build(self) -> Application:
        """Materialize the application (real computed kernel state)."""
        if self.kind == "synthetic":
            from repro.workloads.synthetic import build_synthetic
            return build_synthetic(cs_fraction=self.cs_fraction,
                                   bus_lines=self.bus_lines,
                                   iterations=self.iterations,
                                   compute_instr=self.compute_instr,
                                   name=self.name)
        from repro.workloads import get
        return get(self.name).build(self.scale)

    def to_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: dict) -> "WorkloadRef":
        return cls(**data)


@dataclass(frozen=True, slots=True)
class PolicySpec:
    """A declarative, hashable reference to a threading policy.

    ``threads`` is meaningful only for ``kind="static"``; ``None`` keeps
    :class:`~repro.fdt.policies.StaticPolicy`'s one-thread-per-core
    default (and its distinct ``static-ncores`` policy name, so the two
    spellings hash — and report — differently, exactly as they do when
    constructed directly).
    """

    kind: str
    threads: int | None = None

    def __post_init__(self) -> None:
        if self.kind not in _POLICY_KINDS:
            raise JobError(f"unknown policy kind {self.kind!r}")
        if self.threads is not None and self.kind != "static":
            raise JobError("threads is only meaningful for static policies")
        if self.threads is not None and self.threads < 1:
            raise JobError("static thread count must be >= 1")

    @classmethod
    def static(cls, threads: int | None = None) -> "PolicySpec":
        return cls(kind="static", threads=threads)

    @classmethod
    def fdt(cls) -> "PolicySpec":
        return cls(kind="fdt")

    @classmethod
    def sat(cls) -> "PolicySpec":
        return cls(kind="sat")

    @classmethod
    def bat(cls) -> "PolicySpec":
        return cls(kind="bat")

    @property
    def label(self) -> str:
        if self.kind == "static":
            return f"static-{self.threads if self.threads else 'ncores'}"
        return self.kind

    def build(self) -> ThreadingPolicy:
        """Materialize the policy object."""
        if self.kind == "static":
            return StaticPolicy(self.threads)
        mode = {"fdt": FdtMode.COMBINED, "sat": FdtMode.SAT,
                "bat": FdtMode.BAT}[self.kind]
        return FdtPolicy(mode)

    def to_dict(self) -> dict:
        return {"kind": self.kind, "threads": self.threads}

    @classmethod
    def from_dict(cls, data: dict) -> "PolicySpec":
        return cls(**data)


def config_to_dict(config: MachineConfig) -> dict:
    """Flatten a machine config to JSON-safe primitives, field by field."""
    out: dict = {}
    for f in fields(MachineConfig):
        value = getattr(config, f.name)
        if f.name == "sanitizer":
            value = None if value is None else _sanitizer_to_dict(value)
        elif f.name == "trace":
            value = None if value is None else _trace_to_dict(value)
        out[f.name] = value
    return out


def config_from_dict(data: dict) -> MachineConfig:
    """Rebuild a machine config from :func:`config_to_dict` output."""
    kwargs = dict(data)
    if kwargs.get("sanitizer") is not None:
        kwargs["sanitizer"] = _sanitizer_from_dict(kwargs["sanitizer"])
    if kwargs.get("trace") is not None:
        kwargs["trace"] = _trace_from_dict(kwargs["trace"])
    return MachineConfig(**kwargs)


def _sanitizer_to_dict(config: SanitizerConfig) -> dict:
    out = {f.name: getattr(config, f.name) for f in fields(SanitizerConfig)}
    out["ignore_address_ranges"] = [
        list(pair) for pair in config.ignore_address_ranges]
    return out


def _sanitizer_from_dict(data: dict) -> SanitizerConfig:
    kwargs = dict(data)
    kwargs["ignore_address_ranges"] = tuple(
        tuple(pair) for pair in kwargs.get("ignore_address_ranges", ()))
    return SanitizerConfig(**kwargs)


def _trace_to_dict(config: TraceConfig) -> dict:
    return {f.name: getattr(config, f.name) for f in fields(TraceConfig)}


def _trace_from_dict(data: dict) -> TraceConfig:
    return TraceConfig(**data)


@dataclass(frozen=True, slots=True)
class JobSpec:
    """One complete simulation: workload x policy x machine."""

    workload: WorkloadRef
    policy: PolicySpec
    config: MachineConfig

    @property
    def label(self) -> str:
        return f"{self.workload.label} under {self.policy.label}"

    def to_dict(self) -> dict:
        return {
            "workload": self.workload.to_dict(),
            "policy": self.policy.to_dict(),
            "config": config_to_dict(self.config),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "JobSpec":
        return cls(
            workload=WorkloadRef.from_dict(data["workload"]),
            policy=PolicySpec.from_dict(data["policy"]),
            config=config_from_dict(data["config"]),
        )

    def key(self) -> str:
        """Stable content hash of the spec (plus the schema version).

        Canonical form: the :meth:`to_dict` payload with sorted keys and
        no whitespace.  Floats serialize via ``repr`` so equal configs
        always produce equal keys.
        """
        payload = {"schema": SCHEMA_VERSION, **self.to_dict()}
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def run(self, trace_dir: str | Path | None = None) -> AppRunResult:
        """Execute the job in this process (deterministic).

        Args:
            trace_dir: when given, the run records a trace
                (:mod:`repro.trace`) and writes its artifacts under
                ``trace_dir/<self.key()>/``.  The returned result is
                bit-identical either way — the tracer is a pure
                observer — so tracing never perturbs the cache.
        """
        app, policy = self.workload.build(), self.policy.build()
        if trace_dir is None:
            return run_application(app, policy, self.config)
        from repro.trace import run_traced, write_artifacts
        traced = run_traced(app, policy, self.config,
                            trace_config=self.config.trace)
        write_artifacts(traced.trace, Path(trace_dir) / self.key())
        return traced.result
