"""Parallel experiment orchestration with a content-addressed cache.

Every paper figure is a grid of independent complete simulations, and
the simulator is deterministic — so a run's identity is its inputs.
This package turns (workload, scale, machine config, policy) into a
:class:`JobSpec` with a stable content hash, stores results in an
on-disk :class:`ResultCache`, executes misses serially or on a process
pool, and records everything in a :class:`RunManifest`.

Typical use::

    from repro.jobs import JobRunner, JobSpec, PolicySpec, ResultCache, WorkloadRef

    runner = JobRunner(cache=ResultCache(), jobs=8)
    spec = JobSpec(workload=WorkloadRef("PageMine", scale=0.5),
                   policy=PolicySpec.fdt(),
                   config=MachineConfig.asplos08_baseline())
    result = runner.run_one(spec)       # AppRunResult, maybe from cache
    print(runner.manifest.summary())
"""

from repro.jobs.api import JobResolution, JobRunner
from repro.jobs.cache import ResultCache, default_cache_dir
from repro.jobs.executor import JobOutcome, execute_jobs
from repro.jobs.manifest import ManifestEntry, RunManifest
from repro.jobs.preflight import (
    FATAL_KINDS,
    PreflightVerdict,
    preflight_key,
    run_preflight,
)
from repro.jobs.results import app_result_from_dict, app_result_to_dict
from repro.jobs.spec import (
    SCHEMA_VERSION,
    JobSpec,
    PolicySpec,
    WorkloadRef,
    config_from_dict,
    config_to_dict,
)

__all__ = [
    "SCHEMA_VERSION",
    "JobResolution",
    "JobRunner",
    "JobSpec",
    "PolicySpec",
    "WorkloadRef",
    "ResultCache",
    "RunManifest",
    "ManifestEntry",
    "JobOutcome",
    "FATAL_KINDS",
    "PreflightVerdict",
    "preflight_key",
    "run_preflight",
    "execute_jobs",
    "default_cache_dir",
    "app_result_to_dict",
    "app_result_from_dict",
    "config_to_dict",
    "config_from_dict",
]
