"""Job execution backends: in-process serial and process-pool parallel.

Every complete simulation is independent, so a batch of jobs is
embarrassingly parallel.  :func:`execute_jobs` picks the backend:

* ``jobs <= 1`` (or a single spec) runs serially in-process;
* otherwise a :class:`concurrent.futures.ProcessPoolExecutor` fans the
  specs out, with three failure safety valves:

  - **spawn failure** (the pool cannot be created or fed — restricted
    sandboxes, missing semaphores): the whole batch gracefully falls
    back to the serial backend;
  - **crashed workers** (``BrokenProcessPool``): the affected jobs are
    retried in a fresh pool up to ``retries`` extra rounds, then
    reported as failed — never re-run in-process, since whatever killed
    the worker would kill the caller too;
  - **per-job timeout**: a job that produces no result within
    ``timeout`` seconds of being waited on is reported as timed out and
    its future cancelled (best effort — an already-running worker task
    cannot be interrupted, so the pool is shut down without waiting).

Results cross the process boundary as the JSON-safe dicts of
:mod:`repro.jobs.results`, so nothing pickles except primitives and the
module-level entry point.
"""

from __future__ import annotations

import time
from concurrent import futures
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Sequence

from repro.errors import ReproError
from repro.faults import hooks as fault_hooks
from repro.faults.injector import configure_from_env as faults_from_env
from repro.jobs.results import app_result_to_dict
from repro.jobs.spec import JobSpec
from repro.obs.log import configure_from_env
from repro.obs.tracing import span

#: Outcome status values (``"ok"`` is the only success).
STATUS_OK = "ok"
STATUS_FAILED = "failed"
STATUS_TIMEOUT = "timeout"


@dataclass(frozen=True, slots=True)
class JobOutcome:
    """What one execution attempt chain produced for one spec."""

    key: str
    status: str
    #: Serialized result dict (``None`` unless status is ``"ok"``).
    result: dict | None
    error: str = ""
    #: Seconds of wall time: in-worker execution time for completed
    #: jobs, wait time for timeouts.
    wall_time: float = 0.0
    #: Backend that produced (or abandoned) the job:
    #: ``serial`` | ``pool`` | ``serial-fallback``.
    backend: str = "serial"
    #: Pool rounds consumed (1 unless crashed workers forced retries).
    attempts: int = 1
    #: Directory the job's trace artifacts were written to ("" when the
    #: batch ran untraced or the job did not complete).
    trace_path: str = ""
    #: Whether a failure looks host-transient (worker crash, I/O error)
    #: rather than deterministic (a :class:`~repro.errors.ReproError`
    #: from the simulation itself).  Only transient failures are worth
    #: the runner's backoff-retry budget — a deadlocked workload fails
    #: identically every time.
    transient: bool = False

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK


def _execute_payload(spec_dict: dict) -> dict:
    """Run one job from its dict form and serialize the outcome."""
    spec = JobSpec.from_dict(spec_dict)
    return app_result_to_dict(spec.run())


def _execute_traced(spec_dict: dict, trace_dir: str) -> dict:
    """Run one job with a tracer attached, writing its artifacts."""
    spec = JobSpec.from_dict(spec_dict)
    return app_result_to_dict(spec.run(trace_dir=trace_dir))


def _run_payload(spec_dict: dict, trace_dir: str | None) -> dict:
    """Dispatch to the traced or plain entry point.

    ``_execute_payload`` keeps its one-argument signature because tests
    monkeypatch it to inject failures.
    """
    if trace_dir is None:
        return _execute_payload(spec_dict)
    return _execute_traced(spec_dict, trace_dir)


def _trace_path(trace_dir: str | None, key: str) -> str:
    return "" if trace_dir is None else str(Path(trace_dir) / key)


def _pool_entry(spec_dict: dict, trace_dir: str | None = None) -> dict:
    """Worker-side wrapper: run the job and report its execution time."""
    # Worker processes inherit the parent's logging choice through the
    # environment (REPRO_LOG_LEVEL / REPRO_LOG_JSON); no-op if unset.
    # An armed fault plan rides along the same way (REPRO_FAULT_PLAN).
    configure_from_env()
    faults_from_env()
    fault_hooks.maybe_raise(
        "executor.job",
        workload=str(spec_dict.get("workload", {}).get("name", "")))
    started = time.perf_counter()
    result = _run_payload(spec_dict, trace_dir)
    return {"result": result, "elapsed": time.perf_counter() - started}


def run_serial(specs: Sequence[JobSpec],
               backend: str = "serial",
               trace_dir: str | None = None) -> list[JobOutcome]:
    """Execute every spec in-process, in order."""
    outcomes = []
    for spec in specs:
        key = spec.key()
        started = time.perf_counter()
        try:
            with span("sim.run", key=key, workload=spec.workload.label,
                      policy=spec.policy.label, backend=backend):
                fault_hooks.maybe_raise("executor.job", key=key,
                                        workload=spec.workload.name)
                result = _run_payload(spec.to_dict(), trace_dir)
        except Exception as exc:
            outcomes.append(JobOutcome(
                key=key, status=STATUS_FAILED, result=None,
                error=f"{type(exc).__name__}: {exc}",
                wall_time=time.perf_counter() - started, backend=backend,
                transient=not isinstance(exc, ReproError)))
        else:
            outcomes.append(JobOutcome(
                key=key, status=STATUS_OK, result=result,
                wall_time=time.perf_counter() - started, backend=backend,
                trace_path=_trace_path(trace_dir, key)))
    return outcomes


def run_parallel(specs: Sequence[JobSpec], jobs: int,
                 timeout: float | None = None,
                 retries: int = 1,
                 trace_dir: str | None = None) -> list[JobOutcome]:
    """Execute specs in a process pool (see module docstring)."""
    outcomes: dict[int, JobOutcome] = {}
    pending = list(range(len(specs)))
    rounds = 0
    crash_error = ""
    while pending and rounds <= max(0, retries):
        rounds += 1
        try:
            pool = futures.ProcessPoolExecutor(
                max_workers=min(jobs, len(pending)))
            futs = {pool.submit(_pool_entry, specs[i].to_dict(),
                                trace_dir): i
                    for i in pending}
        except Exception:
            # The pool could not be created or fed at all: run the rest
            # serially rather than failing the batch.
            for i, outcome in zip(pending, run_serial(
                    [specs[i] for i in pending], backend="serial-fallback",
                    trace_dir=trace_dir)):
                outcomes[i] = replace(outcome, attempts=rounds)
            pending = []
            break
        retry_next: list[int] = []
        timed_out = False
        for fut, i in futs.items():
            started = time.perf_counter()
            try:
                # Clock-free timeout forcing: an armed plan can declare
                # this wait expired without consuming the real budget.
                if fault_hooks.forced_timeout("executor.timeout",
                                              key=specs[i].key()):
                    raise futures.TimeoutError
                payload = fut.result(timeout=timeout)
            except futures.TimeoutError:
                fut.cancel()
                timed_out = True
                outcomes[i] = JobOutcome(
                    key=specs[i].key(), status=STATUS_TIMEOUT, result=None,
                    error=f"no result within {timeout}s",
                    wall_time=time.perf_counter() - started,
                    backend="pool", attempts=rounds)
            except futures.BrokenExecutor as exc:
                crash_error = f"{type(exc).__name__}: {exc}"
                retry_next.append(i)
            except Exception as exc:
                outcomes[i] = JobOutcome(
                    key=specs[i].key(), status=STATUS_FAILED, result=None,
                    error=f"{type(exc).__name__}: {exc}",
                    wall_time=time.perf_counter() - started,
                    backend="pool", attempts=rounds,
                    transient=not isinstance(exc, ReproError))
            else:
                key = specs[i].key()
                outcomes[i] = JobOutcome(
                    key=key, status=STATUS_OK,
                    result=payload["result"], wall_time=payload["elapsed"],
                    backend="pool", attempts=rounds,
                    trace_path=_trace_path(trace_dir, key))
        # A timed-out task cannot be interrupted; don't wait on it.
        pool.shutdown(wait=not timed_out, cancel_futures=True)
        pending = retry_next
    for i in pending:  # crashed in every round
        outcomes[i] = JobOutcome(
            key=specs[i].key(), status=STATUS_FAILED, result=None,
            error=f"worker crashed in {rounds} attempt(s): {crash_error}",
            backend="pool", attempts=rounds, transient=True)
    return [outcomes[i] for i in range(len(specs))]


def execute_jobs(specs: Sequence[JobSpec], jobs: int = 1,
                 timeout: float | None = None,
                 retries: int = 1,
                 trace_dir: str | None = None) -> list[JobOutcome]:
    """Execute specs with the right backend for the requested width."""
    if jobs <= 1 or len(specs) <= 1:
        return run_serial(specs, trace_dir=trace_dir)
    return run_parallel(specs, jobs=jobs, timeout=timeout, retries=retries,
                        trace_dir=trace_dir)
