"""Run manifests: what every job in a batch did and what it cost.

A :class:`RunManifest` accumulates one :class:`ManifestEntry` per job a
:class:`~repro.jobs.api.JobRunner` resolved — cache hits included — and
serializes to strict JSON for post-hoc inspection (which runs were
recomputed and why, where the wall time went, whether a warm cache
actually eliminated all simulation).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.jobs.spec import SCHEMA_VERSION

#: Entry status values.
STATUS_HIT = "hit"
STATUS_COMPUTED = "computed"
STATUS_TIMEOUT = "timeout"
_SUCCESS_STATUSES = (STATUS_HIT, STATUS_COMPUTED)


@dataclass(frozen=True, slots=True)
class ManifestEntry:
    """One resolved job."""

    key: str
    workload: str
    policy: str
    #: ``hit`` | ``computed`` | ``failed`` | ``timeout``.
    status: str
    #: ``cache`` | ``serial`` | ``pool`` | ``serial-fallback``.
    backend: str
    wall_time: float = 0.0
    error: str = ""
    #: Where the job's trace artifacts were written ("" when untraced;
    #: cache hits never re-trace, so hits always carry "").
    trace_path: str = ""
    #: Wall-clock bounds of the resolution, ISO-8601 with timezone
    #: ("" for entries recorded before timestamping existed).
    started_at: str = ""
    finished_at: str = ""

    def to_dict(self) -> dict:
        return {
            "key": self.key,
            "workload": self.workload,
            "policy": self.policy,
            "status": self.status,
            "backend": self.backend,
            "wall_time": round(self.wall_time, 6),
            "error": self.error,
            "trace_path": self.trace_path,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
        }


@dataclass(slots=True)
class RunManifest:
    """Accumulated record of one batch run."""

    entries: list[ManifestEntry] = field(default_factory=list)

    def record(self, entry: ManifestEntry) -> None:
        self.entries.append(entry)

    @property
    def counts(self) -> dict:
        """Totals by outcome.

        ``timeouts`` is its own bucket — a job that produced no result
        in time is operationally different from one that crashed (the
        server maps it to 504, not 500) — and ``failed`` counts only
        the genuinely failed rest (crashes, preflight rejections).
        """
        hits = sum(1 for e in self.entries if e.status == STATUS_HIT)
        computed = sum(1 for e in self.entries
                       if e.status == STATUS_COMPUTED)
        timeouts = sum(1 for e in self.entries
                       if e.status == STATUS_TIMEOUT)
        failed = sum(1 for e in self.entries
                     if e.status not in _SUCCESS_STATUSES
                     and e.status != STATUS_TIMEOUT)
        return {
            "total": len(self.entries),
            "hits": hits,
            "computed": computed,
            "failed": failed,
            "timeouts": timeouts,
        }

    @property
    def wall_time(self) -> float:
        """Summed per-job wall time (not batch elapsed time)."""
        return sum(e.wall_time for e in self.entries)

    @property
    def started_at(self) -> str:
        """Earliest per-entry start ("" until a stamped entry exists)."""
        stamps = [e.started_at for e in self.entries if e.started_at]
        return min(stamps) if stamps else ""

    @property
    def finished_at(self) -> str:
        """Latest per-entry finish ("" until a stamped entry exists)."""
        stamps = [e.finished_at for e in self.entries if e.finished_at]
        return max(stamps) if stamps else ""

    def to_dict(self) -> dict:
        return {
            "schema": SCHEMA_VERSION,
            "counts": self.counts,
            "wall_time": round(self.wall_time, 6),
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "entries": [e.to_dict() for e in self.entries],
        }

    def write(self, path: str | Path) -> None:
        """Write the manifest as JSON (parent dirs created)."""
        target = Path(path)
        if target.parent != Path(""):
            target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(json.dumps(self.to_dict(), indent=2) + "\n",
                          encoding="utf-8")

    def summary(self) -> str:
        """One line for humans: totals and simulation wall time."""
        c = self.counts
        line = (f"{c['total']} job(s): {c['hits']} cache hit(s), "
                f"{c['computed']} computed")
        if c["timeouts"]:
            line += f", {c['timeouts']} TIMED OUT"
        if c["failed"]:
            line += f", {c['failed']} FAILED"
        return f"{line}; {self.wall_time:.2f}s simulated work"
