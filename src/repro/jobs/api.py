"""The job runner: cache lookup, deduplication, execution, manifest.

:class:`JobRunner` is the facade the sweeps, figures, and the ``batch``
CLI submit through.  For every batch it:

1. deduplicates specs by content key (a run shared by two figures — or
   by a sweep point and an oracle re-run — simulates once);
2. resolves keys against the in-memory memo, then the on-disk cache;
3. executes the remaining misses on the configured backend;
4. stores fresh results, records a manifest entry per job, and returns
   results **in submission order**.

All results — hits and fresh computations alike — pass through the
serialize/deserialize round trip of :mod:`repro.jobs.results`, so the
cached, pooled, and serial paths are exercised identically and parity
is a structural property, not an accident of which path ran.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from datetime import datetime, timedelta, timezone
from typing import Any, Sequence

from repro.errors import JobError
from repro.fdt.runner import AppRunResult
from repro.jobs.backoff import (
    DEFAULT_BACKOFF_BASE,
    DEFAULT_BACKOFF_CAP,
    DEFAULT_RETRY_BUDGET,
    backoff_delay,
)
from repro.jobs.cache import ResultCache
from repro.jobs.executor import STATUS_TIMEOUT, execute_jobs
from repro.jobs.manifest import ManifestEntry, RunManifest
from repro.jobs.preflight import PreflightVerdict, preflight_key, run_preflight
from repro.jobs.results import app_result_from_dict
from repro.jobs.spec import SCHEMA_VERSION, JobSpec
from repro.obs import get_logger
from repro.obs.registry import default_registry
from repro.obs.runreg import RunRecord, RunRegistry, host_fingerprint
from repro.obs.tracing import current_context, span

#: Resolution statuses (manifest statuses plus ``preflight-failed``).
RESOLVED_HIT = "hit"
RESOLVED_COMPUTED = "computed"
RESOLVED_TIMEOUT = STATUS_TIMEOUT
RESOLVED_FAILED = "failed"
RESOLVED_PREFLIGHT = "preflight-failed"

_log = get_logger("jobs")


def _fdt_decisions(result: dict | None) -> list[dict[str, Any]]:
    """Per-kernel threading decisions out of a serialized result dict."""
    if not result:
        return []
    decisions: list[dict[str, Any]] = []
    for info in result.get("kernel_infos", []):
        decision: dict[str, Any] = {
            "kernel": info.get("kernel_name", ""),
            "threads": info.get("threads"),
        }
        if info.get("estimates") is not None:
            decision["estimates"] = info["estimates"]
        decisions.append(decision)
    return decisions


@dataclass(frozen=True, slots=True)
class JobResolution:
    """Per-spec outcome of :meth:`JobRunner.resolve` (never raises).

    ``result`` is the serialized result dict when the job succeeded
    (status ``hit`` or ``computed``) and ``None`` otherwise.
    """

    key: str
    #: ``hit`` | ``computed`` | ``timeout`` | ``failed`` |
    #: ``preflight-failed``.
    status: str
    #: ``memo`` | ``cache`` | ``serial`` | ``pool`` | ``serial-fallback``
    #: | ``static``.
    backend: str
    result: dict | None
    error: str = ""
    wall_time: float = 0.0

    @property
    def ok(self) -> bool:
        return self.result is not None

    def app_result(self) -> AppRunResult:
        """Deserialize the result (call only when :attr:`ok`)."""
        if self.result is None:
            raise JobError(f"job {self.key} has no result: {self.status}"
                           + (f" ({self.error})" if self.error else ""))
        return app_result_from_dict(self.result)


class JobRunner:
    """Executes job specs through the memo -> cache -> backend chain.

    Args:
        cache: on-disk result cache, or ``None`` for memo-only operation
            (results are still deduplicated within this runner's life).
        jobs: worker processes; ``1`` (the default) runs in-process.
        timeout: per-job seconds before a pooled job is abandoned.
        retries: extra pool rounds for jobs whose worker crashed.
        manifest: manifest to append to (a fresh one when omitted).
        trace_dir: when given, every *computed* job records a trace
            (:mod:`repro.trace`) and writes its artifacts under
            ``trace_dir/<job key>/``; the manifest entry carries the
            path.  Cache and memo hits are never re-simulated, so they
            produce no trace — use ``cache=None`` to trace everything.
        preflight: statically verify each workload before dispatch
            (:mod:`repro.jobs.preflight`) and refuse to execute specs
            with provable hangs or lock faults.  Verdicts are cached
            alongside results, so a sweep pays for each distinct
            workload once.  Cache and memo hits skip the gate — they
            already completed once.
        run_registry: persistent provenance registry
            (:mod:`repro.obs.runreg`) appended to for every resolved
            spec.  Defaults to ``<cache root>/obs`` (or the global
            default location when running cache-less), so ``repro obs``
            finds the rows next to the results they describe.
        retry_budget: extra submissions for jobs whose failure looks
            host-transient (worker crash, I/O error — never a
            deterministic :class:`~repro.errors.ReproError` from the
            simulation), paced by exponential backoff with
            deterministic jitter (:mod:`repro.jobs.backoff`).
        backoff_base: first retry delay in seconds (doubles per round,
            capped at ``backoff_cap``).
    """

    def __init__(self, cache: ResultCache | None = None, jobs: int = 1,
                 timeout: float | None = None, retries: int = 1,
                 manifest: RunManifest | None = None,
                 trace_dir: str | None = None,
                 preflight: bool = False,
                 run_registry: RunRegistry | None = None,
                 retry_budget: int = DEFAULT_RETRY_BUDGET,
                 backoff_base: float = DEFAULT_BACKOFF_BASE,
                 backoff_cap: float = DEFAULT_BACKOFF_CAP) -> None:
        self.cache = cache
        self.jobs = max(1, jobs)
        self.timeout = timeout
        self.retries = retries
        self.manifest = manifest if manifest is not None else RunManifest()
        self.trace_dir = trace_dir
        self.preflight = preflight
        self.retry_budget = max(0, retry_budget)
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self._run_registry = run_registry
        self._host: dict | None = None
        self._memo: dict[str, dict] = {}
        self._preflight_memo: dict[str, PreflightVerdict] = {}
        self._cache_write_failed = False

    @property
    def run_registry(self) -> RunRegistry:
        """Provenance registry (default: ``<cache root>/obs``)."""
        if self._run_registry is None:
            root = (self.cache.root / "obs"
                    if self.cache is not None else None)
            self._run_registry = RunRegistry(root)
        return self._run_registry

    def run_one(self, spec: JobSpec) -> AppRunResult:
        """Resolve a single spec (see :meth:`run`)."""
        return self.run([spec])[0]

    def run(self, specs: Sequence[JobSpec]) -> list[AppRunResult]:
        """Resolve every spec, returning results in submission order.

        Raises:
            JobError: if any job failed or timed out in every attempt;
                the manifest still records every entry.
        """
        with span("jobs.run", specs=len(specs)):
            keys = [spec.key() for spec in specs]
            misses = self._lookup(keys, specs)
            if misses:
                if self.preflight:
                    self._gate(misses)
                outcomes = self._compute(misses)
                self._raise_on_failure(misses, outcomes)
            return [app_result_from_dict(self._memo[key]) for key in keys]

    def resolve(self, specs: Sequence[JobSpec]) -> list[JobResolution]:
        """Resolve every spec to a per-spec outcome, never raising.

        The tolerant sibling of :meth:`run`, built for callers that
        answer each spec independently (the serving pipeline): one
        timed-out or preflight-rejected spec does not poison the rest of
        the batch, and the caller sees *which* status each spec reached
        instead of one aggregated :class:`~repro.errors.JobError`.
        Manifest recording, memoization, and caching are identical to
        :meth:`run`.
        """
        with span("jobs.resolve", specs=len(specs)):
            keys = [spec.key() for spec in specs]
            misses = self._lookup(keys, specs)
            by_key: dict[str, JobResolution] = {}
            dispatch: list[tuple[str, JobSpec]] = []
            for key, spec in misses:
                if self.preflight:
                    verdict = self._preflight_verdict(spec)
                    if not verdict.ok:
                        error = "; ".join(verdict.fatal)
                        self._record(key, spec, status=RESOLVED_PREFLIGHT,
                                     backend="static", error=error)
                        by_key[key] = JobResolution(
                            key=key, status=RESOLVED_PREFLIGHT,
                            backend="static", result=None, error=error)
                        continue
                dispatch.append((key, spec))
            if dispatch:
                for key, outcome in self._compute(dispatch).items():
                    if outcome.ok:
                        by_key[key] = JobResolution(
                            key=key, status=RESOLVED_COMPUTED,
                            backend=outcome.backend, result=outcome.result,
                            wall_time=outcome.wall_time)
                    else:
                        by_key[key] = JobResolution(
                            key=key, status=outcome.status,
                            backend=outcome.backend, result=None,
                            error=outcome.error, wall_time=outcome.wall_time)
            out = []
            for key in keys:
                resolution = by_key.get(key)
                if resolution is None:  # memo or cache hit
                    resolution = JobResolution(
                        key=key, status=RESOLVED_HIT, backend="cache",
                        result=self._memo[key])
                out.append(resolution)
            return out

    # -- internals ---------------------------------------------------------

    def _lookup(self, keys: Sequence[str],
                specs: Sequence[JobSpec]) -> list[tuple[str, JobSpec]]:
        """Memo/cache phase: record hits, return deduplicated misses."""
        cache_lookups = default_registry().labeled_counter(
            "repro_jobs_cache_total",
            "Result lookups by outcome (memo and disk hits vs misses).",
            "outcome")
        misses: list[tuple[str, JobSpec]] = []
        seen: set[str] = set()
        for key, spec in zip(keys, specs):
            if key in self._memo:
                cache_lookups.inc("hit")
                self._record(key, spec, status="hit", backend="memo")
                continue
            if key in seen:
                continue
            cached = self._load_cached(key)
            if cached is not None:
                cache_lookups.inc("hit")
                self._memo[key] = cached
                self._record(key, spec, status="hit", backend="cache")
            else:
                cache_lookups.inc("miss")
                seen.add(key)
                misses.append((key, spec))
        return misses

    def _gate(self, misses: list[tuple[str, JobSpec]]) -> None:
        """Refuse to dispatch specs the static analyzer proves broken.

        Runs before any miss executes, so one poisoned spec stops the
        whole batch instead of wasting the healthy jobs' work on a
        result set that can never complete.
        """
        rejected: list[str] = []
        for key, spec in misses:
            verdict = self._preflight_verdict(spec)
            if not verdict.ok:
                self._record(key, spec, status="preflight-failed",
                             backend="static",
                             error="; ".join(verdict.fatal))
                rejected.append(
                    f"{spec.label}: {'; '.join(verdict.fatal)}")
        if rejected:
            raise JobError(
                f"{len(rejected)} job(s) failed pre-flight verification: "
                + " | ".join(rejected))

    def _preflight_verdict(self, spec: JobSpec) -> PreflightVerdict:
        """Memo -> cache -> analyze, mirroring the result chain."""
        verdict = self._preflight_lookup(spec)
        default_registry().labeled_counter(
            "repro_jobs_preflight_total",
            "Pre-flight static verifications by verdict.",
            "verdict").inc("ok" if verdict.ok else "rejected")
        return verdict

    def _preflight_lookup(self, spec: JobSpec) -> PreflightVerdict:
        pkey = preflight_key(spec)
        verdict = self._preflight_memo.get(pkey)
        if verdict is not None:
            return verdict
        if self.cache is not None:
            cached = self.cache.get(pkey)
            if cached is not None:
                try:
                    verdict = PreflightVerdict.from_dict(cached)
                except (KeyError, TypeError, ValueError):
                    verdict = None  # corrupt entry: re-analyze
            if verdict is not None:
                self._preflight_memo[pkey] = verdict
                return verdict
        verdict = run_preflight(spec)
        self._preflight_memo[pkey] = verdict
        self._store(pkey, {"preflight": spec.workload.to_dict()},
                    verdict.to_dict())
        return verdict

    def _load_cached(self, key: str) -> dict | None:
        """Cache lookup that also validates the entry deserializes."""
        if self.cache is None:
            return None
        data = self.cache.get(key)
        if data is None:
            return None
        try:
            app_result_from_dict(data)
        except Exception:
            # Parses as JSON but not as a result: corrupt -> recompute.
            return None
        return data

    def _compute(self, misses: list[tuple[str, JobSpec]]) -> dict:
        """Execute misses; memoize, cache, and record each outcome.

        Failures that look host-transient (worker crash, injected or
        real I/O error — :attr:`JobOutcome.transient`) are resubmitted
        up to ``retry_budget`` extra rounds, each round paced by
        exponential backoff with deterministic jitter; deterministic
        simulation failures are never retried (they would fail
        identically and burn the budget for nothing).

        Returns the :class:`~repro.jobs.executor.JobOutcome` per key so
        callers choose their own failure policy (:meth:`run` raises,
        :meth:`resolve` reports per spec).
        """
        retry_metric = default_registry().labeled_counter(
            "repro_jobs_retries_total",
            "Backoff-retried transient job failures by outcome.",
            "outcome")
        by_key: dict[str, Any] = {}
        pending = list(misses)
        for attempt in range(self.retry_budget + 1):
            if not pending:
                break
            if attempt > 0:
                # One sleep per round: the longest of the pending keys'
                # deterministic schedules (per-key sleeps would stack).
                delay = max(backoff_delay(key, attempt,
                                          base=self.backoff_base,
                                          cap=self.backoff_cap)
                            for key, _ in pending)
                _log.warning("retrying transient failures",
                             extra={"jobs": len(pending),
                                    "attempt": attempt,
                                    "delay": round(delay, 4)})
                time.sleep(delay)
            outcomes = execute_jobs([spec for _, spec in pending],
                                    jobs=self.jobs, timeout=self.timeout,
                                    retries=self.retries,
                                    trace_dir=self.trace_dir)
            retry_next: list[tuple[str, JobSpec]] = []
            for (key, spec), outcome in zip(pending, outcomes):
                if (not outcome.ok and outcome.transient
                        and attempt < self.retry_budget):
                    by_key[key] = outcome  # kept in case it never recovers
                    retry_metric.inc("attempt")
                    with span("jobs.retry", key=key, attempt=attempt + 1,
                              error=outcome.error):
                        pass
                    retry_next.append((key, spec))
                    continue
                if attempt > 0 and outcome.ok:
                    retry_metric.inc("recovered")
                elif attempt > 0 and not outcome.ok:
                    retry_metric.inc("exhausted")
                by_key[key] = outcome
                self._finish_outcome(key, spec, outcome)
            pending = retry_next
        return by_key

    def _finish_outcome(self, key: str, spec: JobSpec, outcome: Any) -> None:
        """Memoize, cache, and record one terminal outcome."""
        if outcome.ok and outcome.result is not None:
            self._memo[key] = outcome.result
            self._store(key, spec.to_dict(), outcome.result)
            self._record(key, spec, status="computed",
                         backend=outcome.backend,
                         wall_time=outcome.wall_time,
                         trace_path=outcome.trace_path)
        else:
            self._record(key, spec, status=outcome.status,
                         backend=outcome.backend,
                         wall_time=outcome.wall_time,
                         error=outcome.error)

    def _store(self, key: str, spec_dict: dict, result: dict) -> None:
        """Cache a result, degrading gracefully on an unwritable store.

        A failed cache write costs only warmth, never the job: the
        result is already memoized, so the batch completes and only
        future processes pay the recompute.  Warned once per runner.
        """
        if self.cache is None:
            return
        try:
            self.cache.put(key, spec_dict, result)
        except OSError as exc:
            default_registry().labeled_counter(
                "repro_jobs_cache_total",
                "Result lookups by outcome (memo and disk hits vs misses).",
                "outcome").inc("write-error")
            if not self._cache_write_failed:
                self._cache_write_failed = True
                _log.warning(
                    "result cache unwritable; results stay in-memory only",
                    extra={"key": key, "error": str(exc)})

    def _raise_on_failure(self, misses: list[tuple[str, JobSpec]],
                          outcomes: dict) -> None:
        """Aggregate failed outcomes into one JobError, timeouts named."""
        failures: list[str] = []
        timeouts = 0
        for key, spec in misses:
            outcome = outcomes[key]
            if outcome.ok and outcome.result is not None:
                continue
            if outcome.status == STATUS_TIMEOUT:
                timeouts += 1
                failures.append(f"{spec.label}: timed out ({outcome.error})")
            else:
                failures.append(f"{spec.label}: {outcome.error}")
        if failures:
            detail = f"{len(failures)} job(s) failed"
            if timeouts:
                detail += f" ({timeouts} timed out)"
            raise JobError(detail + ": " + "; ".join(failures))

    def _record(self, key: str, spec: JobSpec, status: str, backend: str,
                wall_time: float = 0.0, error: str = "",
                trace_path: str = "") -> None:
        """The single bookkeeping point for every resolved spec.

        One call appends the manifest entry, the run-registry
        provenance row, and the resolution metric — so the three views
        can never disagree about what happened.
        """
        finished = datetime.now(timezone.utc)
        started = finished - timedelta(seconds=wall_time)
        self.manifest.record(ManifestEntry(
            key=key,
            workload=spec.workload.label,
            policy=spec.policy.label,
            status=status,
            backend=backend,
            wall_time=wall_time,
            error=error,
            trace_path=trace_path,
            started_at=started.isoformat(),
            finished_at=finished.isoformat(),
        ))
        default_registry().labeled_counter(
            "repro_jobs_resolutions_total",
            "Job resolutions by disposition.", "status").inc(status)
        if self._host is None:
            self._host = host_fingerprint()
        ctx = current_context()
        self.run_registry.append(RunRecord(
            key=key,
            workload=spec.workload.label,
            policy=spec.policy.label,
            status=status,
            backend=backend,
            wall_time=wall_time,
            started_at=started.isoformat(),
            finished_at=finished.isoformat(),
            schema_version=SCHEMA_VERSION,
            host=self._host,
            trace_id=ctx.trace_id if ctx is not None else "",
            trace_path=trace_path,
            error=error,
            fdt=_fdt_decisions(self._memo.get(key)),
        ))
        _log.debug("resolved", extra={"key": key, "status": status,
                                      "backend": backend,
                                      "wall_time": round(wall_time, 6)})
