"""The job runner: cache lookup, deduplication, execution, manifest.

:class:`JobRunner` is the facade the sweeps, figures, and the ``batch``
CLI submit through.  For every batch it:

1. deduplicates specs by content key (a run shared by two figures — or
   by a sweep point and an oracle re-run — simulates once);
2. resolves keys against the in-memory memo, then the on-disk cache;
3. executes the remaining misses on the configured backend;
4. stores fresh results, records a manifest entry per job, and returns
   results **in submission order**.

All results — hits and fresh computations alike — pass through the
serialize/deserialize round trip of :mod:`repro.jobs.results`, so the
cached, pooled, and serial paths are exercised identically and parity
is a structural property, not an accident of which path ran.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import JobError
from repro.fdt.runner import AppRunResult
from repro.jobs.cache import ResultCache
from repro.jobs.executor import execute_jobs
from repro.jobs.manifest import ManifestEntry, RunManifest
from repro.jobs.preflight import PreflightVerdict, preflight_key, run_preflight
from repro.jobs.results import app_result_from_dict
from repro.jobs.spec import JobSpec


class JobRunner:
    """Executes job specs through the memo -> cache -> backend chain.

    Args:
        cache: on-disk result cache, or ``None`` for memo-only operation
            (results are still deduplicated within this runner's life).
        jobs: worker processes; ``1`` (the default) runs in-process.
        timeout: per-job seconds before a pooled job is abandoned.
        retries: extra pool rounds for jobs whose worker crashed.
        manifest: manifest to append to (a fresh one when omitted).
        trace_dir: when given, every *computed* job records a trace
            (:mod:`repro.trace`) and writes its artifacts under
            ``trace_dir/<job key>/``; the manifest entry carries the
            path.  Cache and memo hits are never re-simulated, so they
            produce no trace — use ``cache=None`` to trace everything.
        preflight: statically verify each workload before dispatch
            (:mod:`repro.jobs.preflight`) and refuse to execute specs
            with provable hangs or lock faults.  Verdicts are cached
            alongside results, so a sweep pays for each distinct
            workload once.  Cache and memo hits skip the gate — they
            already completed once.
    """

    def __init__(self, cache: ResultCache | None = None, jobs: int = 1,
                 timeout: float | None = None, retries: int = 1,
                 manifest: RunManifest | None = None,
                 trace_dir: str | None = None,
                 preflight: bool = False) -> None:
        self.cache = cache
        self.jobs = max(1, jobs)
        self.timeout = timeout
        self.retries = retries
        self.manifest = manifest if manifest is not None else RunManifest()
        self.trace_dir = trace_dir
        self.preflight = preflight
        self._memo: dict[str, dict] = {}
        self._preflight_memo: dict[str, PreflightVerdict] = {}

    def run_one(self, spec: JobSpec) -> AppRunResult:
        """Resolve a single spec (see :meth:`run`)."""
        return self.run([spec])[0]

    def run(self, specs: Sequence[JobSpec]) -> list[AppRunResult]:
        """Resolve every spec, returning results in submission order.

        Raises:
            JobError: if any job failed or timed out in every attempt;
                the manifest still records every entry.
        """
        keys = [spec.key() for spec in specs]
        misses: list[tuple[str, JobSpec]] = []
        seen: set[str] = set()
        for key, spec in zip(keys, specs):
            if key in self._memo:
                self._record(key, spec, status="hit", backend="memo")
                continue
            if key in seen:
                continue
            cached = self._load_cached(key)
            if cached is not None:
                self._memo[key] = cached
                self._record(key, spec, status="hit", backend="cache")
            else:
                seen.add(key)
                misses.append((key, spec))
        if misses:
            if self.preflight:
                self._gate(misses)
            self._compute(misses)
        return [app_result_from_dict(self._memo[key]) for key in keys]

    # -- internals ---------------------------------------------------------

    def _gate(self, misses: list[tuple[str, JobSpec]]) -> None:
        """Refuse to dispatch specs the static analyzer proves broken.

        Runs before any miss executes, so one poisoned spec stops the
        whole batch instead of wasting the healthy jobs' work on a
        result set that can never complete.
        """
        rejected: list[str] = []
        for key, spec in misses:
            verdict = self._preflight_verdict(spec)
            if not verdict.ok:
                self._record(key, spec, status="preflight-failed",
                             backend="static",
                             error="; ".join(verdict.fatal))
                rejected.append(
                    f"{spec.label}: {'; '.join(verdict.fatal)}")
        if rejected:
            raise JobError(
                f"{len(rejected)} job(s) failed pre-flight verification: "
                + " | ".join(rejected))

    def _preflight_verdict(self, spec: JobSpec) -> PreflightVerdict:
        """Memo -> cache -> analyze, mirroring the result chain."""
        pkey = preflight_key(spec)
        verdict = self._preflight_memo.get(pkey)
        if verdict is not None:
            return verdict
        if self.cache is not None:
            cached = self.cache.get(pkey)
            if cached is not None:
                try:
                    verdict = PreflightVerdict.from_dict(cached)
                except (KeyError, TypeError, ValueError):
                    verdict = None  # corrupt entry: re-analyze
            if verdict is not None:
                self._preflight_memo[pkey] = verdict
                return verdict
        verdict = run_preflight(spec)
        self._preflight_memo[pkey] = verdict
        if self.cache is not None:
            self.cache.put(pkey, {"preflight": spec.workload.to_dict()},
                           verdict.to_dict())
        return verdict

    def _load_cached(self, key: str) -> dict | None:
        """Cache lookup that also validates the entry deserializes."""
        if self.cache is None:
            return None
        data = self.cache.get(key)
        if data is None:
            return None
        try:
            app_result_from_dict(data)
        except Exception:
            # Parses as JSON but not as a result: corrupt -> recompute.
            return None
        return data

    def _compute(self, misses: list[tuple[str, JobSpec]]) -> None:
        outcomes = execute_jobs([spec for _, spec in misses],
                                jobs=self.jobs, timeout=self.timeout,
                                retries=self.retries,
                                trace_dir=self.trace_dir)
        failures: list[str] = []
        for (key, spec), outcome in zip(misses, outcomes):
            if outcome.ok and outcome.result is not None:
                self._memo[key] = outcome.result
                if self.cache is not None:
                    self.cache.put(key, spec.to_dict(), outcome.result)
                self._record(key, spec, status="computed",
                             backend=outcome.backend,
                             wall_time=outcome.wall_time,
                             trace_path=outcome.trace_path)
            else:
                self._record(key, spec, status=outcome.status,
                             backend=outcome.backend,
                             wall_time=outcome.wall_time,
                             error=outcome.error)
                failures.append(f"{spec.label}: {outcome.error}")
        if failures:
            raise JobError(
                f"{len(failures)} job(s) failed: " + "; ".join(failures))

    def _record(self, key: str, spec: JobSpec, status: str, backend: str,
                wall_time: float = 0.0, error: str = "",
                trace_path: str = "") -> None:
        self.manifest.record(ManifestEntry(
            key=key,
            workload=spec.workload.label,
            policy=spec.policy.label,
            status=status,
            backend=backend,
            wall_time=wall_time,
            error=error,
            trace_path=trace_path,
        ))
