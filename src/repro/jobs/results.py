"""Exact JSON serialization of application run results.

The cache and the process-pool boundary both move results as JSON-safe
dicts, so the round trip must be *bit-identical*: every integer counter,
every float (Python's ``json`` emits ``repr``-style floats, which round
trip exactly), and the two possibly-infinite model outputs
(``p_cs_real``/``p_bw_real``), which are encoded as the strings
``"inf"``/``"-inf"`` to keep the files strict JSON.

``JobRunner`` deliberately routes *every* result — even ones computed
serially in-process — through this round trip, so a serialization bug
would show up immediately in the parity tests instead of only when a
cache or a worker pool is involved.
"""

from __future__ import annotations

import math
from dataclasses import fields

from repro.fdt.estimators import Estimates
from repro.fdt.policies import KernelRunInfo
from repro.fdt.runner import AppRunResult
from repro.sim.stats import RunResult


def _encode_float(value: float) -> float | str:
    """Floats pass through; infinities become strict-JSON strings."""
    if math.isinf(value):
        return "inf" if value > 0 else "-inf"
    return value


def _decode_float(value: float | str) -> float:
    return float(value)


def run_result_to_dict(result: RunResult) -> dict:
    """The one run-result encoding: :meth:`RunResult.to_dict`.

    Includes the derived metrics (power, bus_utilization, ipc, energy)
    for consumers reading the JSON directly; :func:`run_result_from_dict`
    rebuilds from the counter fields alone, so the round trip stays
    bit-identical (derived floats are pure functions of the counters).
    """
    return result.to_dict()


def run_result_from_dict(data: dict) -> RunResult:
    names = {f.name for f in fields(RunResult)}
    return RunResult(**{k: v for k, v in data.items() if k in names})


def estimates_to_dict(estimates: Estimates) -> dict:
    out: dict = {}
    for f in fields(Estimates):
        value = getattr(estimates, f.name)
        out[f.name] = _encode_float(value) if isinstance(value, float) else value
    return out


def estimates_from_dict(data: dict) -> Estimates:
    kwargs = dict(data)
    for name in ("t_cs", "t_nocs", "bu1", "p_cs_real", "p_bw_real"):
        kwargs[name] = _decode_float(kwargs[name])
    return Estimates(**kwargs)


def kernel_info_to_dict(info: KernelRunInfo) -> dict:
    return {
        "kernel_name": info.kernel_name,
        "policy_name": info.policy_name,
        "threads": info.threads,
        "trained_iterations": info.trained_iterations,
        "training_cycles": info.training_cycles,
        "execution_cycles": info.execution_cycles,
        "result": run_result_to_dict(info.result),
        "estimates": (None if info.estimates is None
                      else estimates_to_dict(info.estimates)),
        "stop_reason": info.stop_reason,
    }


def kernel_info_from_dict(data: dict) -> KernelRunInfo:
    return KernelRunInfo(
        kernel_name=data["kernel_name"],
        policy_name=data["policy_name"],
        threads=data["threads"],
        trained_iterations=data["trained_iterations"],
        training_cycles=data["training_cycles"],
        execution_cycles=data["execution_cycles"],
        result=run_result_from_dict(data["result"]),
        estimates=(None if data["estimates"] is None
                   else estimates_from_dict(data["estimates"])),
        stop_reason=data["stop_reason"],
    )


def app_result_to_dict(result: AppRunResult) -> dict:
    """Serialize an application run's full outcome."""
    return {
        "app_name": result.app_name,
        "policy_name": result.policy_name,
        "kernel_infos": [kernel_info_to_dict(k) for k in result.kernel_infos],
    }


def app_result_from_dict(data: dict) -> AppRunResult:
    """Exact inverse of :func:`app_result_to_dict`."""
    return AppRunResult(
        app_name=data["app_name"],
        policy_name=data["policy_name"],
        kernel_infos=tuple(kernel_info_from_dict(k)
                           for k in data["kernel_infos"]),
    )
