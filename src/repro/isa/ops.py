"""Instruction (op) definitions for simulated thread programs.

Ops are small frozen dataclasses.  ``__slots__`` keeps per-op memory low
because hot kernels yield hundreds of thousands of them.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class CounterKind(enum.Enum):
    """Performance counters a simulated program may read.

    These mirror the counters the paper relies on:

    * ``CYCLES`` — the per-chip cycle counter (``rdtsc`` analogue) used by
      SAT training to time critical sections.
    * ``BUS_BUSY_CYCLES`` — cycles the off-chip data bus was occupied, the
      ``BUS_DRDY_CLOCKS`` analogue used by BAT training.
    * ``RETIRED_OPS`` — dynamic instructions retired by the reading core.
    * ``L3_MISSES`` — chip-wide L3 miss count.
    """

    CYCLES = "cycles"
    BUS_BUSY_CYCLES = "bus_busy_cycles"
    RETIRED_OPS = "retired_ops"
    L3_MISSES = "l3_misses"


@dataclass(frozen=True, slots=True)
class Compute:
    """Execute ``instructions`` dynamic ALU/FP instructions.

    The 2-wide in-order core retires these at two per cycle, so the op
    occupies the core for ``ceil(instructions / 2)`` cycles.
    """

    instructions: int

    def __post_init__(self) -> None:
        if self.instructions < 0:
            raise ValueError("instruction count must be non-negative")


@dataclass(frozen=True, slots=True)
class Load:
    """Read one word at virtual byte address ``addr``.

    Timing is whatever the memory hierarchy returns for the 64-byte line
    containing ``addr``; the in-order core blocks until the fill returns.
    """

    addr: int


@dataclass(frozen=True, slots=True)
class Store:
    """Write one word at virtual byte address ``addr``.

    L1 is write-through (Table 1), so stores always propagate to L2; a
    store to a line shared by another core triggers a directory upgrade.
    """

    addr: int


@dataclass(frozen=True, slots=True)
class Lock:
    """Acquire lock ``lock_id`` (enter a critical section).

    Locks are granted in FIFO order by the runtime lock manager.  A core
    waiting on a lock spins: it remains *active* for power accounting,
    matching the paper's "number of cores active in a given cycle" metric.
    """

    lock_id: int


@dataclass(frozen=True, slots=True)
class Unlock:
    """Release lock ``lock_id`` (leave a critical section)."""

    lock_id: int


@dataclass(frozen=True, slots=True)
class BarrierWait:
    """Wait on barrier ``barrier_id`` until the whole team arrives.

    The team size is fixed by the runtime when the team is spawned, so
    the op does not carry it.  Waiting cores spin (active for power).
    """

    barrier_id: int


@dataclass(frozen=True, slots=True)
class Branch:
    """A conditional branch with outcome ``taken`` at site ``pc``.

    Run through the 4-KB gshare predictor; a misprediction costs a
    pipeline-depth flush (5-stage pipe, Table 1).
    """

    pc: int
    taken: bool


@dataclass(frozen=True, slots=True)
class ReadCounter:
    """Read performance counter ``kind``.

    The core resumes the generator with the counter value:
    ``now = yield ReadCounter(CounterKind.CYCLES)``.
    """

    kind: CounterKind


Op = Compute | Load | Store | Lock | Unlock | BarrierWait | Branch | ReadCounter
