"""Helpers for working with thread programs.

A *thread program* is any iterator/generator yielding :class:`~repro.isa.ops.Op`
instances.  A *program factory* is a callable ``(thread_id, num_threads) ->
ThreadProgram``; workloads hand factories to the runtime, which instantiates
one program per spawned thread.
"""

from __future__ import annotations

from typing import Callable, Generator, Iterable, Iterator

from repro.errors import ProgramError
from repro.isa.ops import (
    BarrierWait,
    Branch,
    Compute,
    Load,
    Lock,
    Op,
    ReadCounter,
    Store,
    Unlock,
)

# A thread program may be a plain iterator of ops, or a generator that also
# receives counter values back through ``send`` after a ReadCounter op.
ThreadProgram = Iterator[Op] | Generator[Op, int, None]

ProgramFactory = Callable[[int, int], ThreadProgram]

_VALID_OP_TYPES = (
    Compute,
    Load,
    Store,
    Lock,
    Unlock,
    BarrierWait,
    Branch,
    ReadCounter,
)


def validate_program(ops: Iterable[Op]) -> list[Op]:
    """Materialize and sanity-check a (finite) op sequence.

    Checks performed:

    * every item is a known op type;
    * branch sites have non-negative ``pc`` values (the gshare predictor
      indexes its table with the pc; a negative one is always a bug in
      the emitting workload);
    * lock/unlock pairs are balanced and properly nested per lock id;
    * no lock is released by a program that never acquired it.

    Returns the materialized list.  Intended for tests and for small
    programs; hot kernels should stay as generators and skip validation.

    Raises:
        ProgramError: on any violation.
    """
    held: list[int] = []
    out: list[Op] = []
    for i, op in enumerate(ops):
        if not isinstance(op, _VALID_OP_TYPES):
            raise ProgramError(f"op {i} is not a valid instruction: {op!r}")
        if isinstance(op, Branch):
            if op.pc < 0:
                raise ProgramError(
                    f"op {i} is a branch with negative pc {op.pc}")
        elif isinstance(op, Lock):
            held.append(op.lock_id)
        elif isinstance(op, Unlock):
            if not held:
                raise ProgramError(f"op {i} releases lock {op.lock_id} while holding none")
            if held[-1] != op.lock_id:
                raise ProgramError(
                    f"op {i} releases lock {op.lock_id} but innermost held "
                    f"lock is {held[-1]} (locks held: {held})"
                )
            held.pop()
        out.append(op)
    if held:
        raise ProgramError(f"program ended while still holding locks {held}")
    return out


def instruction_count(ops: Iterable[Op]) -> int:
    """Total dynamic instructions a (finite) op sequence represents.

    Compute ops contribute their instruction count; every other op counts
    as one instruction (the load/store/branch/lock primitive itself).
    """
    total = 0
    for op in ops:
        if isinstance(op, Compute):
            total += op.instructions
        else:
            total += 1
    return total
