"""Tiny instruction set used by simulated thread programs.

Workloads do not ship x86 binaries; they ship Python generators that yield
:class:`Op` instances.  The simulated core consumes one op at a time and
charges cycles according to the machine model:

* :class:`Compute` — ``n`` dynamic ALU instructions, retired two per cycle
  by the 2-wide in-order core.
* :class:`Load` / :class:`Store` — a data access by virtual byte address,
  resolved through the full cache/coherence/bus/DRAM hierarchy.
* :class:`Lock` / :class:`Unlock` — critical-section boundaries, serviced
  by the runtime's FIFO lock manager.
* :class:`BarrierWait` — sense-reversing barrier across the thread team.
* :class:`Branch` — a conditional branch run through the gshare predictor;
  mispredictions cost a pipeline flush.
* :class:`ReadCounter` — read a performance counter.  The core *sends the
  value back into the generator*, i.e. ``value = yield ReadCounter(...)``,
  which is how FDT training loops observe time the same way the paper reads
  the cycle counter at critical-section entry and exit.

The generator protocol keeps million-instruction kernels memory-light: ops
are produced lazily, never materialized as lists.
"""

from repro.isa.ops import (
    BarrierWait,
    Branch,
    Compute,
    CounterKind,
    Load,
    Lock,
    Op,
    ReadCounter,
    Store,
    Unlock,
)
from repro.isa.program import (
    ThreadProgram,
    instruction_count,
    validate_program,
)

__all__ = [
    "Op",
    "Compute",
    "Load",
    "Store",
    "Lock",
    "Unlock",
    "BarrierWait",
    "Branch",
    "ReadCounter",
    "CounterKind",
    "ThreadProgram",
    "validate_program",
    "instruction_count",
]
