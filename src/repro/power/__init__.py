"""Power accounting (paper Section 3.1).

"For power measurements, we count the number of cores that are active in
a given cycle and the power is computed as the average of this value
over the entire execution time."  :class:`ActiveCorePowerModel` applies
that definition to a :class:`~repro.sim.stats.RunResult`, optionally
extended with a static (leakage) floor for idle cores — an ablation the
paper's metric implicitly sets to zero.
"""

from repro.power.model import ActiveCorePowerModel, PowerBreakdown

__all__ = ["ActiveCorePowerModel", "PowerBreakdown"]
