"""Active-core power model with an optional idle (leakage) floor."""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.stats import RunResult


@dataclass(frozen=True, slots=True)
class PowerBreakdown:
    """Where the active-core-cycles went."""

    #: Cycles cores spent doing useful work (running, not spinning).
    useful_cycles: int
    #: Cycles cores spent spinning on locks or barriers (still active).
    spin_cycles: int
    #: Cycles x cores of idle leakage charged by the model.
    idle_cycles: float

    @property
    def total(self) -> float:
        return self.useful_cycles + self.spin_cycles + self.idle_cycles

    @property
    def spin_fraction(self) -> float:
        """Share of dynamic activity burned on synchronization spin."""
        dynamic = self.useful_cycles + self.spin_cycles
        if dynamic == 0:
            return 0.0
        return self.spin_cycles / dynamic


class ActiveCorePowerModel:
    """The paper's power metric, parameterized for ablation.

    Args:
        num_cores: cores on the chip.
        idle_fraction: power an *idle* core burns relative to an active
            one (0.0 reproduces the paper's metric exactly; a leakage
            floor like 0.2 shows how much of FDT's power saving survives
            when gating is imperfect).
    """

    def __init__(self, num_cores: int, idle_fraction: float = 0.0) -> None:
        if num_cores < 1:
            raise ValueError("num_cores must be >= 1")
        if not 0.0 <= idle_fraction <= 1.0:
            raise ValueError("idle_fraction must be in [0, 1]")
        self.num_cores = num_cores
        self.idle_fraction = idle_fraction

    def power(self, result: RunResult) -> float:
        """Average power in active-core units over the interval."""
        if result.cycles <= 0:
            return 0.0
        active = result.busy_core_cycles / result.cycles
        idle = self.num_cores - active
        return active + self.idle_fraction * idle

    def energy(self, result: RunResult) -> float:
        """Power x time (active-core-cycles plus leakage share)."""
        return self.power(result) * result.cycles

    def breakdown(self, result: RunResult) -> PowerBreakdown:
        """Decompose activity into useful, spin, and idle components."""
        idle_core_cycles = max(
            0.0, self.num_cores * result.cycles - result.busy_core_cycles)
        return PowerBreakdown(
            useful_cycles=result.busy_core_cycles - result.spin_core_cycles,
            spin_cycles=result.spin_core_cycles,
            idle_cycles=self.idle_fraction * idle_core_cycles,
        )
