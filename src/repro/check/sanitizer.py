"""The thread sanitizer: one observer dispatching machine events to the
three analyses (races, lock order, discipline).

A :class:`ThreadSanitizer` is attached by :class:`~repro.sim.machine.
Machine` when its config carries an enabled
:class:`~repro.sim.config.SanitizerConfig`.  It owns the cross-analysis
state every check needs:

* the per-agent stack of held locks (from the lock manager's
  acquired/released events, which are authoritative);
* the barrier epoch — bumped at region boundaries and full-team barrier
  releases, the happens-before fences of this runtime;
* per-agent access ordinals, so race findings can name their sites.
"""

from __future__ import annotations

from repro.check.discipline import DisciplineLinter
from repro.check.events import SanitizerHooks
from repro.check.findings import AccessSite, Finding
from repro.check.lockorder import LockOrderAnalyzer
from repro.check.lockset import LocksetRaceDetector
from repro.isa.ops import CounterKind
from repro.sim.config import SanitizerConfig

_EMPTY: frozenset[int] = frozenset()
_NO_LOCKS: list[int] = []


class ThreadSanitizer(SanitizerHooks):
    """Dispatches simulator events to the configured analyses."""

    def __init__(self, config: SanitizerConfig | None = None) -> None:
        self.config = config or SanitizerConfig()
        self.races = LocksetRaceDetector(self.config)
        self.lock_order = LockOrderAnalyzer(self.config)
        self.discipline = DisciplineLinter(self.config)
        #: Held-lock stack per agent, in acquisition order.
        self._held: dict[int, list[int]] = {}
        #: Frozen copy of each held stack, for cheap lockset intersection.
        self._held_sets: dict[int, frozenset[int]] = {}
        #: Barrier epoch: accesses in different epochs cannot race.
        self._epoch = 0
        #: Per-agent access ordinal (1-based), for site reporting.
        self._access_no: dict[int, int] = {}

    # -- shared state helpers ----------------------------------------------

    def held_locks(self, agent: int) -> list[int]:
        """The lock ids ``agent`` currently holds, outermost first."""
        return list(self._held.get(agent, _NO_LOCKS))

    @property
    def epoch(self) -> int:
        return self._epoch

    # -- region lifecycle -----------------------------------------------------

    def on_region_begin(self, num_threads: int, now: int) -> None:
        self._epoch += 1
        if self.config.discipline:
            self.discipline.on_region_begin()

    def on_region_end(self, now: int) -> None:
        self._epoch += 1

    def on_thread_exit(self, agent: int, now: int) -> None:
        held = self._held.get(agent, _NO_LOCKS)
        if self.config.discipline:
            self.discipline.on_thread_exit(agent, held, now)
        if held:
            self._held[agent] = []
            self._held_sets[agent] = _EMPTY

    # -- memory ----------------------------------------------------------------

    def on_access(self, agent: int, addr: int, is_store: bool,
                  now: int) -> None:
        if not self.config.races:
            return
        ordinal = self._access_no.get(agent, 0) + 1
        self._access_no[agent] = ordinal
        site = AccessSite(agent=agent, index=ordinal,
                          kind="store" if is_store else "load", cycle=now)
        self.races.on_access(agent, addr, is_store, self._epoch,
                             self._held_sets.get(agent, _EMPTY), site)

    # -- locks --------------------------------------------------------------------

    def on_lock_request(self, lock_id: int, agent: int, now: int) -> None:
        held = self._held.get(agent, _NO_LOCKS)
        if self.config.lock_order and held:
            self.lock_order.on_lock_request(lock_id, agent, held, now)
        if self.config.discipline:
            self.discipline.on_lock_request(lock_id, agent, held, now)

    def on_lock_acquired(self, lock_id: int, agent: int, now: int) -> None:
        stack = self._held.setdefault(agent, [])
        stack.append(lock_id)
        self._held_sets[agent] = frozenset(stack)

    def on_unlock_request(self, lock_id: int, agent: int, now: int) -> None:
        if self.config.discipline:
            self.discipline.on_unlock_request(
                lock_id, agent, self._held.get(agent, _NO_LOCKS), now)

    def on_lock_released(self, lock_id: int, agent: int, now: int) -> None:
        stack = self._held.get(agent)
        if stack and lock_id in stack:
            stack.remove(lock_id)
            self._held_sets[agent] = frozenset(stack)

    # -- barriers ----------------------------------------------------------------

    def on_barrier_arrive(self, barrier_id: int, agent: int,
                          team_size: int, now: int) -> None:
        if self.config.discipline:
            self.discipline.on_barrier_arrive(barrier_id, agent,
                                              team_size, now)

    def on_barrier_release(self, barrier_id: int, agents: list[int],
                           now: int) -> None:
        # Every participant's pre-barrier accesses have been observed and
        # all post-barrier ones come later: a happens-before fence.
        self._epoch += 1
        if self.config.discipline:
            self.discipline.on_barrier_release(barrier_id, agents, now)

    # -- counters ----------------------------------------------------------------

    def on_read_counter(self, agent: int, kind: CounterKind,
                        now: int) -> None:
        if self.config.discipline:
            self.discipline.on_read_counter(
                agent, kind, self._held.get(agent, _NO_LOCKS), now)

    # -- results ------------------------------------------------------------------

    def finish(self) -> tuple[Finding, ...]:
        """All findings, chronological per analysis: races and discipline
        as observed, then lock-order cycles (computed from the final
        graph), then incomplete-barrier diagnoses."""
        findings: list[Finding] = list(self.races.findings)
        if self.config.lock_order:
            findings.extend(self.lock_order.finish())
        if self.config.discipline:
            self.discipline.finish()
        findings.extend(self.discipline.findings)
        return tuple(findings)

    @property
    def dropped(self) -> int:
        """Findings suppressed by ``max_findings`` caps."""
        return (self.races.dropped + self.lock_order.dropped
                + self.discipline.dropped)
