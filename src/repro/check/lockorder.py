"""Lock-order (potential deadlock) analysis.

Each time an agent requests lock ``b`` while holding lock ``a``, the
analysis records the edge ``a -> b`` in the acquires-while-holding
graph.  A cycle in that graph means two orderings coexist — the classic
deadlock recipe — even when the FIFO grant order happened to dodge the
deadlock in this particular run.  Cycles are found at the end of the run
from the strongly connected components of the graph.
"""

from __future__ import annotations

from repro.check.findings import LOCK_ORDER, Finding
from repro.sim.config import SanitizerConfig


class LockOrderAnalyzer:
    """Builds the acquires-while-holding graph and reports its cycles."""

    def __init__(self, config: SanitizerConfig) -> None:
        self._cfg = config
        #: (held, wanted) -> witness details of the first observation.
        self._edges: dict[tuple[int, int], dict[str, int]] = {}
        self.dropped = 0

    def on_lock_request(self, lock_id: int, agent: int,
                        held: list[int], now: int) -> None:
        """Record edges ``h -> lock_id`` for every currently held ``h``."""
        for h in held:
            if h == lock_id:
                continue  # re-entrance is the discipline lint's business
            edge = (h, lock_id)
            if edge not in self._edges:
                self._edges[edge] = {"agent": agent, "cycle": now}

    def finish(self) -> list[Finding]:
        """Cycle findings from the accumulated graph (one per SCC)."""
        findings: list[Finding] = []
        adjacency: dict[int, list[int]] = {}
        for a, b in self._edges:
            adjacency.setdefault(a, []).append(b)
            adjacency.setdefault(b, [])
        for component in _strongly_connected(adjacency):
            if len(component) < 2:
                continue  # self-edges are excluded at recording time
            cycle = _cycle_within(adjacency, component)
            edges = [{"held": a, "wanted": b, **self._edges[(a, b)]}
                     for a, b in zip(cycle, cycle[1:])
                     if (a, b) in self._edges]
            if len(findings) >= self._cfg.max_findings:
                self.dropped += 1
                continue
            path = " -> ".join(str(lock) for lock in cycle)
            findings.append(Finding(
                analysis=LOCK_ORDER,
                kind="lock-order-cycle",
                message=(f"potential deadlock: locks are acquired in a "
                         f"cycle {path} (each edge 'a -> b' means some "
                         f"thread requested b while holding a)"),
                details={
                    "locks": sorted(component),
                    "cycle": cycle,
                    "edges": edges,
                },
            ))
        return findings


def _strongly_connected(adjacency: dict[int, list[int]]) -> list[set[int]]:
    """Tarjan's SCC algorithm, iterative (lock graphs are tiny, but the
    sanitizer must not die on adversarial input via recursion limits)."""
    index: dict[int, int] = {}
    low: dict[int, int] = {}
    on_stack: set[int] = set()
    stack: list[int] = []
    components: list[set[int]] = []
    counter = 0

    for root in adjacency:
        if root in index:
            continue
        work: list[tuple[int, int]] = [(root, 0)]
        while work:
            node, edge_i = work[-1]
            if edge_i == 0:
                index[node] = low[node] = counter
                counter += 1
                stack.append(node)
                on_stack.add(node)
            successors = adjacency[node]
            advanced = False
            while edge_i < len(successors):
                nxt = successors[edge_i]
                edge_i += 1
                if nxt not in index:
                    work[-1] = (node, edge_i)
                    work.append((nxt, 0))
                    advanced = True
                    break
                if nxt in on_stack:
                    low[node] = min(low[node], index[nxt])
            if advanced:
                continue
            work.pop()
            if low[node] == index[node]:
                component: set[int] = set()
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.add(member)
                    if member == node:
                        break
                components.append(component)
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
    return components


def _cycle_within(adjacency: dict[int, list[int]],
                  component: set[int]) -> list[int]:
    """A short simple cycle inside one SCC, as ``[a, ..., a]``."""
    start = min(component)
    # BFS back to the start node, restricted to the component.
    parents: dict[int, int] = {}
    frontier = [start]
    while frontier:
        nxt_frontier: list[int] = []
        for node in frontier:
            for nxt in adjacency[node]:
                if nxt == start:
                    path = [start]
                    while node != start:
                        path.append(node)
                        node = parents[node]
                    path.append(start)
                    path.reverse()
                    return path
                if nxt in component and nxt not in parents:
                    parents[nxt] = node
                    nxt_frontier.append(nxt)
        frontier = nxt_frontier
    # Unreachable for a genuine SCC; defend anyway.
    return [start, start]  # pragma: no cover


#: Public aliases: the static lock-order pass (repro.check.static.locks)
#: shares this module's cycle-detection implementation, so the dynamic
#: and ahead-of-run analyses can never disagree about what a cycle is.
strongly_connected = _strongly_connected
cycle_within = _cycle_within
