"""Run the thread sanitizer over an application or a named workload.

``repro check`` builds a machine with a :class:`~repro.sim.config.
SanitizerConfig` attached, executes the workload under a static team
(training is irrelevant here — the sanitizer watches the execution
stream), and collects the findings.  Runs that abort (a deadlocked event
queue, an unlock the lock manager refuses) are themselves reported as a
``runtime`` finding, so a crashing workload can never look clean.
"""

from __future__ import annotations

from dataclasses import replace

from repro.check.findings import RUNTIME, CheckReport, Finding
from repro.errors import DeadlockError, SimulationError, WorkloadError
from repro.fdt.policies import StaticPolicy
from repro.fdt.runner import Application
from repro.sim.config import MachineConfig, SanitizerConfig
from repro.sim.machine import Machine

#: Default team size for checks.  Races and ordering violations need at
#: least two threads; four keeps the run cheap while exercising real
#: contention on every lock and barrier.
DEFAULT_THREADS = 4


def check_application(app: Application,
                      config: MachineConfig | None = None,
                      threads: int = DEFAULT_THREADS,
                      sanitizer: SanitizerConfig | None = None) -> CheckReport:
    """Run every kernel of ``app`` under the sanitizer; report findings.

    Args:
        app: the application to check.
        config: machine to check on (baseline Table 1 machine if None);
            any sanitizer already attached to it is replaced.
        threads: static team size for the checked run (>= 2 to give the
            race detector something to see).
        sanitizer: analysis knobs; defaults to everything on.

    Returns:
        A :class:`~repro.check.findings.CheckReport`; ``report.clean``
        is True when nothing was found and the run completed.
    """
    base = config or MachineConfig.asplos08_baseline()
    san_config = sanitizer or SanitizerConfig()
    if not san_config.enabled:
        san_config = replace(san_config, enabled=True)
    machine = Machine(replace(base, sanitizer=san_config))
    assert machine.sanitizer is not None  # enabled config => attached
    policy = StaticPolicy(max(2, min(threads, base.num_thread_slots)))

    aborted: str | None = None
    try:
        for kernel in app.kernels:
            policy.run_kernel(machine, kernel)
    except (DeadlockError, SimulationError) as exc:
        aborted = str(exc)

    findings = list(machine.sanitizer.finish())
    if aborted is not None:
        findings.append(Finding(
            analysis=RUNTIME,
            kind="aborted",
            message=f"the checked run aborted: {aborted}",
            details={"error": aborted},
        ))
    return CheckReport(
        workload=app.name,
        threads=policy.threads or base.num_cores,
        findings=tuple(findings),
        aborted=aborted,
        cycles=machine.now,
        dropped=machine.sanitizer.dropped,
    )


def check_workload(name: str, scale: float = 0.5,
                   config: MachineConfig | None = None,
                   threads: int = DEFAULT_THREADS,
                   sanitizer: SanitizerConfig | None = None) -> CheckReport:
    """Check a workload by name: a Table 2 entry or a synthetic fixture.

    Fixture names (``synthetic-racy``, ``synthetic-lock-inversion``,
    ``synthetic-unheld-unlock``) resolve to the sanitizer's positive
    controls and the static analyzer's controls (``static-deadlock``,
    ``static-barrier-mismatch``, ``static-counter-in-cs``) also resolve
    here, so both checkers accept the same names; anything else is
    looked up in the Table 2 registry.

    Raises:
        WorkloadError: unknown name.
    """
    from repro.workloads import get
    from repro.workloads.synthetic import sanitizer_fixtures, static_fixtures

    fixtures = {**sanitizer_fixtures(), **static_fixtures()}
    if name in fixtures:
        app = fixtures[name](scale)
    else:
        try:
            spec = get(name)
        except WorkloadError:
            known = ", ".join(sorted(fixtures))
            raise WorkloadError(
                f"unknown workload {name!r} (sanitizer fixtures: {known}; "
                f"run 'repro list' for the Table 2 roster)") from None
        app = spec.build(scale)
    return check_application(app, config=config, threads=threads,
                             sanitizer=sanitizer)
