"""Static lock pass: pairing/nesting faults and the lock-order graph.

Per-thread faults (double acquire, unlock of an unheld or mismatched
lock, locks still held at program end) come straight off the executor's
:class:`~repro.check.static.summary.LockFault` records.  The
cross-thread pass merges every thread's acquires-while-holding edges
into one graph and reports its cycles — the same potential-deadlock
criterion the dynamic :mod:`repro.check.lockorder` analysis applies,
using the same SCC implementation, but over *all* paths the programs
emit rather than the one interleaving a run happened to take.
"""

from __future__ import annotations

from repro.check.findings import STATIC, Finding
from repro.check.lockorder import cycle_within, strongly_connected
from repro.check.static.summary import TeamSummary


def lock_fault_findings(team: TeamSummary) -> list[Finding]:
    """One finding per structural lock fault, across the team."""
    findings: list[Finding] = []
    for t in team.threads:
        for fault in t.lock_faults:
            if fault.kind == "static-held-at-exit":
                msg = (f"thread {fault.thread_id} of {team.kernel} ends "
                       f"with lock {fault.lock_id} still held "
                       f"(all held: {list(fault.held)})")
            elif fault.kind == "static-double-acquire":
                msg = (f"thread {fault.thread_id} of {team.kernel} acquires "
                       f"lock {fault.lock_id} at op {fault.index} while "
                       f"already holding it — self-deadlock under a "
                       f"non-reentrant lock manager")
            elif fault.kind == "static-unlock-mismatch":
                msg = (f"thread {fault.thread_id} of {team.kernel} releases "
                       f"lock {fault.lock_id} at op {fault.index} out of "
                       f"nesting order (held: {list(fault.held)})")
            else:  # static-unlock-of-unheld
                msg = (f"thread {fault.thread_id} of {team.kernel} releases "
                       f"lock {fault.lock_id} at op {fault.index} without "
                       f"holding it")
            findings.append(Finding(
                analysis=STATIC,
                kind=fault.kind,
                message=msg,
                details={"kernel": team.kernel,
                         "num_threads": team.num_threads,
                         **fault.to_dict()},
            ))
    return findings


def lock_order_findings(team: TeamSummary) -> list[Finding]:
    """Cycles in the merged acquires-while-holding graph."""
    #: (held, wanted) -> (thread, op ordinal) of the first witness.
    edges: dict[tuple[int, int], tuple[int, int]] = {}
    for t in team.threads:
        for edge, index in t.lock_order_edges.items():
            edges.setdefault(edge, (t.thread_id, index))
    if not edges:
        return []

    adjacency: dict[int, list[int]] = {}
    for a, b in edges:
        adjacency.setdefault(a, []).append(b)
        adjacency.setdefault(b, [])

    findings: list[Finding] = []
    for component in strongly_connected(adjacency):
        if len(component) < 2:
            continue
        cycle = cycle_within(adjacency, component)
        witnesses = [
            {"held": a, "wanted": b,
             "thread": edges[(a, b)][0], "op_index": edges[(a, b)][1]}
            for a, b in zip(cycle, cycle[1:]) if (a, b) in edges
        ]
        path = " -> ".join(str(lock) for lock in cycle)
        findings.append(Finding(
            analysis=STATIC,
            kind="static-lock-order-cycle",
            message=(f"{team.kernel} can deadlock: its programs acquire "
                     f"locks in a cycle {path} (proved from the op "
                     f"streams before any run)"),
            details={
                "kernel": team.kernel,
                "num_threads": team.num_threads,
                "locks": sorted(component),
                "cycle": cycle,
                "edges": witnesses,
            },
        ))
    return findings
