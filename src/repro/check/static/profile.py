"""Static profile pass: critical-section and memory-footprint facts.

This pass produces *data*, not findings: a JSON-ready profile of each
analyzed team (where the instructions are, how big the critical
sections are, what the working set looks like) and — from the
team-of-one summary — the SAT/BAT priors
(:mod:`repro.fdt.priors`) that ``repro check --static`` reports
alongside the measured training estimates.
"""

from __future__ import annotations

from typing import Any

from repro.check.static.summary import TeamSummary
from repro.fdt.priors import StaticPriors, derive_priors
from repro.sim.config import MachineConfig


def profile_team(team: TeamSummary, config: MachineConfig) -> dict[str, Any]:
    """JSON-ready profile of one team summary.

    Covers the critical-section profile (regions, instructions and
    memory ops under locks, per-lock totals) and the memory footprint
    (per-thread and union working sets, estimated shared lines, bytes
    per instruction).
    """
    regions = [r for t in team.threads for r in t.lock_regions]
    per_lock: dict[int, dict[str, int]] = {}
    for r in regions:
        agg = per_lock.setdefault(r.lock_id, {
            "regions": 0, "instructions": 0, "mem_ops": 0, "est_cycles": 0})
        agg["regions"] += 1
        agg["instructions"] += r.instructions
        agg["mem_ops"] += r.mem_ops
        agg["est_cycles"] += r.est_cycles

    union_lines: set[int] = set()
    for t in team.threads:
        union_lines.update(t.line_accesses)
    total_instructions = team.total_instructions
    footprint_bytes = len(union_lines) * config.line_bytes

    cs_instructions = sum(t.cs_instructions for t in team.threads)
    est_cycles = sum(t.est_cycles for t in team.threads)
    est_cs_cycles = sum(t.est_cs_cycles for t in team.threads)

    return {
        "kernel": team.kernel,
        "num_threads": team.num_threads,
        "truncated": team.truncated,
        "instructions": total_instructions,
        "est_cycles": est_cycles,
        "critical_sections": {
            "regions": len(regions),
            "locks": {str(lock): agg
                      for lock, agg in sorted(per_lock.items())},
            "instructions": cs_instructions,
            "instruction_fraction": (cs_instructions / total_instructions
                                     if total_instructions else 0.0),
            "est_cycles": est_cs_cycles,
            "est_cycle_fraction": (est_cs_cycles / est_cycles
                                   if est_cycles else 0.0),
        },
        "footprint": {
            "lines": len(union_lines),
            "bytes": footprint_bytes,
            "shared_lines": team.shared_lines(),
            "bytes_per_instruction": (footprint_bytes / total_instructions
                                      if total_instructions else 0.0),
            "per_thread_lines": [t.distinct_lines for t in team.threads],
        },
        "threads": [t.to_dict() for t in team.threads],
    }


def team_priors(team: TeamSummary, iterations: int,
                config: MachineConfig) -> StaticPriors:
    """SAT/BAT priors from a team-of-one summary.

    The training loop the priors stand in for is single-threaded, so the
    caller passes the ``num_threads == 1`` analysis; summing a wider
    team would double-count the per-iteration work.
    """
    if team.num_threads != 1:
        raise ValueError(
            f"priors need the team-of-one summary, got {team.num_threads}")
    t = team.threads[0]
    return derive_priors(
        kernel_name=team.kernel,
        iterations=iterations,
        est_cycles=t.est_cycles,
        est_cs_cycles=t.est_cs_cycles,
        est_bus_busy=t.est_bus_busy,
        instructions=t.instructions,
        footprint_lines=t.distinct_lines,
        config=config,
    )
