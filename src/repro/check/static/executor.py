"""The abstract executor: drive thread programs without a simulator.

A thread program is a generator of ops that may also *receive* counter
values back after yielding a :class:`~repro.isa.ops.ReadCounter`.  The
abstract executor drives any :class:`~repro.isa.program.ProgramFactory`
exactly the way a core would — ``next`` / ``send`` — but instead of
simulating, it advances a deterministic abstract clock and materializes
a bounded :class:`~repro.check.static.summary.ThreadSummary`.

The abstract clock doubles as the stubbed counter file: a program that
reads ``CYCLES`` or ``BUS_BUSY_CYCLES`` (FDT's instrumented training
loop does) receives monotone, plausibly-scaled values, so any factory
the runtime could execute can also be analyzed.  The cost model is
deliberately simple and documented here in one place:

* ``Compute(n)`` retires at the issue width (``ceil(n / issue_width)``
  cycles, Table 1's 2-wide core);
* the *first* access a thread makes to a cache line is charged a cold
  miss (L3 + bus + line transfer + DRAM row hit) and occupies the bus
  for one line transfer; repeat accesses are charged the L1 latency —
  a thread-local stream classification, not a cache simulation;
* every other op costs one cycle.

These estimates feed the static SAT/BAT priors
(:mod:`repro.check.static.profile`); they are priors, not predictions —
the documented tolerance lives with the passes that consume them.
"""

from __future__ import annotations

from typing import Iterator

from repro.check.static.summary import (
    CounterReadSite,
    LockFault,
    LockRegion,
    StaticCheckConfig,
    TeamSummary,
    ThreadSummary,
)
from repro.isa.ops import (
    BarrierWait,
    Branch,
    Compute,
    CounterKind,
    Load,
    Lock,
    Op,
    ReadCounter,
    Store,
    Unlock,
)
from repro.isa.program import ProgramFactory
from repro.sim.config import MachineConfig


class AbstractExecutor:
    """Summarizes thread programs under the abstract cost model."""

    def __init__(self, config: StaticCheckConfig | None = None,
                 machine: MachineConfig | None = None) -> None:
        self.config = config or StaticCheckConfig()
        self.machine = machine or MachineConfig.asplos08_baseline()
        m = self.machine
        self._issue = max(1, m.issue_width)
        self._line_shift = m.line_bytes.bit_length() - 1
        self._hit_cycles = max(1, m.l1_latency)
        self._miss_cycles = (m.l3_latency + m.bus_latency
                             + m.bus_cycles_per_line + m.dram_row_hit_latency)
        self._bus_line_cycles = m.bus_cycles_per_line

    # -- public API --------------------------------------------------------

    def run_team(self, kernel_name: str, factories: list[ProgramFactory],
                 num_threads: int | None = None) -> TeamSummary:
        """Summarize one team: ``factories[i]`` becomes thread ``i``."""
        team = num_threads if num_threads is not None else len(factories)
        threads = [self.run_thread(factory(tid, team), tid, team)
                   for tid, factory in enumerate(factories)]
        return TeamSummary(kernel=kernel_name, num_threads=team,
                           threads=threads)

    def run_thread(self, program: Iterator[Op], thread_id: int,
                   num_threads: int) -> ThreadSummary:
        """Drive one thread program to exhaustion (or the op budget)."""
        s = ThreadSummary(thread_id=thread_id, num_threads=num_threads)
        budget = self.config.max_ops_per_thread
        held: list[int] = []
        open_regions: list[LockRegion] = []
        send = getattr(program, "send", None)
        reply: int | None = None

        while True:
            try:
                if reply is not None and send is not None:
                    op = send(reply)
                else:
                    op = next(program)
            except StopIteration:
                break
            reply = None
            if s.ops >= budget:
                s.truncated = True
                close = getattr(program, "close", None)
                if close is not None:
                    close()
                break
            s.ops += 1
            cost = self._step(op, s, held, open_regions)
            s.est_cycles += cost
            if held:
                s.est_cs_cycles += cost
            if type(op) is ReadCounter:
                reply = self._counter_value(op.kind, s)

        if held and not s.truncated:
            s.lock_faults.append(LockFault(
                kind="static-held-at-exit", thread_id=thread_id,
                lock_id=held[-1], index=-1, held=tuple(held)))
        return s

    # -- one op ------------------------------------------------------------

    def _step(self, op: Op, s: ThreadSummary, held: list[int],
              open_regions: list[LockRegion]) -> int:
        """Update the summary for one op; return its abstract cycle cost."""
        if type(op) is Compute:
            n = op.instructions
            s.computes += 1
            if n == 0:
                s.zero_computes += 1
            s.instructions += n
            if held:
                s.cs_instructions += n
                for region in open_regions:
                    region.instructions += n
            cost = -(-n // self._issue)  # ceil
            for region in open_regions:
                region.est_cycles += cost
            return cost
        if type(op) is Load or type(op) is Store:
            addr = op.addr
            line = addr >> self._line_shift
            counts = s.line_accesses.get(line)
            if counts is None:
                counts = s.line_accesses[line] = [0, 0]
                cost = self._miss_cycles
                s.est_bus_busy += self._bus_line_cycles
            else:
                cost = self._hit_cycles
            s.instructions += 1
            if type(op) is Load:
                s.loads += 1
                counts[0] += 1
                if held:
                    for region in open_regions:
                        region.loads += 1
            else:
                s.stores += 1
                counts[1] += 1
                if held:
                    for region in open_regions:
                        region.stores += 1
            if held:
                s.cs_instructions += 1
            for region in open_regions:
                region.est_cycles += cost
            return cost
        if type(op) is Lock:
            lock_id = op.lock_id
            s.instructions += 1
            s.lock_acquires += 1
            if lock_id in held:
                s.lock_faults.append(LockFault(
                    kind="static-double-acquire", thread_id=s.thread_id,
                    lock_id=lock_id, index=s.ops - 1, held=tuple(held)))
            for h in held:
                if h != lock_id:
                    s.lock_order_edges.setdefault((h, lock_id), s.ops - 1)
            for region in open_regions:
                region.inner_locks += 1
            region = LockRegion(lock_id=lock_id, start_index=s.ops - 1,
                                depth=len(held))
            s.lock_regions.append(region)
            open_regions.append(region)
            held.append(lock_id)
            return 1
        if type(op) is Unlock:
            lock_id = op.lock_id
            s.instructions += 1
            s.lock_releases += 1
            if not held:
                s.lock_faults.append(LockFault(
                    kind="static-unlock-of-unheld", thread_id=s.thread_id,
                    lock_id=lock_id, index=s.ops - 1, held=()))
            elif held[-1] == lock_id:
                held.pop()
                open_regions.pop().closed = True
            elif lock_id in held:
                s.lock_faults.append(LockFault(
                    kind="static-unlock-mismatch", thread_id=s.thread_id,
                    lock_id=lock_id, index=s.ops - 1, held=tuple(held)))
                # Recover by releasing the named lock so later pairing
                # stays meaningful (one fault, not a cascade).
                pos = held.index(lock_id)
                held.pop(pos)
                open_regions.pop(pos).closed = True
            else:
                s.lock_faults.append(LockFault(
                    kind="static-unlock-of-unheld", thread_id=s.thread_id,
                    lock_id=lock_id, index=s.ops - 1, held=tuple(held)))
            return 1
        if type(op) is BarrierWait:
            s.instructions += 1
            s.barrier_waits += 1
            s.barrier_sequence.append(op.barrier_id)
            return 1
        if type(op) is Branch:
            s.instructions += 1
            s.branches += 1
            pc = op.pc
            if pc < 0:
                s.negative_branch_pcs.append(pc)
            else:
                site = s.branch_sites.setdefault(pc, [0, 0])
                site[0 if op.taken else 1] += 1
            return 1
        if type(op) is ReadCounter:
            s.instructions += 1
            s.counter_reads += 1
            if held:
                s.counter_in_cs.append(CounterReadSite(
                    thread_id=s.thread_id,
                    counter=op.kind.value,
                    index=s.ops - 1, held=tuple(held)))
                for region in open_regions:
                    region.counter_reads += 1
            return 1
        raise TypeError(f"not a valid instruction: {op!r}")

    # -- stubbed counters --------------------------------------------------

    def _counter_value(self, kind: CounterKind, s: ThreadSummary) -> int:
        """The value a ReadCounter receives under the abstract clock."""
        if kind is CounterKind.CYCLES:
            return s.est_cycles
        if kind is CounterKind.BUS_BUSY_CYCLES:
            return s.est_bus_busy
        if kind is CounterKind.RETIRED_OPS:
            return s.instructions
        return s.distinct_lines  # L3_MISSES analogue: cold lines so far
