"""Data model of the static workload analyzer.

The abstract executor (:mod:`repro.check.static.executor`) drives each
thread program of a team and materializes one bounded
:class:`ThreadSummary` per thread; the pass pipeline
(:mod:`repro.check.static.analyzer`) consumes a :class:`TeamSummary`
per requested team size.  Summaries are *facts about the op stream* —
counts, sequences, and sets — never simulated timing: the only cycle
numbers here are the abstract cost estimates the executor uses both as
stubbed counter values and as the raw material of the static priors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.errors import ConfigError


@dataclass(frozen=True, slots=True)
class StaticCheckConfig:
    """Knobs of the static analyzer (:mod:`repro.check.static`)."""

    #: Per-thread op budget; a thread whose program yields more ops is
    #: summarized up to the budget and marked ``truncated`` (passes that
    #: need the complete stream — barrier proofs, held-at-exit — are
    #: suppressed for truncated threads rather than reported unsoundly).
    max_ops_per_thread: int = 4_000_000
    #: Run the lock pairing/nesting + lock-order-graph pass.
    lock_order: bool = True
    #: Run the barrier-sequence consistency pass.
    barriers: bool = True
    #: Derive the critical-section / serial-fraction prior (needs a
    #: team-of-one analysis in the requested thread counts).
    cs_profile: bool = True
    #: Derive the memory-footprint / bandwidth prior.
    footprint: bool = True
    #: Run the structural lints (counter-in-CS, empty critical section,
    #: degenerate compute, single-outcome branch sites).
    lints: bool = True
    #: Cap on reported findings (further ones are counted, not listed).
    max_findings: int = 100
    #: A branch site needs at least this many observations before the
    #: single-outcome lint will call it degenerate.
    min_branch_observations: int = 16

    def __post_init__(self) -> None:
        if self.max_ops_per_thread < 1:
            raise ConfigError("max_ops_per_thread must be >= 1")
        if self.max_findings < 1:
            raise ConfigError("max_findings must be >= 1")
        if self.min_branch_observations < 2:
            raise ConfigError("min_branch_observations must be >= 2")


@dataclass(slots=True)
class LockRegion:
    """One lock..unlock region observed in a single thread's stream."""

    lock_id: int
    #: Op ordinal (0-based, within the thread) of the acquiring Lock.
    start_index: int
    #: Nesting depth at acquisition (0 = outermost).
    depth: int
    #: Compute instructions retired strictly inside the region.
    instructions: int = 0
    loads: int = 0
    stores: int = 0
    counter_reads: int = 0
    #: Locks acquired while this region was open (nesting).
    inner_locks: int = 0
    #: Abstract cycle estimate of the work inside the region.
    est_cycles: int = 0
    #: True once the matching Unlock was seen.
    closed: bool = False

    @property
    def mem_ops(self) -> int:
        return self.loads + self.stores

    @property
    def empty(self) -> bool:
        """No work at all between Lock and Unlock."""
        return (self.instructions == 0 and self.mem_ops == 0
                and self.inner_locks == 0 and self.counter_reads == 0)

    def to_dict(self) -> dict[str, Any]:
        return {
            "lock": self.lock_id,
            "start_index": self.start_index,
            "depth": self.depth,
            "instructions": self.instructions,
            "loads": self.loads,
            "stores": self.stores,
            "counter_reads": self.counter_reads,
            "inner_locks": self.inner_locks,
            "est_cycles": self.est_cycles,
        }


@dataclass(slots=True)
class LockFault:
    """A structural lock error observed while summarizing one thread."""

    #: Finding code: "static-double-acquire", "static-unlock-of-unheld",
    #: "static-unlock-mismatch", or "static-held-at-exit".
    kind: str
    thread_id: int
    lock_id: int
    #: Op ordinal of the faulting op (-1 for end-of-program faults).
    index: int
    #: Lock ids held when the fault occurred.
    held: tuple[int, ...]

    def to_dict(self) -> dict[str, Any]:
        return {"kind": self.kind, "thread": self.thread_id,
                "lock": self.lock_id, "index": self.index,
                "held": list(self.held)}


@dataclass(slots=True)
class CounterReadSite:
    """A ReadCounter observed with at least one lock held."""

    thread_id: int
    counter: str
    index: int
    held: tuple[int, ...]


@dataclass(slots=True)
class ThreadSummary:
    """Bounded facts about one thread program's op stream."""

    thread_id: int
    num_threads: int
    # -- op totals ---------------------------------------------------------
    ops: int = 0
    instructions: int = 0
    computes: int = 0
    zero_computes: int = 0
    loads: int = 0
    stores: int = 0
    branches: int = 0
    counter_reads: int = 0
    lock_acquires: int = 0
    lock_releases: int = 0
    barrier_waits: int = 0
    # -- abstract timing (the stubbed-counter model) -----------------------
    est_cycles: int = 0
    est_cs_cycles: int = 0
    est_bus_busy: int = 0
    cs_instructions: int = 0
    # -- structure ---------------------------------------------------------
    barrier_sequence: list[int] = field(default_factory=list)
    lock_regions: list[LockRegion] = field(default_factory=list)
    lock_faults: list[LockFault] = field(default_factory=list)
    #: (held, wanted) -> op ordinal of the first observation.
    lock_order_edges: dict[tuple[int, int], int] = field(default_factory=dict)
    counter_in_cs: list[CounterReadSite] = field(default_factory=list)
    #: line address -> [load count, store count].
    line_accesses: dict[int, list[int]] = field(default_factory=dict)
    #: branch pc -> [taken count, not-taken count].
    branch_sites: dict[int, list[int]] = field(default_factory=dict)
    negative_branch_pcs: list[int] = field(default_factory=list)
    #: The thread hit the op budget; totals are lower bounds and
    #: whole-stream properties (barriers, held-at-exit) are unknown.
    truncated: bool = False

    @property
    def mem_ops(self) -> int:
        return self.loads + self.stores

    @property
    def distinct_lines(self) -> int:
        return len(self.line_accesses)

    def to_dict(self) -> dict[str, Any]:
        return {
            "thread": self.thread_id,
            "ops": self.ops,
            "instructions": self.instructions,
            "loads": self.loads,
            "stores": self.stores,
            "branches": self.branches,
            "counter_reads": self.counter_reads,
            "barrier_waits": self.barrier_waits,
            "lock_acquires": self.lock_acquires,
            "distinct_lines": self.distinct_lines,
            "est_cycles": self.est_cycles,
            "est_cs_cycles": self.est_cs_cycles,
            "est_bus_busy": self.est_bus_busy,
            "truncated": self.truncated,
        }


@dataclass(slots=True)
class TeamSummary:
    """All thread summaries of one kernel at one team size."""

    kernel: str
    num_threads: int
    threads: list[ThreadSummary]

    @property
    def truncated(self) -> bool:
        return any(t.truncated for t in self.threads)

    @property
    def total_instructions(self) -> int:
        return sum(t.instructions for t in self.threads)

    @property
    def total_ops(self) -> int:
        return sum(t.ops for t in self.threads)

    def shared_lines(self) -> int:
        """Lines touched by at least two distinct threads."""
        seen: dict[int, int] = {}
        shared = 0
        for t in self.threads:
            for line in t.line_accesses:
                owner = seen.get(line)
                if owner is None:
                    seen[line] = t.thread_id
                elif owner >= 0 and owner != t.thread_id:
                    seen[line] = -1
                    shared += 1
        return shared
