"""Static barrier pass: prove the team cannot hang on a barrier.

A barrier completes only when *every* thread of the team arrives, so
two stream properties are each a guaranteed hang, provable from the op
summaries alone:

* **count mismatch** — threads emit different numbers of BarrierWait
  ops: once the short threads exit, the long ones wait forever;
* **sequence divergence** — equal counts but different barrier-id
  sequences: with the arrival counts matched up position by position,
  some position has two threads parked on *different* barriers, neither
  of which can ever fill.

Truncated threads (op budget hit) are excluded — their tails are
unknown, so neither property can be proved for them.
"""

from __future__ import annotations

from repro.check.findings import STATIC, Finding
from repro.check.static.summary import TeamSummary


def barrier_findings(team: TeamSummary) -> list[Finding]:
    """Barrier-consistency findings for one team summary."""
    threads = [t for t in team.threads if not t.truncated]
    if len(threads) < 2:
        return []

    counts = {t.thread_id: t.barrier_waits for t in threads}
    if len(set(counts.values())) > 1:
        by_count: dict[int, list[int]] = {}
        for tid, n in counts.items():
            by_count.setdefault(n, []).append(tid)
        detail = ", ".join(
            f"{n} arrivals from threads {tids}"
            for n, tids in sorted(by_count.items()))
        return [Finding(
            analysis=STATIC,
            kind="static-barrier-count-mismatch",
            message=(f"{team.kernel} with {team.num_threads} threads will "
                     f"hang: threads arrive at barriers a different number "
                     f"of times ({detail})"),
            details={"kernel": team.kernel,
                     "num_threads": team.num_threads,
                     "arrivals": {str(t): n for t, n in sorted(counts.items())}},
        )]

    # Counts match; every position of the arrival sequences must agree.
    reference = threads[0]
    for t in threads[1:]:
        for pos, (a, b) in enumerate(zip(reference.barrier_sequence,
                                         t.barrier_sequence)):
            if a != b:
                return [Finding(
                    analysis=STATIC,
                    kind="static-barrier-sequence-divergence",
                    message=(f"{team.kernel} with {team.num_threads} threads "
                             f"will hang: at arrival {pos} thread "
                             f"{reference.thread_id} waits on barrier {a} "
                             f"while thread {t.thread_id} waits on "
                             f"barrier {b}"),
                    details={"kernel": team.kernel,
                             "num_threads": team.num_threads,
                             "position": pos,
                             "threads": [reference.thread_id, t.thread_id],
                             "barriers": [a, b]},
                )]
    return []
