"""The static analyzer: abstract-execute an application, run the passes.

:func:`analyze_application` abstract-executes every kernel of an
application at each requested team size (plus a team of one for the
priors), runs the pass pipeline over each team summary, deduplicates
findings across team sizes, and returns a :class:`StaticReport`.
:func:`analyze_workload` resolves names the same way ``repro check``
does — Table 2 registry entries, the dynamic sanitizer's fixtures, and
the static positive controls — building a *fresh* application per team
size so stateful kernels cannot leak facts between analyses.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.check.findings import CheckReport, Finding
from repro.check.static.barriers import barrier_findings
from repro.check.static.executor import AbstractExecutor
from repro.check.static.lints import lint_findings
from repro.check.static.locks import lock_fault_findings, lock_order_findings
from repro.check.static.profile import profile_team, team_priors
from repro.check.static.summary import StaticCheckConfig, TeamSummary
from repro.errors import WorkloadError
from repro.fdt.priors import StaticPriors
from repro.fdt.runner import Application
from repro.sim.config import MachineConfig

#: Default team sizes to analyze.  One team of one (the priors' view),
#: one small team, one team wide enough to shift barrier/chunk shapes.
DEFAULT_THREAD_COUNTS = (1, 4, 16)


@dataclass(frozen=True, slots=True)
class StaticReport:
    """Everything one static analysis produced."""

    workload: str
    thread_counts: tuple[int, ...]
    findings: tuple[Finding, ...]
    #: Kernel name -> SAT/BAT priors from the team-of-one summary.
    priors: dict[str, StaticPriors] = field(default_factory=dict)
    #: JSON-ready per-kernel, per-team-size profiles.
    profiles: tuple[dict[str, Any], ...] = ()
    #: Some thread hit the op budget; findings are sound but incomplete.
    truncated: bool = False
    #: Findings dropped at the ``max_findings`` cap.
    dropped: int = 0

    @property
    def clean(self) -> bool:
        return not self.findings

    def counts(self) -> dict[str, int]:
        """Finding count per kind."""
        out: dict[str, int] = {}
        for f in self.findings:
            out[f.kind] = out.get(f.kind, 0) + 1
        return out

    def as_check_report(self) -> CheckReport:
        """Bridge to the dynamic report type, for the shared formatter."""
        return CheckReport(
            workload=self.workload,
            threads=max(self.thread_counts),
            findings=self.findings,
            aborted=None,
            cycles=0,
            dropped=self.dropped,
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "workload": self.workload,
            "thread_counts": list(self.thread_counts),
            "clean": self.clean,
            "truncated": self.truncated,
            "dropped": self.dropped,
            "counts": self.counts(),
            "findings": [f.to_dict() for f in self.findings],
            "priors": {k: p.to_dict() for k, p in sorted(self.priors.items())},
            "profiles": list(self.profiles),
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)


def analyze_application(
        build: Application | Callable[[], Application],
        thread_counts: tuple[int, ...] = DEFAULT_THREAD_COUNTS,
        config: MachineConfig | None = None,
        static: StaticCheckConfig | None = None) -> StaticReport:
    """Statically analyze an application at each requested team size.

    Args:
        build: the application, or a zero-argument builder.  Pass a
            builder whenever kernels carry mutable state: a fresh
            application is then built per team size, so no analysis can
            observe another's side effects.
        thread_counts: team sizes to analyze.  A team of one is always
            added (the priors derive from it).
        config: machine whose cost parameters drive the abstract model
            (Table 1 baseline if None).
        static: analyzer knobs.
    """
    if not thread_counts:
        raise WorkloadError("static analysis needs at least one team size")
    if any(n < 1 for n in thread_counts):
        raise WorkloadError("team sizes must be >= 1")
    cfg = config or MachineConfig.asplos08_baseline()
    scfg = static or StaticCheckConfig()
    builder = build if callable(build) else _constant(build)

    sizes = tuple(sorted(set(thread_counts) | {1}))
    name = ""
    findings: list[Finding] = []
    seen: set[tuple[str, str]] = set()
    priors: dict[str, StaticPriors] = {}
    profiles: list[dict[str, Any]] = []
    truncated = False
    dropped = 0

    executor = AbstractExecutor(scfg, cfg)
    for num_threads in sizes:
        app = builder()
        name = app.name
        for kernel in app.kernels:
            factories = kernel.factories(
                range(kernel.total_iterations), num_threads)
            team = executor.run_team(kernel.name, factories, num_threads)
            truncated = truncated or team.truncated

            if num_threads == 1 and (scfg.cs_profile or scfg.footprint):
                priors[kernel.name] = team_priors(
                    team, kernel.total_iterations, cfg)
            if scfg.cs_profile or scfg.footprint:
                profiles.append(profile_team(team, cfg))

            for f in _team_findings(team, scfg):
                key = (f.kind, _identity(f))
                if key in seen:
                    continue
                seen.add(key)
                if len(findings) >= scfg.max_findings:
                    dropped += 1
                    continue
                findings.append(f)

    return StaticReport(
        workload=name,
        thread_counts=tuple(sorted(set(thread_counts))),
        findings=tuple(findings),
        priors=priors,
        profiles=tuple(profiles),
        truncated=truncated,
        dropped=dropped,
    )


def analyze_workload(
        name: str, scale: float = 0.5,
        thread_counts: tuple[int, ...] = DEFAULT_THREAD_COUNTS,
        config: MachineConfig | None = None,
        static: StaticCheckConfig | None = None) -> StaticReport:
    """Statically analyze a workload by name.

    Resolves Table 2 registry entries, the dynamic sanitizer's fixtures,
    and the static positive controls (``static-deadlock``,
    ``static-barrier-mismatch``, ``static-counter-in-cs``).

    Raises:
        WorkloadError: unknown name.
    """
    from repro.workloads import get
    from repro.workloads.synthetic import sanitizer_fixtures, static_fixtures

    fixtures = {**sanitizer_fixtures(), **static_fixtures()}
    if name in fixtures:
        build = fixtures[name]
    else:
        try:
            spec = get(name)
        except WorkloadError:
            known = ", ".join(sorted(fixtures))
            raise WorkloadError(
                f"unknown workload {name!r} (fixtures: {known}; run "
                f"'repro list' for the Table 2 roster)") from None
        build = spec.build
    return analyze_application(lambda: build(scale),
                               thread_counts=thread_counts,
                               config=config, static=static)


def _constant(app: Application) -> Callable[[], Application]:
    """A builder that returns the one already-built application."""
    def build() -> Application:
        return app
    return build


def _team_findings(team: TeamSummary,
                   config: StaticCheckConfig) -> list[Finding]:
    """Run the enabled passes over one team summary, in report order."""
    out: list[Finding] = []
    if config.lock_order:
        out.extend(lock_fault_findings(team))
        out.extend(lock_order_findings(team))
    if config.barriers:
        out.extend(barrier_findings(team))
    if config.lints:
        out.extend(lint_findings(team, config))
    return out


def _identity(f: Finding) -> str:
    """Dedup key: the details minus the team size they were seen at.

    The same structural defect usually reproduces at every analyzed
    team size with identical details except ``num_threads`` (and, for
    barrier findings, the per-team arrival bookkeeping); collapsing on
    the remainder keeps one witness per defect.
    """
    skip = {"num_threads", "arrivals", "threads", "position"}
    pruned = {k: v for k, v in f.details.items() if k not in skip}
    return json.dumps(pruned, sort_keys=True, default=str)
