"""Static structural lints: legal-but-suspect op-stream shapes.

Nothing here predicts a hang or a race; each lint flags a pattern that
is almost always a workload-authoring bug on this simulator:

* ``static-counter-in-cs`` — a ReadCounter inside a critical section:
  training instrumentation must bracket critical sections from the
  *outside* (Section 4.2.1); reading the cycle counter while holding
  the lock folds the measurement overhead into T_CS itself;
* ``static-empty-critical-section`` — a lock/unlock pair with nothing
  between them: pure serialization, zero protected work;
* ``static-degenerate-compute`` — Compute(0) ops: no-ops that still
  cost generator machinery; usually a mis-scaled workload constant;
* ``static-single-outcome-branch`` — a branch site observed many times
  with only one outcome: the gshare predictor trivially learns it, so
  it models no control flow; emit Compute instead.
"""

from __future__ import annotations

from repro.check.findings import STATIC, Finding
from repro.check.static.summary import StaticCheckConfig, TeamSummary


def lint_findings(team: TeamSummary,
                  config: StaticCheckConfig) -> list[Finding]:
    """All structural lints over one team summary."""
    findings: list[Finding] = []

    for t in team.threads:
        for site in t.counter_in_cs:
            findings.append(Finding(
                analysis=STATIC,
                kind="static-counter-in-cs",
                message=(f"thread {site.thread_id} of {team.kernel} reads "
                         f"counter '{site.counter}' at op {site.index} "
                         f"inside a critical section (holding "
                         f"{list(site.held)}) — instrumentation must "
                         f"bracket critical sections from outside"),
                details={"kernel": team.kernel,
                         "num_threads": team.num_threads,
                         "thread": site.thread_id,
                         "counter": site.counter,
                         "index": site.index,
                         "held": list(site.held)},
            ))

    empty_by_lock: dict[int, int] = {}
    for t in team.threads:
        for region in t.lock_regions:
            if region.closed and region.empty:
                empty_by_lock[region.lock_id] = (
                    empty_by_lock.get(region.lock_id, 0) + 1)
    for lock, count in sorted(empty_by_lock.items()):
        findings.append(Finding(
            analysis=STATIC,
            kind="static-empty-critical-section",
            message=(f"{team.kernel} takes lock {lock} around no work at "
                     f"all ({count} empty lock/unlock region(s)) — pure "
                     f"serialization"),
            details={"kernel": team.kernel,
                     "num_threads": team.num_threads,
                     "lock": lock, "regions": count},
        ))

    zero_computes = sum(t.zero_computes for t in team.threads)
    if zero_computes:
        findings.append(Finding(
            analysis=STATIC,
            kind="static-degenerate-compute",
            message=(f"{team.kernel} emits {zero_computes} Compute(0) "
                     f"op(s) — no-ops that suggest a mis-scaled workload "
                     f"constant"),
            details={"kernel": team.kernel,
                     "num_threads": team.num_threads,
                     "count": zero_computes},
        ))

    # Merge branch sites across the team before judging outcomes: a site
    # may be taken on one thread and not-taken on another.
    sites: dict[int, list[int]] = {}
    for t in team.threads:
        for pc, (taken, not_taken) in t.branch_sites.items():
            agg = sites.setdefault(pc, [0, 0])
            agg[0] += taken
            agg[1] += not_taken
    for pc, (taken, not_taken) in sorted(sites.items()):
        total = taken + not_taken
        if total < config.min_branch_observations:
            continue
        if taken and not_taken:
            continue
        outcome = "taken" if taken else "not taken"
        findings.append(Finding(
            analysis=STATIC,
            kind="static-single-outcome-branch",
            message=(f"{team.kernel} branch site {pc} was {outcome} all "
                     f"{total} times — it models no control flow; use "
                     f"Compute for straight-line work"),
            details={"kernel": team.kernel,
                     "num_threads": team.num_threads,
                     "pc": pc, "taken": taken, "not_taken": not_taken},
        ))

    return findings
