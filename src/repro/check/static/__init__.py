"""Static workload analyzer: ahead-of-run verification and FDT priors.

Abstract-executes thread programs (no simulation) and proves structural
properties from their op summaries: lock pairing and lock-order cycles,
barrier consistency, critical-section and footprint profiles that yield
static SAT/BAT priors, and structural lints.  Entry points:

* :func:`~repro.check.static.analyzer.analyze_workload` /
  :func:`~repro.check.static.analyzer.analyze_application` — run the
  whole pipeline (``repro check --static``);
* :class:`~repro.check.static.executor.AbstractExecutor` — the driver,
  for callers that want raw summaries.
"""

from repro.check.static.analyzer import (
    DEFAULT_THREAD_COUNTS,
    StaticReport,
    analyze_application,
    analyze_workload,
)
from repro.check.static.executor import AbstractExecutor
from repro.check.static.summary import (
    StaticCheckConfig,
    TeamSummary,
    ThreadSummary,
)

__all__ = [
    "AbstractExecutor",
    "DEFAULT_THREAD_COUNTS",
    "StaticCheckConfig",
    "StaticReport",
    "TeamSummary",
    "ThreadSummary",
    "analyze_application",
    "analyze_workload",
]
