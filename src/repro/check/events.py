"""The event-emission hook interface between the simulator and the sanitizer.

The machine components (:class:`~repro.sim.core.Core`,
:class:`~repro.runtime.locks.LockManager`,
:class:`~repro.runtime.barriers.BarrierManager`,
:class:`~repro.sim.machine.Machine`) call these hooks at synchronization
and memory events, guarded by a single ``is None`` test — the whole cost
when no sanitizer is attached.  Hooks are pure observers: they must not
schedule events or mutate machine state, so simulated timing is
bit-identical with a sanitizer on or off.

``agent`` is always the hardware thread slot (the id locks and barriers
are keyed by); ``now`` is the machine cycle at which the issuing event is
processed.
"""

from __future__ import annotations

from repro.isa.ops import CounterKind


class SanitizerHooks:
    """No-op base implementation of every hook.

    Subclass and override what you need; :class:`repro.check.sanitizer.
    ThreadSanitizer` overrides all of them.  Keeping a concrete no-op
    base (rather than an ABC) lets tests attach partial observers.
    """

    # -- region lifecycle --------------------------------------------------

    def on_region_begin(self, num_threads: int, now: int) -> None:
        """A parallel region with ``num_threads`` threads is starting."""

    def on_region_end(self, now: int) -> None:
        """The region completed (not called when the run aborts)."""

    def on_thread_exit(self, agent: int, now: int) -> None:
        """``agent``'s program is exhausted."""

    # -- memory ------------------------------------------------------------

    def on_access(self, agent: int, addr: int, is_store: bool,
                  now: int) -> None:
        """``agent`` issued a load (``is_store=False``) or store."""

    # -- locks ---------------------------------------------------------------

    def on_lock_request(self, lock_id: int, agent: int, now: int) -> None:
        """``agent`` issued a Lock op (grant may come later, or never)."""

    def on_lock_acquired(self, lock_id: int, agent: int, now: int) -> None:
        """The lock manager made ``agent`` the holder of ``lock_id``."""

    def on_unlock_request(self, lock_id: int, agent: int, now: int) -> None:
        """``agent`` issued an Unlock op (called before validation, so it
        fires even when the release is about to abort the run)."""

    def on_lock_released(self, lock_id: int, agent: int, now: int) -> None:
        """``agent`` released ``lock_id`` (validation passed)."""

    # -- barriers ---------------------------------------------------------------

    def on_barrier_arrive(self, barrier_id: int, agent: int,
                          team_size: int, now: int) -> None:
        """``agent`` arrived at ``barrier_id`` expecting ``team_size``."""

    def on_barrier_release(self, barrier_id: int, agents: list[int],
                           now: int) -> None:
        """The last arriver completed a generation; ``agents`` lists every
        participant.  All pre-barrier hooks of the participants have
        already fired, and all their post-barrier hooks fire later, so
        this is a happens-before fence for the race detector."""

    # -- counters ------------------------------------------------------------------

    def on_read_counter(self, agent: int, kind: CounterKind,
                        now: int) -> None:
        """``agent`` read a performance counter."""
