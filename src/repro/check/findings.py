"""Findings model of the thread sanitizer.

A :class:`Finding` is one reported defect — a data race, a lock-order
cycle, or a discipline violation — with enough structured detail for a
machine consumer (``repro check --json``) and a one-line message for a
human one.  A :class:`CheckReport` bundles everything one sanitized run
produced.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Mapping

#: Analysis identifiers, in report order.
RACE = "race"
LOCK_ORDER = "lock-order"
DISCIPLINE = "discipline"
RUNTIME = "runtime"
#: Ahead-of-run findings from :mod:`repro.check.static` — program
#: properties proved from op summaries before a single cycle simulates.
STATIC = "static"

ANALYSES = (RACE, LOCK_ORDER, DISCIPLINE, RUNTIME, STATIC)


@dataclass(frozen=True, slots=True)
class AccessSite:
    """One observed memory access, for race reports."""

    agent: int
    #: 1-based ordinal of this access among the agent's accesses.
    index: int
    kind: str  # "load" | "store"
    cycle: int

    def to_dict(self) -> dict[str, Any]:
        return {"agent": self.agent, "index": self.index,
                "kind": self.kind, "cycle": self.cycle}

    def __str__(self) -> str:
        return f"agent {self.agent} {self.kind} #{self.index} @ {self.cycle}"


@dataclass(frozen=True, slots=True)
class Finding:
    """One sanitizer finding."""

    #: Which analysis produced it: "race", "lock-order", "discipline",
    #: or "runtime" (the simulated run itself aborted).
    analysis: str
    #: Machine-readable finding type, e.g. "empty-lockset",
    #: "lock-order-cycle", "unlock-of-unheld".
    kind: str
    #: One-line human-readable description.
    message: str
    #: Structured, JSON-serializable payload (addresses, lock ids, sites).
    details: Mapping[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {"analysis": self.analysis, "kind": self.kind,
                "message": self.message, "details": dict(self.details)}


@dataclass(frozen=True, slots=True)
class CheckReport:
    """Everything one ``repro check`` run produced."""

    workload: str
    threads: int
    findings: tuple[Finding, ...]
    #: Exception text if the simulated run itself died (deadlock,
    #: unlock-of-unheld aborting the lock manager, ...); None otherwise.
    aborted: str | None = None
    #: Simulated cycles the checked run covered.
    cycles: int = 0
    #: Findings dropped because an analysis hit its ``max_findings`` cap.
    dropped: int = 0

    @property
    def clean(self) -> bool:
        """True when the workload passed every analysis."""
        return not self.findings and self.aborted is None

    def counts(self) -> dict[str, int]:
        """Finding count per analysis (all analyses, zeros included)."""
        out = {name: 0 for name in ANALYSES}
        for f in self.findings:
            out[f.analysis] = out.get(f.analysis, 0) + 1
        return out

    def by_analysis(self, analysis: str) -> tuple[Finding, ...]:
        """The findings one analysis produced."""
        return tuple(f for f in self.findings if f.analysis == analysis)

    def to_dict(self) -> dict[str, Any]:
        return {
            "workload": self.workload,
            "threads": self.threads,
            "clean": self.clean,
            "aborted": self.aborted,
            "cycles": self.cycles,
            "dropped": self.dropped,
            "counts": self.counts(),
            "findings": [f.to_dict() for f in self.findings],
        }

    def to_json(self, indent: int | None = 2) -> str:
        """The machine-readable report ``repro check --json`` prints."""
        return json.dumps(self.to_dict(), indent=indent)
