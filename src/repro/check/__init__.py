"""Thread sanitizer for simulated programs (``repro check``).

FDT trusts counter measurements taken while a kernel executes; a kernel
with a data race or a latent deadlock feeds the training stage garbage
``T_CS``/``BU_1`` samples and silently wrong thread counts.  This
package is the correctness gate in front of that pipeline:

* :mod:`repro.check.lockset` — Eraser-style lockset race detection;
* :mod:`repro.check.lockorder` — lock-order (potential deadlock) cycles;
* :mod:`repro.check.discipline` — lock/barrier/counter discipline lint;
* :mod:`repro.check.static` — ahead-of-run analysis: abstract-executes
  the op streams (no simulation) to prove lock/barrier properties and
  derive static SAT/BAT priors.

Attach a :class:`~repro.sim.config.SanitizerConfig` to a
:class:`~repro.sim.config.MachineConfig` to observe any run, or use
:func:`check_application` / :func:`check_workload` (the ``repro check``
CLI entry) for a one-call verdict; :func:`analyze_workload` is the
static-analysis counterpart (``repro check --static``).
"""

from repro.check.events import SanitizerHooks
from repro.check.findings import (
    ANALYSES,
    DISCIPLINE,
    LOCK_ORDER,
    RACE,
    RUNTIME,
    STATIC,
    AccessSite,
    CheckReport,
    Finding,
)
from repro.check.runner import DEFAULT_THREADS, check_application, check_workload
from repro.check.sanitizer import ThreadSanitizer
from repro.check.static import (
    StaticCheckConfig,
    StaticReport,
    analyze_application,
    analyze_workload,
)

__all__ = [
    "ANALYSES",
    "DISCIPLINE",
    "LOCK_ORDER",
    "RACE",
    "RUNTIME",
    "STATIC",
    "AccessSite",
    "CheckReport",
    "DEFAULT_THREADS",
    "Finding",
    "SanitizerHooks",
    "StaticCheckConfig",
    "StaticReport",
    "ThreadSanitizer",
    "analyze_application",
    "analyze_workload",
    "check_application",
    "check_workload",
]
