"""Eraser-style lockset race detection (Savage et al., SOSP 1997).

Every shared address carries a candidate lockset: the locks that were
held on *every* access since the address became shared.  When the
candidate set goes empty on a written address, no single lock protects
it — a data race.

Two adaptations for simulated op-stream programs:

* **Barrier epochs.**  The paper's kernels synchronize phases with
  barriers, not locks; plain Eraser would flag every
  write-barrier-write sequence.  The sanitizer bumps a global epoch at
  every full-team barrier release and region boundary (both are
  happens-before fences for the whole team here), and an address whose
  last access predates the current epoch restarts its state machine.
* **Write-write by default.**  Workload generators touch line-aligned
  representative addresses, so a load and a store of the same line by
  different threads usually models false sharing rather than a race.
  Read-write conflicts are therefore only reported under
  ``SanitizerConfig.report_read_write``; write-write conflicts always
  are.
"""

from __future__ import annotations

from repro.check.findings import RACE, AccessSite, Finding
from repro.sim.config import SanitizerConfig

# Per-address state machine (Eraser Figure 2).
_EXCLUSIVE = 0  # one thread has touched it (initialization pattern)
_SHARED = 1  # read by several threads, no report yet
_SHARED_MOD = 2  # written while shared: report on empty lockset

_EMPTY: frozenset[int] = frozenset()


class _AddrState:
    """Race-detector state of one byte address."""

    __slots__ = ("state", "owner", "lockset", "epoch", "written",
                 "writers", "first", "prev", "reported")

    def __init__(self, agent: int, is_store: bool, epoch: int,
                 site: AccessSite) -> None:
        self.reset(agent, is_store, epoch, site)
        self.reported = False

    def reset(self, agent: int, is_store: bool, epoch: int,
              site: AccessSite) -> None:
        self.state = _EXCLUSIVE
        self.owner = agent
        self.lockset: frozenset[int] = _EMPTY
        self.epoch = epoch
        self.written = is_store
        self.writers = {agent} if is_store else set()
        self.first = site
        self.prev = site


class LocksetRaceDetector:
    """Consumes accesses with held-lock sets; produces race findings."""

    def __init__(self, config: SanitizerConfig) -> None:
        self._cfg = config
        self._addrs: dict[int, _AddrState] = {}
        self._findings: list[Finding] = []
        self.dropped = 0

    @property
    def findings(self) -> list[Finding]:
        return self._findings

    def on_access(self, agent: int, addr: int, is_store: bool, epoch: int,
                  held: frozenset[int], site: AccessSite) -> None:
        """Advance ``addr``'s state machine for one access.

        ``held`` is the set of lock ids ``agent`` holds at the access;
        ``epoch`` is the sanitizer's barrier epoch.
        """
        for lo, hi in self._cfg.ignore_address_ranges:
            if lo <= addr < hi:
                return
        st = self._addrs.get(addr)
        if st is None:
            self._addrs[addr] = _AddrState(agent, is_store, epoch, site)
            return
        if st.epoch != epoch:
            # All earlier accesses are barrier-ordered before this one.
            st.reset(agent, is_store, epoch, site)
            return

        if st.state == _EXCLUSIVE:
            if agent == st.owner:
                st.written = st.written or is_store
                if is_store:
                    st.writers.add(agent)
                st.prev = site
                return
            # Second thread: the address is genuinely shared from here on.
            st.lockset = held
            st.state = _SHARED_MOD if is_store else _SHARED
        else:
            st.lockset = st.lockset & held
            if is_store:
                st.state = _SHARED_MOD
        if is_store:
            st.writers.add(agent)
        self._maybe_report(addr, st, site)
        st.prev = site

    def _maybe_report(self, addr: int, st: _AddrState,
                      site: AccessSite) -> None:
        if st.reported or st.state != _SHARED_MOD or st.lockset:
            return
        if len(st.writers) < 2 and not self._cfg.report_read_write:
            return
        st.reported = True
        if len(self._findings) >= self._cfg.max_findings:
            self.dropped += 1
            return
        sites = [st.first]
        if st.prev != st.first:
            sites.append(st.prev)
        if site != st.prev:
            sites.append(site)
        agents = sorted({s.agent for s in sites} | st.writers)
        self._findings.append(Finding(
            analysis=RACE,
            kind="empty-lockset",
            message=(f"data race on address {addr:#x}: candidate lockset "
                     f"is empty after {site}; agents {agents} access it "
                     f"with no common lock"),
            details={
                "address": addr,
                "address_hex": f"{addr:#x}",
                "agents": agents,
                "writers": sorted(st.writers),
                "sites": [s.to_dict() for s in sites],
            },
        ))
