"""Lock/barrier discipline lint: structural misuse of the sync primitives.

These checks need no interleaving luck at all — each one is a property
of a single observed event stream:

* ``unlock-of-unheld``   — an Unlock of a lock the agent does not hold
  (the lock manager aborts the run right after; the lint names the site).
* ``double-acquire``     — a Lock of a lock the agent already holds
  (the FIFO lock is not reentrant: this self-deadlocks).
* ``held-at-exit``       — a thread program ended while holding locks.
* ``inconsistent-barrier-team`` — arrivals at one barrier generation
  disagree about the team size, or consecutive generations within one
  region are crossed by different agent sets.
* ``incomplete-barrier`` — a barrier generation never completed (emitted
  at the end of an aborted run: the usual shape of a barrier deadlock).
* ``counter-in-critical-section`` — a performance counter read while a
  lock is held; the read is serializing, so it inflates the measured
  critical section and corrupts SAT's ``T_CS`` training samples.
"""

from __future__ import annotations

from repro.check.findings import DISCIPLINE, Finding
from repro.isa.ops import CounterKind
from repro.sim.config import SanitizerConfig


class _BarrierTrack:
    """Arrival bookkeeping for one barrier id within one region."""

    __slots__ = ("arrived", "team_sizes", "last_members", "flagged")

    def __init__(self) -> None:
        self.arrived: list[int] = []
        self.team_sizes: set[int] = set()
        self.last_members: frozenset[int] | None = None
        self.flagged = False


class DisciplineLinter:
    """Structural lock/barrier/counter checks."""

    def __init__(self, config: SanitizerConfig) -> None:
        self._cfg = config
        self._findings: list[Finding] = []
        self._barriers: dict[int, _BarrierTrack] = {}
        self._counter_sites: set[tuple[str, int]] = set()
        self.dropped = 0

    @property
    def findings(self) -> list[Finding]:
        return self._findings

    def _record(self, kind: str, message: str, **details: object) -> None:
        if len(self._findings) >= self._cfg.max_findings:
            self.dropped += 1
            return
        self._findings.append(Finding(
            analysis=DISCIPLINE, kind=kind, message=message, details=details))

    # -- locks -----------------------------------------------------------

    def on_lock_request(self, lock_id: int, agent: int,
                        held: list[int], now: int) -> None:
        if lock_id in held:
            self._record(
                "double-acquire",
                f"agent {agent} requested lock {lock_id} at cycle {now} "
                f"while already holding it (the FIFO lock is not "
                f"reentrant; this self-deadlocks)",
                lock=lock_id, agent=agent, cycle=now, held=list(held))

    def on_unlock_request(self, lock_id: int, agent: int,
                          held: list[int], now: int) -> None:
        if lock_id not in held:
            self._record(
                "unlock-of-unheld",
                f"agent {agent} released lock {lock_id} at cycle {now} "
                f"without holding it (held: {list(held) or 'none'})",
                lock=lock_id, agent=agent, cycle=now, held=list(held))

    def on_thread_exit(self, agent: int, held: list[int], now: int) -> None:
        if held:
            self._record(
                "held-at-exit",
                f"agent {agent} exited at cycle {now} still holding "
                f"lock(s) {list(held)}",
                agent=agent, cycle=now, held=list(held))

    # -- barriers ----------------------------------------------------------

    def on_region_begin(self) -> None:
        """Barrier membership is scoped to one parallel region."""
        self._barriers.clear()

    def on_barrier_arrive(self, barrier_id: int, agent: int,
                          team_size: int, now: int) -> None:
        track = self._barriers.get(barrier_id)
        if track is None:
            track = self._barriers[barrier_id] = _BarrierTrack()
        track.arrived.append(agent)
        track.team_sizes.add(team_size)
        if len(track.team_sizes) > 1 and not track.flagged:
            track.flagged = True
            self._record(
                "inconsistent-barrier-team",
                f"barrier {barrier_id}: arrivals disagree about the team "
                f"size ({sorted(track.team_sizes)}) within one generation",
                barrier=barrier_id, team_sizes=sorted(track.team_sizes),
                cycle=now)

    def on_barrier_release(self, barrier_id: int, agents: list[int],
                           now: int) -> None:
        track = self._barriers.get(barrier_id)
        if track is None:  # release without tracked arrivals: ignore
            return
        members = frozenset(agents)
        if (track.last_members is not None
                and members != track.last_members and not track.flagged):
            track.flagged = True
            self._record(
                "inconsistent-barrier-team",
                f"barrier {barrier_id}: generation crossed by agents "
                f"{sorted(members)} but the previous generation by "
                f"{sorted(track.last_members)}",
                barrier=barrier_id, members=sorted(members),
                previous=sorted(track.last_members), cycle=now)
        track.last_members = members
        track.arrived.clear()
        track.team_sizes.clear()

    # -- counters ------------------------------------------------------------

    def on_read_counter(self, agent: int, kind: CounterKind,
                        held: list[int], now: int) -> None:
        if not held:
            return
        site = (kind.value, held[-1])
        if site in self._counter_sites:
            return  # one finding per (counter, innermost lock) site
        self._counter_sites.add(site)
        self._record(
            "counter-in-critical-section",
            f"agent {agent} read counter {kind.value!r} at cycle {now} "
            f"inside a critical section (holding {list(held)}); the "
            f"serializing read inflates measured T_CS and corrupts SAT "
            f"training",
            agent=agent, counter=kind.value, held=list(held), cycle=now)

    # -- end of run ------------------------------------------------------------

    def finish(self) -> None:
        """Flag barrier generations that never completed (deadlock shape)."""
        for barrier_id, track in self._barriers.items():
            if track.arrived:
                self._record(
                    "incomplete-barrier",
                    f"barrier {barrier_id}: generation never completed; "
                    f"only agents {sorted(set(track.arrived))} arrived",
                    barrier=barrier_id,
                    arrived=sorted(set(track.arrived)))
                track.arrived.clear()  # keep finish() idempotent
