"""repro — reproduction of "Feedback-Driven Threading" (ASPLOS 2008).

Suleman, Qureshi, and Patt's Feedback-Driven Threading (FDT) dynamically
picks the number of threads for a parallel kernel by training on a few
iterations and applying two analytical models: Synchronization-Aware
Threading (SAT, ``P_CS = sqrt(T_NoCS / T_CS)``) and Bandwidth-Aware
Threading (BAT, ``P_BW = 1 / BU_1``), combined as their minimum.

This package contains the complete stack the paper's evaluation needs:

* :mod:`repro.sim` — a cycle-level 32-core CMP simulator (Table 1).
* :mod:`repro.isa` / :mod:`repro.runtime` — the instruction stream and
  threading runtime simulated programs run on.
* :mod:`repro.fdt` — the FDT framework itself (the contribution).
* :mod:`repro.models` — the closed-form models (Eq. 1-7).
* :mod:`repro.workloads` — the twelve Table 2 workloads.
* :mod:`repro.analysis` / :mod:`repro.experiments` — sweeps, the oracle,
  and one runner per paper figure.

Quickstart::

    from repro import MachineConfig, FdtPolicy, run_application, workloads

    app = workloads.get("PageMine").build()
    result = run_application(app, FdtPolicy())
    print(result.threads_used, result.cycles, result.power)
"""

from repro import workloads
from repro.analysis import oracle_choice, sweep_threads
from repro.fdt import (
    Application,
    AppRunResult,
    FdtMode,
    FdtPolicy,
    StaticPolicy,
    run_application,
)
from repro.models import BatModel, CombinedModel, SatModel
from repro.sim import Machine, MachineConfig, RunResult

__version__ = "1.0.0"

__all__ = [
    "Machine",
    "MachineConfig",
    "RunResult",
    "Application",
    "AppRunResult",
    "FdtMode",
    "FdtPolicy",
    "StaticPolicy",
    "run_application",
    "SatModel",
    "BatModel",
    "CombinedModel",
    "sweep_threads",
    "oracle_choice",
    "workloads",
    "__version__",
]
