"""The assembled CMP: cores, caches, ring, L3, bus, DRAM, runtime managers.

:class:`Machine` is the top-level simulator object.  Its central primitive
is :meth:`run_parallel`, which executes one parallel region — a team of
thread programs pinned to hardware thread slots — to completion and
advances simulated time.  Applications are sequences of serial and
parallel regions; caches, DRAM row buffers, predictors, and the clock
persist across regions, so a kernel's second invocation sees a warm
machine just like on real hardware.

Thread placement: slot ``s`` runs on core ``s % num_cores``, SMT context
``s // num_cores`` — teams no larger than the core count get one thread
per core (the paper's configuration); larger teams (Section 9's SMT
extension) double up contexts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import ConfigError, DeadlockError, SimulationError
from repro.isa.program import ProgramFactory
from repro.runtime.barriers import BarrierManager
from repro.runtime.locks import LockManager
from repro.sim.config import MachineConfig
from repro.sim.core import Core
from repro.sim.counters import CounterFile
from repro.sim.engine import EventQueue
from repro.sim.memsys import MemorySystem
from repro.sim.ring import Ring
from repro.sim.stats import RunResult, Snapshot

if TYPE_CHECKING:  # pragma: no cover - import cycle guards
    from repro.check.sanitizer import ThreadSanitizer
    from repro.trace.recorder import TraceRecorder


@dataclass(frozen=True, slots=True)
class RegionResult:
    """Timing of one parallel region."""

    start_cycle: int
    end_cycle: int
    num_threads: int

    @property
    def cycles(self) -> int:
        return self.end_cycle - self.start_cycle


def _place_nodes(num_cores: int, num_banks: int) -> tuple[list[int], list[int]]:
    """Interleave L3 bank stations evenly among core stations on the ring."""
    total = num_cores + num_banks
    bank_slots = {((i + 1) * total) // num_banks - 1 for i in range(num_banks)}
    core_nodes: list[int] = []
    bank_nodes: list[int] = []
    for slot in range(total):
        if slot in bank_slots:
            bank_nodes.append(slot)
        else:
            core_nodes.append(slot)
    return core_nodes, bank_nodes


class Machine:
    """A simulated CMP built from a :class:`MachineConfig`."""

    __slots__ = ("config", "events", "ring", "memsys", "counters",
                 "sanitizer", "trace", "locks", "barriers", "cores",
                 "_team_size", "_threads_running", "_active_core_cycles",
                 "_core_first_start")

    def __init__(self, config: MachineConfig | None = None) -> None:
        self.config = config or MachineConfig.asplos08_baseline()
        self.events = EventQueue()
        core_nodes, bank_nodes = _place_nodes(self.config.num_cores,
                                              self.config.l3_banks)
        self.ring = Ring(self.config.num_cores + self.config.l3_banks,
                         self.config.ring_hop_latency,
                         self.config.ring_link_occupancy)
        self.memsys = MemorySystem(self.config, self.ring, core_nodes, bank_nodes)
        self.counters = CounterFile(self.events, self.memsys)
        #: Thread sanitizer (repro.check), or None.  A pure observer:
        #: attaching one never changes simulated timing.
        self.sanitizer: ThreadSanitizer | None = None
        san_config = self.config.sanitizer
        if san_config is not None and san_config.enabled:
            # Imported lazily: the sim layer stays import-free of the
            # checker unless a config actually asks for it.
            from repro.check.sanitizer import ThreadSanitizer
            self.sanitizer = ThreadSanitizer(san_config)
        #: Trace recorder (repro.trace), or None.  Like the sanitizer, a
        #: pure observer: attaching one never changes simulated timing.
        self.trace: TraceRecorder | None = None
        trace_config = self.config.trace
        if trace_config is not None and trace_config.enabled:
            # Imported lazily for the same reason as the sanitizer.
            from repro.trace.recorder import TraceRecorder
            self.trace = TraceRecorder(trace_config, self)
            if trace_config.counters:
                self.events.sampler = self.trace
            self.memsys.trace = self.trace
        # Locks and barriers are keyed by *agent* (thread slot); an
        # agent's ring node is its hosting core's node.
        agent_nodes = [core_nodes[s % self.config.num_cores]
                       for s in range(self.config.num_thread_slots)]
        self.locks = LockManager(self.config, self.ring, agent_nodes,
                                 hooks=self.sanitizer, trace=self.trace)
        self.barriers = BarrierManager(self.config, self.ring, agent_nodes,
                                       hooks=self.sanitizer, trace=self.trace)
        self.cores = [Core(i, self) for i in range(self.config.num_cores)]
        self._team_size = 0
        self._threads_running = 0
        self._active_core_cycles = 0
        self._core_first_start: dict[int, int] = {}

    # -- placement ------------------------------------------------------------

    def core_of_agent(self, agent_id: int) -> int:
        if self.config.smt_placement == "compact":
            return agent_id // self.config.smt_threads
        return agent_id % self.config.num_cores

    def context_of_agent(self, agent_id: int) -> int:
        if self.config.smt_placement == "compact":
            return agent_id % self.config.smt_threads
        return agent_id // self.config.num_cores

    def wake_agent(self, agent_id: int, when: int) -> None:
        """Route a lock grant / barrier release to the agent's context."""
        core = self.cores[self.core_of_agent(agent_id)]
        core.granted(self.context_of_agent(agent_id), when)

    # -- team bookkeeping (used by Core) -------------------------------------

    def team_size_of(self, agent_id: int | None) -> int:
        if self._team_size <= 0:
            raise SimulationError("no parallel region is active")
        return self._team_size

    def on_thread_finished(self, core_id: int, agent_id: int) -> None:
        self._threads_running -= 1

    # -- execution -----------------------------------------------------------

    def run_parallel(self, factories: list[ProgramFactory],
                     spawn_overhead: bool = True) -> RegionResult:
        """Run one parallel region: ``factories[i]`` becomes thread ``i``.

        Thread ``i`` is pinned to slot ``i`` (core ``i % num_cores``).
        Thread 0 is the master and starts immediately; workers start
        after the spawn overhead.  The region ends when every thread's
        program is exhausted; the join overhead is charged to the master.

        Power accounting follows the paper's Section 3.1 metric: a core
        is active from its first thread's start to the region's end
        (threads that finish early spin at the region's implicit
        barrier), and idle cores burn nothing.

        Raises:
            ConfigError: more threads than hardware thread slots.
            DeadlockError: the event queue drained with threads blocked.
        """
        num_threads = len(factories)
        if num_threads < 1:
            raise ConfigError("a parallel region needs at least one thread")
        if num_threads > self.config.num_thread_slots:
            raise ConfigError(
                f"{num_threads} threads exceed "
                f"{self.config.num_thread_slots} hardware thread slots")
        if self._threads_running:
            raise SimulationError("a parallel region is already running")

        start = self.events.now
        if self.sanitizer is not None:
            self.sanitizer.on_region_begin(num_threads, start)
        if self.trace is not None:
            self.trace.on_region_begin(num_threads, start)
        self._team_size = num_threads
        self._threads_running = num_threads
        self._core_first_start.clear()
        spawn = self.config.thread_spawn_cycles if spawn_overhead else 0
        for i, factory in enumerate(factories):
            begin = start if i == 0 else start + spawn
            core_id = self.core_of_agent(i)
            self.cores[core_id].start_thread(
                factory(i, num_threads), i, begin,
                context_index=self.context_of_agent(i))
            first = self._core_first_start.get(core_id)
            if first is None or begin < first:
                self._core_first_start[core_id] = begin

        self.events.run()
        if self._threads_running:
            blocked = [c.core_id for c in self.cores if not c.is_idle]
            raise DeadlockError(
                f"event queue drained with threads blocked on cores {blocked}; "
                f"locks held: {self.locks.any_held()}, "
                f"barrier waiters: {self.barriers.any_waiting()}")
        self._team_size = 0

        end = self.events.now
        if spawn_overhead and num_threads > 1:
            end += self.config.thread_join_cycles
            self.events.now = end  # master burns the join overhead
        # Each participating core is active for the whole region (early
        # finishers spin at the implicit join barrier).
        for _core_id, first_start in self._core_first_start.items():
            self._active_core_cycles += end - first_start
        self._core_first_start.clear()
        if self.sanitizer is not None:
            self.sanitizer.on_region_end(end)
        if self.trace is not None:
            self.trace.on_region_end(end)
        return RegionResult(start_cycle=start, end_cycle=end,
                            num_threads=num_threads)

    def run_serial(self, factory: ProgramFactory) -> RegionResult:
        """Run a single-threaded region on core 0 with no spawn overhead."""
        return self.run_parallel([factory], spawn_overhead=False)

    # -- metrics ---------------------------------------------------------------

    @property
    def now(self) -> int:
        return self.events.now

    def snapshot(self) -> Snapshot:
        """Capture all counters (cheap; take between regions)."""
        bus = self.memsys.bus.stats
        return Snapshot(
            cycles=self.events.now,
            busy_core_cycles=self._active_core_cycles,
            spin_core_cycles=sum(c.spin_cycles for c in self.cores),
            bus_busy_cycles=bus.busy_cycles,
            bus_transfers=bus.transfers,
            l3_misses=self.memsys.l3.misses,
            l3_accesses=self.memsys.l3.accesses,
            retired_instructions=sum(c.retired_instructions for c in self.cores),
            lock_acquisitions=self.locks.stats.acquisitions,
        )

    def result_since(self, start: Snapshot) -> RunResult:
        """Run metrics from ``start`` to now."""
        return RunResult.between(start, self.snapshot())
