"""The full memory hierarchy: L1 → L2 → ring → L3/directory → bus → DRAM.

:class:`MemorySystem` resolves one core memory access into a completion
time using resource-reservation timing.  All coherence state transitions
happen synchronously at resolution time in global event order, which keeps
the protocol race-free and the simulation deterministic.

The hierarchy per Table 1:

* L1: 8 KB write-through private data cache, 1-cycle.  Write-through means
  stores never dirty L1; a store retires from the write buffer as soon as
  the core's L2 copy is writable (M/E), so store *hits* cost the L1 latency
  only, while stores needing coherence actions block the in-order core.
* L2: 64 KB 4-way inclusive private cache, MESI states, write-back.
* L3: 8 MB, 8 banks, 20-cycle, shared, inclusive of the private L2s
  (evictions recall private copies).
* Off-chip: split-transaction bus (the bandwidth bottleneck) feeding 32
  DRAM banks with open-page row buffers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.sim.bus import OffChipBus
from repro.sim.cache import SetAssocCache
from repro.sim.coherence import Directory, DirectoryEntry, MesiState
from repro.sim.config import MachineConfig
from repro.sim.dram import Dram
from repro.sim.engine import slow_paths_enabled
from repro.sim.l3 import SharedL3
from repro.sim.ring import Ring

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.l3 import L3Bank
    from repro.trace.recorder import TraceRecorder

#: A core-side access function: ``port(addr, is_write, now) -> done``.
AccessPort = Callable[[int, bool, int], int]

_M = MesiState.MODIFIED
_E = MesiState.EXCLUSIVE
_S = MesiState.SHARED

#: Shared empty victim set for the (overwhelmingly common) load miss with
#: nobody to invalidate — avoids allocating a ``set()`` per miss.
_NO_VICTIMS: frozenset[int] = frozenset()


@dataclass(slots=True)
class MemSysStats:
    """Chip-wide access counters kept by the memory system itself."""

    loads: int = 0
    stores: int = 0
    l2_writebacks: int = 0
    l3_writebacks_to_dram: int = 0
    recalls: int = 0


class MemorySystem:
    """Per-core private caches plus all shared structures."""

    __slots__ = ("config", "ring", "core_nodes", "bank_nodes", "l1s", "l2s",
                 "l3", "directory", "bus", "dram", "stats", "trace",
                 "_offset_bits", "_fast")

    def __init__(self, config: MachineConfig, ring: Ring,
                 core_nodes: list[int], bank_nodes: list[int]) -> None:
        self.config = config
        self.ring = ring
        self.core_nodes = core_nodes
        self.bank_nodes = bank_nodes
        self.l1s = [
            SetAssocCache(config.l1_bytes, config.l1_assoc, config.line_bytes,
                          name=f"l1.{c}")
            for c in range(config.num_cores)
        ]
        self.l2s = [
            SetAssocCache(config.l2_bytes, config.l2_assoc, config.line_bytes,
                          name=f"l2.{c}")
            for c in range(config.num_cores)
        ]
        self.l3 = SharedL3(config)
        self.directory = Directory()
        self.bus = OffChipBus(config)
        self.dram = Dram(config)
        self.stats = MemSysStats()
        #: Trace recorder (repro.trace), or None.  A pure observer fed
        #: the stall intervals of L2 misses and coherence upgrades —
        #: the accesses that actually block an in-order core.
        self.trace: TraceRecorder | None = None
        self._offset_bits = config.line_bytes.bit_length() - 1
        self._fast = not slow_paths_enabled()

    # -- public API --------------------------------------------------------

    def line_of(self, addr: int) -> int:
        return addr >> self._offset_bits

    def make_port(self, core: int) -> AccessPort:
        """Build ``core``'s access function.

        The returned port resolves the *entire load path* inline with
        pre-bound locals: an L1 hit is one dict probe, an LRU touch and
        two counter bumps; an L1 miss probes the L2 the same way and
        either fills L1 or falls into :meth:`_miss`.  Stores and the
        ``REPRO_SLOW_PATHS=1`` reference mode go through :meth:`access`
        unchanged.  Every counter the port bumps is exactly the one the
        slow path would, in the same order, so stats are bit-identical
        either way.
        """
        full_access = self.access
        l1 = self.l1s[core]
        l2 = self.l2s[core]
        l1_sets, l1_mask, l1_stats = l1.direct_state()
        l2_sets, l2_mask, l2_stats = l2.direct_state()
        if not self._fast or l1_mask < 0 or l2_mask < 0:
            def slow_port(addr: int, is_write: bool, now: int) -> int:
                return full_access(core, addr, is_write, now)
            return slow_port
        stats = self.stats
        offset_bits = self._offset_bits
        l1_latency = self.config.l1_latency
        l1_l2_latency = l1_latency + self.config.l2_latency
        l1_insert = l1.insert
        miss = self._miss

        def port(addr: int, is_write: bool, now: int) -> int:
            if not is_write:
                line = addr >> offset_bits
                s = l1_sets[line & l1_mask]
                if line in s:
                    stats.loads += 1
                    l1_stats.hits += 1
                    s[line] = s.pop(line)  # LRU touch, same as lookup()
                    return now + l1_latency
                # L1 load miss: count it, then probe the L2 inline.  A
                # load hit needs no state transition whatever the MESI
                # state, so the probe is a touch plus an L1 fill.
                stats.loads += 1
                l1_stats.misses += 1
                t = now + l1_l2_latency
                s2 = l2_sets[line & l2_mask]
                if line in s2:
                    l2_stats.hits += 1
                    s2[line] = s2.pop(line)  # LRU touch
                    l1_insert(line, True)
                    return t
                l2_stats.misses += 1
                return miss(core, line, False, t)
            return full_access(core, addr, is_write, now)
        return port

    def access(self, core: int, addr: int, is_write: bool, now: int) -> int:
        """Perform one access; return the cycle the core may proceed."""
        line = addr >> self._offset_bits
        stats = self.stats
        if is_write:
            stats.stores += 1
        else:
            stats.loads += 1

        cfg = self.config
        l1 = self.l1s[core]
        l2 = self.l2s[core]
        t = now + cfg.l1_latency

        l1_hit = l1.lookup(line) is not None
        if l1_hit and not is_write:
            return t

        if l1_hit and is_write:
            # Write-through: store needs a writable (M/E) L2 copy.
            state = l2.peek(line)
            if state is _M:
                return t
            if state is _E:
                l2.update(line, _M)
                self.directory.mark_dirty(line, core)
                return t
            if state is _S:
                return self._upgrade(core, line, t)
            # L1 hit without an L2 copy violates inclusion; treat as L2 miss.
            l1.invalidate(line)
            return self._miss(core, line, is_write, t)

        # L1 miss: look in L2.
        t += cfg.l2_latency
        state = l2.lookup(line)
        if state is not None:
            if not is_write:
                self._l1_fill(core, line)
                return t
            if state is _M:
                self._l1_fill(core, line)
                return t
            if state is _E:
                l2.update(line, _M)
                self.directory.mark_dirty(line, core)
                self._l1_fill(core, line)
                return t
            # state is S: upgrade.
            done = self._upgrade(core, line, t)
            self._l1_fill(core, line)
            return done

        return self._miss(core, line, is_write, t)

    # -- internals -----------------------------------------------------------

    def _l1_fill(self, core: int, line: int) -> None:
        # L1 evictions are silent: write-through L1 never holds dirty data.
        self.l1s[core].insert(line, True)

    def _invalidate_private(self, core: int, line: int) -> None:
        self.l2s[core].invalidate(line)
        self.l1s[core].invalidate(line)

    def _downgrade_private(self, core: int, line: int) -> None:
        self.l2s[core].update(line, _S)

    def _inv_complete(self, start: int, bank_node: int,
                      victims: "set[int] | frozenset[int]") -> int:
        """Cycle at which the home bank has all invalidation acks."""
        worst = start
        for v in victims:
            node = self.core_nodes[v]
            t_inv = (self.ring.latency_at(start, bank_node, node)
                     + self.config.l2_latency)
            t_ack = self.ring.latency_at(t_inv, node, bank_node)
            worst = max(worst, t_ack)
        return worst

    def _upgrade(self, core: int, line: int, t: int) -> int:
        """S→M upgrade: round trip to the home bank plus invalidations."""
        bank = self.l3.bank_of(line)
        bank_node = self.bank_nodes[bank.index]
        core_node = self.core_nodes[core]
        arrival = self.ring.latency_at(t, core_node, bank_node)
        start = bank.start_access(arrival)
        t_dir = start + bank.latency
        victims = self.directory.on_upgrade(line, core)
        t_acks = self._inv_complete(t_dir, bank_node, victims)
        for v in victims:
            self._invalidate_private(v, line)
        self.l2s[core].update(line, _M)
        done = self.ring.latency_at(t_acks, bank_node, core_node)
        if self.trace is not None:
            self.trace.on_mem_access(core, line, True, t, done)
        return done

    def _miss(self, core: int, line: int, is_write: bool, t: int) -> int:
        """L2 miss: consult the home bank directory, fetch data, fill.

        The L3-or-memory leg is written inline (rather than as helper
        calls) because this is the hottest multi-step path in the whole
        simulator; every branch mirrors the protocol description in the
        module docstring.
        """
        directory = self.directory
        ring_lat = self.ring.latency_at
        bank = self.l3.bank_of(line)
        bank_node = self.bank_nodes[bank.index]
        core_node = self.core_nodes[core]

        arrival = ring_lat(t, core_node, bank_node)
        # Inline bank.start_access: reserve the (pipelined) bank.
        free = bank._free
        start = arrival if arrival >= free else free
        bank._free = start + bank.occupancy
        t_dir = start + bank.latency

        entries = directory._entries
        sole_owner = False
        if is_write:
            forward_from, was_dirty, invalidated = directory.on_getm(line, core)
        elif line in entries:
            forward_from, was_dirty = directory.on_gets(line, core)
            invalidated = _NO_VICTIMS
        else:
            # Inlined on_gets fast case: no private copies anywhere, so
            # the requester becomes sole owner and will fill in E.
            directory.stats.gets += 1
            entries[line] = DirectoryEntry(owner=core, owner_dirty=False)
            forward_from = None
            was_dirty = False
            invalidated = _NO_VICTIMS
            sole_owner = True

        if forward_from is not None:
            t_data = self._cache_to_cache(core, line, is_write, forward_from,
                                          was_dirty, bank, bank_node, t_dir)
        else:
            # Data comes from the home L3 bank, or off-chip on an L3 miss.
            if invalidated:
                t_acks = self._inv_complete(t_dir, bank_node, invalidated)
                for v in invalidated:
                    self._invalidate_private(v, line)
            else:
                t_acks = t_dir
            # Inline L3 tag probe (same counting/LRU as cache.lookup).
            c3 = bank.cache
            m3 = c3._set_mask
            s3 = c3._sets[line & m3] if m3 >= 0 else None
            if s3 is not None and line in s3:
                c3.stats.hits += 1
                s3[line] = s3.pop(line)  # LRU touch
                ready = t_acks
            elif s3 is None and c3.lookup(line) is not None:
                ready = t_acks
            else:
                if s3 is not None:
                    c3.stats.misses += 1
                # Off-chip: request phase -> DRAM bank -> bus data phase.
                bus = self.bus
                t_mem = self.dram.access(line, t_dir + bus.latency)
                t_bus = bus.data_phase(t_mem)
                # Inline L3 fill; the probe above just missed and nothing
                # since touched this set, so the line is known absent.
                if s3 is not None:
                    if len(s3) >= c3.assoc:
                        vline3 = next(iter(s3))
                        vdirty3 = s3.pop(vline3)
                        c3.stats.evictions += 1
                        s3[line] = False
                        self._l3_evict((vline3, vdirty3), t_bus)
                    else:
                        s3[line] = False
                else:
                    victim = c3.insert(line, False)
                    if victim is not None:
                        self._l3_evict(victim, t_bus)
                ready = t_bus if t_bus > t_acks else t_acks
            t_data = ring_lat(ready, bank_node, core_node)

        if is_write:
            new_state = _M
        elif sole_owner:
            new_state = _E
        else:
            entry = entries.get(line)
            new_state = _E if (entry is not None and entry.owner == core) else _S
        # Inline the L2 and L1 fills: every caller reaches _miss only
        # after both probes missed, so the line is known absent and the
        # membership check inside insert() can be skipped.
        l2 = self.l2s[core]
        m2 = l2._set_mask
        if m2 >= 0:
            s2 = l2._sets[line & m2]
            if len(s2) >= l2.assoc:
                vline2 = next(iter(s2))
                vstate2 = s2.pop(vline2)
                l2.stats.evictions += 1
                s2[line] = new_state
                self._l2_evict(core, (vline2, vstate2))
            else:
                s2[line] = new_state
        else:
            victim2 = l2.insert(line, new_state)
            if victim2 is not None:
                self._l2_evict(core, victim2)
        l1 = self.l1s[core]
        m1 = l1._set_mask
        if m1 >= 0:
            s1 = l1._sets[line & m1]
            if len(s1) >= l1.assoc:
                s1.pop(next(iter(s1)))  # L1 evictions are silent
                l1.stats.evictions += 1
            s1[line] = True
        else:
            l1.insert(line, True)
        if self.trace is not None:
            self.trace.on_mem_access(core, line, is_write, t, t_data)
        return t_data

    def _cache_to_cache(self, core: int, line: int, is_write: bool,
                        owner: int, was_dirty: bool,
                        bank: "L3Bank", bank_node: int, t_dir: int) -> int:
        """Forward the line from the current owner's L2 to the requester."""
        owner_node = self.core_nodes[owner]
        core_node = self.core_nodes[core]
        t_owner = (self.ring.latency_at(t_dir, bank_node, owner_node)
                   + self.config.l2_latency)
        t_data = self.ring.latency_at(t_owner, owner_node, core_node)
        if is_write:
            self._invalidate_private(owner, line)
        else:
            self._downgrade_private(owner, line)
            if was_dirty:
                # Dirty data also returns to the home L3 bank (clean copy).
                bank.cache.update(line, False)
        return t_data

    def _l3_install(self, bank: "L3Bank", line: int, now: int) -> None:
        """Fill a line into L3, recalling private copies of the victim."""
        victim = bank.cache.insert(line, False)
        if victim is not None:
            self._l3_evict(victim, now)

    def _l3_evict(self, victim: tuple[int, bool], now: int) -> None:
        """Recall private copies of an L3 victim; write dirty data back."""
        victim_line, victim_dirty = victim
        holders, holder_dirty = self.directory.on_recall(victim_line)
        for h in holders:
            self._invalidate_private(h, victim_line)
        if holders:
            self.stats.recalls += 1
        if victim_dirty or holder_dirty:
            # Posted writeback: consumes bus bandwidth and a DRAM bank slot
            # but does not block the requester.
            t_bus = self.bus.data_phase(now)
            self.dram.access(victim_line, t_bus)
            self.stats.l3_writebacks_to_dram += 1

    def _l2_install(self, core: int, line: int, state: MesiState) -> None:
        """Fill a line into a private L2, handling the victim."""
        victim = self.l2s[core].insert(line, state)
        if victim is not None:
            self._l2_evict(core, victim)

    def _l2_evict(self, core: int, victim: tuple[int, MesiState]) -> None:
        """Handle an L2 eviction: inclusion in L1, directory, writeback."""
        victim_line, victim_state = victim
        # Inclusion: the L1 copy goes with the L2 copy.
        self.l1s[core].invalidate(victim_line)
        dirty = self.directory.on_evict(victim_line, core, victim_state)
        if victim_state is _M or dirty:
            # Write dirty data back to the (inclusive) L3 home bank.
            self.stats.l2_writebacks += 1
            bank = self.l3.bank_of(victim_line)
            if not bank.cache.update(victim_line, True):
                # The L3 copy disappeared (recall raced the eviction in
                # event order); push the dirty line straight off-chip.
                t_bus = self.bus.data_phase(0)
                self.dram.access(victim_line, t_bus)
                self.stats.l3_writebacks_to_dram += 1
