"""The full memory hierarchy: L1 → L2 → ring → L3/directory → bus → DRAM.

:class:`MemorySystem` resolves one core memory access into a completion
time using resource-reservation timing.  All coherence state transitions
happen synchronously at resolution time in global event order, which keeps
the protocol race-free and the simulation deterministic.

The hierarchy per Table 1:

* L1: 8 KB write-through private data cache, 1-cycle.  Write-through means
  stores never dirty L1; a store retires from the write buffer as soon as
  the core's L2 copy is writable (M/E), so store *hits* cost the L1 latency
  only, while stores needing coherence actions block the in-order core.
* L2: 64 KB 4-way inclusive private cache, MESI states, write-back.
* L3: 8 MB, 8 banks, 20-cycle, shared, inclusive of the private L2s
  (evictions recall private copies).
* Off-chip: split-transaction bus (the bandwidth bottleneck) feeding 32
  DRAM banks with open-page row buffers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.bus import OffChipBus
from repro.sim.cache import SetAssocCache
from repro.sim.coherence import Directory, MesiState
from repro.sim.config import MachineConfig
from repro.sim.dram import Dram
from repro.sim.l3 import SharedL3
from repro.sim.ring import Ring

_M = MesiState.MODIFIED
_E = MesiState.EXCLUSIVE
_S = MesiState.SHARED


@dataclass(slots=True)
class MemSysStats:
    """Chip-wide access counters kept by the memory system itself."""

    loads: int = 0
    stores: int = 0
    l2_writebacks: int = 0
    l3_writebacks_to_dram: int = 0
    recalls: int = 0


class MemorySystem:
    """Per-core private caches plus all shared structures."""

    def __init__(self, config: MachineConfig, ring: Ring,
                 core_nodes: list[int], bank_nodes: list[int]) -> None:
        self.config = config
        self.ring = ring
        self.core_nodes = core_nodes
        self.bank_nodes = bank_nodes
        self.l1s = [
            SetAssocCache(config.l1_bytes, config.l1_assoc, config.line_bytes,
                          name=f"l1.{c}")
            for c in range(config.num_cores)
        ]
        self.l2s = [
            SetAssocCache(config.l2_bytes, config.l2_assoc, config.line_bytes,
                          name=f"l2.{c}")
            for c in range(config.num_cores)
        ]
        self.l3 = SharedL3(config)
        self.directory = Directory()
        self.bus = OffChipBus(config)
        self.dram = Dram(config)
        self.stats = MemSysStats()
        #: Trace recorder (repro.trace), or None.  A pure observer fed
        #: the stall intervals of L2 misses and coherence upgrades —
        #: the accesses that actually block an in-order core.
        self.trace = None
        self._offset_bits = config.line_bytes.bit_length() - 1

    # -- public API --------------------------------------------------------

    def line_of(self, addr: int) -> int:
        return addr >> self._offset_bits

    def access(self, core: int, addr: int, is_write: bool, now: int) -> int:
        """Perform one access; return the cycle the core may proceed."""
        line = addr >> self._offset_bits
        if is_write:
            self.stats.stores += 1
        else:
            self.stats.loads += 1

        cfg = self.config
        l1 = self.l1s[core]
        l2 = self.l2s[core]
        t = now + cfg.l1_latency

        l1_hit = l1.lookup(line) is not None
        if l1_hit and not is_write:
            return t

        if l1_hit and is_write:
            # Write-through: store needs a writable (M/E) L2 copy.
            state = l2.peek(line)
            if state is _M:
                return t
            if state is _E:
                l2.update(line, _M)
                self.directory.mark_dirty(line, core)
                return t
            if state is _S:
                return self._upgrade(core, line, t)
            # L1 hit without an L2 copy violates inclusion; treat as L2 miss.
            l1.invalidate(line)
            return self._miss(core, line, is_write, t)

        # L1 miss: look in L2.
        t += cfg.l2_latency
        state = l2.lookup(line)
        if state is not None:
            if not is_write:
                self._l1_fill(core, line)
                return t
            if state is _M:
                self._l1_fill(core, line)
                return t
            if state is _E:
                l2.update(line, _M)
                self.directory.mark_dirty(line, core)
                self._l1_fill(core, line)
                return t
            # state is S: upgrade.
            done = self._upgrade(core, line, t)
            self._l1_fill(core, line)
            return done

        return self._miss(core, line, is_write, t)

    # -- internals -----------------------------------------------------------

    def _l1_fill(self, core: int, line: int) -> None:
        # L1 evictions are silent: write-through L1 never holds dirty data.
        self.l1s[core].insert(line, True)

    def _invalidate_private(self, core: int, line: int) -> None:
        self.l2s[core].invalidate(line)
        self.l1s[core].invalidate(line)

    def _downgrade_private(self, core: int, line: int) -> None:
        self.l2s[core].update(line, _S)

    def _inv_complete(self, start: int, bank_node: int,
                      victims: set[int]) -> int:
        """Cycle at which the home bank has all invalidation acks."""
        worst = start
        for v in victims:
            node = self.core_nodes[v]
            t_inv = (self.ring.latency_at(start, bank_node, node)
                     + self.config.l2_latency)
            t_ack = self.ring.latency_at(t_inv, node, bank_node)
            worst = max(worst, t_ack)
        return worst

    def _upgrade(self, core: int, line: int, t: int) -> int:
        """S→M upgrade: round trip to the home bank plus invalidations."""
        bank = self.l3.bank_of(line)
        bank_node = self.bank_nodes[bank.index]
        core_node = self.core_nodes[core]
        arrival = self.ring.latency_at(t, core_node, bank_node)
        start = bank.start_access(arrival)
        t_dir = start + bank.latency
        victims = self.directory.on_upgrade(line, core)
        t_acks = self._inv_complete(t_dir, bank_node, victims)
        for v in victims:
            self._invalidate_private(v, line)
        self.l2s[core].update(line, _M)
        done = self.ring.latency_at(t_acks, bank_node, core_node)
        if self.trace is not None:
            self.trace.on_mem_access(core, line, True, t, done)
        return done

    def _miss(self, core: int, line: int, is_write: bool, t: int) -> int:
        """L2 miss: consult the home bank directory, fetch data, fill."""
        cfg = self.config
        bank = self.l3.bank_of(line)
        bank_node = self.bank_nodes[bank.index]
        core_node = self.core_nodes[core]

        arrival = self.ring.latency_at(t, core_node, bank_node)
        start = bank.start_access(arrival)
        t_dir = start + bank.latency

        if is_write:
            forward_from, was_dirty, invalidated = self.directory.on_getm(line, core)
        else:
            forward_from, was_dirty = self.directory.on_gets(line, core)
            invalidated = set()

        if forward_from is not None:
            t_data = self._cache_to_cache(core, line, is_write, forward_from,
                                          was_dirty, bank, bank_node, t_dir)
        else:
            ready = self._from_l3_or_memory(core, line, is_write, invalidated,
                                            bank, bank_node, t_dir)
            t_data = self.ring.latency_at(ready, bank_node, core_node)

        new_state = _M if is_write else self._load_fill_state(line, core)
        self._l2_install(core, line, new_state)
        self._l1_fill(core, line)
        if self.trace is not None:
            self.trace.on_mem_access(core, line, is_write, t, t_data)
        return t_data

    def _load_fill_state(self, line: int, core: int) -> MesiState:
        entry = self.directory.entry(line)
        if entry is not None and entry.owner == core:
            return _E
        return _S

    def _cache_to_cache(self, core: int, line: int, is_write: bool,
                        owner: int, was_dirty: bool,
                        bank, bank_node: int, t_dir: int) -> int:
        """Forward the line from the current owner's L2 to the requester."""
        owner_node = self.core_nodes[owner]
        core_node = self.core_nodes[core]
        t_owner = (self.ring.latency_at(t_dir, bank_node, owner_node)
                   + self.config.l2_latency)
        t_data = self.ring.latency_at(t_owner, owner_node, core_node)
        if is_write:
            self._invalidate_private(owner, line)
        else:
            self._downgrade_private(owner, line)
            if was_dirty:
                # Dirty data also returns to the home L3 bank (clean copy).
                bank.cache.update(line, False)
        return t_data

    def _from_l3_or_memory(self, core: int, line: int, is_write: bool,
                           invalidated: set[int], bank, bank_node: int,
                           t_dir: int) -> int:
        """Data comes from the home L3 bank, or off-chip on an L3 miss.

        Returns the cycle the data is ready *at the bank* (caller adds the
        ring trip back to the requester).
        """
        t_acks = self._inv_complete(t_dir, bank_node, invalidated)
        for v in invalidated:
            self._invalidate_private(v, line)

        l3_state = bank.cache.lookup(line)
        if l3_state is not None:
            return t_acks

        # Off-chip: request phase -> DRAM bank -> data phase on the bus.
        t_req = self.bus.request_phase(t_dir)
        t_mem = self.dram.access(line, t_req)
        t_bus = self.bus.data_phase(t_mem)
        self._l3_install(bank, line, t_bus)
        return max(t_bus, t_acks)

    def _l3_install(self, bank, line: int, now: int) -> None:
        """Fill a line into L3, recalling private copies of the victim."""
        victim = bank.cache.insert(line, False)
        if victim is None:
            return
        victim_line, victim_dirty = victim
        holders, holder_dirty = self.directory.on_recall(victim_line)
        for h in holders:
            self._invalidate_private(h, victim_line)
        if holders:
            self.stats.recalls += 1
        if victim_dirty or holder_dirty:
            # Posted writeback: consumes bus bandwidth and a DRAM bank slot
            # but does not block the requester.
            t_bus = self.bus.data_phase(now)
            self.dram.access(victim_line, t_bus)
            self.stats.l3_writebacks_to_dram += 1

    def _l2_install(self, core: int, line: int, state: MesiState) -> None:
        """Fill a line into a private L2, handling the victim."""
        victim = self.l2s[core].insert(line, state)
        if victim is None:
            return
        victim_line, victim_state = victim
        # Inclusion: the L1 copy goes with the L2 copy.
        self.l1s[core].invalidate(victim_line)
        dirty = self.directory.on_evict(victim_line, core, victim_state)
        if victim_state is _M or dirty:
            # Write dirty data back to the (inclusive) L3 home bank.
            self.stats.l2_writebacks += 1
            bank = self.l3.bank_of(victim_line)
            if not bank.cache.update(victim_line, True):
                # The L3 copy disappeared (recall raced the eviction in
                # event order); push the dirty line straight off-chip.
                t_bus = self.bus.data_phase(0)
                self.dram.access(victim_line, t_bus)
                self.stats.l3_writebacks_to_dram += 1
