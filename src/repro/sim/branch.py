"""Gshare branch predictor (4-KB table, Table 1).

The predictor XORs a global history register with the branch PC to index a
table of 2-bit saturating counters.  The simulated core charges a
pipeline-depth flush penalty on every misprediction.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(slots=True)
class BranchStats:
    """Prediction outcome counts for one predictor instance."""

    predictions: int = 0
    mispredictions: int = 0

    @property
    def accuracy(self) -> float:
        """Fraction of branches predicted correctly (1.0 when none seen)."""
        if self.predictions == 0:
            return 1.0
        return 1.0 - self.mispredictions / self.predictions


class GsharePredictor:
    """Gshare: global-history XOR PC indexing into 2-bit counters.

    Args:
        entries: number of 2-bit counters; must be a power of two.
        history_bits: length of the global history register; defaults to
            log2(entries) so history fully covers the index.
    """

    __slots__ = ("_table", "_mask", "_history", "_history_mask", "stats")

    def __init__(self, entries: int = 16384, history_bits: int | None = None) -> None:
        if entries <= 0 or entries & (entries - 1):
            raise ValueError("entries must be a positive power of two")
        self._table = bytearray([2] * entries)  # init weakly taken
        self._mask = entries - 1
        if history_bits is None:
            history_bits = entries.bit_length() - 1
        self._history = 0
        self._history_mask = (1 << history_bits) - 1
        self.stats = BranchStats()

    def _index(self, pc: int) -> int:
        return ((pc >> 2) ^ self._history) & self._mask

    def predict(self, pc: int) -> bool:
        """Predicted direction for the branch at ``pc`` (no state change)."""
        return self._table[self._index(pc)] >= 2

    def update(self, pc: int, taken: bool) -> bool:
        """Predict, train on the actual outcome, and report correctness.

        Returns:
            True if the prediction matched ``taken``.
        """
        idx = self._index(pc)
        counter = self._table[idx]
        prediction = counter >= 2
        if taken and counter < 3:
            self._table[idx] = counter + 1
        elif not taken and counter > 0:
            self._table[idx] = counter - 1
        self._history = ((self._history << 1) | int(taken)) & self._history_mask
        self.stats.predictions += 1
        correct = prediction == taken
        if not correct:
            self.stats.mispredictions += 1
        return correct
