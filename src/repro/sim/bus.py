"""Split-transaction, pipelined off-chip bus (Table 1).

The bus is the central contended resource of the paper's bandwidth study.
We model the split transaction as:

* a fixed ``bus_latency`` (40 cycles) covering arbitration and the address
  phase — pipelined, so it does not occupy the data bus;
* a data phase that *reserves* the data bus for
  :attr:`MachineConfig.bus_cycles_per_line` cycles (32 at baseline — "one
  cache line every 32 cycles at peak bandwidth").

Every data-phase cycle increments the busy-cycle counter, which is exactly
the ``BUS_DRDY_CLOCKS``-style counter BAT's training loop reads.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass

from repro.sim.config import MachineConfig
from repro.sim.stats import busy_fraction


class ReservationTimeline:
    """First-fit reservation of a unit-capacity resource over time.

    The memory system resolves each access synchronously at issue time, so
    reservations arrive in *issue* order while their ready times can be
    reordered by upstream queueing (a request that waited in a busy DRAM
    bank is ready later than one issued after it that hit an idle bank).
    A monotone next-free clock would charge phantom stalls in that case;
    this timeline instead keeps the set of busy intervals and places each
    transfer in the earliest gap at or after its ready time.
    """

    __slots__ = ("_starts", "_ends", "_horizon")

    def __init__(self, horizon: int = 1_000_000) -> None:
        self._starts: list[int] = []
        self._ends: list[int] = []
        self._horizon = horizon

    def reserve(self, ready: int, duration: int) -> int:
        """Book ``duration`` cycles at the earliest start >= ``ready``."""
        starts, ends = self._starts, self._ends
        # Fast path: at or past the end of the whole timeline, append.
        if not ends or ready >= ends[-1]:
            if ends and ready == ends[-1]:
                # Butt-joined with the last interval: extend in place.
                ends[-1] = ready + duration
            else:
                starts.append(ready)
                ends.append(ready + duration)
            return ready

        # Saturated fast path: one long busy interval covering ``ready``
        # (the steady state of a bandwidth-bound run, kept to a single
        # entry by the butt-join merging below) — extend it in place.
        if len(ends) == 1 and starts[0] <= ready:
            start = ends[0]
            ends[0] = start + duration
            return start

        # Drop intervals that ended long before any future request can
        # begin (ready times are bounded below by the advancing clock).
        # Merging keeps the list short, so only bother when it grows.
        if len(ends) > 8:
            cutoff = ready - self._horizon
            drop = bisect.bisect_right(ends, cutoff)
            if drop:
                del starts[:drop]
                del ends[:drop]

        start = ready
        idx = bisect.bisect_right(ends, start)
        while idx < len(starts):
            if start + duration <= starts[idx]:
                break  # fits in the gap before interval idx
            start = ends[idx]
            idx += 1
        end = start + duration
        # Merge butt-joined neighbors: a zero-length gap cannot hold any
        # positive-duration transfer, so coalescing changes no outcome
        # while keeping the timeline short under saturation (the common
        # state of a bandwidth-bound run is one long busy interval).
        merge_prev = idx > 0 and ends[idx - 1] == start
        merge_next = idx < len(starts) and starts[idx] == end
        if merge_prev and merge_next:
            ends[idx - 1] = ends[idx]
            del starts[idx]
            del ends[idx]
        elif merge_prev:
            ends[idx - 1] = end
        elif merge_next:
            starts[idx] = start
        else:
            starts.insert(idx, start)
            ends.insert(idx, end)
        return start

    def __len__(self) -> int:
        return len(self._starts)


@dataclass(slots=True)
class BusStats:
    """Traffic and occupancy counters for the off-chip bus."""

    transfers: int = 0
    busy_cycles: int = 0
    total_wait_cycles: int = 0

    def utilization(self, elapsed_cycles: int) -> float:
        """Fraction of ``elapsed_cycles`` the data bus was occupied."""
        return busy_fraction(self.busy_cycles, elapsed_cycles)


class OffChipBus:
    """Reservation-based data bus shared by all L3 banks."""

    __slots__ = ("latency", "cycles_per_line", "_timeline", "_last_end", "stats")

    def __init__(self, config: MachineConfig) -> None:
        self.latency = config.bus_latency
        self.cycles_per_line = config.bus_cycles_per_line
        self._timeline = ReservationTimeline()
        self._last_end = 0
        self.stats = BusStats()

    def request_phase(self, now: int) -> int:
        """Cycle at which the address/command phase reaches memory.

        The address bus is pipelined and never the bottleneck, so this is
        a pure latency.
        """
        return now + self.latency

    def data_phase(self, ready: int) -> int:
        """Transfer one cache line whose data is ready at cycle ``ready``.

        Reserves the data bus; returns the cycle the transfer completes.
        """
        cycles = self.cycles_per_line
        start = self._timeline.reserve(ready, cycles)
        done = start + cycles
        stats = self.stats
        stats.total_wait_cycles += start - ready
        stats.busy_cycles += cycles
        stats.transfers += 1
        if done > self._last_end:
            self._last_end = done
        return done

    @property
    def busy_cycles(self) -> int:
        """Cumulative data-bus-occupied cycles (the BAT counter)."""
        return self.stats.busy_cycles

    @property
    def free_at(self) -> int:
        """Cycle at which the last-booked transfer completes."""
        return self._last_end
