"""Performance-monitoring counters readable by simulated programs.

The paper's techniques deliberately rely only on counters that shipping
processors already expose: the cycle counter (``rdtsc``) for SAT and a
bus-busy-cycles counter (``BUS_DRDY_CLOCKS`` on Core2, ``BUS_DATA_CYCLE``
on Itanium2) for BAT.  :class:`CounterFile` is the simulator's equivalent
register file, sampled through the :class:`~repro.isa.ops.ReadCounter` op.
"""

from __future__ import annotations

from repro.errors import SimulationError
from repro.isa.ops import CounterKind
from repro.sim.engine import EventQueue
from repro.sim.memsys import MemorySystem


class CounterFile:
    """Reads machine counters on behalf of a core."""

    __slots__ = ("_events", "_memsys", "_retired")

    def __init__(self, events: EventQueue, memsys: MemorySystem) -> None:
        self._events = events
        self._memsys = memsys
        self._retired = [0] * memsys.config.num_cores

    def on_retire(self, core: int, instructions: int) -> None:
        """Credit retired instructions to ``core`` (called by the core)."""
        self._retired[core] += instructions

    def retired(self, core: int) -> int:
        return self._retired[core]

    def read(self, kind: CounterKind, core: int) -> int:
        """Current value of counter ``kind`` as seen by ``core``."""
        if kind is CounterKind.CYCLES:
            return self._events.now
        if kind is CounterKind.BUS_BUSY_CYCLES:
            return self._memsys.bus.busy_cycles
        if kind is CounterKind.RETIRED_OPS:
            return self._retired[core]
        if kind is CounterKind.L3_MISSES:
            return self._memsys.l3.misses
        raise SimulationError(f"unknown counter {kind!r}")
