"""Banked DRAM with open-page row buffers (Table 1).

32 banks, line-interleaved then row-interleaved addressing.  Each bank is a
reserved resource: a request arriving while the bank is busy queues behind
it (FIFO by arrival, matching the global issue order of the event engine).
The open-page policy keeps the last-accessed row latched in the row buffer:

* row hit      — CAS only              (fast)
* row conflict — precharge + activate + CAS (slow)
* closed bank  — activate + CAS         (intermediate)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.config import MachineConfig


@dataclass(slots=True)
class DramStats:
    """Row-buffer outcome counters across all banks."""

    accesses: int = 0
    row_hits: int = 0
    row_conflicts: int = 0
    row_closed: int = 0
    total_queue_cycles: int = 0

    @property
    def row_hit_rate(self) -> float:
        if not self.accesses:
            return 0.0
        return self.row_hits / self.accesses


class Dram:
    """Reservation-based model of a multi-bank DRAM."""

    __slots__ = ("_num_banks", "_bank_mask", "_bank_bits", "_granule",
                 "_rows_per_span", "_bank_free", "_open_row", "_hit_lat",
                 "_conflict_lat", "_closed_lat", "_open_page", "stats")

    def __init__(self, config: MachineConfig) -> None:
        self._num_banks = config.dram_banks
        self._bank_mask = config.dram_banks - 1
        self._bank_bits = config.dram_banks.bit_length() - 1
        lines_per_row = config.dram_row_bytes // config.line_bytes
        self._granule = min(config.dram_granule_lines, lines_per_row)
        self._rows_per_span = max(1, lines_per_row // self._granule)
        self._bank_free = [0] * config.dram_banks
        self._open_row: list[int | None] = [None] * config.dram_banks
        self._hit_lat = config.dram_row_hit_latency
        self._conflict_lat = config.dram_row_conflict_latency
        self._closed_lat = config.dram_closed_row_latency
        self._open_page = config.dram_open_page
        self.stats = DramStats()

    def bank_of(self, line: int) -> int:
        """Bank index for a line address.

        Consecutive lines stay in one bank for a granule (default 16
        lines = 1 KB); the bank for each granule is chosen by a
        multiplicative hash of the granule index (bank permutation
        hashing, as in Rau-style pseudo-random interleaving).  The hash
        is immune to the power-of-two chunk strides that make threads of
        a statically-partitioned loop camp in each other's banks in
        lockstep — with it, concurrent streams collide only transiently.
        """
        g = line // self._granule
        # Full-avalanche integer mix (xor-shift/multiply): unlike a plain
        # multiplicative hash, collisions between two streams at a fixed
        # granule offset are independent events, so equally-paced threads
        # cannot phase-lock into a shared bank.
        g = ((g ^ (g >> 16)) * 0x45D9F3B) & 0xFFFFFFFF
        g = ((g ^ (g >> 16)) * 0x45D9F3B) & 0xFFFFFFFF
        return (g ^ (g >> 16)) & self._bank_mask

    def row_of(self, line: int) -> int:
        """Row segment for a line address.

        Each granule occupies its own stretch of a DRAM row; a stream
        pays one activation per granule visit and row-hits on the rest,
        so a single sequential stream sees a ~94 % row-hit rate.
        """
        return line // self._granule

    def access(self, line: int, now: int) -> int:
        """Access the line's bank at cycle ``now``; return completion cycle.

        Reserves the bank: a later request to the same bank starts no
        earlier than this one completes (bank conflicts, Table 1).

        The bank hash is written inline (same mix as :meth:`bank_of`):
        this runs once per off-chip access, squarely on the simulator's
        hottest path.
        """
        row = g = line // self._granule
        g = ((g ^ (g >> 16)) * 0x45D9F3B) & 0xFFFFFFFF
        g = ((g ^ (g >> 16)) * 0x45D9F3B) & 0xFFFFFFFF
        bank = (g ^ (g >> 16)) & self._bank_mask
        stats = self.stats
        free = self._bank_free[bank]
        start = now if now >= free else free
        stats.total_queue_cycles += start - now

        open_row = self._open_row[bank]
        if open_row is None:
            latency = self._closed_lat
            stats.row_closed += 1
        elif open_row == row:
            latency = self._hit_lat
            stats.row_hits += 1
        else:
            latency = self._conflict_lat
            stats.row_conflicts += 1

        done = start + latency
        self._bank_free[bank] = done
        # Open-page leaves the row latched; closed-page precharges it.
        self._open_row[bank] = row if self._open_page else None
        stats.accesses += 1
        return done

    def busy_until(self, bank: int) -> int:
        """Cycle at which ``bank`` becomes free (for tests/introspection)."""
        return self._bank_free[bank]
