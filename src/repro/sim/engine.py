"""Discrete-event simulation engine.

A minimal, deterministic event queue: events are ``(time, seq, callback)``
triples ordered by time with a monotone sequence number breaking ties, so
two runs of the same program produce bit-identical schedules.
"""

from __future__ import annotations

import heapq
from typing import Callable

from repro.errors import SimulationError

Callback = Callable[[], None]


class EventQueue:
    """Deterministic priority queue of timed callbacks."""

    __slots__ = ("_heap", "_seq", "now", "sampler")

    def __init__(self) -> None:
        self._heap: list[tuple[int, int, Callback]] = []
        self._seq = 0
        #: Current simulation time in cpu cycles.
        self.now = 0
        #: Optional pure observer notified (``on_advance(when)``) just
        #: before the clock advances to each event's cycle — how the
        #: tracer samples counters without scheduling events of its
        #: own.  One ``is None`` test per event when absent.
        self.sampler = None

    def schedule(self, when: int, callback: Callback) -> None:
        """Schedule ``callback`` to run at absolute cycle ``when``.

        Raises:
            SimulationError: if ``when`` is in the past.
        """
        if when < self.now:
            raise SimulationError(f"cannot schedule event at {when}, now is {self.now}")
        heapq.heappush(self._heap, (when, self._seq, callback))
        self._seq += 1

    def schedule_in(self, delay: int, callback: Callback) -> None:
        """Schedule ``callback`` to run ``delay`` cycles from now."""
        self.schedule(self.now + delay, callback)

    def __len__(self) -> int:
        return len(self._heap)

    def run(self, until: int | None = None) -> None:
        """Drain the queue, advancing :attr:`now` event by event.

        Args:
            until: optional cycle bound; events scheduled after it stay
                queued and :attr:`now` is clamped to ``until``.
        """
        heap = self._heap
        while heap:
            when, _seq, callback = heap[0]
            if until is not None and when > until:
                self.now = until
                return
            heapq.heappop(heap)
            if self.sampler is not None and when > self.now:
                self.sampler.on_advance(when)
            self.now = when
            callback()
        if until is not None:
            self.now = max(self.now, until)

    def step(self) -> bool:
        """Run the single earliest event.  Returns False if queue is empty."""
        if not self._heap:
            return False
        when, _seq, callback = heapq.heappop(self._heap)
        if self.sampler is not None and when > self.now:
            self.sampler.on_advance(when)
        self.now = when
        callback()
        return True
