"""Discrete-event simulation engine.

A minimal, deterministic event queue: events are ``(time, seq, callback)``
triples ordered by time with a monotone sequence number breaking ties, so
two runs of the same program produce bit-identical schedules.

Internally the queue is split in two.  Most simulator events are
scheduled in non-decreasing time order (each core schedules its own
next step strictly in the future), so events whose time is at or past
the latest pending time go to a plain FIFO *tail* — an append instead
of a heap push — and only genuinely out-of-order events pay for the
heap.  The pop side takes the smaller of the heap top and the tail
head, which preserves the exact global (time, seq) order of a single
heap.  ``REPRO_SLOW_PATHS=1`` forces the pure-heap reference mode (see
``tests/test_perf_parity.py``).
"""

from __future__ import annotations

import heapq
import os
from collections import deque
from typing import Callable, Protocol

from repro.errors import SimulationError

Callback = Callable[[], None]


class Sampler(Protocol):
    """Structural type of :attr:`EventQueue.sampler`: a pure observer
    told the cycle the clock is about to advance to."""

    def on_advance(self, now: int) -> None: ...


def slow_paths_enabled() -> bool:
    """True when ``REPRO_SLOW_PATHS`` asks for the reference code paths.

    Checked once at construction time by every component that has an
    optimized fast path (event queue, core, memory system), so a test
    can flip the environment variable and build two machines whose
    simulated behavior must be bit-identical.
    """
    return os.environ.get("REPRO_SLOW_PATHS", "") not in ("", "0")


class EventQueue:
    """Deterministic priority queue of timed callbacks."""

    __slots__ = ("_heap", "_tail", "_seq", "_fast", "now", "sampler")

    def __init__(self) -> None:
        self._heap: list[tuple[int, int, Callback]] = []
        #: FIFO fast path: events appended in non-decreasing time order.
        self._tail: deque[tuple[int, int, Callback]] = deque()
        self._seq = 0
        self._fast = not slow_paths_enabled()
        #: Current simulation time in cpu cycles.
        self.now = 0
        #: Optional pure observer notified (``on_advance(when)``) just
        #: before the clock advances to each event's cycle — how the
        #: tracer samples counters without scheduling events of its
        #: own.  One ``is None`` test per event when absent.
        self.sampler: Sampler | None = None

    def schedule(self, when: int, callback: Callback) -> None:
        """Schedule ``callback`` to run at absolute cycle ``when``.

        Raises:
            SimulationError: if ``when`` is in the past.
        """
        if when < self.now:
            raise SimulationError(f"cannot schedule event at {when}, now is {self.now}")
        seq = self._seq
        self._seq = seq + 1
        tail = self._tail
        if self._fast and (not tail or when >= tail[-1][0]):
            tail.append((when, seq, callback))
        else:
            heapq.heappush(self._heap, (when, seq, callback))

    def schedule_in(self, delay: int, callback: Callback) -> None:
        """Schedule ``callback`` to run ``delay`` cycles from now."""
        self.schedule(self.now + delay, callback)

    def __len__(self) -> int:
        return len(self._heap) + len(self._tail)

    def _clamp(self, until: int) -> None:
        """Advance the clock to ``until`` with no event firing there.

        The sampler still observes the advance: counter samples at
        boundaries in ``(now, until]`` must exist whether or not an
        event happens to land on the bound.
        """
        if until > self.now:
            if self.sampler is not None:
                self.sampler.on_advance(until)
            self.now = until

    def run(self, until: int | None = None) -> None:
        """Drain the queue, advancing :attr:`now` event by event.

        Args:
            until: optional cycle bound; events scheduled after it stay
                queued and :attr:`now` is clamped to ``until``.
        """
        heap = self._heap
        tail = self._tail
        if until is None and self.sampler is None:
            # Specialized drain for the dominant call (run_parallel):
            # no bound to check and no observer to notify per event.
            pop_tail = tail.popleft
            pop_heap = heapq.heappop
            while True:
                if heap:
                    # seq values are unique, so the tuple comparison
                    # never reaches the (incomparable) callbacks.
                    if tail and tail[0] < heap[0]:
                        when, _seq, callback = pop_tail()
                    else:
                        when, _seq, callback = pop_heap(heap)
                elif tail:
                    when, _seq, callback = pop_tail()
                else:
                    return
                self.now = when
                callback()
        while heap or tail:
            # The next event is the smaller of the heap top and the
            # tail head; seq values are unique, so the tuple comparison
            # never reaches the (incomparable) callbacks.
            if heap and (not tail or heap[0] < tail[0]):
                event = heap[0]
                from_heap = True
            else:
                event = tail[0]
                from_heap = False
            when, _seq, callback = event
            if until is not None and when > until:
                self._clamp(until)
                return
            if from_heap:
                heapq.heappop(heap)
            else:
                tail.popleft()
            if self.sampler is not None and when > self.now:
                self.sampler.on_advance(when)
            self.now = when
            callback()
        if until is not None:
            self._clamp(until)

    def step(self) -> bool:
        """Run the single earliest event.  Returns False if queue is empty."""
        heap = self._heap
        tail = self._tail
        if not heap and not tail:
            return False
        if heap and (not tail or heap[0] < tail[0]):
            when, _seq, callback = heapq.heappop(heap)
        else:
            when, _seq, callback = tail.popleft()
        if self.sampler is not None and when > self.now:
            self.sampler.on_advance(when)
        self.now = when
        callback()
        return True
