"""Shared, banked L3 cache (Table 1: 8 MB, 8-way, 8 banks, 20 cycles).

Banks are line-interleaved.  Each bank is a reserved resource: it accepts
a new request every ``bank_occupancy`` cycles (the bank is pipelined, so
occupancy is shorter than the 20-cycle access latency).
"""

from __future__ import annotations

from repro.sim.cache import SetAssocCache
from repro.sim.config import MachineConfig


class L3Bank:
    """One bank of the shared L3: a tag store plus a reservation clock."""

    __slots__ = ("index", "cache", "latency", "occupancy", "_free")

    def __init__(self, index: int, config: MachineConfig, bank_occupancy: int = 4) -> None:
        self.index = index
        self.cache = SetAssocCache(
            size_bytes=config.l3_bytes // config.l3_banks,
            assoc=config.l3_assoc,
            line_bytes=config.line_bytes,
            name=f"l3.bank{index}",
        )
        self.latency = config.l3_latency
        self.occupancy = bank_occupancy
        self._free = 0

    def start_access(self, now: int) -> int:
        """Reserve the bank; return the cycle the access actually starts."""
        start = max(now, self._free)
        self._free = start + self.occupancy
        return start

    @property
    def free_at(self) -> int:
        return self._free


class SharedL3:
    """The full L3: bank selection plus aggregate statistics."""

    __slots__ = ("banks", "_bank_mask")

    def __init__(self, config: MachineConfig) -> None:
        self.banks = [L3Bank(i, config) for i in range(config.l3_banks)]
        self._bank_mask = config.l3_banks - 1

    def bank_of(self, line: int) -> L3Bank:
        """Home bank of a line address (line-interleaved)."""
        return self.banks[line & self._bank_mask]

    @property
    def hits(self) -> int:
        return sum(b.cache.stats.hits for b in self.banks)

    @property
    def misses(self) -> int:
        return sum(b.cache.stats.misses for b in self.banks)

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    def miss_rate(self) -> float:
        """Aggregate L3 miss fraction (0.0 when never accessed)."""
        total = self.accesses
        if not total:
            return 0.0
        return self.misses / total
