"""Machine configuration (Table 1 of the paper).

:class:`MachineConfig` is a frozen dataclass so a config can be hashed,
compared, and safely shared between sweep points.  Use
:meth:`MachineConfig.asplos08_baseline` for the paper's simulated machine
and :meth:`MachineConfig.scaled` / :meth:`MachineConfig.with_bandwidth` to
derive the variants the paper evaluates (half/double bus bandwidth,
different core counts).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigError


def _is_pow2(n: int) -> bool:
    return n > 0 and (n & (n - 1)) == 0


@dataclass(frozen=True, slots=True)
class SanitizerConfig:
    """Knobs of the thread sanitizer (:mod:`repro.check`).

    Attach one to :attr:`MachineConfig.sanitizer` (or use
    :meth:`MachineConfig.with_sanitizer`) to have the machine record
    synchronization events while programs execute.  The sanitizer is a
    pure observer: it never schedules events or changes timing, so cycle
    counts are identical with it on or off.  With no config attached
    (the default) the hook sites reduce to one ``is None`` test per op.
    """

    #: Master switch; attaching a config with ``enabled=False`` keeps the
    #: machine hook-free, exactly as if no config were attached.
    enabled: bool = True
    #: Run the Eraser-style lockset race detector.
    races: bool = True
    #: Build the acquires-while-holding graph and report lock-order cycles.
    lock_order: bool = True
    #: Run the lock/barrier discipline lint.
    discipline: bool = True
    #: Also report read-write conflicts (full Eraser).  Off by default:
    #: op-stream workloads touch line-aligned representative addresses, so
    #: a load and a store of the same line by different threads is usually
    #: modelling false sharing, not a data race.  Write-write conflicts
    #: are always reported.
    report_read_write: bool = False
    #: Half-open ``[lo, hi)`` byte ranges the race detector ignores —
    #: the escape hatch for intentionally unprotected shared accesses.
    ignore_address_ranges: tuple[tuple[int, int], ...] = ()
    #: Cap on recorded findings per analysis (further ones are counted
    #: but dropped from the report).
    max_findings: int = 100

    def __post_init__(self) -> None:
        if self.max_findings < 1:
            raise ConfigError("max_findings must be >= 1")
        for pair in self.ignore_address_ranges:
            if len(pair) != 2 or pair[0] >= pair[1]:
                raise ConfigError(
                    f"ignore_address_ranges entries must be (lo, hi) with "
                    f"lo < hi, got {pair!r}")


@dataclass(frozen=True, slots=True)
class TraceConfig:
    """Knobs of the cycle-level tracer (:mod:`repro.trace`).

    Attach one to :attr:`MachineConfig.trace` (or use
    :meth:`MachineConfig.with_trace`) to have the machine record a
    per-core state timeline, interval-sampled counter series, and the
    FDT decision log while programs execute.  Like the sanitizer, the
    tracer is a pure observer: it never schedules events or changes
    timing, so cycle counts are identical with it on or off.  With no
    config attached (the default) the hook sites reduce to one
    ``is None`` test per event.
    """

    #: Master switch; attaching a config with ``enabled=False`` keeps
    #: the machine hook-free, exactly as if no config were attached.
    enabled: bool = True
    #: Record the per-core state timeline (compute / critical-section /
    #: lock-spin / barrier-wait / memory-stall spans).
    timeline: bool = True
    #: Sample machine counters every :attr:`sample_interval` cycles.
    counters: bool = True
    #: Record FDT training samples and thread-count decisions.
    decisions: bool = True
    #: Cycles between counter samples.
    sample_interval: int = 1000
    #: Memory stalls shorter than this many cycles are not recorded
    #: (keeps L2-miss noise out of the timeline; 0 records everything).
    min_mem_stall_cycles: int = 8
    #: Cap on recorded timeline spans and on counter samples (each
    #: bounded separately; further ones are counted but dropped).
    max_events: int = 1_000_000

    def __post_init__(self) -> None:
        if self.sample_interval < 1:
            raise ConfigError("sample_interval must be >= 1")
        if self.min_mem_stall_cycles < 0:
            raise ConfigError("min_mem_stall_cycles must be >= 0")
        if self.max_events < 1:
            raise ConfigError("max_events must be >= 1")


@dataclass(frozen=True, slots=True)
class MachineConfig:
    """Parameters of the simulated CMP.

    Defaults reproduce Table 1: a 32-core CMP, in-order 2-wide cores with a
    5-stage pipeline and a 4-KB gshare predictor, 8-KB write-through private
    L1, 64-KB 4-way inclusive private L2, 8-MB 8-way 8-bank shared L3
    (20-cycle access), a bi-directional ring with 1-cycle hops, a 4:1
    cpu/bus-ratio 64-bit split-transaction off-chip bus (40-cycle latency,
    one 64-byte line per 32 cpu cycles at peak), and 32 DRAM banks at
    roughly 200 cycles per access with open-page row buffers.
    """

    # -- chip --------------------------------------------------------------
    num_cores: int = 32
    issue_width: int = 2
    pipeline_depth: int = 5
    #: Hardware thread contexts per core.  Table 1's machine has one
    #: ("we assumed that only one thread executes per core"); values
    #: above one model the SMT extension of the paper's Section 9.
    smt_threads: int = 1
    #: Thread placement on SMT machines: "scatter" fills one context per
    #: core before doubling up (best for compute-bound teams), "compact"
    #: fills a core's contexts before moving on (best when co-scheduled
    #: threads share data).
    smt_placement: str = "scatter"

    # -- branch predictor ---------------------------------------------------
    gshare_bytes: int = 4096  # 4-KB gshare: 16384 2-bit counters
    branch_misprediction_penalty: int = 5  # pipeline-depth flush

    # -- caches --------------------------------------------------------------
    line_bytes: int = 64
    l1_bytes: int = 8 * 1024
    l1_assoc: int = 2
    l1_latency: int = 1
    l2_bytes: int = 64 * 1024
    l2_assoc: int = 4
    l2_latency: int = 6
    l3_bytes: int = 8 * 1024 * 1024
    l3_assoc: int = 8
    l3_banks: int = 8
    l3_latency: int = 20

    # -- interconnect ---------------------------------------------------------
    ring_hop_latency: int = 1
    #: Cycles each directed ring link is occupied per message; 0 models
    #: the paper's 64-byte-wide ring as latency-only (its Section 9
    #: leaves interconnect contention to future work), larger values
    #: model narrower rings where coherence traffic contends.
    ring_link_occupancy: int = 0

    # -- off-chip bus ----------------------------------------------------------
    # 64-bit wide at a 4:1 cpu/bus clock ratio: transferring a 64-byte line
    # takes 8 bus cycles = 32 cpu cycles of data-bus occupancy.
    bus_width_bytes: int = 8
    cpu_bus_ratio: int = 4
    bus_latency: int = 40

    # -- DRAM --------------------------------------------------------------------
    dram_banks: int = 32
    dram_row_bytes: int = 4096
    #: Address-interleaving granule: consecutive lines stay in one bank
    #: for this many lines before moving to the next bank.  Sub-row
    #: granules amortize a row conflict over the whole granule visit,
    #: which is what keeps concurrent streams from thrashing row buffers.
    dram_granule_lines: int = 16
    #: Open-page (row-buffer) policy; False precharges after every
    #: access (closed-page), an ablation of Table 1's row-buffer model.
    dram_open_page: bool = True
    dram_row_hit_latency: int = 85
    dram_row_conflict_latency: int = 110
    dram_closed_row_latency: int = 96

    # -- runtime overheads ----------------------------------------------------------
    thread_spawn_cycles: int = 300
    thread_join_cycles: int = 100
    lock_handoff_base: int = 20
    #: Lock grant order: "fifo" (queue, the default) or "lifo" (an
    #: unfair stack — the ablation of the serialization model).
    lock_grant_order: str = "fifo"

    # -- sanitizer ---------------------------------------------------------------
    #: Thread-sanitizer knobs (:mod:`repro.check`); None (the default)
    #: builds a machine with no observer attached.
    sanitizer: SanitizerConfig | None = None

    # -- tracer ------------------------------------------------------------------
    #: Cycle-level tracer knobs (:mod:`repro.trace`); None (the default)
    #: builds a machine with no recorder attached.
    trace: TraceConfig | None = None

    def __post_init__(self) -> None:
        if self.num_cores < 1:
            raise ConfigError("num_cores must be >= 1")
        if self.issue_width < 1:
            raise ConfigError("issue_width must be >= 1")
        if not _is_pow2(self.line_bytes):
            raise ConfigError("line_bytes must be a power of two")
        for name in ("l1_bytes", "l2_bytes", "l3_bytes"):
            size = getattr(self, name)
            if size % self.line_bytes:
                raise ConfigError(f"{name} must be a multiple of line_bytes")
        for name, (size, assoc) in {
            "l1": (self.l1_bytes, self.l1_assoc),
            "l2": (self.l2_bytes, self.l2_assoc),
            "l3": (self.l3_bytes, self.l3_assoc),
        }.items():
            lines = size // self.line_bytes
            if lines % assoc:
                raise ConfigError(f"{name}: line count {lines} not divisible by assoc {assoc}")
        if not _is_pow2(self.l3_banks):
            raise ConfigError("l3_banks must be a power of two")
        if not _is_pow2(self.dram_banks):
            raise ConfigError("dram_banks must be a power of two")
        if self.dram_row_bytes % self.line_bytes:
            raise ConfigError("dram_row_bytes must be a multiple of line_bytes")
        if self.bus_width_bytes < 1 or self.cpu_bus_ratio < 1:
            raise ConfigError("bus parameters must be positive")
        if self.lock_grant_order not in ("fifo", "lifo"):
            raise ConfigError("lock_grant_order must be 'fifo' or 'lifo'")
        if self.smt_threads < 1:
            raise ConfigError("smt_threads must be >= 1")
        if self.smt_placement not in ("scatter", "compact"):
            raise ConfigError("smt_placement must be 'scatter' or 'compact'")

    # -- derived quantities -------------------------------------------------

    @property
    def bus_cycles_per_line(self) -> int:
        """CPU cycles the data bus is occupied transferring one cache line.

        For the baseline this is 64 B / 8 B-per-bus-cycle * 4 cpu-cycles =
        32 cpu cycles, matching the paper's "one cache line every 32 cycles
        at peak bandwidth".
        """
        bus_cycles = -(-self.line_bytes // self.bus_width_bytes)  # ceil
        return bus_cycles * self.cpu_bus_ratio

    @property
    def peak_bus_lines_per_kcycle(self) -> float:
        """Peak off-chip throughput in cache lines per 1000 cpu cycles."""
        return 1000.0 / self.bus_cycles_per_line

    @property
    def num_thread_slots(self) -> int:
        """Hardware thread slots on the chip (cores x SMT contexts)."""
        return self.num_cores * self.smt_threads

    @property
    def gshare_entries(self) -> int:
        """Number of 2-bit counters in the gshare table (4 per byte)."""
        return self.gshare_bytes * 4

    # -- named configurations --------------------------------------------------

    @classmethod
    def asplos08_baseline(cls) -> "MachineConfig":
        """The paper's simulated machine (Table 1)."""
        return cls()

    @classmethod
    def small(cls, num_cores: int = 8) -> "MachineConfig":
        """A scaled-down machine for fast unit tests."""
        return cls(
            num_cores=num_cores,
            l1_bytes=1024,
            l2_bytes=4 * 1024,
            l3_bytes=64 * 1024,
            dram_banks=8,
        )

    def with_bandwidth(self, factor: float) -> "MachineConfig":
        """Return a config with the off-chip bus bandwidth scaled by ``factor``.

        Implemented by scaling the cpu/bus clock ratio: ``factor=2`` halves
        the per-line bus occupancy (double bandwidth), ``factor=0.5``
        doubles it.  This is the knob Figure 13 of the paper turns.
        """
        if factor <= 0:
            raise ConfigError("bandwidth factor must be positive")
        new_ratio = max(1, round(self.cpu_bus_ratio / factor))
        return replace(self, cpu_bus_ratio=new_ratio)

    def with_cores(self, num_cores: int) -> "MachineConfig":
        """Return a config with a different core count."""
        return replace(self, num_cores=num_cores)

    def with_smt(self, smt_threads: int) -> "MachineConfig":
        """Return a config with SMT contexts per core (Section 9)."""
        return replace(self, smt_threads=smt_threads)

    def with_sanitizer(self,
                       sanitizer: SanitizerConfig | None = None) -> "MachineConfig":
        """Return a config with the thread sanitizer attached."""
        return replace(self, sanitizer=sanitizer or SanitizerConfig())

    def with_trace(self, trace: TraceConfig | None = None) -> "MachineConfig":
        """Return a config with the cycle-level tracer attached."""
        return replace(self, trace=trace or TraceConfig())
