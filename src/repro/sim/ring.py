"""Bi-directional on-chip ring interconnect (Table 1).

Nodes are the cores plus the L3 banks; the ring is bi-directional so a
message takes the shorter direction.  Hop latency is one cycle.  The ring
in the paper's machine is 64 bytes wide — a whole cache line per flit — so
by default we model latency (hops) and treat link bandwidth as
unconstrained; the off-chip bus, not the ring, is the contended resource
the paper studies, and its Section 9 explicitly leaves ring contention
to future work.

For that future work, ``link_occupancy > 0`` turns on per-link
bandwidth modeling: each directed link accepts one message every
``link_occupancy`` cycles (a narrower ring needs several cycles per
64-byte message), and :meth:`latency_at` walks the path reserving each
link — coherence traffic then genuinely contends on shared segments.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(slots=True)
class RingStats:
    """Aggregate traffic counters."""

    messages: int = 0
    total_hops: int = 0
    link_wait_cycles: int = 0

    @property
    def mean_hops(self) -> float:
        if not self.messages:
            return 0.0
        return self.total_hops / self.messages


class Ring:
    """Bi-directional ring of ``num_nodes`` stations.

    Node numbering: cores occupy nodes ``0 .. num_cores-1``; L3 banks are
    interleaved around the ring by :class:`repro.sim.machine.Machine`.
    """

    __slots__ = ("num_nodes", "hop_latency", "link_occupancy", "stats",
                 "_dist", "_link_free")

    def __init__(self, num_nodes: int, hop_latency: int = 1,
                 link_occupancy: int = 0) -> None:
        if num_nodes < 1:
            raise ValueError("ring needs at least one node")
        if hop_latency < 0:
            raise ValueError("hop latency must be non-negative")
        if link_occupancy < 0:
            raise ValueError("link occupancy must be non-negative")
        self.num_nodes = num_nodes
        self.hop_latency = hop_latency
        self.link_occupancy = link_occupancy
        self.stats = RingStats()
        # Hop counts depend only on the index distance; precompute them.
        half = num_nodes
        self._dist = [min(d, num_nodes - d) for d in range(half)]
        # Directed links: [node][0] = clockwise (node -> node+1),
        # [node][1] = counter-clockwise (node -> node-1).
        self._link_free = [[0, 0] for _ in range(num_nodes)]

    def hops(self, src: int, dst: int) -> int:
        """Shortest-direction hop count between two nodes."""
        if not (0 <= src < self.num_nodes and 0 <= dst < self.num_nodes):
            raise ValueError(f"node out of range: {src} -> {dst} of {self.num_nodes}")
        return self._dist[(dst - src) % self.num_nodes]

    def latency(self, src: int, dst: int) -> int:
        """Cycles for a message from ``src`` to ``dst``; records traffic."""
        h = self._dist[(dst - src) % self.num_nodes]
        self.stats.messages += 1
        self.stats.total_hops += h
        return h * self.hop_latency

    def round_trip(self, src: int, dst: int) -> int:
        """Request + reply latency between two nodes."""
        return self.latency(src, dst) + self.latency(dst, src)

    def latency_at(self, now: int, src: int, dst: int) -> int:
        """Absolute arrival time of a message sent at cycle ``now``.

        With ``link_occupancy == 0`` this is ``now + hops * hop_latency``
        (identical to :meth:`latency`); otherwise the message reserves
        each directed link on its shortest path in turn, waiting behind
        earlier traffic.
        """
        n = self.num_nodes
        clockwise_hops = (dst - src) % n
        h = self._dist[clockwise_hops]
        stats = self.stats
        stats.messages += 1
        stats.total_hops += h
        if self.link_occupancy == 0 or h == 0:
            return now + h * self.hop_latency

        step_cw = clockwise_hops == h  # shorter direction
        t = now
        node = src
        for _ in range(h):
            if step_cw:
                link = self._link_free[node]
                idx = 0
                nxt = (node + 1) % n
            else:
                link = self._link_free[node]
                idx = 1
                nxt = (node - 1) % n
            start = max(t, link[idx])
            self.stats.link_wait_cycles += start - t
            link[idx] = start + self.link_occupancy
            t = start + self.hop_latency
            node = nxt
        return t
