"""Distributed directory-based MESI coherence (Table 1).

The directory is co-located with the L3 home bank of each line.  A
directory entry exists only while at least one private L2 holds the line;
it records either a set of sharers (line in S in each) or a single owner
(line in M or E in that core's L2).

The protocol implemented (states are those of the private L2 copies):

* ``GetS`` (load miss): owner in M/E → downgrade to S, cache-to-cache
  forward; otherwise data comes from L3/memory and the requester joins the
  sharer set in S (E if it becomes the sole holder).
* ``GetM`` (store miss): all sharers invalidated / owner invalidated with
  dirty data pulled back; requester installs in M.
* ``Upgrade`` (store hit in S): sharers other than the requester are
  invalidated; requester's copy moves S→M with no data transfer.
* ``PutM``/``PutS`` (L2 eviction): owner eviction writes dirty data back
  to L3; sharer evictions silently leave the sharer set (the directory is
  kept precise, which only removes needless invalidations).

Timing for the coherence messages themselves is charged by the caller
(:class:`repro.sim.memsys.MemorySystem`) using ring distances; this module
maintains the *state* and reports what traffic a transition requires.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class MesiState(enum.Enum):
    """State of a line in a private L2 cache."""

    MODIFIED = "M"
    EXCLUSIVE = "E"
    SHARED = "S"
    # INVALID is represented by absence from the cache.


@dataclass(slots=True)
class DirectoryEntry:
    """Directory bookkeeping for one line with private copies.

    ``owner`` is set when exactly one core holds the line in M or E;
    ``sharers`` is used when one or more cores hold it in S.  The two are
    mutually exclusive.
    """

    owner: int | None = None
    owner_dirty: bool = False  # owner's copy is M (vs E)
    sharers: set[int] = field(default_factory=set)

    def holders(self) -> set[int]:
        """All cores with a valid private copy."""
        if self.owner is not None:
            return {self.owner}
        return set(self.sharers)


@dataclass(slots=True)
class CoherenceStats:
    """Protocol event counters."""

    gets: int = 0
    getm: int = 0
    upgrades: int = 0
    invalidations_sent: int = 0
    cache_to_cache: int = 0
    writebacks_to_l3: int = 0


class Directory:
    """Chip-wide directory state (sharded by home bank only logically)."""

    __slots__ = ("_entries", "stats")

    def __init__(self) -> None:
        self._entries: dict[int, DirectoryEntry] = {}
        self.stats = CoherenceStats()

    def entry(self, line: int) -> DirectoryEntry | None:
        """The directory entry for ``line`` or None if uncached privately."""
        return self._entries.get(line)

    def holders(self, line: int) -> set[int]:
        e = self._entries.get(line)
        return e.holders() if e else set()

    # -- transitions -------------------------------------------------------

    def on_gets(self, line: int, requester: int) -> tuple[int | None, bool]:
        """Record a load miss by ``requester``.

        Returns ``(forward_from, was_dirty)``: the core that must forward
        the line cache-to-cache (None when data comes from L3/memory) and
        whether that owner's copy was dirty (needs an L3 writeback).
        After the call the requester is a holder: sole holder → E is
        represented as owner with ``owner_dirty=False``; otherwise S.
        """
        self.stats.gets += 1
        e = self._entries.get(line)
        if e is None:
            # No private copies: requester gets the line in E.
            self._entries[line] = DirectoryEntry(owner=requester, owner_dirty=False)
            return None, False
        if e.owner is not None and e.owner != requester:
            src = e.owner
            dirty = e.owner_dirty
            self.stats.cache_to_cache += 1
            if dirty:
                self.stats.writebacks_to_l3 += 1
            # Owner downgrades to S; both are now sharers.
            e.sharers = {src, requester}
            e.owner = None
            e.owner_dirty = False
            return src, dirty
        if e.owner == requester:
            return None, False  # already owner (shouldn't miss, but harmless)
        e.sharers.add(requester)
        return None, False

    def on_getm(self, line: int, requester: int) -> tuple[int | None, bool, set[int]]:
        """Record a store miss by ``requester``.

        Returns ``(forward_from, was_dirty, invalidated)``.  After the
        call the requester is the sole owner in M.
        """
        self.stats.getm += 1
        e = self._entries.get(line)
        forward_from: int | None = None
        was_dirty = False
        invalidated: set[int] = set()
        if e is not None:
            if e.owner is not None and e.owner != requester:
                forward_from = e.owner
                was_dirty = e.owner_dirty
                invalidated = {e.owner}
                self.stats.cache_to_cache += 1
            else:
                invalidated = {s for s in e.sharers if s != requester}
            self.stats.invalidations_sent += len(invalidated)
        self._entries[line] = DirectoryEntry(owner=requester, owner_dirty=True)
        return forward_from, was_dirty, invalidated

    def on_upgrade(self, line: int, requester: int) -> set[int]:
        """Record an S→M upgrade; returns the sharers to invalidate."""
        self.stats.upgrades += 1
        e = self._entries.get(line)
        victims: set[int] = set()
        if e is not None:
            victims = {s for s in e.sharers if s != requester}
            self.stats.invalidations_sent += len(victims)
        self._entries[line] = DirectoryEntry(owner=requester, owner_dirty=True)
        return victims

    def on_evict(self, line: int, core: int, state: MesiState) -> bool:
        """Record an L2 eviction.  Returns True if dirty data goes to L3."""
        e = self._entries.get(line)
        dirty = False
        if e is None:
            return False
        if e.owner == core:
            dirty = e.owner_dirty
            if dirty:
                self.stats.writebacks_to_l3 += 1
            del self._entries[line]
        else:
            e.sharers.discard(core)
            if not e.sharers and e.owner is None:
                del self._entries[line]
        return dirty and state is MesiState.MODIFIED

    def on_recall(self, line: int) -> tuple[set[int], bool]:
        """Invalidate all private copies (inclusive-L3 eviction recall).

        Returns ``(holders, dirty)`` — who lost a copy and whether dirty
        data must be written back before the L3 line is dropped.
        """
        e = self._entries.pop(line, None)
        if e is None:
            return set(), False
        holders = e.holders()
        self.stats.invalidations_sent += len(holders)
        dirty = e.owner is not None and e.owner_dirty
        if dirty:
            self.stats.writebacks_to_l3 += 1
        return holders, dirty

    def mark_dirty(self, line: int, core: int) -> None:
        """Note that ``core`` (the owner) dirtied its E copy (E→M)."""
        e = self._entries.get(line)
        if e is not None and e.owner == core:
            e.owner_dirty = True

    def __len__(self) -> int:
        return len(self._entries)
