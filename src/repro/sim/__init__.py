"""Cycle-level CMP simulator.

This package is the substrate the paper's evaluation ran on: a 32-core CMP
with private L1/L2 caches, a shared banked L3, a bi-directional ring
interconnect, directory-based MESI coherence, a split-transaction off-chip
bus, and banked DRAM with row buffers (Table 1 of the paper).

The simulator is event-driven with resource-reservation timing: contended
resources (L3 banks, the off-chip bus, DRAM banks) keep a next-free-time
and a request walks the hierarchy reserving each resource in turn.  This
gives cycle-granularity contention — the off-chip bus genuinely saturates,
critical sections genuinely serialize through lock handoff and line
ping-pong — at a cost of one or two heap events per memory access, which
keeps multi-million-cycle simulations tractable in pure Python.
"""

from repro.sim.config import MachineConfig
from repro.sim.machine import Machine, RunResult

__all__ = ["MachineConfig", "Machine", "RunResult"]
