"""In-order, 2-wide core model (Table 1), with optional SMT contexts.

Each core hosts one or more hardware thread contexts (Table 1's machine
has one; ``MachineConfig.smt_threads`` adds the paper's Section 9
extension).  A context executes one simulated thread by pulling ops from
the thread's generator; the core is a small state machine driven by the
event queue:

* ``Compute(n)`` occupies the context ``ceil(n / issue_width)`` cycles,
  scaled by the number of non-idle contexts sharing the core's issue
  bandwidth (fine-grained SMT arbitration; a spinning context burns
  issue slots too, as spin loops do).
* ``Load``/``Store`` block the context until the memory system's
  completion cycle (each context has its own outstanding miss).
* ``Branch`` runs through the core's gshare predictor; a misprediction
  adds the pipeline-flush penalty.
* ``Lock``/``Unlock``/``BarrierWait`` are serviced by the runtime
  managers, keyed by the *agent* (thread slot).  A waiting context
  spins: it stays active for power accounting, matching the paper's
  active-cores power metric.
* ``ReadCounter`` samples a performance counter and sends the value back
  into the generator (``value = yield ReadCounter(...)``).
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Callable

from repro.errors import ProgramError, SimulationError
from repro.isa.ops import (
    BarrierWait,
    Branch,
    Compute,
    Load,
    Lock,
    ReadCounter,
    Store,
    Unlock,
)
from repro.isa.program import ThreadProgram
from repro.sim.branch import GsharePredictor
from repro.sim.engine import slow_paths_enabled

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.machine import Machine


class CoreState(enum.Enum):
    IDLE = "idle"
    RUNNING = "running"
    SPINNING = "spinning"  # waiting on a lock or barrier (active for power)


class _Context:
    """One hardware thread context of a core."""

    __slots__ = ("index", "state", "program", "agent_id", "started_at",
                 "spin_since", "send_value", "spin_cycles", "resume",
                 "pending", "resume_pending")

    def __init__(self, index: int) -> None:
        self.index = index
        self.state = CoreState.IDLE
        self.program: ThreadProgram | None = None
        self.agent_id: int | None = None
        self.started_at = 0
        self.spin_since = 0
        self.send_value: int | None = None
        self.spin_cycles = 0
        #: Prebound "pull my next op" event callback, created once by the
        #: owning core so the hot loop never allocates per-event closures.
        self.resume: Callable[[], None] = lambda: None
        #: Op pulled ahead by the Compute-coalescing fast path, dispatched
        #: by the prebound ``resume_pending`` callback (same no-allocation
        #: rationale as ``resume``).  None means finish the thread.
        self.pending: object | None = None
        self.resume_pending: Callable[[], None] = lambda: None


class Core:
    """One processor core of the CMP (possibly multi-context)."""

    __slots__ = ("core_id", "machine", "predictor", "contexts",
                 "retired_instructions", "_coalesce", "_mem_access",
                 "_retired", "_sanitizer")

    def __init__(self, core_id: int, machine: "Machine") -> None:
        self.core_id = core_id
        self.machine = machine
        self.predictor = GsharePredictor(machine.config.gshare_entries)
        self.contexts = [_Context(i)
                         for i in range(machine.config.smt_threads)]
        self.retired_instructions = 0
        for ctx in self.contexts:
            ctx.resume = (lambda c=ctx: self._step(c))
            ctx.resume_pending = (lambda c=ctx: self._dispatch_pending(c))
        #: Coalescing homogeneous Compute runs is bit-identical only when
        #: the issue-width share cannot change mid-run (one context per
        #: core) and no tracer wants per-op compute spans.
        self._coalesce = (not slow_paths_enabled()
                          and machine.config.smt_threads == 1
                          and machine.trace is None)
        self._mem_access = machine.memsys.make_port(core_id)
        #: The counter file's per-core retired array and the sanitizer,
        #: bound once (both are fixed at machine construction): the
        #: per-op accounting below is two list bumps, not method calls.
        self._retired = machine.counters._retired
        self._sanitizer = machine.sanitizer

    # -- aggregate views -----------------------------------------------------

    @property
    def is_idle(self) -> bool:
        return all(ctx.state is CoreState.IDLE for ctx in self.contexts)

    @property
    def spin_cycles(self) -> int:
        return sum(ctx.spin_cycles for ctx in self.contexts)

    def _active_contexts(self) -> int:
        return sum(1 for ctx in self.contexts
                   if ctx.state is not CoreState.IDLE)

    # -- thread lifecycle -----------------------------------------------------

    def start_thread(self, program: ThreadProgram, agent_id: int,
                     at: int, context_index: int = 0) -> None:
        """Begin executing ``program`` on a context at cycle ``at``."""
        ctx = self.contexts[context_index]
        if ctx.state is not CoreState.IDLE:
            raise SimulationError(
                f"core {self.core_id} context {context_index} is busy")
        ctx.program = program
        ctx.agent_id = agent_id
        ctx.state = CoreState.RUNNING
        ctx.started_at = at
        trace = self.machine.trace
        if trace is not None:
            trace.on_thread_start(self.core_id, agent_id, at)
        self.machine.events.schedule(at, ctx.resume)

    def _finish_thread(self, ctx: _Context) -> None:
        agent_id = ctx.agent_id
        ctx.program = None
        ctx.agent_id = None
        ctx.state = CoreState.IDLE
        if agent_id is None:  # pragma: no cover - defensive
            raise SimulationError("finished a thread that never started")
        san = self.machine.sanitizer
        if san is not None:
            san.on_thread_exit(agent_id, self.machine.events.now)
        trace = self.machine.trace
        if trace is not None:
            trace.on_thread_exit(self.core_id, agent_id,
                                 self.machine.events.now)
        self.machine.on_thread_finished(self.core_id, agent_id)

    # -- execution loop ---------------------------------------------------------

    def _next_op(self, ctx: _Context):
        assert ctx.program is not None
        try:
            if ctx.send_value is not None:
                value, ctx.send_value = ctx.send_value, None
                return ctx.program.send(value)  # type: ignore[union-attr]
            return next(ctx.program)
        except StopIteration:
            return None

    def _step(self, ctx: _Context) -> None:
        """Pull and dispatch the context's next op (event callback)."""
        if ctx.send_value is None:
            # Inlined common case of _next_op: plain generator pull.
            try:
                op = next(ctx.program)  # type: ignore[arg-type]
            except StopIteration:
                op = None
        else:
            op = self._next_op(ctx)
        if op is None:
            self._finish_thread(ctx)
            return
        self._dispatch(ctx, op)

    def _dispatch_pending(self, ctx: _Context) -> None:
        """Dispatch the op pulled ahead by the coalescing fast path."""
        op = ctx.pending
        if op is None:
            self._finish_thread(ctx)
            return
        ctx.pending = None
        self._dispatch(ctx, op)

    def _dispatch(self, ctx: _Context, op) -> None:
        """Execute one already-pulled op at the current cycle."""
        machine = self.machine
        events = machine.events
        now = events.now

        if type(op) is Compute:
            n = op.instructions
            if self._coalesce:
                # Pull ahead through the whole homogeneous Compute run
                # and schedule its completion as a single event.  Cycles
                # are summed per op (ceil each), the share factor is a
                # constant 1 (one context per core), and nothing outside
                # this core can observe the intermediate cycles, so the
                # schedule is bit-identical to stepping op by op.
                width = machine.config.issue_width
                cycles = -(-n // width) if n else 0
                nxt = self._next_op(ctx)
                while type(nxt) is Compute:
                    extra = nxt.instructions
                    n += extra
                    if extra:
                        cycles += -(-extra // width)
                    nxt = self._next_op(ctx)
                self.retired_instructions += n
                self._retired[self.core_id] += n
                if cycles:
                    ctx.pending = nxt
                    events.schedule(now + cycles, ctx.resume_pending)
                elif nxt is None:
                    self._finish_thread(ctx)
                else:
                    self._dispatch(ctx, nxt)
                return
            share = max(1, self._active_contexts())
            cycles = (-(-n // machine.config.issue_width)) * share if n else 0
            self.retired_instructions += n
            self._retired[self.core_id] += n
            if cycles:
                if machine.trace is not None and ctx.agent_id is not None:
                    machine.trace.on_compute(self.core_id, ctx.agent_id,
                                             now, now + cycles)
                events.schedule(now + cycles, ctx.resume)
            else:
                self._step(ctx)
            return

        if type(op) is Load or type(op) is Store:
            is_write = type(op) is Store
            san = self._sanitizer
            if san is not None and ctx.agent_id is not None:
                san.on_access(ctx.agent_id, op.addr, is_write, now)
            done = self._mem_access(op.addr, is_write, now)
            self.retired_instructions += 1
            self._retired[self.core_id] += 1
            events.schedule(done, ctx.resume)
            return

        if type(op) is Branch:
            correct = self.predictor.update(op.pc, op.taken)
            penalty = (0 if correct
                       else machine.config.branch_misprediction_penalty)
            self.retired_instructions += 1
            self._retired[self.core_id] += 1
            events.schedule(now + 1 + penalty, ctx.resume)
            return

        if type(op) is Lock:
            assert ctx.agent_id is not None
            san = machine.sanitizer
            if san is not None:
                san.on_lock_request(op.lock_id, ctx.agent_id, now)
            grant = machine.locks.acquire(op.lock_id, ctx.agent_id, now)
            if grant is None:
                self._begin_spin(ctx, now)
            else:
                events.schedule(grant, ctx.resume)
            return

        if type(op) is Unlock:
            assert ctx.agent_id is not None
            san = machine.sanitizer
            if san is not None:
                san.on_unlock_request(op.lock_id, ctx.agent_id, now)
            handoff = machine.locks.release(op.lock_id, ctx.agent_id, now)
            if handoff is not None:
                next_agent, grant = handoff
                machine.wake_agent(next_agent, grant)
            events.schedule(now + 1, ctx.resume)
            return

        if type(op) is BarrierWait:
            assert ctx.agent_id is not None
            team = machine.team_size_of(ctx.agent_id)
            releases = machine.barriers.arrive(
                op.barrier_id, ctx.agent_id, team, now)
            if releases is None:
                self._begin_spin(ctx, now)
                return
            for agent_id, when in releases:
                if agent_id == ctx.agent_id:
                    events.schedule(when, ctx.resume)
                else:
                    machine.wake_agent(agent_id, when)
            return

        if type(op) is ReadCounter:
            san = machine.sanitizer
            if san is not None and ctx.agent_id is not None:
                san.on_read_counter(ctx.agent_id, op.kind, now)
            ctx.send_value = machine.counters.read(op.kind, self.core_id)
            # Reading a counter is a cheap serializing instruction.
            events.schedule(now + 1, ctx.resume)
            return

        raise ProgramError(f"core {self.core_id}: unknown op {op!r}")

    # -- spin/wake ------------------------------------------------------------

    def _begin_spin(self, ctx: _Context, now: int) -> None:
        ctx.state = CoreState.SPINNING
        ctx.spin_since = now

    def granted(self, context_index: int, when: int) -> None:
        """A lock grant or barrier release wakes a spinning context."""
        ctx = self.contexts[context_index]
        if ctx.state is not CoreState.SPINNING:
            raise SimulationError(
                f"core {self.core_id} ctx {context_index} woken while "
                f"{ctx.state.value}")
        ctx.state = CoreState.RUNNING
        ctx.spin_cycles += max(0, when - ctx.spin_since)
        self.machine.events.schedule(when, ctx.resume)
