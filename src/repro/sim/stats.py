"""Snapshots and run-level results.

The paper reports two quantities per run: execution time (cycles) and
power (average number of active cores).  :class:`Snapshot` captures the
machine counters at an instant; :class:`RunResult` is the difference of
two snapshots plus derived metrics.
"""

from __future__ import annotations

from dataclasses import dataclass


def busy_fraction(busy_cycles: int, elapsed_cycles: int) -> float:
    """Occupancy of a unit-capacity resource, clamped to [0, 1].

    The single definition of "utilization" shared by
    :attr:`RunResult.bus_utilization` and
    :meth:`repro.sim.bus.BusStats.utilization`.  Zero or negative elapsed
    time yields 0.0 (an empty interval has no occupancy); the clamp
    absorbs transfers that straddle the interval boundary.
    """
    if elapsed_cycles <= 0:
        return 0.0
    return min(1.0, busy_cycles / elapsed_cycles)


@dataclass(frozen=True, slots=True)
class Snapshot:
    """Machine counters at one instant of simulated time."""

    cycles: int
    busy_core_cycles: int
    spin_core_cycles: int
    bus_busy_cycles: int
    bus_transfers: int
    l3_misses: int
    l3_accesses: int
    retired_instructions: int
    lock_acquisitions: int


@dataclass(frozen=True, slots=True)
class RunResult:
    """Metrics over an interval of simulated execution.

    ``power`` follows the paper's Section 3.1 definition: the number of
    active cores in a cycle, averaged over the interval.  A core spinning
    on a lock or barrier counts as active.
    """

    cycles: int
    busy_core_cycles: int
    spin_core_cycles: int
    bus_busy_cycles: int
    bus_transfers: int
    l3_misses: int
    l3_accesses: int
    retired_instructions: int
    lock_acquisitions: int

    @staticmethod
    def between(start: Snapshot, end: Snapshot) -> "RunResult":
        """Result for the interval between two snapshots."""
        return RunResult(
            cycles=end.cycles - start.cycles,
            busy_core_cycles=end.busy_core_cycles - start.busy_core_cycles,
            spin_core_cycles=end.spin_core_cycles - start.spin_core_cycles,
            bus_busy_cycles=end.bus_busy_cycles - start.bus_busy_cycles,
            bus_transfers=end.bus_transfers - start.bus_transfers,
            l3_misses=end.l3_misses - start.l3_misses,
            l3_accesses=end.l3_accesses - start.l3_accesses,
            retired_instructions=(end.retired_instructions
                                  - start.retired_instructions),
            lock_acquisitions=end.lock_acquisitions - start.lock_acquisitions,
        )

    @property
    def power(self) -> float:
        """Average active cores over the interval (the paper's power)."""
        if self.cycles <= 0:
            return 0.0
        return self.busy_core_cycles / self.cycles

    @property
    def bus_utilization(self) -> float:
        """Fraction of the interval the off-chip data bus was busy."""
        return busy_fraction(self.bus_busy_cycles, self.cycles)

    @property
    def energy(self) -> float:
        """Power x time proxy: active-core-cycles (paper: power savings
        translate to energy savings when execution time is unchanged)."""
        return float(self.busy_core_cycles)

    @property
    def ipc(self) -> float:
        """Chip-wide retired instructions per cycle."""
        if self.cycles <= 0:
            return 0.0
        return self.retired_instructions / self.cycles

    def to_dict(self) -> dict:
        """All counters plus derived metrics, JSON-ready.

        The one encoding of a run result: the CLI's ``--json`` output
        and the jobs cache both use it, so cached and fresh payloads
        stay field-for-field identical.
        """
        return {
            "cycles": self.cycles,
            "busy_core_cycles": self.busy_core_cycles,
            "spin_core_cycles": self.spin_core_cycles,
            "bus_busy_cycles": self.bus_busy_cycles,
            "bus_transfers": self.bus_transfers,
            "l3_misses": self.l3_misses,
            "l3_accesses": self.l3_accesses,
            "retired_instructions": self.retired_instructions,
            "lock_acquisitions": self.lock_acquisitions,
            "power": self.power,
            "bus_utilization": self.bus_utilization,
            "ipc": self.ipc,
            "energy": self.energy,
        }

    def __add__(self, other: "RunResult") -> "RunResult":
        """Concatenate two disjoint intervals (times and counts add)."""
        return RunResult(
            cycles=self.cycles + other.cycles,
            busy_core_cycles=self.busy_core_cycles + other.busy_core_cycles,
            spin_core_cycles=self.spin_core_cycles + other.spin_core_cycles,
            bus_busy_cycles=self.bus_busy_cycles + other.bus_busy_cycles,
            bus_transfers=self.bus_transfers + other.bus_transfers,
            l3_misses=self.l3_misses + other.l3_misses,
            l3_accesses=self.l3_accesses + other.l3_accesses,
            retired_instructions=(self.retired_instructions
                                  + other.retired_instructions),
            lock_acquisitions=self.lock_acquisitions + other.lock_acquisitions,
        )
