"""Set-associative cache with true-LRU replacement.

The cache stores per-line *payloads* (e.g. a MESI state for L2, a dirty bit
for L3) but no data values: workloads compute real values at the Python
level while the memory system models timing and coherence state only.

Sets are plain dicts keyed by line address.  Python dicts preserve
insertion order, so LRU is "delete + reinsert on touch" and the victim is
the first key — O(1) per operation without a linked list.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator


@dataclass(slots=True)
class CacheStats:
    """Hit/miss/eviction counters for one cache instance."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        """Miss fraction (0.0 when the cache was never accessed)."""
        if not self.accesses:
            return 0.0
        return self.misses / self.accesses


class SetAssocCache:
    """A set-associative, true-LRU cache directory (tags + payloads).

    Args:
        size_bytes: total capacity.
        assoc: ways per set.
        line_bytes: line size (power of two).
        name: label used in ``repr`` and stats dumps.
    """

    __slots__ = ("name", "assoc", "line_bytes", "num_sets", "_sets", "stats",
                 "_offset_bits", "_set_mask")

    def __init__(self, size_bytes: int, assoc: int, line_bytes: int = 64,
                 name: str = "cache") -> None:
        if line_bytes <= 0 or line_bytes & (line_bytes - 1):
            raise ValueError("line_bytes must be a positive power of two")
        num_lines = size_bytes // line_bytes
        if num_lines == 0 or num_lines % assoc:
            raise ValueError(
                f"{name}: {size_bytes} bytes / {line_bytes}B lines not divisible "
                f"into {assoc}-way sets")
        self.name = name
        self.assoc = assoc
        self.line_bytes = line_bytes
        self.num_sets = num_lines // assoc
        self._sets: list[dict[int, Any]] = [{} for _ in range(self.num_sets)]
        self._offset_bits = line_bytes.bit_length() - 1
        self._set_mask = self.num_sets - 1 if self._is_pow2(self.num_sets) else -1
        self.stats = CacheStats()

    @staticmethod
    def _is_pow2(n: int) -> bool:
        return n > 0 and not n & (n - 1)

    def line_of(self, addr: int) -> int:
        """Line address (byte address >> offset bits) containing ``addr``."""
        return addr >> self._offset_bits

    def _set_index(self, line: int) -> int:
        mask = self._set_mask
        return line & mask if mask >= 0 else line % self.num_sets

    # -- core operations ------------------------------------------------------

    def lookup(self, line: int, touch: bool = True) -> Any | None:
        """Return the payload for ``line`` or None on miss.

        Counts a hit or miss; ``touch=True`` promotes the line to MRU.
        """
        mask = self._set_mask
        s = self._sets[line & mask if mask >= 0 else line % self.num_sets]
        stats = self.stats
        if line in s:
            stats.hits += 1
            if touch:
                payload = s.pop(line)
                s[line] = payload
                return payload
            return s[line]
        stats.misses += 1
        return None

    def direct_state(self) -> tuple[list[dict[int, Any]], int, CacheStats]:
        """Internals for inlined hit fast paths: ``(sets, set_mask, stats)``.

        ``set_mask`` is ``-1`` when the set count is not a power of two
        (callers must then fall back to the method API).  Mutating the
        returned structures follows the same rules :meth:`lookup` and
        :meth:`insert` do; see :meth:`MemorySystem.make_port
        <repro.sim.memsys.MemorySystem.make_port>` for the one user.
        """
        return self._sets, self._set_mask, self.stats

    def peek(self, line: int) -> Any | None:
        """Payload for ``line`` without touching LRU or counting stats."""
        mask = self._set_mask
        return self._sets[line & mask if mask >= 0 else line % self.num_sets].get(line)

    def insert(self, line: int, payload: Any = True) -> tuple[int, Any] | None:
        """Install ``line``; return the evicted ``(line, payload)`` if any.

        If the line is already present its payload is replaced and promoted
        to MRU with no eviction.
        """
        mask = self._set_mask
        s = self._sets[line & mask if mask >= 0 else line % self.num_sets]
        if line in s:
            del s[line]
            s[line] = payload
            return None
        victim = None
        if len(s) >= self.assoc:
            victim_line = next(iter(s))
            victim = (victim_line, s.pop(victim_line))
            self.stats.evictions += 1
        s[line] = payload
        return victim

    def update(self, line: int, payload: Any) -> bool:
        """Replace the payload of a resident line without LRU movement.

        Returns False when the line is not resident.
        """
        mask = self._set_mask
        s = self._sets[line & mask if mask >= 0 else line % self.num_sets]
        if line not in s:
            return False
        s[line] = payload
        return True

    def invalidate(self, line: int) -> Any | None:
        """Remove ``line``; return its payload, or None if absent."""
        mask = self._set_mask
        s = self._sets[line & mask if mask >= 0 else line % self.num_sets]
        payload = s.pop(line, None)
        if payload is not None:
            self.stats.invalidations += 1
        return payload

    # -- introspection -----------------------------------------------------------

    def __contains__(self, line: int) -> bool:
        mask = self._set_mask
        return line in self._sets[line & mask if mask >= 0 else line % self.num_sets]

    def __len__(self) -> int:
        return sum(len(s) for s in self._sets)

    def resident_lines(self) -> Iterator[int]:
        """Iterate over all resident line addresses (unspecified order)."""
        for s in self._sets:
            yield from s

    def clear(self) -> None:
        """Drop all lines (does not reset stats)."""
        for s in self._sets:
            s.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<SetAssocCache {self.name}: {self.num_sets}x{self.assoc} "
                f"lines={len(self)} hits={self.stats.hits} misses={self.stats.misses}>")
