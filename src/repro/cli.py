"""Command-line interface: run workloads, sweeps, and paper figures.

Usage (after ``pip install -e .``)::

    python -m repro list                         # Table 2 roster
    python -m repro run PageMine --policy fdt    # one application run
    python -m repro run ED --policy static --threads 8 --json
    python -m repro sweep PageMine --threads 1,2,4,8,16,32
    python -m repro sweep ED --jobs 8            # points on a process pool
    python -m repro figure fig2                  # regenerate a figure
    python -m repro figure fig8 --jobs 8 --manifest fig8.json
    python -m repro batch EP PageMine --threads 1,2,4 --policies static,fdt
    python -m repro machine                      # Table 1 dump
    python -m repro check PageMine               # thread-sanitize a workload
    python -m repro check synthetic-racy --json  # positive control, JSON out
    python -m repro check EP --static            # + static proofs and priors
    python -m repro check --all --static-only    # static-verify the roster
    python -m repro trace PageMine --out tr/     # record + export a trace
    python -m repro run EP --trace tr/           # same, via the run command
    python -m repro serve --port 8080            # HTTP experiment server
    python -m repro loadgen PageMine --rps 50    # open-loop load + report

Every command accepts ``--scale`` (input-set scaling) and the machine
knobs ``--cores`` and ``--bandwidth``.  ``check`` exits 0 when the
workload is clean and 1 when the sanitizer found races, lock-order
cycles, or discipline violations; ``--static`` adds the ahead-of-run
analyzer (lock/barrier proofs + static FDT priors) and ``--static-only``
skips the simulated run entirely.

``sweep``, ``figure``, and ``batch`` submit their simulations through
the :mod:`repro.jobs` subsystem: ``--jobs N`` fans independent runs out
over N worker processes, results are served from the content-addressed
cache under ``~/.cache/repro`` (``--cache-dir`` overrides, ``--no-cache``
disables), and ``--manifest FILE`` records every job's key, status, and
wall time.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from repro.analysis.oracle import oracle_choice
from repro.analysis.report import ascii_table
from repro.analysis.sweep import sweep_threads
from repro.errors import ReproError, WorkloadError
from repro.fdt.policies import FdtMode, FdtPolicy, StaticPolicy, ThreadingPolicy
from repro.fdt.runner import run_application
from repro.jobs import (
    JobRunner,
    JobSpec,
    PolicySpec,
    ResultCache,
    WorkloadRef,
    app_result_to_dict,
)
from repro.sim.config import MachineConfig
from repro.workloads import all_specs, get

_FIGURES = {
    "table1": ("repro.experiments.tables", "run_table1"),
    "table2": ("repro.experiments.tables", "run_table2"),
    "fig2": ("repro.experiments.fig02_pagemine", "run_fig2"),
    "fig4": ("repro.experiments.fig04_ed", "run_fig4"),
    "fig6": ("repro.experiments.fig06_cs_example", "run_fig6"),
    "fig8": ("repro.experiments.fig08_sat", "run_fig8"),
    "fig9": ("repro.experiments.fig09_pagesize", "run_fig9"),
    "fig11": ("repro.experiments.fig11_bw_example", "run_fig11"),
    "fig12": ("repro.experiments.fig12_bat", "run_fig12"),
    "fig13": ("repro.experiments.fig13_bandwidth", "run_fig13"),
    "fig14": ("repro.experiments.fig14_combined", "run_fig14"),
    "fig15": ("repro.experiments.fig15_oracle", "run_fig15"),
    "fig16": ("repro.experiments.fig16_17_proof", "run_fig16_17"),
    "smt": ("repro.experiments.smt_extension", "run_smt"),
    "crossover": ("repro.experiments.crossover", "run_crossover"),
}


def _machine_config(args: argparse.Namespace) -> MachineConfig:
    config = MachineConfig.asplos08_baseline()
    if args.cores is not None:
        config = config.with_cores(args.cores)
    if args.bandwidth is not None:
        config = config.with_bandwidth(args.bandwidth)
    if getattr(args, "smt", None) is not None:
        config = config.with_smt(args.smt)
    return config


def _policy(args: argparse.Namespace) -> ThreadingPolicy:
    if args.policy == "static":
        return StaticPolicy(args.threads)
    mode = {"fdt": FdtMode.COMBINED, "sat": FdtMode.SAT,
            "bat": FdtMode.BAT}[args.policy]
    return FdtPolicy(mode)


def _parse_thread_list(text: str) -> tuple[int, ...]:
    # "".split(",") yields [''], so emptiness must be checked on the
    # stripped parts, not on the tuple of parsed ints.
    parts = [part.strip() for part in text.split(",") if part.strip()]
    if not parts:
        raise ReproError("thread list is empty")
    try:
        return tuple(int(part) for part in parts)
    except ValueError:
        raise ReproError(f"bad thread list {text!r}; expected e.g. 1,2,4,8")


def _warn_counts_over_cores(counts: Sequence[int],
                            config: MachineConfig) -> None:
    """Flag requested thread counts the sweep will silently skip."""
    skipped = sorted({t for t in counts if t > config.num_cores})
    if skipped:
        listed = ",".join(map(str, skipped))
        print(f"warning: skipping thread counts above the "
              f"{config.num_cores}-core machine: {listed}", file=sys.stderr)


def _make_runner(args: argparse.Namespace) -> JobRunner:
    """Build the job runner the jobs-aware commands share."""
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    return JobRunner(cache=cache, jobs=args.jobs, timeout=args.timeout,
                     trace_dir=getattr(args, "trace_dir", None),
                     preflight=getattr(args, "preflight", False))


def _finish_jobs(args: argparse.Namespace, runner: JobRunner,
                 quiet: bool = False) -> None:
    """Write the manifest if requested; summarize to stderr."""
    if args.manifest:
        runner.manifest.write(args.manifest)
    if not quiet:
        print(f"jobs: {runner.manifest.summary()}", file=sys.stderr)


def _cmd_list(args: argparse.Namespace) -> int:
    rows = [(s.name, s.category.value, s.description, s.repro_input)
            for s in all_specs()]
    print(ascii_table(("workload", "class", "description", "input"), rows))
    return 0


def _cmd_machine(args: argparse.Namespace) -> int:
    from repro.experiments.tables import Table1Result
    print(Table1Result(config=_machine_config(args)).format())
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    config = _machine_config(args)
    spec = get(args.workload)
    machine = None
    if args.trace is not None:
        config = config.with_trace()
    if args.report is not None or args.trace is not None:
        from repro.sim.machine import Machine
        machine = Machine(config)
    result = run_application(spec.build(args.scale), _policy(args), config,
                             machine=machine)
    trace_paths = None
    if args.trace is not None and machine is not None \
            and machine.trace is not None:
        from repro.trace import write_artifacts
        trace_paths = write_artifacts(machine.trace.data, args.trace)
    if args.json:
        r = result.result
        payload = app_result_to_dict(result)
        payload.update(
            cycles=result.cycles,
            power=result.power,
            bus_utilization=r.bus_utilization,
            spin_core_cycles=r.spin_core_cycles,
            ipc=r.ipc,
            energy=r.energy,
        )
        if trace_paths is not None:
            payload["trace"] = {name: str(path)
                                for name, path in trace_paths.items()}
        print(json.dumps(payload, indent=2))
        return 0
    print(f"{spec.name} under {result.policy_name} "
          f"on {config.num_cores} cores:")
    for info in result.kernel_infos:
        line = (f"  {info.kernel_name}: {info.threads} threads, "
                f"{info.total_cycles:,} cycles")
        if info.estimates is not None:
            est = info.estimates
            line += (f"  [trained {info.trained_iterations} iters: "
                     f"CS {est.cs_fraction:.1%}, BU_1 {est.bu1:.1%}, "
                     f"P_CS {est.p_cs}, P_BW {est.p_bw}]")
        print(line)
    print(f"total: {result.cycles:,} cycles, power {result.power:.2f} "
          f"active cores")
    if args.report is not None and machine is not None:
        from pathlib import Path

        from repro.analysis.inspection import machine_report_json
        Path(args.report).write_text(machine_report_json(machine))
        print(f"machine report written to {args.report}")
    if trace_paths is not None:
        print(f"trace artifacts written to {args.trace}")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    config = _machine_config(args)
    spec = get(args.workload)
    counts = _parse_thread_list(args.threads)
    _warn_counts_over_cores(counts, config)
    runner = _make_runner(args)
    sweep = sweep_threads(WorkloadRef(name=spec.name, scale=args.scale),
                          counts, config, runner=runner)
    oracle = oracle_choice(sweep)
    if args.json:
        payload = {
            "workload": spec.name,
            "scale": args.scale,
            "points": [{"threads": p.threads, "cycles": p.cycles,
                        "power": p.power,
                        "bus_utilization": p.bus_utilization,
                        "spin_core_cycles": p.spin_core_cycles,
                        "ipc": p.ipc,
                        "energy": p.energy}
                       for p in sweep.points],
            "best_threads": sweep.best_threads,
            "oracle_threads": oracle.threads,
        }
        print(json.dumps(payload, indent=2))
    else:
        base = sweep.points[0].cycles
        rows = [(p.threads, p.cycles, f"{p.cycles / base:.3f}",
                 f"{p.power:.1f}", f"{p.bus_utilization:.1%}")
                for p in sweep.points]
        print(ascii_table(
            ("threads", "cycles", "norm time", "power", "bus util"), rows))
        print(f"\nbest: {sweep.best_threads} threads; "
              f"oracle (fewest within 1%): {oracle.threads} threads")
    _finish_jobs(args, runner)
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    if args.static_only:
        args.static = True
    if args.all:
        names = [s.name for s in all_specs()]
    elif args.workload is not None:
        names = [args.workload]
    else:
        print("error: give a workload name or --all", file=sys.stderr)
        return 2

    worst = 0
    payloads = []
    for name in names:
        payload, text, code = _check_one(name, args)
        worst = max(worst, code)
        if args.json:
            payloads.append(payload)
        else:
            print(text)
    if args.json:
        out = payloads[0] if len(payloads) == 1 else payloads
        print(json.dumps(out, indent=2))
    return worst


def _check_one(args_name: str,
               args: argparse.Namespace) -> tuple[dict, str, int]:
    """Check one workload; returns (json payload, text, exit code)."""
    from repro.analysis.report import format_findings
    from repro.check.runner import check_workload

    config = _machine_config(args)
    static_report = None
    extras: dict = {}
    if args.static:
        from repro.check.static import analyze_workload
        static_report = analyze_workload(name=args_name, scale=args.scale,
                                         config=config)
        extras = _static_extras(args_name, static_report, args.scale, config)

    if args.static_only:
        assert static_report is not None
        payload = {**static_report.to_dict(), **extras}
        text = format_findings(static_report.as_check_report())
        text = text.replace("repro check:", "repro check --static-only:", 1)
        text += _format_priors(static_report, extras)
        return payload, text, 0 if static_report.clean else 1

    report = check_workload(args_name, scale=args.scale, config=config,
                            threads=args.threads)
    payload = report.to_dict()
    text = format_findings(report)
    code = 0 if report.clean else 1
    if static_report is not None:
        payload["static"] = static_report.to_dict()
        payload.update(extras)
        if not static_report.clean:
            code = max(code, 1)
            static_text = format_findings(static_report.as_check_report())
            text += "\nstatic analysis:\n" + static_text
        else:
            text += "\nstatic analysis: OK - no findings"
        text += _format_priors(static_report, extras)
    return payload, text, code


def _static_extras(name: str, static_report, scale: float,
                   config: MachineConfig) -> dict:
    """Measured training estimates + prior agreement (registry only).

    Fixtures are deliberately broken programs — running the real
    training loop on them could hang — so agreement is reported only
    for Table 2 registry workloads.
    """
    from repro.fdt.priors import measure_estimates

    try:
        spec = get(name)
    except WorkloadError:
        return {}
    measured: dict = {}
    agreement: dict = {}
    for kernel in spec.build(scale).kernels:
        prior = static_report.priors.get(kernel.name)
        if prior is None:
            continue
        est = measure_estimates(kernel, config)
        measured[kernel.name] = {
            "t_cs": est.t_cs, "t_nocs": est.t_nocs, "bu1": est.bu1,
            "cs_fraction": est.cs_fraction,
            "p_cs": est.p_cs, "p_bw": est.p_bw, "p_fdt": est.p_fdt,
        }
        agreement[kernel.name] = prior.agreement(est).to_dict()
    return {"measured": measured, "agreement": agreement}


def _format_priors(static_report, extras: dict) -> str:
    """Render static priors (and agreement, when measured) as text."""
    lines = []
    agreement = extras.get("agreement", {})
    for kname, prior in sorted(static_report.priors.items()):
        line = (f"static prior {kname}: cs_fraction={prior.cs_fraction:.2%} "
                f"bu1={prior.bu1:.2%} p_cs={prior.p_cs} p_bw={prior.p_bw} "
                f"p_fdt={prior.p_fdt}")
        agree = agreement.get(kname)
        if agree:
            verdict = ("within" if agree["within_tolerance"]
                       else "OUTSIDE")
            line += (f" | measured cs_fraction="
                     f"{agree['measured_cs_fraction']:.2%} "
                     f"p_fdt={agree['measured_p_fdt']} "
                     f"({verdict} tolerance)")
        lines.append(line)
    return ("\n" + "\n".join(lines)) if lines else ""


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.sim.config import TraceConfig
    from repro.trace import text_summary, run_traced, write_artifacts

    config = _machine_config(args)
    spec = get(args.workload)
    trace_config = TraceConfig(sample_interval=args.sample_interval)
    traced = run_traced(spec.build(args.scale), _policy(args), config,
                        trace_config=trace_config)
    paths = write_artifacts(traced.trace, args.out)
    if args.json:
        t = traced.trace
        print(json.dumps({
            "workload": spec.name,
            "policy": traced.result.policy_name,
            "cycles": traced.result.cycles,
            "power": traced.result.power,
            "spans": len(t.spans),
            "samples": len(t.samples),
            "marks": len(t.marks),
            "decisions": len(t.decisions),
            "dropped_spans": t.dropped_spans,
            "dropped_samples": t.dropped_samples,
            "artifacts": {name: str(path) for name, path in paths.items()},
        }, indent=2))
        return 0
    print(f"{spec.name} under {traced.result.policy_name}: "
          f"{traced.result.cycles:,} cycles")
    print(text_summary(traced.trace))
    print(f"artifacts written to {args.out}:")
    for name, path in sorted(paths.items()):
        print(f"  {name}: {path}")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench import compare, harness, scenarios

    if args.list:
        rows = [(s.name, s.description) for s in scenarios.SCENARIOS]
        print(ascii_table(("scenario", "description"), rows))
        return 0
    result = harness.run_suite(names=args.scenario or None, quick=args.quick,
                               trials=args.trials, warmup=args.warmup,
                               progress=lambda line: print(line,
                                                           file=sys.stderr))
    if args.json:
        path = harness.write_json(result, args.json)
        print(f"bench report written to {path}", file=sys.stderr)
    else:
        print(json.dumps(result.to_dict(), indent=2))
    if args.compare:
        report = compare.compare_reports(compare.load_report(args.compare),
                                         result.to_dict(),
                                         threshold=args.threshold)
        print(report.format())
        return 0 if report.ok else 1
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.serve import ServeConfig, run_server

    config = ServeConfig(
        host=args.host, port=args.port,
        queue_depth=args.queue_depth, retry_after=args.retry_after,
        workers=args.workers, max_batch=args.max_batch,
        batch_window=args.batch_window,
        request_timeout=args.request_timeout,
        jobs=args.jobs, job_timeout=args.timeout,
        cache_dir=args.cache_dir, no_cache=args.no_cache,
        preflight=args.preflight, manifest_path=args.manifest)

    def announce(line: str, flush: bool = True) -> None:
        print(line, file=sys.stderr, flush=flush)

    server = asyncio.run(run_server(config, announce=announce))
    print(f"repro serve: drained; {server.manifest.summary()}",
          file=sys.stderr)
    return 0


def _cmd_loadgen(args: argparse.Namespace) -> int:
    from repro.serve import run_loadgen_blocking
    from repro.serve.loadgen import format_report_json

    if args.synthetic:
        payload: dict = {"synthetic": {
            "cs_fraction": args.cs_fraction, "bus_lines": args.bus_lines,
            "iterations": args.iterations}}
    else:
        if not args.workload:
            raise ReproError("give a workload name or --synthetic")
        payload = {"workload": args.workload, "scale": args.scale}
    payload["policy"] = args.policy
    if args.policy == "static" and args.threads is not None:
        payload["threads"] = args.threads

    report = run_loadgen_blocking(
        args.host, args.port, payload, rps=args.rps,
        duration=args.duration, endpoint=args.endpoint,
        timeout=args.request_timeout)
    if args.json:
        print(format_report_json(report))
    else:
        print(report.format())
    if report.errors or report.error_5xx:
        return 1
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    import importlib
    import inspect
    module_name, func_name = _FIGURES[args.name]
    module = importlib.import_module(module_name)
    figure_func = getattr(module, func_name)
    if "runner" in inspect.signature(figure_func).parameters:
        runner = _make_runner(args)
        result = figure_func(runner=runner)
        print(result.format())
        _finish_jobs(args, runner)
    else:
        result = figure_func()
        print(result.format())
        if args.manifest:
            print(f"note: figure {args.name!r} runs no simulations; "
                  f"no manifest written", file=sys.stderr)
    return 0


def _cmd_batch(args: argparse.Namespace) -> int:
    config = _machine_config(args)
    counts = _parse_thread_list(args.threads)
    _warn_counts_over_cores(counts, config)
    static_counts = [t for t in sorted(set(counts))
                     if t <= config.num_cores]
    policies = []
    for kind in args.policies.split(","):
        kind = kind.strip()
        if not kind:
            continue
        if kind not in ("static", "fdt", "sat", "bat"):
            raise ReproError(f"unknown policy {kind!r}; "
                             f"expected static, fdt, sat, or bat")
        policies.append(kind)
    if not policies:
        raise ReproError("policy list is empty")
    if "static" in policies and not static_counts:
        raise ReproError("no static thread counts within the core count")

    specs: list[JobSpec] = []
    for name in args.workloads:
        ref = WorkloadRef(name=get(name).name, scale=args.scale)
        for kind in policies:
            if kind == "static":
                specs.extend(
                    JobSpec(workload=ref, policy=PolicySpec.static(t),
                            config=config)
                    for t in static_counts)
            else:
                specs.append(JobSpec(workload=ref,
                                     policy=PolicySpec(kind=kind),
                                     config=config))

    runner = _make_runner(args)
    results = runner.run(specs)
    status_by_key = {e.key: e.status for e in runner.manifest.entries}
    jobs = []
    for spec, res in zip(specs, results):
        jobs.append({
            "workload": spec.workload.name,
            "scale": spec.workload.scale,
            "policy": spec.policy.label,
            "threads": list(res.threads_used),
            "cycles": res.cycles,
            "power": res.power,
            "bus_utilization": res.result.bus_utilization,
            "key": spec.key(),
            "status": status_by_key.get(spec.key(), "hit"),
        })
    if args.json:
        print(json.dumps({"jobs": jobs,
                          "counts": runner.manifest.counts}, indent=2))
        _finish_jobs(args, runner, quiet=True)
    else:
        rows = [(j["workload"], j["policy"],
                 "/".join(map(str, j["threads"])), f"{j['cycles']:,}",
                 f"{j['power']:.1f}", f"{j['bus_utilization']:.1%}",
                 j["status"]) for j in jobs]
        print(ascii_table(("workload", "policy", "threads", "cycles",
                           "power", "bus util", "status"), rows))
        print(f"\n{runner.manifest.summary()}")
        _finish_jobs(args, runner, quiet=True)
        if args.manifest:
            print(f"manifest written to {args.manifest}", file=sys.stderr)
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.analysis.report import ascii_table as _table
    from repro.faults import FaultPlan, sites_table
    from repro.faults.chaos import (
        CHAOS_SCHEMA,
        default_specs,
        example_plan,
        run_chaos_batch,
        run_chaos_serve,
    )

    if args.list_sites:
        print(_table(("site", "layer", "kinds", "description"),
                     sites_table()))
        return 0
    plan = (FaultPlan.load(args.plan) if args.plan else example_plan())
    if args.seed is not None:
        plan = plan.with_seed(args.seed)
    workloads = [w.strip() for w in args.workloads.split(",") if w.strip()]
    specs = default_specs(workloads=workloads, threads=args.threads,
                          scale=args.scale)
    reports = []
    if args.mode in ("batch", "both"):
        reports.append(run_chaos_batch(plan, specs, jobs=args.jobs))
    if args.mode in ("serve", "both"):
        reports.append(run_chaos_serve(plan, specs,
                                       attempts=args.attempts))
    passed = all(r.passed for r in reports)
    payload = {"schema": CHAOS_SCHEMA, "passed": passed,
               "reports": [r.to_dict() for r in reports]}
    if args.report:
        with open(args.report, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
        print(f"chaos report written to {args.report}", file=sys.stderr)
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        for report in reports:
            print(report.summary())
    return 0 if passed else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Feedback-Driven Threading (ASPLOS 2008) reproduction")
    sub = parser.add_subparsers(dest="command", required=True)

    def add_machine_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--cores", type=int, default=None,
                       help="core count (default: 32)")
        p.add_argument("--bandwidth", type=float, default=None,
                       help="bus bandwidth factor (e.g. 0.5, 2.0)")
        p.add_argument("--smt", type=int, default=None,
                       help="SMT contexts per core (Section 9 extension)")
        p.add_argument("--scale", type=float, default=0.5,
                       help="input-set scale factor (default 0.5)")

    def add_job_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="worker processes for independent runs "
                            "(default 1: in-process)")
        p.add_argument("--cache-dir", default=None, metavar="DIR",
                       help="result-cache directory (default: "
                            "$REPRO_CACHE_DIR or ~/.cache/repro)")
        p.add_argument("--no-cache", action="store_true",
                       help="neither read nor write the result cache")
        p.add_argument("--manifest", default=None, metavar="FILE",
                       help="write a JSON run manifest (job keys, "
                            "status, wall time, cache hit/miss)")
        p.add_argument("--timeout", type=float, default=None, metavar="SEC",
                       help="per-job timeout for --jobs > 1")
        p.add_argument("--trace-dir", default=None, metavar="DIR",
                       help="record a trace for every computed job and "
                            "write its artifacts under DIR/<job key>/ "
                            "(cache hits are not re-traced)")
        p.add_argument("--preflight", action="store_true",
                       help="statically verify each workload before "
                            "dispatch and refuse jobs with provable "
                            "hangs or lock faults (verdicts are cached)")

    p_list = sub.add_parser("list", help="list the Table 2 workloads")
    p_list.set_defaults(func=_cmd_list)

    p_machine = sub.add_parser("machine", help="print the machine (Table 1)")
    add_machine_args(p_machine)
    p_machine.set_defaults(func=_cmd_machine)

    p_run = sub.add_parser("run", help="run one workload under a policy")
    p_run.add_argument("workload", help="Table 2 workload name")
    p_run.add_argument("--policy", choices=("fdt", "sat", "bat", "static"),
                       default="fdt")
    p_run.add_argument("--threads", type=int, default=None,
                       help="thread count for --policy static")
    p_run.add_argument("--report", default=None, metavar="FILE",
                       help="write the full machine-stats JSON to FILE")
    p_run.add_argument("--trace", default=None, metavar="DIR",
                       help="record a trace and write its artifacts "
                            "(Perfetto JSON, counters CSV, decision log, "
                            "summary) to DIR")
    p_run.add_argument("--json", action="store_true",
                       help="print the machine-readable run result")
    add_machine_args(p_run)
    p_run.set_defaults(func=_cmd_run)

    p_sweep = sub.add_parser("sweep", help="static thread-count sweep")
    p_sweep.add_argument("workload", help="Table 2 workload name")
    p_sweep.add_argument("--threads", default="1,2,4,8,16,32",
                         help="comma-separated thread counts")
    p_sweep.add_argument("--json", action="store_true",
                         help="print the machine-readable sweep result")
    add_machine_args(p_sweep)
    add_job_args(p_sweep)
    p_sweep.set_defaults(func=_cmd_sweep)

    p_check = sub.add_parser(
        "check",
        help="thread-sanitize a workload (races, lock order, discipline), "
             "optionally with ahead-of-run static analysis")
    p_check.add_argument("workload", nargs="?", default=None,
                         help="Table 2 workload name, or a fixture "
                              "(synthetic-racy, synthetic-lock-inversion, "
                              "synthetic-unheld-unlock, static-deadlock, "
                              "static-barrier-mismatch, "
                              "static-counter-in-cs)")
    p_check.add_argument("--all", action="store_true",
                         help="check every Table 2 workload")
    p_check.add_argument("--threads", type=int, default=4,
                         help="static team size for the checked run "
                              "(default 4; clamped to >= 2)")
    p_check.add_argument("--static", action="store_true",
                         help="also run the ahead-of-run static analyzer "
                              "(lock-order proofs, barrier proofs, "
                              "SAT/BAT priors vs measured training)")
    p_check.add_argument("--static-only", action="store_true",
                         help="run only the static analyzer — no "
                              "simulation of the checked workload itself "
                              "(training still runs to report prior "
                              "agreement for Table 2 workloads)")
    p_check.add_argument("--json", action="store_true",
                         help="print the machine-readable findings report")
    add_machine_args(p_check)
    p_check.set_defaults(func=_cmd_check)

    p_trace = sub.add_parser(
        "trace",
        help="run one workload with the tracer attached and export "
             "Perfetto/CSV/decision-log artifacts")
    p_trace.add_argument("workload", help="Table 2 workload name")
    p_trace.add_argument("--policy", choices=("fdt", "sat", "bat", "static"),
                         default="fdt")
    p_trace.add_argument("--threads", type=int, default=None,
                         help="thread count for --policy static")
    p_trace.add_argument("--sample-interval", type=int, default=1000,
                         metavar="CYCLES",
                         help="counter-sample spacing (default 1000)")
    p_trace.add_argument("--out", default="trace-out", metavar="DIR",
                         help="artifact directory (default: trace-out)")
    p_trace.add_argument("--json", action="store_true",
                         help="print the machine-readable trace summary")
    add_machine_args(p_trace)
    p_trace.set_defaults(func=_cmd_trace)

    p_bench = sub.add_parser(
        "bench",
        help="measure simulator host throughput (sim-cycles and ops per "
             "host second) over the fixed scenario suite")
    p_bench.add_argument("--quick", action="store_true",
                         help="small inputs (the CI configuration)")
    p_bench.add_argument("--trials", type=int, default=5,
                         help="kept timed trials per scenario (default 5)")
    p_bench.add_argument("--warmup", type=int, default=1,
                         help="discarded leading trials (default 1)")
    p_bench.add_argument("--scenario", action="append", metavar="NAME",
                         help="run only NAME (repeatable; default: all)")
    p_bench.add_argument("--json", default=None, metavar="FILE",
                         help="write the schema-versioned BENCH_sim.json "
                              "report to FILE (default: print to stdout)")
    p_bench.add_argument("--compare", default=None, metavar="BASELINE",
                         help="after the run, gate against BASELINE "
                              "(exit 1 on regression)")
    p_bench.add_argument("--threshold", type=float, default=0.30,
                         help="allowed fractional rate drop for --compare "
                              "(default 0.30)")
    p_bench.add_argument("--list", action="store_true",
                         help="list the scenario suite and exit")
    p_bench.set_defaults(func=_cmd_bench)

    p_fig = sub.add_parser("figure", help="regenerate a paper figure/table")
    p_fig.add_argument("name", choices=sorted(_FIGURES))
    add_job_args(p_fig)
    p_fig.set_defaults(func=_cmd_figure)

    p_serve = sub.add_parser(
        "serve",
        help="serve simulations, sweeps, and FDT decisions over HTTP "
             "(request coalescing, admission control, /metrics)")
    p_serve.add_argument("--host", default="127.0.0.1",
                         help="bind address (default 127.0.0.1)")
    p_serve.add_argument("--port", type=int, default=8080,
                         help="bind port; 0 picks an ephemeral port "
                              "(default 8080)")
    p_serve.add_argument("--queue-depth", type=int, default=64,
                         metavar="N",
                         help="admission-control queue bound; overload "
                              "beyond it is shed with 429 (default 64)")
    p_serve.add_argument("--retry-after", type=float, default=1.0,
                         metavar="SEC",
                         help="Retry-After advertised on shed responses "
                              "(default 1.0)")
    p_serve.add_argument("--workers", type=int, default=2, metavar="N",
                         help="concurrent simulation batches (default 2)")
    p_serve.add_argument("--max-batch", type=int, default=8, metavar="N",
                         help="cache misses folded into one job "
                              "submission (default 8)")
    p_serve.add_argument("--batch-window", type=float, default=0.0,
                         metavar="SEC",
                         help="wait this long for more misses before "
                              "dispatching a batch (default 0)")
    p_serve.add_argument("--request-timeout", type=float, default=None,
                         metavar="SEC",
                         help="per-batch wall-clock bound; requests "
                              "over it answer 504 (default: none)")
    p_serve.add_argument("--jobs", type=int, default=1, metavar="N",
                         help="worker processes per batch (default 1: "
                              "simulate in the worker thread)")
    p_serve.add_argument("--timeout", type=float, default=None,
                         metavar="SEC",
                         help="per-job timeout inside the process pool "
                              "(--jobs > 1 only)")
    p_serve.add_argument("--cache-dir", default=None, metavar="DIR",
                         help="result-cache directory (default: "
                              "$REPRO_CACHE_DIR or ~/.cache/repro)")
    p_serve.add_argument("--no-cache", action="store_true",
                         help="serve without the on-disk result cache")
    p_serve.add_argument("--manifest", default=None, metavar="FILE",
                         help="flush the run manifest here on drain")
    p_serve.add_argument("--preflight", action="store_true",
                         help="statically verify workloads before "
                              "dispatch (422 on provable faults)")
    p_serve.set_defaults(func=_cmd_serve)

    p_loadgen = sub.add_parser(
        "loadgen",
        help="drive open-loop load at a target RPS against a running "
             "server and report latency/hit-rate/shed-rate")
    p_loadgen.add_argument("workload", nargs="?", default=None,
                           help="Table 2 workload name (or --synthetic)")
    p_loadgen.add_argument("--host", default="127.0.0.1")
    p_loadgen.add_argument("--port", type=int, default=8080)
    p_loadgen.add_argument("--endpoint", default="/v1/run",
                           choices=("/v1/run", "/v1/fdt"),
                           help="endpoint to drive (default /v1/run)")
    p_loadgen.add_argument("--rps", type=float, default=20.0,
                           help="target open-loop request rate "
                                "(default 20)")
    p_loadgen.add_argument("--duration", type=float, default=2.0,
                           metavar="SEC",
                           help="generation window (default 2.0)")
    p_loadgen.add_argument("--request-timeout", type=float, default=60.0,
                           metavar="SEC",
                           help="client-side per-request timeout "
                                "(default 60)")
    p_loadgen.add_argument("--scale", type=float, default=0.5,
                           help="input-set scale factor (default 0.5)")
    p_loadgen.add_argument("--policy",
                           choices=("static", "fdt", "sat", "bat"),
                           default="static")
    p_loadgen.add_argument("--threads", type=int, default=None,
                           help="thread count for --policy static")
    p_loadgen.add_argument("--synthetic", action="store_true",
                           help="drive a synthetic kernel instead of a "
                                "registry workload")
    p_loadgen.add_argument("--cs-fraction", type=float, default=0.0)
    p_loadgen.add_argument("--bus-lines", type=int, default=0)
    p_loadgen.add_argument("--iterations", type=int, default=64)
    p_loadgen.add_argument("--json", action="store_true",
                           help="print the machine-readable report")
    p_loadgen.set_defaults(func=_cmd_loadgen)

    p_batch = sub.add_parser(
        "batch",
        help="run a workload x policy x thread-count grid as jobs")
    p_batch.add_argument("workloads", nargs="+", metavar="WORKLOAD",
                         help="Table 2 workload name(s)")
    p_batch.add_argument("--threads", default="1,2,4,8,16,32",
                         help="comma-separated counts for static policies")
    p_batch.add_argument("--policies", default="static",
                         help="comma-separated subset of "
                              "static,fdt,sat,bat (default: static)")
    p_batch.add_argument("--json", action="store_true",
                         help="print the machine-readable batch result")
    add_machine_args(p_batch)
    add_job_args(p_batch)
    p_batch.set_defaults(func=_cmd_batch)

    p_chaos = sub.add_parser(
        "chaos",
        help="run a fault-injection plan and judge recovery invariants")
    p_chaos.add_argument("--plan", default=None, metavar="FILE",
                         help="fault plan JSON (default: the built-in "
                              "example plan)")
    p_chaos.add_argument("--mode", choices=("batch", "serve", "both"),
                         default="both",
                         help="drive a JobRunner batch, a live server, "
                              "or both (default: both)")
    p_chaos.add_argument("--workloads", default="PageMine,ISort",
                         help="comma-separated Table 2 workload names")
    p_chaos.add_argument("--threads", type=int, default=2,
                         help="static thread count per chaos spec")
    p_chaos.add_argument("--scale", type=float, default=0.05,
                         help="input-set scale of the chaos specs")
    p_chaos.add_argument("--seed", type=int, default=None,
                         help="override the plan's seed")
    p_chaos.add_argument("--jobs", type=int, default=1,
                         help="worker processes for the batch run")
    p_chaos.add_argument("--attempts", type=int, default=25,
                         help="per-spec request retries in serve mode")
    p_chaos.add_argument("--json", action="store_true",
                         help="print the machine-readable report")
    p_chaos.add_argument("--report", default=None, metavar="FILE",
                         help="also write the full JSON report here")
    p_chaos.add_argument("--list-sites", action="store_true",
                         help="print the registered fault sites and exit")
    p_chaos.set_defaults(func=_cmd_chaos)

    from repro.obs.cli import add_obs_subparser
    add_obs_subparser(sub)

    # Global logging flags, accepted by every subcommand (after the
    # subcommand name): `repro serve --log-json --log-level INFO`.
    for subparser in set(sub.choices.values()):
        subparser.add_argument(
            "--log-level", default=None, metavar="LEVEL",
            help="structured-log level for every repro subsystem "
                 "(DEBUG, INFO, WARNING, ERROR; default WARNING)")
        subparser.add_argument(
            "--log-json", action="store_true",
            help="emit logs as JSON lines (trace-correlated) instead "
                 "of human-readable text")

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    from repro.obs import configure_logging
    configure_logging(level=getattr(args, "log_level", None) or "WARNING",
                      json_lines=bool(getattr(args, "log_json", False)))
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - module runner
    sys.exit(main())
