"""The fault-site registry: every injection hook compiled into the host.

A *site* is a named point in a host layer where
:mod:`repro.faults.hooks` consults the armed injector.  The registry is
the single source of truth for which sites exist and which fault kinds
each supports — plan validation, the chaos CLI's ``--list-sites``, and
``docs/faults.md`` all read from it.

Sites deliberately cover only host-layer boundaries (cache I/O, job
executors, the serving socket, timeout arbitration).  None of them can
touch :mod:`repro.sim`: a simulation that runs at all runs bit-identical
to a fault-free execution.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Fault kinds (shared vocabulary across sites).
KIND_IO_ERROR = "io-error"    #: raise an injected OSError at the site
KIND_TORN = "torn"            #: truncate the payload mid-write/mid-read
KIND_CORRUPT = "corrupt"      #: flip the payload into garbage bytes
KIND_CRASH = "crash"          #: raise an injected RuntimeError
KIND_ABORT = "abort"          #: kill the worker process (pool only)
KIND_HANG = "hang"            #: stall for ``latency`` seconds
KIND_LATENCY = "latency"      #: sleep ``latency`` seconds, then continue
KIND_DROP = "drop"            #: close the connection before responding
KIND_SLOW = "slow"            #: stall the read path (slow-loris)
KIND_FORCE = "force"          #: report a timeout without waiting


@dataclass(frozen=True, slots=True)
class FaultSite:
    """One registered injection point."""

    name: str
    #: Host layer the hook lives in (``jobs`` / ``serve`` / ``obs``).
    layer: str
    kinds: tuple[str, ...]
    description: str


_SITE_LIST = (
    FaultSite(
        name="cache.read", layer="jobs",
        kinds=(KIND_IO_ERROR, KIND_TORN, KIND_CORRUPT),
        description="Result-cache entry read: injected I/O errors, torn "
                    "payloads, and corrupt bytes (all surface as misses; "
                    "corrupt entries are quarantined, never served)."),
    FaultSite(
        name="cache.write", layer="jobs",
        kinds=(KIND_IO_ERROR,),
        description="Result-cache entry write: the store raises before "
                    "the atomic replace; the job result is still "
                    "returned, only the cache stays cold."),
    FaultSite(
        name="executor.job", layer="jobs",
        kinds=(KIND_CRASH, KIND_ABORT, KIND_HANG, KIND_LATENCY),
        description="Per-job execution: injected worker crashes "
                    "(exception), hard aborts (process death, pool "
                    "only), hangs, and artificial latency."),
    FaultSite(
        name="executor.timeout", layer="jobs",
        kinds=(KIND_FORCE,),
        description="Pool wait arbitration: force a job to be reported "
                    "as timed out without consuming wall-clock time."),
    FaultSite(
        name="serve.connection", layer="serve",
        kinds=(KIND_DROP,),
        description="Accepted connection: drop it after the request is "
                    "read, before any response bytes are written."),
    FaultSite(
        name="serve.read", layer="serve",
        kinds=(KIND_SLOW,),
        description="Request read path: stall ``latency`` seconds "
                    "between accept and dispatch (slow-loris)."),
    FaultSite(
        name="serve.batch_timeout", layer="serve",
        kinds=(KIND_FORCE,),
        description="Batch wait arbitration: force one pipeline batch "
                    "to resolve as timed out without waiting on the "
                    "configured request_timeout."),
)

#: Name -> :class:`FaultSite` for every compiled-in hook.
SITES: dict[str, FaultSite] = {site.name: site for site in _SITE_LIST}


def sites_table() -> list[tuple[str, str, str, str]]:
    """``(site, layer, kinds, description)`` rows for CLI/doc rendering."""
    return [(s.name, s.layer, ",".join(s.kinds), s.description)
            for s in _SITE_LIST]
