"""The chaos harness: run a fault plan against real code, judge recovery.

This is what ``repro chaos`` executes.  A run has three parts:

1. **Baseline** — every spec is resolved once, fault-free, in a private
   cache directory, recording the simulated cycle count per content
   key.  The simulator is deterministic, so these are *the* answers.
2. **Injected run** — the plan is armed
   (:func:`repro.faults.injector.injected`) and the same specs are
   pushed through the real execution path: a :class:`~repro.jobs.JobRunner`
   batch (``mode=batch``) or a live :class:`~repro.serve.ServerThread`
   spoken to over real sockets (``mode=serve``).
3. **Invariant judgment** — the report records every injected firing
   and checks the recovery contract:

   * ``no-unhandled-exceptions`` — the batch/server surface never let
     an injected fault escape as a crash;
   * ``every-spec-accounted-once`` — each submitted spec produced
     exactly one terminal answer (nothing lost, nothing doubled);
   * ``cache-never-serves-corrupt`` — every entry still readable from
     the result cache parses and matches the baseline (corrupt entries
     must have been quarantined, not served);
   * ``sim-cycles-bit-identical`` — every result actually served has
     cycle counts equal to the fault-free baseline, bit for bit;
   * ``server-stays-responsive`` (serve mode) — ``/healthz`` still
     answers after the fault storm.

A report judges *correctness under faults*, not availability: a plan
vicious enough to exhaust every retry budget may legitimately leave
specs in ``failed`` status — that is visible in ``statuses`` — but a
wrong answer, a lost spec, or a crash is always an invariant violation.
"""

from __future__ import annotations

import tempfile
import time
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.errors import FaultError, ServeClientError
from repro.faults.injector import injected
from repro.faults.plan import FaultPlan, FaultRule
from repro.jobs import (
    JobRunner,
    JobSpec,
    PolicySpec,
    ResultCache,
    WorkloadRef,
    app_result_from_dict,
)
from repro.obs import get_logger
from repro.sim.config import MachineConfig

#: Bump on any incompatible change to the report layout.
CHAOS_SCHEMA = "repro-chaos/1"

INV_NO_UNHANDLED = "no-unhandled-exceptions"
INV_ACCOUNTED = "every-spec-accounted-once"
INV_NO_CORRUPT = "cache-never-serves-corrupt"
INV_CYCLES = "sim-cycles-bit-identical"
INV_RESPONSIVE = "server-stays-responsive"

#: Default request-retry budget per spec in serve mode — generous on
#: purpose: retrying is the client's half of the recovery contract.
SERVE_ATTEMPTS = 25

_log = get_logger("faults")


@dataclass(frozen=True, slots=True)
class ChaosInvariant:
    """One judged invariant of a chaos run."""

    name: str
    ok: bool
    detail: str = ""

    def to_dict(self) -> dict[str, Any]:
        return {"name": self.name, "ok": self.ok, "detail": self.detail}


@dataclass(slots=True)
class ChaosReport:
    """Everything a chaos run observed, plus the verdict."""

    mode: str
    plan: dict[str, Any]
    injected: int = 0
    firings: list[dict[str, Any]] = field(default_factory=list)
    #: Terminal status -> count over the submitted specs.
    statuses: dict[str, int] = field(default_factory=dict)
    invariants: list[ChaosInvariant] = field(default_factory=list)
    baseline_cycles: dict[str, int] = field(default_factory=dict)
    observed_cycles: dict[str, int] = field(default_factory=dict)
    quarantined: int = 0
    cache_entries: int = 0
    #: Status -> count from the executing runner's manifest (the third
    #: leg of the determinism contract alongside firings and cache
    #: state: same plan + seed must reproduce these exactly).
    manifest_counts: dict[str, int] = field(default_factory=dict)

    @property
    def passed(self) -> bool:
        return all(inv.ok for inv in self.invariants)

    def violations(self) -> list[ChaosInvariant]:
        return [inv for inv in self.invariants if not inv.ok]

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema": CHAOS_SCHEMA,
            "mode": self.mode,
            "passed": self.passed,
            "plan": self.plan,
            "injected": self.injected,
            "firings": list(self.firings),
            "statuses": dict(sorted(self.statuses.items())),
            "invariants": [inv.to_dict() for inv in self.invariants],
            "baseline_cycles": dict(sorted(self.baseline_cycles.items())),
            "observed_cycles": dict(sorted(self.observed_cycles.items())),
            "quarantined": self.quarantined,
            "cache_entries": self.cache_entries,
            "manifest_counts": dict(sorted(self.manifest_counts.items())),
        }

    def summary(self) -> str:
        """Human-readable pass/fail block for the CLI."""
        lines = [f"chaos {self.mode}: "
                 f"{'PASS' if self.passed else 'FAIL'} — "
                 f"{self.injected} fault(s) injected, "
                 f"{sum(self.statuses.values())} spec(s), "
                 f"{self.quarantined} quarantined"]
        for status, count in sorted(self.statuses.items()):
            lines.append(f"  status {status:<17} {count}")
        for inv in self.invariants:
            mark = "ok  " if inv.ok else "FAIL"
            lines.append(f"  [{mark}] {inv.name}"
                         + (f": {inv.detail}" if inv.detail else ""))
        return "\n".join(lines)


def example_plan(seed: int = 1234) -> FaultPlan:
    """The seeded example plan (``examples/chaos_plan.json``).

    One bounded dose of every recovery path: corrupt and erroring cache
    reads, a failed cache write, a crashing job, dropped connections,
    slow-loris reads, and one forced batch timeout — vicious enough to
    exercise quarantine, backoff retry, and the breaker, gentle enough
    that every spec still lands (all invariants must hold).
    """
    return FaultPlan(seed=seed, description=(
        "Example chaos plan: bounded faults across every host layer."),
        rules=(
            FaultRule(site="cache.read", kind="io-error", max_fires=1),
            FaultRule(site="cache.read", kind="corrupt", max_fires=1),
            FaultRule(site="cache.write", kind="io-error", max_fires=1),
            FaultRule(site="executor.job", kind="crash", max_fires=1),
            FaultRule(site="serve.connection", kind="drop", max_fires=2),
            FaultRule(site="serve.read", kind="slow", latency=0.05,
                      max_fires=2),
            FaultRule(site="serve.batch_timeout", kind="force",
                      max_fires=1),
        ))


def default_specs(workloads: Sequence[str] = ("PageMine", "ISort"),
                  threads: int = 2, scale: float = 0.05) -> list[JobSpec]:
    """Small, fast specs for chaos runs (static policy, tiny scale)."""
    config = MachineConfig.asplos08_baseline()
    return [JobSpec(workload=WorkloadRef(name=name, scale=scale),
                    policy=PolicySpec.static(threads), config=config)
            for name in workloads]


def baseline_cycles(specs: Sequence[JobSpec]) -> dict[str, int]:
    """Fault-free cycle counts per content key, in a throwaway cache.

    Raises :class:`~repro.errors.FaultError` if the fault-free run
    itself fails — a chaos verdict would be meaningless without a
    trusted answer to compare against.
    """
    with tempfile.TemporaryDirectory(prefix="repro-chaos-base-") as tmp:
        runner = JobRunner(cache=ResultCache(tmp), jobs=1)
        resolutions = runner.resolve(list(specs))
    out: dict[str, int] = {}
    for resolution in resolutions:
        if resolution.result is None:
            raise FaultError(
                f"fault-free baseline failed for {resolution.key[:12]}: "
                f"{resolution.error or resolution.status}")
        out[resolution.key] = app_result_from_dict(resolution.result).cycles
    return out


def _cycles_of(result: dict | None) -> int | None:
    """Cycle count of a serialized result, or ``None`` if unparseable."""
    if result is None:
        return None
    try:
        return app_result_from_dict(result).cycles
    except Exception:
        return None


def _judge_cache(report: ChaosReport, cache: ResultCache,
                 baseline: dict[str, int]) -> ChaosInvariant:
    """Every entry still served by the cache must match the baseline."""
    report.quarantined = cache.quarantined_count()
    report.cache_entries = len(cache)
    bad: list[str] = []
    for key, cycles in baseline.items():
        stored = cache.get_or_none(key)
        if stored is None:
            continue  # miss is fine — corrupt entries must be *absent*
        got = _cycles_of(stored)
        if got != cycles:
            bad.append(f"{key[:12]} served {got} != baseline {cycles}")
    return ChaosInvariant(
        INV_NO_CORRUPT, ok=not bad,
        detail="; ".join(bad) if bad else
        f"{report.cache_entries} entries clean, "
        f"{report.quarantined} quarantined")


def _judge_cycles(report: ChaosReport,
                  baseline: dict[str, int]) -> ChaosInvariant:
    """Every served result must be bit-identical to the baseline."""
    bad = [f"{key[:12]} observed {got} != baseline {baseline[key]}"
           for key, got in sorted(report.observed_cycles.items())
           if got != baseline.get(key)]
    return ChaosInvariant(
        INV_CYCLES, ok=not bad,
        detail="; ".join(bad) if bad else
        f"{len(report.observed_cycles)} result(s) identical")


def run_chaos_batch(plan: FaultPlan, specs: Sequence[JobSpec] | None = None,
                    jobs: int = 1,
                    cache_dir: str | None = None) -> ChaosReport:
    """Arm ``plan`` and push ``specs`` through a real ``JobRunner``."""
    specs = list(specs) if specs is not None else default_specs()
    baseline = baseline_cycles(specs)
    report = ChaosReport(mode="batch", plan=plan.to_dict(),
                         baseline_cycles=dict(baseline))
    tmp = None
    if cache_dir is None:
        tmp = tempfile.TemporaryDirectory(prefix="repro-chaos-")
        cache_dir = tmp.name
    try:
        cache = ResultCache(cache_dir)
        runner = JobRunner(cache=cache, jobs=jobs)
        unhandled = ""
        resolutions: list = []
        with injected(plan, propagate_env=jobs > 1) as injector:
            try:
                resolutions = runner.resolve(specs)
            except Exception as exc:  # an invariant violation, not a crash
                unhandled = f"{type(exc).__name__}: {exc}"
            report.injected = injector.firing_count()
            report.firings = [f.to_dict() for f in injector.firings()]
        report.manifest_counts = dict(runner.manifest.counts)
        for resolution in resolutions:
            report.statuses[resolution.status] = \
                report.statuses.get(resolution.status, 0) + 1
            if resolution.result is not None:
                got = _cycles_of(resolution.result)
                report.observed_cycles[resolution.key] = \
                    -1 if got is None else got
        report.invariants.append(ChaosInvariant(
            INV_NO_UNHANDLED, ok=not unhandled, detail=unhandled))
        expected = sorted(spec.key() for spec in specs)
        answered = sorted(r.key for r in resolutions)
        report.invariants.append(ChaosInvariant(
            INV_ACCOUNTED, ok=answered == expected,
            detail="" if answered == expected else
            f"submitted {len(expected)} spec(s), "
            f"answered {len(answered)}"))
        report.invariants.append(_judge_cache(report, cache, baseline))
        report.invariants.append(_judge_cycles(report, baseline))
    finally:
        if tmp is not None:
            tmp.cleanup()
    return report


def _request_body(spec: JobSpec) -> dict[str, Any]:
    """The ``/v1/run`` body that canonicalizes back to ``spec``.

    The request schema rebuilds the machine from the Table 1 baseline,
    so only core-count and SMT deviations can be expressed as
    overrides; a spec whose config differs anywhere else (cache sizes,
    bus ratio, ...) would silently simulate a *different* machine
    server-side and fail the cycles invariant — refuse it up front.
    """
    if spec.workload.kind == "synthetic":
        body: dict[str, Any] = {"synthetic": {
            "cs_fraction": spec.workload.cs_fraction,
            "bus_lines": spec.workload.bus_lines,
            "iterations": spec.workload.iterations,
            "compute_instr": spec.workload.compute_instr,
            "name": spec.workload.name}}
    else:
        body = {"workload": spec.workload.name,
                "scale": spec.workload.scale}
    baseline = MachineConfig.asplos08_baseline()
    machine: dict[str, Any] = {}
    if spec.config.num_cores != baseline.num_cores:
        machine["cores"] = spec.config.num_cores
    if spec.config.smt_threads != baseline.smt_threads:
        machine["smt"] = spec.config.smt_threads
    rebuilt = baseline
    if "cores" in machine:
        rebuilt = rebuilt.with_cores(machine["cores"])
    if "smt" in machine:
        rebuilt = rebuilt.with_smt(machine["smt"])
    if spec.config != rebuilt:
        raise FaultError(
            "serve-mode chaos cannot express this machine config over "
            "the request schema; use the Table 1 baseline (optionally "
            "with core/SMT overrides)")
    if machine:
        body["machine"] = machine
    body["policy"] = spec.policy.kind
    if spec.policy.kind == "static":
        body["threads"] = spec.policy.threads
    return body


def run_chaos_serve(plan: FaultPlan, specs: Sequence[JobSpec] | None = None,
                    attempts: int = SERVE_ATTEMPTS,
                    cache_dir: str | None = None) -> ChaosReport:
    """Arm ``plan`` and drive a live server over real sockets.

    Each spec is POSTed to ``/v1/run`` with up to ``attempts`` tries;
    dropped connections, sheds (429), timeouts (504), and failures
    (500) are retried — the client half of the recovery contract.  A
    spec that never lands within its budget counts against
    ``every-spec-accounted-once``.
    """
    from repro.serve import ServeConfig, ServeClient, ServerThread

    specs = list(specs) if specs is not None else default_specs()
    bodies = [_request_body(spec) for spec in specs]  # fail fast if any
    baseline = baseline_cycles(specs)
    report = ChaosReport(mode="serve", plan=plan.to_dict(),
                         baseline_cycles=dict(baseline))
    tmp = None
    if cache_dir is None:
        tmp = tempfile.TemporaryDirectory(prefix="repro-chaos-")
        cache_dir = tmp.name
    # One worker and serial jobs keep firing order deterministic; the
    # tight breaker makes the trip → shed → probe → recover loop
    # actually exercisable by a handful of requests.
    config = ServeConfig(port=0, workers=1, jobs=1, cache_dir=cache_dir,
                         request_timeout=30.0, queue_depth=8,
                         breaker_threshold=3, breaker_probe_after=2)
    unhandled = ""
    responsive = False
    lost: list[str] = []
    with injected(plan) as injector:
        thread = ServerThread(config)
        try:
            thread.start()
            port = thread.port
            for spec, body in zip(specs, bodies):
                key = spec.key()
                status_seen = "unanswered"
                for _ in range(max(1, attempts)):
                    client = ServeClient(port=port, timeout=30.0)
                    try:
                        status, payload = client.request(
                            "POST", "/v1/run", body)
                    except ServeClientError:
                        # Dropped / refused connection: retry fresh.
                        status_seen = "connection-error"
                        continue
                    finally:
                        client.close()
                    if status == 200:
                        status_seen = str(payload.get("status", "ok"))
                        report.observed_cycles[key] = \
                            int(payload.get("cycles", -1))
                        break
                    status_seen = f"http-{status}"
                    time.sleep(0.02)  # brief pause before the retry
                else:
                    lost.append(key[:12])
                report.statuses[status_seen] = \
                    report.statuses.get(status_seen, 0) + 1
            probe = ServeClient(port=port, timeout=10.0)
            try:
                responsive = probe.healthz().get("status") == "ok"
            finally:
                probe.close()
        except Exception as exc:
            unhandled = f"{type(exc).__name__}: {exc}"
        finally:
            try:
                thread.stop()
            except Exception as exc:
                unhandled = unhandled or f"stop: {type(exc).__name__}: {exc}"
            if thread.server is not None:
                report.manifest_counts = dict(thread.server.manifest.counts)
            report.injected = injector.firing_count()
            report.firings = [f.to_dict() for f in injector.firings()]
    report.invariants.append(ChaosInvariant(
        INV_NO_UNHANDLED, ok=not unhandled, detail=unhandled))
    report.invariants.append(ChaosInvariant(
        INV_ACCOUNTED, ok=not lost,
        detail="" if not lost else
        f"{len(lost)} spec(s) never served: {', '.join(lost)}"))
    report.invariants.append(
        _judge_cache(report, ResultCache(cache_dir), baseline))
    report.invariants.append(_judge_cycles(report, baseline))
    report.invariants.append(ChaosInvariant(
        INV_RESPONSIVE, ok=responsive,
        detail="" if responsive else "healthz did not answer ok"))
    if tmp is not None:
        tmp.cleanup()
    if not report.passed:
        _log.warning("chaos run failed invariants",
                     extra={"mode": report.mode,
                            "violations": [v.name
                                           for v in report.violations()]})
    return report
