"""The armed fault injector: deterministic decisions plus a firing log.

One :class:`FaultInjector` wraps one :class:`~repro.faults.plan.FaultPlan`
and answers the only question a hook ever asks: *does a rule fire here,
and as what?*  Decisions are deterministic: each rule owns a
:class:`random.Random` stream seeded from ``(plan seed, rule index)``
and advances it only when a probability draw is actually needed, so the
same plan against the same (serially executed) workload fires the same
faults in the same order — the property ``tests/test_faults.py`` locks
in.

Every firing is appended to an in-memory log (site, kind, rule index,
occurrence number, context), counted in the shared metrics registry
(``repro_faults_injected_total``), and emitted as a ``faults.inject``
span through :mod:`repro.obs.tracing` — so a chaos run's injections are
visible through exactly the same telemetry as the recoveries they
provoke.

Process-pool workers cannot see the parent's in-memory injector, so
:func:`install` (with ``propagate_env=True``) serializes the plan into
``REPRO_FAULT_PLAN`` and :func:`configure_from_env` re-arms it on the
worker side (each worker draws from its own fresh streams; cross-process
firing order is deterministic per worker, not globally).
"""

from __future__ import annotations

import json
import os
import random
import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Iterator, Mapping

from repro.faults.plan import FaultPlan, FaultRule
from repro.obs.registry import default_registry
from repro.obs.tracing import span

#: Environment variable carrying the plan JSON into pool workers.
PLAN_ENV = "REPRO_FAULT_PLAN"


class InjectedFaultError(RuntimeError):
    """Base class for exceptions raised *by* injection (never by bugs)."""


class InjectedIOError(InjectedFaultError, OSError):
    """An injected I/O failure; flows through ``except OSError`` paths."""


class InjectedCrashError(InjectedFaultError):
    """An injected worker crash (transient from the runner's view)."""


@dataclass(frozen=True, slots=True)
class FaultFiring:
    """One injected fault, as recorded in the firing log."""

    site: str
    kind: str
    rule: int
    #: 1-based matching-occurrence number at the rule when it fired.
    occurrence: int
    key: str = ""
    workload: str = ""
    endpoint: str = ""

    def to_dict(self) -> dict[str, Any]:
        return {"site": self.site, "kind": self.kind, "rule": self.rule,
                "occurrence": self.occurrence, "key": self.key,
                "workload": self.workload, "endpoint": self.endpoint}


class _RuleState:
    """Mutable trigger state for one rule (occurrences, fires, RNG)."""

    __slots__ = ("rule", "index", "occurrences", "fires", "rng")

    def __init__(self, rule: FaultRule, index: int, seed: int) -> None:
        self.rule = rule
        self.index = index
        self.occurrences = 0
        self.fires = 0
        self.rng = random.Random(f"{seed}:{index}:{rule.site}:{rule.kind}")


class FaultInjector:
    """Evaluates an armed plan at every hooked site (thread-safe)."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._states = [_RuleState(rule, i, plan.seed)
                        for i, rule in enumerate(plan.rules)]
        self._firings: list[FaultFiring] = []
        self._lock = threading.Lock()

    def decide(self, site: str, ctx: Mapping[str, str],
               kinds: tuple[str, ...] | None = None) -> FaultRule | None:
        """The rule that fires at this occurrence, or ``None``.

        At most one rule fires per hook call (first match in plan
        order), mirroring how a real fault manifests once per operation.
        ``kinds`` restricts consideration to the fault kinds the calling
        hook can actually perform — a site probed by two hooks (e.g.
        ``cache.read``'s exception hook and payload hook) must not let
        one hook consume occurrences destined for the other.
        """
        with self._lock:
            for state in self._states:
                rule = state.rule
                if rule.site != site or not rule.matches(ctx):
                    continue
                if kinds is not None and rule.kind not in kinds:
                    continue
                state.occurrences += 1
                if state.occurrences <= rule.after:
                    continue
                if (state.occurrences - rule.after - 1) % rule.every != 0:
                    continue
                if rule.max_fires is not None \
                        and state.fires >= rule.max_fires:
                    continue
                if rule.probability < 1.0 \
                        and state.rng.random() >= rule.probability:
                    continue
                state.fires += 1
                firing = FaultFiring(
                    site=site, kind=rule.kind, rule=state.index,
                    occurrence=state.occurrences,
                    key=str(ctx.get("key", "")),
                    workload=str(ctx.get("workload", "")),
                    endpoint=str(ctx.get("endpoint", "")))
                self._firings.append(firing)
                self._publish(firing)
                return rule
        return None

    @staticmethod
    def _publish(firing: FaultFiring) -> None:
        """Count and trace one injection through the obs spine."""
        default_registry().labeled_counter(
            "repro_faults_injected_total",
            "Injected faults by site:kind.", "fault"
        ).inc(f"{firing.site}:{firing.kind}")
        with span("faults.inject", site=firing.site, kind=firing.kind,
                  rule=firing.rule, occurrence=firing.occurrence,
                  key=firing.key):
            pass

    def firings(self) -> list[FaultFiring]:
        """Snapshot of the firing log, in injection order."""
        with self._lock:
            return list(self._firings)

    def firing_count(self) -> int:
        with self._lock:
            return len(self._firings)


# -- the process-wide armed injector -----------------------------------

_active: FaultInjector | None = None
_active_lock = threading.Lock()


def active() -> FaultInjector | None:
    """The armed injector, or ``None`` (the hooks' fast path)."""
    return _active


def install(injector: FaultInjector,
            propagate_env: bool = False) -> FaultInjector:
    """Arm an injector process-wide (and optionally for pool workers).

    ``propagate_env=True`` additionally exports the plan through
    ``REPRO_FAULT_PLAN`` so worker processes spawned afterwards re-arm
    it via :func:`configure_from_env`.
    """
    global _active
    with _active_lock:
        _active = injector
        if propagate_env:
            os.environ[PLAN_ENV] = json.dumps(injector.plan.to_dict(),
                                              sort_keys=True)
    return injector


def uninstall() -> None:
    """Disarm injection and drop any environment propagation."""
    global _active
    with _active_lock:
        _active = None
        os.environ.pop(PLAN_ENV, None)


@contextmanager
def injected(plan: FaultPlan,
             propagate_env: bool = False) -> Iterator[FaultInjector]:
    """Arm a plan for the duration of a ``with`` block."""
    injector = FaultInjector(plan)
    install(injector, propagate_env=propagate_env)
    try:
        yield injector
    finally:
        uninstall()


def configure_from_env() -> FaultInjector | None:
    """Arm the plan carried in ``REPRO_FAULT_PLAN``, if any (workers).

    A malformed plan is ignored rather than crashing the worker —
    injection is a test instrument, never a reason to lose a job.
    """
    if _active is not None:
        return _active
    raw = os.environ.get(PLAN_ENV)
    if not raw:
        return None
    try:
        plan = FaultPlan.from_json(raw)
    except Exception:
        return None
    return install(FaultInjector(plan))
