"""The hook functions host layers call at their fault sites.

Each hook is a thin wrapper over :func:`repro.faults.injector.active`:
when no injector is armed (the overwhelmingly common case) every hook
is a ``None``-check and a return, so production paths pay one attribute
load.  When a plan is armed, the hook asks the injector for a decision
and *performs* the fault — raising, sleeping, corrupting a payload, or
reporting a forced condition for the caller to act on.

Callers never import fault kinds; they pick the hook matching what
their site can absorb:

=====================  ================================================
:func:`maybe_raise`    sites whose faults surface as exceptions
                       (``cache.*`` I/O errors, ``executor.job``
                       crashes); also serves ``latency``/``hang`` by
                       sleeping in-line
:func:`corrupt_text`   payload-transforming sites (``cache.read`` torn
                       and corrupt entries)
:func:`delay_seconds`  async sites that must ``await`` their own sleep
                       (``serve.read`` slow-loris)
:func:`forced_timeout` timeout arbitration (``executor.timeout``,
                       ``serve.batch_timeout``)
:func:`drop_connection`  the serving socket (``serve.connection``)
=====================  ================================================
"""

from __future__ import annotations

import os
import time

from repro.faults import injector as _inj
from repro.faults.sites import (
    KIND_ABORT,
    KIND_CORRUPT,
    KIND_CRASH,
    KIND_DROP,
    KIND_FORCE,
    KIND_HANG,
    KIND_IO_ERROR,
    KIND_LATENCY,
    KIND_SLOW,
    KIND_TORN,
)

#: Replacement payload for ``corrupt`` cache entries — valid UTF-8 but
#: never valid JSON, so the store's validation must catch it.
_GARBAGE = "\x00repro-injected-corruption\x00"


def maybe_raise(site: str, **ctx: str) -> None:
    """Fire exception-kind faults at ``site`` (no-op when disarmed).

    ``io-error`` raises :class:`~repro.faults.injector.InjectedIOError`
    (an ``OSError``), ``crash`` raises
    :class:`~repro.faults.injector.InjectedCrashError`, ``abort`` kills
    the process outright (pool-worker death), and ``latency``/``hang``
    sleep the rule's ``latency`` in-line before returning.
    """
    injector = _inj.active()
    if injector is None:
        return
    rule = injector.decide(site, ctx, kinds=(
        KIND_IO_ERROR, KIND_CRASH, KIND_ABORT, KIND_LATENCY, KIND_HANG))
    if rule is None:
        return
    if rule.kind == KIND_IO_ERROR:
        raise _inj.InjectedIOError(
            f"injected I/O error at {site} ({ctx.get('key', '')})")
    if rule.kind == KIND_CRASH:
        raise _inj.InjectedCrashError(
            f"injected crash at {site} ({ctx.get('key', '')})")
    if rule.kind == KIND_ABORT:
        # A hard worker death: no exception crosses the pool boundary,
        # the executor sees BrokenProcessPool and retries elsewhere.
        os._exit(43)
    if rule.kind in (KIND_LATENCY, KIND_HANG) and rule.latency > 0:
        time.sleep(rule.latency)


def corrupt_text(site: str, text: str, **ctx: str) -> str:
    """Return ``text`` possibly torn or corrupted (identity when disarmed)."""
    injector = _inj.active()
    if injector is None:
        return text
    rule = injector.decide(site, ctx, kinds=(KIND_TORN, KIND_CORRUPT))
    if rule is None:
        return text
    if rule.kind == KIND_TORN:
        return text[:max(1, len(text) // 2)]
    if rule.kind == KIND_CORRUPT:
        return _GARBAGE
    return text


def delay_seconds(site: str, **ctx: str) -> float:
    """Injected stall for async callers to ``await`` (0.0 when disarmed)."""
    injector = _inj.active()
    if injector is None:
        return 0.0
    rule = injector.decide(site, ctx,
                           kinds=(KIND_SLOW, KIND_LATENCY, KIND_HANG))
    if rule is not None:
        return rule.latency
    return 0.0


def forced_timeout(site: str, **ctx: str) -> bool:
    """Should the caller report a timeout *now*, without waiting?"""
    injector = _inj.active()
    if injector is None:
        return False
    rule = injector.decide(site, ctx, kinds=(KIND_FORCE,))
    return rule is not None


def drop_connection(site: str, **ctx: str) -> bool:
    """Should the caller drop this connection before responding?"""
    injector = _inj.active()
    if injector is None:
        return False
    rule = injector.decide(site, ctx, kinds=(KIND_DROP,))
    return rule is not None
