"""Deterministic fault injection for the host layers around the sim.

The simulator itself is deterministic and pure; everything that can
*actually* fail in production is host plumbing — cache I/O, worker
processes, sockets, timeouts.  This package makes those failures a
first-class, reproducible input:

* :mod:`repro.faults.plan` — a declarative, JSON-loadable
  :class:`FaultPlan`: which site, which fault kind, and a deterministic
  trigger schedule (after / every / probability / max_fires) under one
  seed.
* :mod:`repro.faults.sites` — the registry of injection points compiled
  into the host layers, the single source of truth for plan validation,
  ``repro chaos --list-sites``, and ``docs/faults.md``.
* :mod:`repro.faults.injector` — the armed :class:`FaultInjector`:
  per-rule seeded RNG streams, a firing log, and obs emission
  (``repro_faults_injected_total``, ``faults.inject`` spans).
* :mod:`repro.faults.hooks` — the functions host code calls at each
  site; every hook is a single ``None``-check when no plan is armed.
* :mod:`repro.faults.chaos` — the harness behind ``repro chaos``: runs
  a plan against a real batch or a live server and judges the recovery
  invariants (imported lazily — it pulls in :mod:`repro.serve`).

Injection is a pure observer of the simulator: no site can reach
:mod:`repro.sim`, so any simulation that completes produces cycle
counts bit-identical to a fault-free run — the core invariant every
chaos run re-checks.
"""

from repro.faults.injector import (
    PLAN_ENV,
    FaultFiring,
    FaultInjector,
    InjectedCrashError,
    InjectedFaultError,
    InjectedIOError,
    active,
    configure_from_env,
    injected,
    install,
    uninstall,
)
from repro.faults.plan import PLAN_SCHEMA, FaultPlan, FaultRule
from repro.faults.sites import SITES, FaultSite, sites_table

__all__ = [
    "PLAN_ENV",
    "PLAN_SCHEMA",
    "SITES",
    "FaultFiring",
    "FaultInjector",
    "FaultPlan",
    "FaultRule",
    "FaultSite",
    "InjectedCrashError",
    "InjectedFaultError",
    "InjectedIOError",
    "active",
    "configure_from_env",
    "injected",
    "install",
    "sites_table",
    "uninstall",
]
