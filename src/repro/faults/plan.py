"""Declarative fault plans: what to inject, where, and when.

A :class:`FaultPlan` is a seedable, JSON-loadable description of the
faults one chaos run injects.  Each :class:`FaultRule` names a *site*
(an injection hook compiled into a host layer — see
:mod:`repro.faults.sites`), a fault *kind* the site supports, a trigger
predicate (context match + occurrence schedule + seeded probability),
and a firing budget.  Plans are pure data: loading one has no effect
until it is armed through :class:`~repro.faults.injector.FaultInjector`.

The trigger model, in evaluation order per eligible occurrence:

1. ``match`` — context predicate (``key_prefix``, ``workload``,
   ``endpoint``); a non-matching occurrence is not counted;
2. ``after`` — skip the first N matching occurrences;
3. ``every`` — of the remainder, consider only every Nth;
4. ``probability`` — fire with this probability, drawn from the rule's
   own :class:`random.Random` stream seeded from ``(plan seed, rule
   index)`` so two runs of the same plan draw identical sequences;
5. ``max_fires`` — stop firing after this many injections.

Everything here targets host layers only (cache I/O, executors, the
serving socket); nothing can reach simulator state, so simulated cycle
counts are bit-identical with any plan armed.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping, Sequence

from repro.errors import FaultError
from repro.faults.sites import SITES

#: Bump on any incompatible change to the plan layout.
PLAN_SCHEMA = "repro-faults/1"

#: Context keys a ``match`` predicate may constrain.
MATCH_KEYS = ("key_prefix", "workload", "endpoint")


@dataclass(frozen=True, slots=True)
class FaultRule:
    """One injection rule: site + kind + trigger + budget."""

    site: str
    kind: str
    #: Chance an eligible occurrence fires (after ``after``/``every``).
    probability: float = 1.0
    #: Skip the first N matching occurrences entirely.
    after: int = 0
    #: Of the occurrences past ``after``, consider every Nth (1 = all).
    every: int = 1
    #: Total injection budget (``None`` = unbounded).
    max_fires: int | None = None
    #: Seconds of injected delay for ``latency``/``hang``/``slow`` kinds.
    latency: float = 0.0
    #: Context predicate; unknown keys are rejected at validation.
    match: dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        site = SITES.get(self.site)
        if site is None:
            raise FaultError(
                f"unknown fault site {self.site!r}; known sites: "
                + ", ".join(sorted(SITES)))
        if self.kind not in site.kinds:
            raise FaultError(
                f"site {self.site!r} does not support kind {self.kind!r}; "
                f"supported: {', '.join(site.kinds)}")
        if not 0.0 <= self.probability <= 1.0:
            raise FaultError("probability must be within [0, 1]")
        if self.after < 0:
            raise FaultError("after must be >= 0")
        if self.every < 1:
            raise FaultError("every must be >= 1")
        if self.max_fires is not None and self.max_fires < 0:
            raise FaultError("max_fires must be >= 0")
        if self.latency < 0:
            raise FaultError("latency must be >= 0")
        unknown = set(self.match) - set(MATCH_KEYS)
        if unknown:
            raise FaultError(
                f"unknown match key(s) {sorted(unknown)}; "
                f"allowed: {', '.join(MATCH_KEYS)}")

    def matches(self, ctx: Mapping[str, str]) -> bool:
        """Does a hook context satisfy this rule's predicate?"""
        prefix = self.match.get("key_prefix")
        if prefix is not None \
                and not str(ctx.get("key", "")).startswith(prefix):
            return False
        for name in ("workload", "endpoint"):
            want = self.match.get(name)
            if want is not None and str(ctx.get(name, "")) != want:
                return False
        return True

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {"site": self.site, "kind": self.kind}
        if self.probability != 1.0:
            out["probability"] = self.probability
        if self.after:
            out["after"] = self.after
        if self.every != 1:
            out["every"] = self.every
        if self.max_fires is not None:
            out["max_fires"] = self.max_fires
        if self.latency:
            out["latency"] = self.latency
        if self.match:
            out["match"] = dict(self.match)
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultRule":
        if not isinstance(data, Mapping):
            raise FaultError(f"fault rule must be an object, got {data!r}")
        unknown = set(data) - {"site", "kind", "probability", "after",
                               "every", "max_fires", "latency", "match"}
        if unknown:
            raise FaultError(f"unknown fault rule field(s) {sorted(unknown)}")
        try:
            return cls(
                site=str(data["site"]), kind=str(data["kind"]),
                probability=float(data.get("probability", 1.0)),
                after=int(data.get("after", 0)),
                every=int(data.get("every", 1)),
                max_fires=(None if data.get("max_fires") is None
                           else int(data["max_fires"])),
                latency=float(data.get("latency", 0.0)),
                match={str(k): str(v)
                       for k, v in dict(data.get("match", {})).items()},
            )
        except KeyError as exc:
            raise FaultError(f"fault rule is missing field {exc.args[0]!r}")
        except (TypeError, ValueError) as exc:
            raise FaultError(f"malformed fault rule: {exc}")


@dataclass(frozen=True, slots=True)
class FaultPlan:
    """A seed plus an ordered list of :class:`FaultRule`."""

    seed: int = 0
    rules: tuple[FaultRule, ...] = ()
    #: Free-form description carried through to chaos reports.
    description: str = ""

    def __post_init__(self) -> None:
        if not isinstance(self.rules, tuple):
            object.__setattr__(self, "rules", tuple(self.rules))

    def with_seed(self, seed: int) -> "FaultPlan":
        """The same rules under a different seed (soak runs)."""
        return FaultPlan(seed=seed, rules=self.rules,
                         description=self.description)

    def sites(self) -> list[str]:
        """The distinct sites this plan can reach, in rule order."""
        seen: list[str] = []
        for rule in self.rules:
            if rule.site not in seen:
                seen.append(rule.site)
        return seen

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "schema": PLAN_SCHEMA,
            "seed": self.seed,
            "faults": [rule.to_dict() for rule in self.rules],
        }
        if self.description:
            out["description"] = self.description
        return out

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultPlan":
        if not isinstance(data, Mapping):
            raise FaultError("fault plan must be a JSON object")
        schema = data.get("schema", PLAN_SCHEMA)
        if schema != PLAN_SCHEMA:
            raise FaultError(f"unsupported fault plan schema {schema!r}; "
                             f"this build reads {PLAN_SCHEMA!r}")
        faults = data.get("faults", [])
        if not isinstance(faults, Sequence) or isinstance(faults, (str, bytes)):
            raise FaultError("'faults' must be a list of rules")
        try:
            seed = int(data.get("seed", 0))
        except (TypeError, ValueError):
            raise FaultError(f"bad plan seed {data.get('seed')!r}")
        return cls(seed=seed,
                   rules=tuple(FaultRule.from_dict(r) for r in faults),
                   description=str(data.get("description", "")))

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            data = json.loads(text)
        except ValueError as exc:
            raise FaultError(f"fault plan is not valid JSON: {exc}")
        return cls.from_dict(data)

    @classmethod
    def load(cls, path: str | Path) -> "FaultPlan":
        try:
            text = Path(path).read_text(encoding="utf-8")
        except OSError as exc:
            raise FaultError(f"cannot read fault plan {path}: {exc}")
        return cls.from_json(text)
