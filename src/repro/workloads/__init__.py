"""The twelve evaluated workloads (paper Table 2).

Importing this package registers every workload; look them up with
:func:`get` or enumerate Table 2 with :func:`all_specs`.
"""

from repro.workloads.base import (
    Category,
    WorkloadSpec,
    all_specs,
    by_category,
    get,
)

# Importing the modules registers the specs (Table 2 order).
from repro.workloads import pagemine  # noqa: F401  (CS-limited)
from repro.workloads import isort  # noqa: F401
from repro.workloads import gsearch  # noqa: F401
from repro.workloads import ep  # noqa: F401
from repro.workloads import ed  # noqa: F401  (BW-limited)
from repro.workloads import convert  # noqa: F401
from repro.workloads import transpose  # noqa: F401
from repro.workloads import mtwister  # noqa: F401
from repro.workloads import bt  # noqa: F401  (scalable)
from repro.workloads import mg  # noqa: F401
from repro.workloads import bscholes  # noqa: F401
from repro.workloads import sconv  # noqa: F401

__all__ = ["Category", "WorkloadSpec", "all_specs", "by_category", "get"]
