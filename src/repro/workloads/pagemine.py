"""PageMine — the paper's flagship synchronization-limited kernel (Fig. 1).

Derived from the MineBench ``rsearchk`` data-mining benchmark: for every
page of text, threads build local ASCII histograms over their slice of
the page in parallel, then each thread adds its local histogram into the
global histogram inside a critical section, followed by a barrier
(paper Figure 1).  The per-page critical-section work is constant per
thread, so total CS time grows linearly with the team size — the
archetypal Eq. 1 workload.

Paper input: 1000 pages of 5280 characters (66 lines x 80 chars), 128
histogram bins.  Repro input: 160 pages by default (scaled; the per-page
ratios, not the page count, set every result), same 5280-byte pages and
128 bins.  Figures 9 and 10 vary ``page_bytes`` from 1 KB to 25 KB.

The histogram itself is computed for real (numpy ``bincount`` over a
deterministic page corpus); tests check it against a direct count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.errors import WorkloadError
from repro.fdt.kernel import TeamParallelKernel
from repro.fdt.runner import Application
from repro.isa.ops import BarrierWait, Compute, Load, Lock, Op, Store, Unlock
from repro.runtime.parallel import static_chunks
from repro.workloads.base import (
    LINE,
    AddressSpace,
    Category,
    WorkloadSpec,
    register,
)

#: Calibrated per-line scan cost: ~3 instructions per character
#: (load byte, table index, increment) at 64 chars per line.
SCAN_INSTR_PER_LINE = 192
#: Calibrated merge cost: ~10 instructions per bin (load local, load
#: global, add, store, index arithmetic) at 16 four-byte bins per line.
MERGE_INSTR_PER_LINE = 160

_BINS = 128
_BIN_BYTES = 4
_HIST_BYTES = _BINS * _BIN_BYTES  # 512 B = 8 lines
_MERGE_LOCK = 0
_PAGE_BARRIER = 0


@dataclass(frozen=True, slots=True)
class PageMineParams:
    """Input set for PageMine."""

    num_pages: int = 160
    page_bytes: int = 5280
    seed: int = 42

    def __post_init__(self) -> None:
        if self.num_pages < 1:
            raise WorkloadError("PageMine needs at least one page")
        if self.page_bytes < LINE:
            raise WorkloadError("page must be at least one cache line")


class PageMineKernel(TeamParallelKernel):
    """``GetPageHistogram`` over every page (one iteration per page)."""

    name = "pagemine"

    def __init__(self, params: PageMineParams,
                 space: AddressSpace | None = None) -> None:
        self.params = params
        space = space or AddressSpace()
        self._pages_base = space.alloc(params.num_pages * params.page_bytes)
        # One local histogram per potential thread, each line-aligned and
        # padded to whole lines so teams never false-share locals.
        self._locals_base = space.alloc(64 * _HIST_BYTES)
        self._global_base = space.alloc(_HIST_BYTES)
        rng = np.random.default_rng(params.seed)
        #: The document: deterministic printable-ASCII text.
        self.corpus = rng.integers(
            0, _BINS, size=params.num_pages * params.page_bytes,
            dtype=np.uint8)
        #: The real global histogram, updated as iterations execute.
        self.global_histogram = np.zeros(_BINS, dtype=np.int64)

    @property
    def total_iterations(self) -> int:
        return self.params.num_pages

    def _page_slice(self, page: int, thread_id: int,
                    num_threads: int) -> tuple[int, int]:
        """Byte offsets [lo, hi) of a thread's share of one page."""
        chunk = static_chunks(self.params.page_bytes, num_threads)[thread_id]
        base = page * self.params.page_bytes
        return base + chunk.start, base + chunk.stop

    def team_iteration(self, page: int, thread_id: int,
                       num_threads: int) -> Iterator[Op]:
        lo, hi = self._page_slice(page, thread_id, num_threads)

        # Parallel part: scan this thread's slice of the page, building
        # the local histogram (computed for real, timed per line).
        local = np.bincount(self.corpus[lo:hi], minlength=_BINS).astype(np.int64)
        first_line = lo // LINE
        last_line = (hi - 1) // LINE if hi > lo else first_line - 1
        for line in range(first_line, last_line + 1):
            yield Load(self._pages_base + line * LINE)
            yield Compute(SCAN_INSTR_PER_LINE)

        # Serial part: merge the local histogram into the global one
        # under the critical section (paper Figure 1).
        local_base = self._locals_base + thread_id * _HIST_BYTES
        yield Lock(_MERGE_LOCK)
        self.global_histogram += local
        for off in range(0, _HIST_BYTES, LINE):
            yield Load(local_base + off)
            yield Compute(MERGE_INSTR_PER_LINE)
            # The global update is a read-modify-write: the store's
            # read-for-ownership fetches and invalidates in one
            # transaction (x86 `add [mem], reg` semantics).
            yield Store(self._global_base + off)
        yield Unlock(_MERGE_LOCK)

        yield BarrierWait(_PAGE_BARRIER)

    def expected_histogram(self) -> np.ndarray:
        """Ground truth for the full corpus (test oracle)."""
        return np.bincount(self.corpus, minlength=_BINS).astype(np.int64)


def build(scale: float = 1.0, page_bytes: int = 5280,
          seed: int = 42) -> Application:
    """PageMine application; ``scale`` shrinks the page count."""
    num_pages = max(16, int(160 * scale))
    kernel = PageMineKernel(PageMineParams(
        num_pages=num_pages, page_bytes=page_bytes, seed=seed))
    return Application.single(kernel, name="PageMine")


register(WorkloadSpec(
    name="PageMine",
    category=Category.CS_LIMITED,
    description="Data mining kernel (per-page ASCII histogram, rsearchk)",
    paper_input="1000 pages",
    repro_input="160 pages x 5280 B, 128 bins",
    build=build,
))
