"""BT — block-tridiagonal fluid-dynamics solver (NAS BT), scalable.

BT on its small 12^3 grid is intensely compute-dense: each cell update
evaluates 5x5 block operations, so the working set fits in the caches
and neither critical sections nor bus bandwidth limit scaling.  FDT must
*keep* all 32 threads here (paper Section 6.2: "FDT retains the
performance benefits of more threads by always choosing 32").

One FDT iteration is one grid plane of one time step (the parallelized
inner loop), giving 720 fine-grained iterations at default scale so
training consumes well under 1 %.

The "solution" is a real Jacobi-style relaxation over the grid, verified
by tests to reduce the residual monotonically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.errors import WorkloadError
from repro.fdt.kernel import TeamParallelKernel
from repro.fdt.runner import Application
from repro.isa.ops import BarrierWait, Compute, Load, Op, Store
from repro.runtime.parallel import static_chunks
from repro.workloads.base import LINE, AddressSpace, Category, WorkloadSpec, register

#: Per-cell cost of the 5x5 block-tridiagonal update (BT's block solves
#: run to thousands of flops per cell; 1200 keeps even the cold-cache
#: training phase clearly below bus saturation, as on the paper's runs).
CELL_INSTR = 1200
_PLANE_BARRIER = 0
_CELL_BYTES = 40  # five doubles of state per cell


@dataclass(frozen=True, slots=True)
class BtParams:
    """Input set for BT."""

    grid: int = 12
    time_steps: int = 60
    seed: int = 23

    def __post_init__(self) -> None:
        if self.grid < 3:
            raise WorkloadError("BT grid must be at least 3^3")
        if self.time_steps < 1:
            raise WorkloadError("BT needs at least one time step")


class BtKernel(TeamParallelKernel):
    """One iteration = one grid plane of one time step."""

    name = "bt"

    def __init__(self, params: BtParams,
                 space: AddressSpace | None = None) -> None:
        self.params = params
        space = space or AddressSpace()
        cells = params.grid ** 3
        self._grid_base = space.alloc(cells * _CELL_BYTES)
        rng = np.random.default_rng(params.seed)
        #: The real field being relaxed (one scalar per cell stands in
        #: for the 5-vector; the op stream charges the full block cost).
        self.field = rng.standard_normal((params.grid,) * 3)
        #: Residual after each completed sweep (should shrink).
        self.residuals: list[float] = []

    #: Loop granularity: each plane is swept as two half-plane slabs,
    #: keeping FDT's peeled training a tiny fraction of the run.
    SLABS_PER_PLANE = 2

    @property
    def total_iterations(self) -> int:
        return self.params.time_steps * self.params.grid * self.SLABS_PER_PLANE

    def team_iteration(self, iteration: int, thread_id: int,
                       num_threads: int) -> Iterator[Op]:
        g = self.params.grid
        plane_iter, slab = divmod(iteration, self.SLABS_PER_PLANE)
        plane = plane_iter % g
        if thread_id == 0 and slab == 0 and 0 < plane < g - 1:
            # Real relaxation of the interior plane (Jacobi in z).
            before = float(np.abs(self.field[plane]).sum())
            self.field[plane] = (self.field[plane - 1]
                                 + 2.0 * self.field[plane]
                                 + self.field[plane + 1]) / 4.0
            self.residuals.append(before)

        cells_in_plane = g * g
        slab_cells = static_chunks(cells_in_plane, self.SLABS_PER_PLANE)[slab]
        chunk = static_chunks(len(slab_cells), num_threads,
                              start=slab_cells.start)[thread_id]
        plane_base = self._grid_base + plane * cells_in_plane * _CELL_BYTES
        # Touch this thread's cells (line-granular) and pay the block cost.
        lo = plane_base + chunk.start * _CELL_BYTES
        hi = plane_base + chunk.stop * _CELL_BYTES
        for addr in range(lo // LINE * LINE, max(lo, hi - 1) + 1, LINE):
            yield Load(addr)
        instr = len(chunk) * CELL_INSTR
        while instr > 0:
            yield Compute(min(instr, 4096))
            instr -= 4096
        if len(chunk):
            yield Store(lo // LINE * LINE)
        yield BarrierWait(_PLANE_BARRIER)


def build(scale: float = 1.0, seed: int = 23) -> Application:
    """BT application; ``scale`` shrinks the time-step count."""
    steps = max(10, int(60 * scale))
    kernel = BtKernel(BtParams(time_steps=steps, seed=seed))
    return Application.single(kernel, name="BT")


register(WorkloadSpec(
    name="BT",
    category=Category.SCALABLE,
    description="Block-tridiagonal CFD solver (NAS BT)",
    paper_input="12x12x12",
    repro_input="12^3 grid, 60 time steps",
    build=build,
))
