"""MG — multigrid V-cycle solver (NAS MG), scalable.

Smoothing sweeps over a hierarchy of grids: the V-cycle descends from
the fine grid to the coarsest and back, one sweep per level.  Grids are
L3-resident after first touch and the stencil is compute-dense, so the
kernel keeps scaling to 32 threads; the varying per-level sweep sizes
also exercise FDT's stability rule on a kernel whose iterations are
*not* uniform.

One FDT iteration is one plane-slab of the current sweep, so training
stays a small fraction of the run.

Paper input: 64^3.  Repro input: 32^3 fine grid, 4 levels, 6 V-cycles.
The smoother really runs (Jacobi on the level's field) and tests check
the residual decreases.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.errors import WorkloadError
from repro.fdt.kernel import TeamParallelKernel
from repro.fdt.runner import Application
from repro.isa.ops import BarrierWait, Compute, Load, Op, Store
from repro.runtime.parallel import static_chunks
from repro.workloads.base import LINE, AddressSpace, Category, WorkloadSpec, register

#: 27-point stencil cost per line of 8 doubles.
STENCIL_INSTR_PER_LINE = 260
_SWEEP_BARRIER = 0


@dataclass(frozen=True, slots=True)
class MgParams:
    """Input set for MG."""

    fine_grid: int = 32
    levels: int = 4
    v_cycles: int = 6
    seed: int = 31

    def __post_init__(self) -> None:
        if self.fine_grid >> (self.levels - 1) < 4:
            raise WorkloadError("coarsest MG grid would be below 4^3")
        if self.v_cycles < 1:
            raise WorkloadError("MG needs at least one V-cycle")


def _v_cycle_levels(levels: int) -> list[int]:
    """Level sequence of one V-cycle: fine -> coarse -> fine."""
    down = list(range(levels))
    up = list(range(levels - 2, -1, -1))
    return down + up


class MgKernel(TeamParallelKernel):
    """One iteration = one plane-slab of one level sweep."""

    name = "mg"

    def __init__(self, params: MgParams,
                 space: AddressSpace | None = None) -> None:
        self.params = params
        space = space or AddressSpace()
        self.grids = []
        self._bases = []
        rng = np.random.default_rng(params.seed)
        for lvl in range(params.levels):
            n = params.fine_grid >> lvl
            self.grids.append(rng.standard_normal((n, n, n)))
            self._bases.append(space.alloc(n * n * n * 8))
        # Flatten every V-cycle into (level, plane, slab) iterations —
        # each plane is swept as two half-plane slabs so the peeled
        # training loop is a tiny fraction of the run.
        self._schedule: list[tuple[int, int, int]] = []
        for _cycle in range(params.v_cycles):
            for lvl in _v_cycle_levels(params.levels):
                n = params.fine_grid >> lvl
                for plane in range(n):
                    for slab in (0, 1):
                        self._schedule.append((lvl, plane, slab))
        #: L1 norm of the fine grid after each full sweep (test oracle).
        self.norms: list[float] = []

    @property
    def total_iterations(self) -> int:
        return len(self._schedule)

    def team_iteration(self, iteration: int, thread_id: int,
                       num_threads: int) -> Iterator[Op]:
        lvl, plane, slab = self._schedule[iteration]
        grid = self.grids[lvl]
        n = grid.shape[0]
        if thread_id == 0 and slab == 0 and 0 < plane < n - 1:
            grid[plane] = (grid[plane - 1] + 2.0 * grid[plane]
                           + grid[plane + 1]) / 4.0
            if lvl == 0 and plane == n - 2:
                self.norms.append(float(np.abs(grid).sum()))

        plane_bytes = n * n * 8
        slab_lines = static_chunks(plane_bytes // LINE, 2)[slab]
        chunk = static_chunks(len(slab_lines), num_threads,
                              start=slab_lines.start)[thread_id]
        base = self._bases[lvl] + plane * plane_bytes
        for k in chunk:
            yield Load(base + k * LINE)
            yield Compute(STENCIL_INSTR_PER_LINE)
        if len(chunk):
            yield Store(base + chunk.start * LINE)
        yield BarrierWait(_SWEEP_BARRIER)


class MgInitKernel(TeamParallelKernel):
    """Grid initialization (NAS MG's ``zran3``/``zero3`` phase).

    Writes every level once; a separate kernel exactly as in the real
    benchmark, so the V-cycle kernel trains against warm caches.
    """

    name = "mg-init"

    def __init__(self, solver: MgKernel) -> None:
        self._solver = solver
        # One iteration per (level, plane, slab): fine-grained like the
        # solver, so FDT's peeled training is a tiny slice of the phase.
        self._schedule: list[tuple[int, int, int]] = []
        for lvl in range(solver.params.levels):
            n = solver.params.fine_grid >> lvl
            for plane in range(n):
                for slab in (0, 1):
                    self._schedule.append((lvl, plane, slab))

    @property
    def total_iterations(self) -> int:
        return len(self._schedule)

    def team_iteration(self, iteration: int, thread_id: int,
                       num_threads: int) -> Iterator[Op]:
        solver = self._solver
        lvl, plane, slab = self._schedule[iteration]
        n = solver.params.fine_grid >> lvl
        plane_bytes = n * n * 8
        slab_lines = static_chunks(plane_bytes // LINE, 2)[slab]
        chunk = static_chunks(len(slab_lines), num_threads,
                              start=slab_lines.start)[thread_id]
        base = solver._bases[lvl] + plane * plane_bytes
        for k in chunk:
            yield Compute(40)
            yield Store(base + k * LINE)
        yield BarrierWait(_SWEEP_BARRIER)


def build(scale: float = 1.0, seed: int = 31) -> Application:
    """MG application; ``scale`` shrinks the V-cycle count."""
    cycles = max(2, int(6 * scale))
    kernel = MgKernel(MgParams(v_cycles=cycles, seed=seed))
    return Application(name="MG",
                       kernels=(MgInitKernel(kernel), kernel))


register(WorkloadSpec(
    name="MG",
    category=Category.SCALABLE,
    description="Multigrid V-cycle solver (NAS MG)",
    paper_input="64x64x64",
    repro_input="32^3 fine grid, 4 levels, 6 V-cycles",
    build=build,
))
