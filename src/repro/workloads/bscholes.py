"""BScholes — Black-Scholes option pricing (CUDA SDK style), scalable.

Each option is priced independently with the closed-form Black-Scholes
formula — two cumulative-normal evaluations, exp/log/sqrt heavy — over
structure-of-arrays inputs.  Compute dominates the streaming reads, so
the kernel scales to all 32 cores; FDT must measure a low bus
utilization, take the cannot-saturate early-out, and choose 32 threads.

Paper input: the CUDA SDK configuration.  Repro input: 32K options in
blocks of 32 (1024 fine-grained iterations).  Prices are computed for
real (erf-based CND) and verified against put-call parity in tests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator

import numpy as np
from numpy.typing import NDArray

from repro.errors import WorkloadError
from repro.fdt.kernel import DataParallelKernel
from repro.fdt.runner import Application
from repro.isa.ops import Compute, Load, Op, Store
from repro.workloads.base import LINE, AddressSpace, Category, WorkloadSpec, register

#: Per-option cost of the closed-form evaluation (two CNDs, exp, log).
OPTION_INSTR = 1000
_BLOCK = 32  # options per FDT iteration
_F32_PER_LINE = LINE // 4


#: Element-wise stdlib error function; numpy has no erf of its own and
#: the closed-form CND needs nothing heavier than math.erf.
_ERF = np.vectorize(math.erf)


def _cnd(x: NDArray[np.float64]) -> NDArray[np.float64]:
    """Cumulative normal distribution via the stdlib error function."""
    return 0.5 * (1.0 + _ERF(x / math.sqrt(2.0)))


@dataclass(frozen=True, slots=True)
class BScholesParams:
    """Input set for BScholes."""

    num_options: int = 32_768
    riskfree: float = 0.02
    seed: int = 13

    def __post_init__(self) -> None:
        if self.num_options < _BLOCK:
            raise WorkloadError("BScholes needs at least one block of options")


class BScholesKernel(DataParallelKernel):
    """One iteration = one block of 32 options."""

    name = "bscholes"

    def __init__(self, params: BScholesParams,
                 space: AddressSpace | None = None) -> None:
        self.params = params
        space = space or AddressSpace()
        n = params.num_options
        rng = np.random.default_rng(params.seed)
        #: SoA inputs, as in the CUDA sample.
        self.spot = rng.uniform(5.0, 30.0, n)
        self.strike = rng.uniform(1.0, 100.0, n)
        self.expiry = rng.uniform(0.25, 10.0, n)
        self.volatility = rng.uniform(0.05, 0.5, n)
        #: Outputs, filled in as iterations execute.
        self.call = np.zeros(n)
        self.put = np.zeros(n)
        # Five float32 input arrays plus two output arrays.
        self._in_bases = [space.alloc(n * 4) for _ in range(5)]
        self._out_bases = [space.alloc(n * 4) for _ in range(2)]

    @property
    def total_iterations(self) -> int:
        return self.params.num_options // _BLOCK

    def price_block(self, lo: int, hi: int) -> None:
        """The real closed-form pricing for options [lo, hi)."""
        s, k = self.spot[lo:hi], self.strike[lo:hi]
        t, v = self.expiry[lo:hi], self.volatility[lo:hi]
        r = self.params.riskfree
        sqrt_t = np.sqrt(t)
        d1 = (np.log(s / k) + (r + 0.5 * v * v) * t) / (v * sqrt_t)
        d2 = d1 - v * sqrt_t
        disc = np.exp(-r * t)
        self.call[lo:hi] = s * _cnd(d1) - k * disc * _cnd(d2)
        self.put[lo:hi] = k * disc * _cnd(-d2) - s * _cnd(-d1)

    def serial_iteration(self, block: int) -> Iterator[Op]:
        lo = block * _BLOCK
        hi = min(self.params.num_options, lo + _BLOCK)
        self.price_block(lo, hi)
        line_lo = lo * 4 // LINE * LINE
        line_hi = (hi - 1) * 4 // LINE * LINE
        for base in self._in_bases:
            for off in range(line_lo, line_hi + 1, LINE):
                yield Load(base + off)
        instr = (hi - lo) * OPTION_INSTR
        while instr > 0:
            yield Compute(min(instr, 4096))
            instr -= 4096
        for base in self._out_bases:
            for off in range(line_lo, line_hi + 1, LINE):
                yield Store(base + off)


def build(scale: float = 1.0, seed: int = 13) -> Application:
    """BScholes application; ``scale`` shrinks the option count."""
    n = max(_BLOCK * 16, (int(32_768 * scale) // _BLOCK) * _BLOCK)
    kernel = BScholesKernel(BScholesParams(num_options=n, seed=seed))
    return Application.single(kernel, name="BScholes")


register(WorkloadSpec(
    name="BScholes",
    category=Category.SCALABLE,
    description="Black-Scholes option pricing (CUDA SDK)",
    paper_input="CUDA SDK configuration",
    repro_input="32K options, SoA float32, blocks of 32",
    build=build,
))
