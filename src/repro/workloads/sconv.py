"""SConv — 2D separable convolution (CUDA SDK style), scalable.

A large-radius Gaussian blur factored into a row pass and a column pass
(two kernels, like the CUDA ``convolutionSeparable`` sample).  With a
64-tap filter the arithmetic per pixel dwarfs the streaming traffic, so
both passes scale to 32 threads and FDT's BAT early-out must fire.

Paper input: 512x512.  Repro input: 512x512 float32, radius 64.  The
convolution really runs (numpy correlate per row/column slab) and tests
verify the two-pass result against a direct separable evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.errors import WorkloadError
from repro.fdt.kernel import DataParallelKernel
from repro.fdt.runner import Application
from repro.isa.ops import Compute, Load, Op, Store
from repro.workloads.base import LINE, AddressSpace, Category, WorkloadSpec, register

#: Per-line (16 pixels) cost of a 129-tap dot product per pixel.
CONV_INSTR_PER_LINE = 4500


@dataclass(frozen=True, slots=True)
class SConvParams:
    """Input set for SConv."""

    size: int = 512
    radius: int = 64
    seed: int = 37

    def __post_init__(self) -> None:
        if self.size * 4 < LINE:
            raise WorkloadError("image rows must span at least one line")
        if self.radius < 1:
            raise WorkloadError("kernel radius must be positive")


class _State:
    """Shared image buffers for the two passes."""

    def __init__(self, params: SConvParams) -> None:
        self.params = params
        space = AddressSpace()
        nbytes = params.size * params.size * 4
        self.in_base = space.alloc(nbytes)
        self.tmp_base = space.alloc(nbytes)
        self.out_base = space.alloc(nbytes)
        rng = np.random.default_rng(params.seed)
        self.image = rng.standard_normal((params.size, params.size))
        x = np.arange(-params.radius, params.radius + 1)
        kern = np.exp(-0.5 * (x / (params.radius / 3.0)) ** 2)
        self.kernel = kern / kern.sum()
        self.temp = np.zeros_like(self.image)
        self.output = np.zeros_like(self.image)

    def expected(self) -> np.ndarray:
        """Direct two-pass separable convolution (test oracle)."""
        tmp = np.apply_along_axis(
            lambda r: np.convolve(r, self.kernel, mode="same"), 1, self.image)
        return np.apply_along_axis(
            lambda c: np.convolve(c, self.kernel, mode="same"), 0, tmp)


class _PassKernel(DataParallelKernel):
    """One iteration = one row (or column slab) of one pass."""

    def __init__(self, state: _State, axis: int) -> None:
        self.state = state
        self.axis = axis  # 0: row pass (in -> tmp); 1: column pass (tmp -> out)
        self.name = "sconv-rows" if axis == 0 else "sconv-cols"

    #: Loop granularity: each row/column is processed as two segments,
    #: keeping FDT's peeled training a tiny fraction of the pass.
    SEGMENTS = 2

    @property
    def total_iterations(self) -> int:
        return self.state.params.size * self.SEGMENTS

    def serial_iteration(self, iteration: int) -> Iterator[Op]:
        st = self.state
        size = st.params.size
        index, part = divmod(iteration, self.SEGMENTS)
        if part == 0:
            if self.axis == 0:
                st.temp[index] = np.convolve(st.image[index], st.kernel,
                                             mode="same")
            else:
                st.output[:, index] = np.convolve(st.temp[:, index], st.kernel,
                                                  mode="same")
        src, dst = ((st.in_base, st.tmp_base) if self.axis == 0
                    else (st.tmp_base, st.out_base))
        row_bytes = size * 4
        seg_bytes = row_bytes // self.SEGMENTS
        lo = part * seg_bytes
        hi = lo + seg_bytes if part < self.SEGMENTS - 1 else row_bytes
        for off in range(lo, hi, LINE):
            yield Load(src + index * row_bytes + off)
            yield Compute(CONV_INSTR_PER_LINE)
            yield Store(dst + index * row_bytes + off)


def build(scale: float = 1.0, seed: int = 37) -> Application:
    """SConv application; ``scale`` shrinks the image edge (the filter
    radius shrinks with it so the kernel always fits inside a row)."""
    size = max(128, (int(512 * scale) // 16) * 16)
    radius = min(64, size // 4)
    state = _State(SConvParams(size=size, radius=radius, seed=seed))
    return Application(name="SConv",
                       kernels=(_PassKernel(state, 0), _PassKernel(state, 1)))


register(WorkloadSpec(
    name="SConv",
    category=Category.SCALABLE,
    description="2D separable convolution, radius 64 (CUDA SDK)",
    paper_input="512x512",
    repro_input="512x512 float32, 129-tap separable Gaussian",
    build=build,
))
