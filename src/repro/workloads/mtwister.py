"""MTwister — Mersenne-Twister generation + Box-Muller transform.

Two data-parallel kernels, as in the CUDA SDK sample the paper uses
(Section 5.3):

* **Kernel 1** generates uniform random numbers with the Mersenne
  Twister and writes them to a large array.  Generation is compute-heavy
  (state updates, tempering, float conversion), so despite the streaming
  writes its bandwidth demand stays below saturation at 32 threads — the
  kernel scales all the way.
* **Kernel 2** applies the Box-Muller transformation, reading the
  uniforms back (they no longer fit in the L3: the data set exceeds it)
  and writing Gaussians.  Its read+write traffic saturates the bus at
  ~12 threads.

The two kernels want *different* thread counts (32 and 12), which is the
paper's killer case against any static policy: the oracle must pick one
number for the whole program, while FDT retrains per kernel and averages
~21 threads — 31 % less power at the same execution time (Figure 15).

Paper input: the CUDA SDK configuration.  Repro input: 1.25M doubles
(10 MB, exceeds the 8 MB L3).  Both kernels compute real values with
numpy's MT19937 and a real Box-Muller, verified by tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.errors import WorkloadError
from repro.fdt.kernel import DataParallelKernel
from repro.fdt.runner import Application
from repro.isa.ops import Compute, Load, Op, Store
from repro.workloads.base import LINE, AddressSpace, Category, WorkloadSpec, register

#: MT generation cost per line of 8 doubles (state update, tempering,
#: integer-to-double conversion; amortized state-twist included).
GEN_INSTR_PER_LINE = 3700
#: Box-Muller cost per line (log/sqrt/sin/cos per pair).
BOXMULLER_INSTR_PER_LINE = 2060
_LINES_PER_BLOCK = 64
_DOUBLES_PER_LINE = LINE // 8


@dataclass(frozen=True, slots=True)
class MTwisterParams:
    """Input set for MTwister."""

    n_numbers: int = 1_310_720  # 10 MB of doubles; exceeds the 8 MB L3
    seed: int = 4357

    def __post_init__(self) -> None:
        if self.n_numbers < _LINES_PER_BLOCK * _DOUBLES_PER_LINE:
            raise WorkloadError("MTwister input must cover a block")


class _State:
    """Data shared by the two kernels (the uniforms array)."""

    def __init__(self, params: MTwisterParams) -> None:
        self.params = params
        space = AddressSpace()
        self.n_lines = (params.n_numbers * 8 + LINE - 1) // LINE
        self.uniforms_base = space.alloc(self.n_lines * LINE)
        self.gauss_base = space.alloc(self.n_lines * LINE)
        rng = np.random.Generator(np.random.MT19937(params.seed))
        #: The real Mersenne-Twister stream.
        self.uniforms = rng.random(params.n_numbers)
        #: Box-Muller outputs, filled in by kernel 2.
        self.gaussians = np.zeros(params.n_numbers)


class MTGenKernel(DataParallelKernel):
    """Kernel 1: generate uniforms and stream them out."""

    name = "mtwister-gen"

    def __init__(self, state: _State) -> None:
        self.state = state

    @property
    def total_iterations(self) -> int:
        return self.state.n_lines // _LINES_PER_BLOCK

    def serial_iteration(self, block: int) -> Iterator[Op]:
        first = block * _LINES_PER_BLOCK
        for line in range(first, first + _LINES_PER_BLOCK):
            yield Compute(GEN_INSTR_PER_LINE)
            yield Store(self.state.uniforms_base + line * LINE)


class BoxMullerKernel(DataParallelKernel):
    """Kernel 2: read uniforms back, write Gaussians."""

    name = "mtwister-boxmuller"

    def __init__(self, state: _State) -> None:
        self.state = state

    @property
    def total_iterations(self) -> int:
        return self.state.n_lines // _LINES_PER_BLOCK

    def serial_iteration(self, block: int) -> Iterator[Op]:
        st = self.state
        first = block * _LINES_PER_BLOCK
        lo = first * _DOUBLES_PER_LINE
        hi = min(st.params.n_numbers,
                 (first + _LINES_PER_BLOCK) * _DOUBLES_PER_LINE)
        u = st.uniforms[lo:hi]
        # Real Box-Muller on consecutive pairs (u1, u2).
        u1 = np.clip(u[0::2], 1e-300, None)
        u2 = u[1::2]
        n = min(len(u1), len(u2))
        r = np.sqrt(-2.0 * np.log(u1[:n]))
        st.gaussians[lo:lo + n] = r * np.cos(2.0 * np.pi * u2[:n])
        st.gaussians[lo + n:lo + 2 * n:1] = 0.0  # second halves unused
        for line in range(first, first + _LINES_PER_BLOCK):
            yield Load(st.uniforms_base + line * LINE)
            yield Compute(BOXMULLER_INSTR_PER_LINE)
            yield Store(st.gauss_base + line * LINE)


def build(scale: float = 1.0, seed: int = 4357) -> Application:
    """MTwister application: generation kernel then Box-Muller kernel.

    ``scale`` shrinks the array; note that below ~0.8 the data set fits
    in the baseline L3 and kernel 2 stops being bandwidth-limited, so
    figure-level runs should stay at scale >= 0.8 (tests that only need
    the two-kernel structure can go smaller).
    """
    n = max(_LINES_PER_BLOCK * _DOUBLES_PER_LINE * 4, int(1_310_720 * scale))
    state = _State(MTwisterParams(n_numbers=n, seed=seed))
    return Application(name="MTwister",
                       kernels=(MTGenKernel(state), BoxMullerKernel(state)))


register(WorkloadSpec(
    name="MTwister",
    category=Category.BW_LIMITED,
    description="Mersenne-Twister PRNG + Box-Muller (two kernels)",
    paper_input="CUDA SDK configuration",
    repro_input="1.31M doubles (10 MB, exceeds L3)",
    build=build,
))
