"""Synthetic kernels with dial-a-limiter knobs.

The twelve Table 2 workloads are fixed points; these kernels let tests,
ablations, and users place a kernel *anywhere* in the (critical-section,
bandwidth) plane:

* ``cs_instr`` — instructions inside a per-iteration critical section
  (drives Eq. 1's ``T_CS``);
* ``lines_per_iteration`` + ``reuse`` — streaming loads (cold misses
  when ``reuse=False``) driving bus demand (Eq. 4's ``BU_1``);
* ``compute_instr`` — the perfectly parallel part (``T_NoCS``).

``SyntheticKernel`` follows the Figure-1 team pattern (slice, critical
section, barrier), so every analytical quantity in the paper maps to a
constructor argument.  The crossover experiment
(:mod:`repro.experiments.crossover`) sweeps these knobs to verify Eq. 7
inside the simulator rather than just inside the model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator

from repro.errors import WorkloadError
from repro.fdt.kernel import TeamParallelKernel
from repro.fdt.runner import Application
from repro.isa.ops import (
    BarrierWait,
    Compute,
    CounterKind,
    Load,
    Lock,
    Op,
    ReadCounter,
    Store,
    Unlock,
)
from repro.runtime.parallel import static_chunks
from repro.workloads.base import LINE, AddressSpace

_CS_LOCK = 0
_BARRIER = 0


@dataclass(frozen=True, slots=True)
class SyntheticParams:
    """Knobs of the synthetic kernel."""

    iterations: int = 128
    #: Perfectly parallel instructions per iteration (split by the team).
    compute_instr: int = 20_000
    #: Cache lines streamed per iteration (split by the team).
    lines_per_iteration: int = 0
    #: Re-read the same lines every iteration (True: warm after the
    #: first pass) or stream fresh lines (False: every load misses).
    reuse: bool = False
    #: Instructions inside the per-thread critical section.
    cs_instr: int = 0
    #: Shared lines written inside the critical section (ping-pong).
    cs_lines: int = 1

    def __post_init__(self) -> None:
        if self.iterations < 1:
            raise WorkloadError("need at least one iteration")
        if min(self.compute_instr, self.lines_per_iteration,
               self.cs_instr, self.cs_lines) < 0:
            raise WorkloadError("knobs must be non-negative")


class SyntheticKernel(TeamParallelKernel):
    """A Figure-1-shaped kernel with fully parameterized costs."""

    def __init__(self, params: SyntheticParams,
                 name: str = "synthetic") -> None:
        self.params = params
        self.name = name
        space = AddressSpace()
        stream_bytes = max(LINE, params.lines_per_iteration * LINE)
        if not params.reuse:
            stream_bytes *= params.iterations
        self._stream_base = space.alloc(stream_bytes)
        self._shared_base = space.alloc(max(1, params.cs_lines) * LINE)

    @property
    def total_iterations(self) -> int:
        return self.params.iterations

    def team_iteration(self, iteration: int, thread_id: int,
                       num_threads: int) -> Iterator[Op]:
        p = self.params

        # Parallel part: streaming loads plus compute, split by the team.
        lines = static_chunks(p.lines_per_iteration, num_threads)[thread_id]
        offset = 0 if p.reuse else iteration * p.lines_per_iteration
        for k in lines:
            yield Load(self._stream_base + (offset + k) * LINE)
        instr = static_chunks(p.compute_instr, num_threads)[thread_id]
        remaining = len(instr)
        while remaining > 0:
            yield Compute(min(remaining, 4096))
            remaining -= 4096

        # Critical section: constant per-thread work on shared lines.
        if p.cs_instr:
            yield Lock(_CS_LOCK)
            per_line = max(1, p.cs_instr // max(1, p.cs_lines))
            for k in range(p.cs_lines):
                yield Compute(per_line)
                yield Store(self._shared_base + k * LINE)
            yield Unlock(_CS_LOCK)

        yield BarrierWait(_BARRIER)


# -- sanitizer positive controls ------------------------------------------
#
# Deliberately broken kernels used as the thread sanitizer's fixtures
# (repro.check): each one must trip exactly the analysis it is named
# for.  They are *not* registered in the Table 2 roster; ``repro check``
# resolves them by fixture name.

class RacyKernel(TeamParallelKernel):
    """Unprotected read-modify-write of one shared line (a data race).

    Every thread loads and stores the same shared address each iteration
    with no lock held, so the lockset detector must report an
    empty-lockset write-write race on ``shared_addr``.
    """

    name = "synthetic-racy"

    def __init__(self, iterations: int = 4) -> None:
        self._iterations = iterations
        space = AddressSpace()
        #: The contended address, exposed so tests can assert the
        #: finding names it.
        self.shared_addr = space.alloc(LINE)

    @property
    def total_iterations(self) -> int:
        return self._iterations

    def team_iteration(self, iteration: int, thread_id: int,
                       num_threads: int) -> Iterator[Op]:
        # Skew the threads a little so accesses interleave rather than
        # proceeding in lockstep (the race is there either way).
        yield Compute(40 + 14 * thread_id)
        yield Load(self.shared_addr)
        yield Compute(20)
        yield Store(self.shared_addr)  # no lock: the seeded race
        yield BarrierWait(_BARRIER)


class LockInversionKernel(TeamParallelKernel):
    """Opposite lock-acquisition orders on two locks (potential deadlock).

    Even threads take lock 0 then lock 1; odd threads take lock 1 then
    lock 0.  The odd threads are staggered far enough behind that the
    FIFO grant order dodges the deadlock *this run* — exactly the latent
    bug the lock-order analysis exists to catch (edges 0->1 and 1->0
    form a cycle).  The shared store is protected by both locks, so no
    race is reported.
    """

    name = "synthetic-lock-inversion"

    _LOCK_A = 0
    _LOCK_B = 1
    #: Instructions of head start the even threads get; at 2-wide issue
    #: this dwarfs the whole critical region, so the opposite-order
    #: acquires never actually overlap.
    _STAGGER_INSTR = 40_000

    def __init__(self, iterations: int = 2) -> None:
        self._iterations = iterations
        space = AddressSpace()
        self.shared_addr = space.alloc(LINE)

    @property
    def total_iterations(self) -> int:
        return self._iterations

    def team_iteration(self, iteration: int, thread_id: int,
                       num_threads: int) -> Iterator[Op]:
        if thread_id % 2 == 0:
            first, second = self._LOCK_A, self._LOCK_B
        else:
            first, second = self._LOCK_B, self._LOCK_A
            yield Compute(self._STAGGER_INSTR)
        yield Lock(first)
        yield Compute(10)
        yield Lock(second)
        yield Store(self.shared_addr)
        yield Unlock(second)
        yield Unlock(first)
        yield BarrierWait(_BARRIER)


class UnheldUnlockKernel(TeamParallelKernel):
    """Releases a lock it never acquired (a discipline violation).

    The lock manager aborts the run when the Unlock is serviced; the
    sanitizer's discipline lint records the ``unlock-of-unheld`` finding
    just before that happens.
    """

    name = "synthetic-unheld-unlock"

    def __init__(self, iterations: int = 1) -> None:
        self._iterations = iterations

    @property
    def total_iterations(self) -> int:
        return self._iterations

    def team_iteration(self, iteration: int, thread_id: int,
                       num_threads: int) -> Iterator[Op]:
        yield Compute(50)
        yield Unlock(_CS_LOCK)  # never acquired
        yield BarrierWait(_BARRIER)


def build_racy(scale: float = 1.0) -> Application:
    """The race positive control (``scale`` accepted for CLI symmetry)."""
    kernel = RacyKernel()
    return Application.single(kernel)


def build_lock_inversion(scale: float = 1.0) -> Application:
    """The lock-order-inversion positive control."""
    kernel = LockInversionKernel()
    return Application.single(kernel)


def build_unheld_unlock(scale: float = 1.0) -> Application:
    """The unlock-without-hold positive control."""
    kernel = UnheldUnlockKernel()
    return Application.single(kernel)


def sanitizer_fixtures() -> dict[str, Callable[[float], Application]]:
    """Fixture name -> builder, for ``repro check`` name resolution."""
    return {
        "synthetic-racy": build_racy,
        "synthetic-lock-inversion": build_lock_inversion,
        "synthetic-unheld-unlock": build_unheld_unlock,
    }


# -- static-analyzer positive controls ------------------------------------
#
# Seeded defects the *static* analyzer (repro.check.static) must prove
# from the op streams alone.  Each is arranged so a dynamic run dodges
# or survives the defect — the point is that ahead-of-run analysis
# catches what one interleaving may not.

class StaticDeadlockKernel(TeamParallelKernel):
    """Three locks acquired in a rotating order (a 3-cycle).

    Thread ``t`` takes lock ``t % 3`` then lock ``(t + 1) % 3``, so the
    team's acquires-while-holding edges form the cycle 0->1->2->0.  The
    threads are staggered so far apart that no two critical regions ever
    overlap in a real run — the deadlock is latent, provable only from
    the streams (finding ``static-lock-order-cycle``).
    """

    name = "static-deadlock"

    _STAGGER_INSTR = 40_000

    def __init__(self, iterations: int = 2) -> None:
        self._iterations = iterations
        space = AddressSpace()
        self.shared_addr = space.alloc(LINE)

    @property
    def total_iterations(self) -> int:
        return self._iterations

    def team_iteration(self, iteration: int, thread_id: int,
                       num_threads: int) -> Iterator[Op]:
        first = thread_id % 3
        second = (thread_id + 1) % 3
        yield Compute(self._STAGGER_INSTR * thread_id + 10)
        yield Lock(first)
        yield Compute(10)
        yield Lock(second)
        yield Store(self.shared_addr)
        yield Unlock(second)
        yield Unlock(first)
        yield BarrierWait(_BARRIER)


class BarrierMismatchKernel(TeamParallelKernel):
    """Thread 0 arrives at one more barrier than the rest of the team.

    With two or more threads the team can never complete barrier 1 —
    a guaranteed hang the static barrier pass proves as
    ``static-barrier-count-mismatch`` before any cycle simulates.
    """

    name = "static-barrier-mismatch"

    def __init__(self, iterations: int = 2) -> None:
        self._iterations = iterations

    @property
    def total_iterations(self) -> int:
        return self._iterations

    def team_iteration(self, iteration: int, thread_id: int,
                       num_threads: int) -> Iterator[Op]:
        yield Compute(100)
        yield BarrierWait(_BARRIER)
        if thread_id == 0:
            yield BarrierWait(_BARRIER + 1)  # nobody else ever arrives


class CounterInCsKernel(TeamParallelKernel):
    """Reads the cycle counter while holding the critical-section lock.

    Runs fine — but the measurement folds instrumentation overhead into
    T_CS itself (Section 4.2.1 brackets critical sections from the
    outside), so the static lint flags it as ``static-counter-in-cs``.
    """

    name = "static-counter-in-cs"

    def __init__(self, iterations: int = 2) -> None:
        self._iterations = iterations
        space = AddressSpace()
        self.shared_addr = space.alloc(LINE)

    @property
    def total_iterations(self) -> int:
        return self._iterations

    def team_iteration(self, iteration: int, thread_id: int,
                       num_threads: int) -> Iterator[Op]:
        yield Compute(200)
        yield Lock(_CS_LOCK)
        _ = yield ReadCounter(CounterKind.CYCLES)  # the seeded defect
        yield Compute(50)
        yield Store(self.shared_addr)
        yield Unlock(_CS_LOCK)
        yield BarrierWait(_BARRIER)


def build_static_deadlock(scale: float = 1.0) -> Application:
    """The latent-lock-cycle positive control."""
    return Application.single(StaticDeadlockKernel())


def build_barrier_mismatch(scale: float = 1.0) -> Application:
    """The barrier-count-mismatch positive control."""
    return Application.single(BarrierMismatchKernel())


def build_counter_in_cs(scale: float = 1.0) -> Application:
    """The counter-read-in-critical-section positive control."""
    return Application.single(CounterInCsKernel())


def static_fixtures() -> dict[str, Callable[[float], Application]]:
    """Fixture name -> builder, for static-analyzer name resolution."""
    return {
        "static-deadlock": build_static_deadlock,
        "static-barrier-mismatch": build_barrier_mismatch,
        "static-counter-in-cs": build_counter_in_cs,
    }


def build_synthetic(cs_fraction: float = 0.0, bus_lines: int = 0,
                    iterations: int = 128,
                    compute_instr: int = 20_000,
                    name: str = "synthetic") -> Application:
    """Build an application with a target critical-section fraction.

    ``cs_fraction`` is the single-threaded T_CS share (Eq. 3's input):
    the CS instruction count is derived from ``compute_instr``.
    ``bus_lines`` adds cold streaming loads per iteration.
    """
    if not 0.0 <= cs_fraction < 1.0:
        raise WorkloadError("cs_fraction must be in [0, 1)")
    cs_instr = int(compute_instr * cs_fraction / max(1e-9, 1.0 - cs_fraction))
    kernel = SyntheticKernel(SyntheticParams(
        iterations=iterations,
        compute_instr=compute_instr,
        lines_per_iteration=bus_lines,
        cs_instr=cs_instr,
    ), name=name)
    return Application.single(kernel, name=name)
