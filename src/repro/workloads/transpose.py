"""Transpose — 2D matrix transpose (CUDA SDK style), BW-limited.

Each thread transposes tiles of the matrix: a 16x16-element tile reads
16 source lines (one per matrix row touched) and writes 16 destination
lines.  Both matrices stream from/to memory exactly once with no reuse,
so the kernel's only scaling limit is the off-chip bus.  The paper
reports BU_1 ~ 12.2 % with BAT predicting 8 threads — the number where
the measured bus utilization first reaches 100 %.

Paper input: 512x8192 matrix.  Repro input: 256x2048 float32 (2 MB) in
16x16 tiles, per-tile copy cost calibrated for BU_1 ~ 12.5 %.  The
transposed matrix is computed for real and verified by tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.errors import WorkloadError
from repro.fdt.kernel import DataParallelKernel
from repro.fdt.runner import Application
from repro.isa.ops import Compute, Load, Op, Store
from repro.workloads.base import AddressSpace, Category, WorkloadSpec, register

#: Per-line copy cost: 16 floats with index arithmetic each way.
COPY_INSTR_PER_LINE = 64
_TILE = 16  # elements per tile edge; 16 floats = one cache line


@dataclass(frozen=True, slots=True)
class TransposeParams:
    """Input set for Transpose."""

    rows: int = 256
    cols: int = 2048
    seed: int = 17

    def __post_init__(self) -> None:
        if self.rows % _TILE or self.cols % _TILE:
            raise WorkloadError(f"matrix dimensions must be multiples of {_TILE}")


class TransposeKernel(DataParallelKernel):
    """One iteration = one 16x16 tile (16 line reads + 16 line writes)."""

    name = "transpose"

    def __init__(self, params: TransposeParams,
                 space: AddressSpace | None = None) -> None:
        self.params = params
        space = space or AddressSpace()
        nbytes = params.rows * params.cols * 4
        self._in_base = space.alloc(nbytes)
        self._out_base = space.alloc(nbytes)
        rng = np.random.default_rng(params.seed)
        #: The source matrix (real data).
        self.matrix = rng.standard_normal((params.rows, params.cols)).astype(np.float32)
        #: The destination, filled tile by tile as iterations execute.
        self.result = np.zeros((params.cols, params.rows), dtype=np.float32)
        self._tiles_across = params.cols // _TILE

    @property
    def total_iterations(self) -> int:
        return (self.params.rows // _TILE) * self._tiles_across

    def serial_iteration(self, tile: int) -> Iterator[Op]:
        tr, tc = divmod(tile, self._tiles_across)
        r0, c0 = tr * _TILE, tc * _TILE
        self.result[c0:c0 + _TILE, r0:r0 + _TILE] = (
            self.matrix[r0:r0 + _TILE, c0:c0 + _TILE].T)
        in_row_bytes = self.params.cols * 4
        out_row_bytes = self.params.rows * 4
        # Read one line from each of the tile's 16 source rows...
        for r in range(r0, r0 + _TILE):
            yield Load(self._in_base + r * in_row_bytes + c0 * 4)
            yield Compute(COPY_INSTR_PER_LINE)
        # ...and write one line into each of the 16 destination rows.
        for c in range(c0, c0 + _TILE):
            yield Compute(COPY_INSTR_PER_LINE)
            yield Store(self._out_base + c * out_row_bytes + r0 * 4)

    def expected_result(self) -> np.ndarray:
        """Ground truth (test oracle)."""
        return self.matrix.T


def build(scale: float = 1.0, seed: int = 17) -> Application:
    """Transpose application; ``scale`` shrinks the column count."""
    cols = max(_TILE * 8, (int(2048 * scale) // _TILE) * _TILE)
    kernel = TransposeKernel(TransposeParams(cols=cols, seed=seed))
    return Application.single(kernel, name="Transpose")


register(WorkloadSpec(
    name="Transpose",
    category=Category.BW_LIMITED,
    description="2D matrix transpose in 16x16 tiles (CUDA SDK)",
    paper_input="512x8192",
    repro_input="256x2048 float32 (2 MB each way)",
    build=build,
))
