"""convert — row-streaming image processing (the unix utility), BW-limited.

The kernel computes one row of the output image at a time and writes it
to a buffer; both reading the input image and writing the output consume
off-chip bandwidth (paper Section 5.3).  Per-row work is independent —
no synchronization — so the kernel is a flat data-parallel loop whose
single scaling limit is the bus.

The paper reports a single-thread bus utilization of ~5.8 %, BAT
predicting 17 threads with the true minimum at 18, and uses convert for
the machine-adaptation experiment (Figure 13: with half the bus
bandwidth the curve saturates at 8 threads, with double it keeps scaling
to 32 — BAT tracks both).

Paper input: 320x240 pixels.  Repro input: 320x240 RGBA rows (1280 B =
20 lines per row); per-line filter cost calibrated for BU_1 ~ 5.9 %.
The pixel transform (gamma-style table map) is computed for real.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.errors import WorkloadError
from repro.fdt.kernel import DataParallelKernel
from repro.fdt.runner import Application
from repro.isa.ops import Compute, Load, Op, Store
from repro.workloads.base import LINE, AddressSpace, Category, WorkloadSpec, register

#: Filter cost per 64-byte pixel group (resample + clamp + pack),
#: calibrated so BU_1 lands near the paper's 5.8 %.
FILTER_INSTR_PER_LINE = 1320


@dataclass(frozen=True, slots=True)
class ConvertParams:
    """Input set for convert."""

    width: int = 320
    height: int = 240
    bytes_per_pixel: int = 4
    seed: int = 3

    def __post_init__(self) -> None:
        if self.width * self.bytes_per_pixel < LINE:
            raise WorkloadError("a row must span at least one cache line")
        if self.height < 1:
            raise WorkloadError("image must have at least one row")

    @property
    def row_bytes(self) -> int:
        return self.width * self.bytes_per_pixel


class ConvertKernel(DataParallelKernel):
    """One iteration = one output row (read input row, write output row)."""

    name = "convert"

    def __init__(self, params: ConvertParams,
                 space: AddressSpace | None = None) -> None:
        self.params = params
        space = space or AddressSpace()
        image_bytes = params.row_bytes * params.height
        self._in_base = space.alloc(image_bytes)
        self._out_base = space.alloc(image_bytes)
        rng = np.random.default_rng(params.seed)
        #: The input image as flat bytes (real pixel data).
        self.image = rng.integers(0, 256, size=image_bytes, dtype=np.uint8)
        #: The output image, filled in as iterations execute.
        self.output = np.zeros(image_bytes, dtype=np.uint8)
        # Gamma-style lookup table: the real per-pixel transform.
        self._table = np.clip(
            (np.linspace(0.0, 1.0, 256) ** 0.8 * 255.0), 0, 255
        ).astype(np.uint8)

    #: Loop granularity: each row is processed as two half-row segments,
    #: keeping FDT's peeled training a small fraction of the loop.
    SEGMENTS_PER_ROW = 2

    @property
    def total_iterations(self) -> int:
        return self.params.height * self.SEGMENTS_PER_ROW

    def serial_iteration(self, segment: int) -> Iterator[Op]:
        row_bytes = self.params.row_bytes
        seg_bytes = row_bytes // self.SEGMENTS_PER_ROW
        row, part = divmod(segment, self.SEGMENTS_PER_ROW)
        lo = row * row_bytes + part * seg_bytes
        hi = lo + seg_bytes if part < self.SEGMENTS_PER_ROW - 1 else (row + 1) * row_bytes
        self.output[lo:hi] = self._table[self.image[lo:hi]]
        for off in range(lo, hi, LINE):
            yield Load(self._in_base + off)
            yield Compute(FILTER_INSTR_PER_LINE)
            yield Store(self._out_base + off)

    def expected_output(self) -> np.ndarray:
        """Ground truth for the full image (test oracle)."""
        return self._table[self.image]


def build(scale: float = 1.0, seed: int = 3) -> Application:
    """convert application; ``scale`` shrinks the image height."""
    height = max(32, int(240 * scale))
    kernel = ConvertKernel(ConvertParams(height=height, seed=seed))
    return Application.single(kernel, name="convert")


register(WorkloadSpec(
    name="convert",
    category=Category.BW_LIMITED,
    description="Image processing one row at a time (unix convert)",
    paper_input="320x240 pixels",
    repro_input="320x240 RGBA, gamma table map",
    build=build,
))
