"""Shared infrastructure for the twelve paper workloads (Table 2).

Workloads are re-implementations of the paper's kernels as op-stream
generators: they perform the real algorithmic work (real histograms, real
sorting passes, real Mersenne-Twister state updates) at the Python level
while emitting the corresponding :mod:`repro.isa` ops — loads and stores
with the true address pattern, compute ops sized by an instructions-per-
element cost, and the kernel's actual locks and barriers.

Input sizes are scaled down from the paper's (documented per workload and
in DESIGN.md §2); the *ratios* that drive the paper's results — critical-
section fraction and single-thread bus utilization — are calibrated to the
values the paper reports.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Iterator

from repro.errors import WorkloadError
from repro.fdt.runner import Application
from repro.isa.ops import Compute, Load, Op, Store


class Category(enum.Enum):
    """The paper's three workload classes (Table 2)."""

    CS_LIMITED = "synchronization-limited"
    BW_LIMITED = "bandwidth-limited"
    SCALABLE = "scalable"


LINE = 64  # cache-line bytes; all workloads assume the Table 1 line size.


class AddressSpace:
    """Bump allocator handing out disjoint, line-aligned regions.

    Every workload instance owns one, so two kernels of the same
    application never alias and two applications never share addresses.
    """

    def __init__(self, base: int = 1 << 22) -> None:
        self._next = base

    def alloc(self, nbytes: int, align: int = LINE) -> int:
        """Reserve ``nbytes`` and return the region's base address."""
        if nbytes <= 0:
            raise WorkloadError("allocation must be positive")
        mask = align - 1
        self._next = (self._next + mask) & ~mask
        base = self._next
        self._next += nbytes
        return base


# -- op-stream helpers --------------------------------------------------------

def scan_block(base: int, nbytes: int, instr_per_line: int) -> Iterator[Op]:
    """Stream over ``nbytes`` at ``base``: one load plus compute per line.

    The canonical read-and-process loop: the load fetches the line, the
    compute op stands for the per-element work on the line's contents.
    """
    for off in range(0, nbytes, LINE):
        yield Load(base + off)
        if instr_per_line:
            yield Compute(instr_per_line)


def write_block(base: int, nbytes: int, instr_per_line: int) -> Iterator[Op]:
    """Stream of stores over ``nbytes`` with per-line compute."""
    for off in range(0, nbytes, LINE):
        if instr_per_line:
            yield Compute(instr_per_line)
        yield Store(base + off)


def update_block(base: int, nbytes: int, instr_per_line: int) -> Iterator[Op]:
    """Read-modify-write over ``nbytes`` (load + compute + store per line)."""
    for off in range(0, nbytes, LINE):
        yield Load(base + off)
        if instr_per_line:
            yield Compute(instr_per_line)
        yield Store(base + off)


# -- registry -------------------------------------------------------------------

#: Builder signature: ``scale`` shrinks the input set for fast runs while
#: preserving the calibrated ratios; 1.0 is the repo's reference input.
AppBuilder = Callable[[float], Application]


@dataclass(frozen=True, slots=True)
class WorkloadSpec:
    """Table 2 row: a workload's identity plus its builder."""

    name: str
    category: Category
    description: str
    paper_input: str
    repro_input: str
    build: AppBuilder


_REGISTRY: dict[str, WorkloadSpec] = {}


def register(spec: WorkloadSpec) -> WorkloadSpec:
    """Add a workload to the global registry (module import time)."""
    if spec.name in _REGISTRY:
        raise WorkloadError(f"workload {spec.name!r} already registered")
    _REGISTRY[spec.name] = spec
    return spec


def get(name: str) -> WorkloadSpec:
    """Look up a workload by its Table 2 name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise WorkloadError(f"unknown workload {name!r}; known: {known}") from None


def all_specs() -> list[WorkloadSpec]:
    """All registered workloads in Table 2 order (registration order)."""
    return list(_REGISTRY.values())


def by_category(category: Category) -> list[WorkloadSpec]:
    """Registered workloads of one class, in registration order."""
    return [s for s in _REGISTRY.values() if s.category is category]
