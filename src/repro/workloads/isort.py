"""ISort — NAS-style integer (counting/bucket) sort, CS-limited.

Each ranking pass scans the key array building per-thread bucket counts
and folds them into the shared global bucket array inside a critical
section, with a barrier keeping the team in step — the classic NAS IS
structure.  The pass is *tiled*: one FDT iteration covers one tile of
the key array (scan + merge + barrier), giving the fine-grained loop
FDT's peeled training needs.  The merge is constant work per thread per
tile, so total critical-section time grows linearly with the team and
Eq. 1 applies; the paper finds the execution-time minimum at 7 threads,
which SAT predicts exactly.

Paper input: n = 64K keys.  Repro input: the same 64K keys, 128 buckets,
16 ranking passes of 10 tiles each; merge cost calibrated so
T_CS/T_NoCS ~ 2 % (P_CS ~ 7).  The bucket counts are computed for real
and the sorted order is verified by tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.errors import WorkloadError
from repro.fdt.kernel import TeamParallelKernel
from repro.fdt.runner import Application
from repro.isa.ops import BarrierWait, Compute, Load, Lock, Op, Store, Unlock
from repro.runtime.parallel import static_chunks
from repro.workloads.base import LINE, AddressSpace, Category, WorkloadSpec, register

#: ~16 keys per line, ~12 instructions per key (key extraction, shift,
#: bounds check, histogram increment).
SCAN_INSTR_PER_LINE = 196
#: ~16 buckets per line, ~21 instructions per bucket in the merge
#: (load local, add into global, partial rank prefix bookkeeping).
MERGE_INSTR_PER_LINE = 335

_MERGE_LOCK = 0
_TILE_BARRIER = 0
_BUCKETS = 128
_BUCKET_BYTES = _BUCKETS * 4  # 512 B = 8 lines


@dataclass(frozen=True, slots=True)
class ISortParams:
    """Input set for ISort."""

    num_keys: int = 65_536
    num_passes: int = 16
    tiles_per_pass: int = 10
    seed: int = 11

    def __post_init__(self) -> None:
        if self.num_keys < self.tiles_per_pass * 16:
            raise WorkloadError("ISort tiles must cover at least one line")
        if self.num_passes < 1 or self.tiles_per_pass < 1:
            raise WorkloadError("ISort needs at least one pass and tile")


class ISortKernel(TeamParallelKernel):
    """One iteration = one tile of one ranking pass."""

    name = "isort"

    def __init__(self, params: ISortParams,
                 space: AddressSpace | None = None) -> None:
        self.params = params
        space = space or AddressSpace()
        self._keys_base = space.alloc(params.num_keys * 4)
        self._locals_base = space.alloc(64 * _BUCKET_BYTES)
        self._global_base = space.alloc(_BUCKET_BYTES)
        rng = np.random.default_rng(params.seed)
        #: The keys being ranked (uniform in [0, buckets), NAS-IS style).
        self.keys = rng.integers(0, _BUCKETS, size=params.num_keys,
                                 dtype=np.int32)
        #: Global bucket counts accumulated by the first ranking pass.
        self.global_buckets = np.zeros(_BUCKETS, dtype=np.int64)

    @property
    def total_iterations(self) -> int:
        return self.params.num_passes * self.params.tiles_per_pass

    def _tile_keys(self, iteration: int) -> range:
        tile = iteration % self.params.tiles_per_pass
        return static_chunks(self.params.num_keys,
                             self.params.tiles_per_pass)[tile]

    def team_iteration(self, iteration: int, thread_id: int,
                       num_threads: int) -> Iterator[Op]:
        tile_keys = self._tile_keys(iteration)
        chunk = static_chunks(len(tile_keys), num_threads,
                              start=tile_keys.start)[thread_id]

        # Parallel part: count this thread's slice of the tile.
        local = np.bincount(self.keys[chunk.start:chunk.stop],
                            minlength=_BUCKETS).astype(np.int64)
        if len(chunk):
            lo_line = (self._keys_base + chunk.start * 4) // LINE * LINE
            hi_line = self._keys_base + (chunk.stop - 1) * 4
            for addr in range(lo_line, hi_line + 1, LINE):
                yield Load(addr)
                yield Compute(SCAN_INSTR_PER_LINE)

        # Serial part: fold local buckets into the global array.  Only
        # the first pass mutates the real counts (later passes re-rank
        # identically, as NAS IS does for timing repeatability).
        local_base = self._locals_base + thread_id * _BUCKET_BYTES
        yield Lock(_MERGE_LOCK)
        if iteration < self.params.tiles_per_pass:
            self.global_buckets += local
        for off in range(0, _BUCKET_BYTES, LINE):
            yield Load(local_base + off)
            yield Compute(MERGE_INSTR_PER_LINE)
            # Read-modify-write via the store's read-for-ownership.
            yield Store(self._global_base + off)
        yield Unlock(_MERGE_LOCK)

        yield BarrierWait(_TILE_BARRIER)

    def ranked_keys(self) -> np.ndarray:
        """The keys in sorted order per the merged bucket counts."""
        return np.repeat(np.arange(_BUCKETS), self.global_buckets)

    def expected_sorted(self) -> np.ndarray:
        """Ground truth (test oracle)."""
        return np.sort(self.keys).astype(np.int64)


def build(scale: float = 1.0, seed: int = 11) -> Application:
    """ISort application; ``scale`` shrinks the pass count."""
    passes = max(4, int(16 * scale))
    kernel = ISortKernel(ISortParams(num_passes=passes, seed=seed))
    return Application.single(kernel, name="ISort")


register(WorkloadSpec(
    name="ISort",
    category=Category.CS_LIMITED,
    description="Integer bucket sort (NAS IS tiled ranking passes)",
    paper_input="n = 64K",
    repro_input="n = 64K keys, 128 buckets, 16 passes x 10 tiles",
    build=build,
))
