"""EP — embarrassingly-parallel pseudo-random number generation (NAS EP).

A linear-congruential generator produces blocks of pseudo-random numbers
and tallies per-block statistics (the NAS EP Gaussian-pair counts) into
a small shared table inside a critical section, with a barrier per
block.  The generation itself is pure compute — no memory traffic to
speak of — so the *only* scaling limiter is the critical section, and
it is small: the paper reports the execution-time minimum at 4 threads
with SAT predicting 5, the closest call in the evaluation.

Paper input: 262K numbers.  Repro input: the same 262 144 numbers in
128 blocks of 2048; tally cost calibrated so T_CS/T_NoCS ~ 4 %
(P_CS ~ 5).  The LCG stream and the bucket tallies are computed for real
and verified against a direct evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.errors import WorkloadError
from repro.fdt.kernel import TeamParallelKernel
from repro.fdt.runner import Application
from repro.isa.ops import BarrierWait, Compute, Lock, Op, Store, Unlock
from repro.runtime.parallel import static_chunks
from repro.workloads.base import LINE, AddressSpace, Category, WorkloadSpec, register

#: LCG step + scaling + tally classification per number.
GEN_INSTR_PER_NUMBER = 12
#: Tally merge: update the 10-bin table plus running sums.
TALLY_INSTR = 950

_TALLY_LOCK = 0
_BLOCK_BARRIER = 0

_LCG_A = 6364136223846793005
_LCG_C = 1442695040888963407
_MASK = (1 << 64) - 1


@dataclass(frozen=True, slots=True)
class EpParams:
    """Input set for EP."""

    num_numbers: int = 262_144
    block_size: int = 2048
    seed: int = 271_828_183

    def __post_init__(self) -> None:
        if self.num_numbers < self.block_size:
            raise WorkloadError("EP needs at least one full block")
        if self.block_size < 1:
            raise WorkloadError("EP block size must be positive")


def _lcg_block(seed: int, start: int, count: int) -> np.ndarray:
    """Numbers ``start .. start+count`` of the LCG stream as [0,1) floats."""
    x = seed & _MASK
    # Jump ahead: x_{n} = A^n x_0 + C (A^n - 1)/(A - 1)  (mod 2^64).
    a_n, c_n = 1, 0
    a, c = _LCG_A, _LCG_C
    n = start
    while n:
        if n & 1:
            a_n = (a_n * a) & _MASK
            c_n = (c_n * a + c) & _MASK
        c = (c * (a + 1)) & _MASK
        a = (a * a) & _MASK
        n >>= 1
    x = (a_n * x + c_n) & _MASK
    out = np.empty(count)
    for i in range(count):
        out[i] = x / 2.0**64
        x = (_LCG_A * x + _LCG_C) & _MASK
    return out


class EpKernel(TeamParallelKernel):
    """One iteration = one block of generated numbers plus its tally."""

    name = "ep"

    def __init__(self, params: EpParams,
                 space: AddressSpace | None = None) -> None:
        self.params = params
        space = space or AddressSpace()
        self._tally_base = space.alloc(4 * LINE)
        #: Real tally: counts of numbers falling in each of 10 decades.
        self.tally = np.zeros(10, dtype=np.int64)
        self.sum = 0.0

    @property
    def total_iterations(self) -> int:
        return self.params.num_numbers // self.params.block_size

    def team_iteration(self, block: int, thread_id: int,
                       num_threads: int) -> Iterator[Op]:
        chunk = static_chunks(self.params.block_size, num_threads,
                              start=block * self.params.block_size)[thread_id]

        # Parallel part: generate this thread's share of the block.
        values = _lcg_block(self.params.seed, chunk.start, len(chunk))
        local_tally = np.bincount((values * 10).astype(int), minlength=10)
        instr = len(chunk) * GEN_INSTR_PER_NUMBER
        while instr > 0:
            yield Compute(min(instr, 4096))
            instr -= 4096

        # Serial part: fold the block statistics into the shared table.
        yield Lock(_TALLY_LOCK)
        self.tally += local_tally
        self.sum += float(values.sum())
        for k in range(3):
            yield Compute(TALLY_INSTR // 3)
            # Read-modify-write via the store's read-for-ownership.
            yield Store(self._tally_base + k * LINE)
        yield Unlock(_TALLY_LOCK)

        yield BarrierWait(_BLOCK_BARRIER)

    def expected_tally(self, iterations: int | None = None) -> np.ndarray:
        """Ground truth tally over the first ``iterations`` blocks."""
        n = (iterations if iterations is not None
             else self.total_iterations) * self.params.block_size
        values = _lcg_block(self.params.seed, 0, n)
        return np.bincount((values * 10).astype(int), minlength=10)


def build(scale: float = 1.0, seed: int = 271_828_183) -> Application:
    """EP application; ``scale`` shrinks the number count."""
    numbers = max(24_576, int(262_144 * scale))
    kernel = EpKernel(EpParams(num_numbers=numbers, seed=seed))
    return Application.single(kernel, name="EP")


register(WorkloadSpec(
    name="EP",
    category=Category.CS_LIMITED,
    description="Linear-congruential PRNG with shared tally (NAS EP)",
    paper_input="262K numbers",
    repro_input="262 144 numbers, 128 blocks of 2048",
    build=build,
))
