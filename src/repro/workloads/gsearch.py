"""GSearch — parallel search in a directed graph, CS-limited.

From the OpenMP source-code repository: threads expand frontier nodes of
a directed graph in parallel.  The kernel has *two* critical sections,
exactly as the paper describes (Section 4.3): one guarding the shared
work queue (dequeued/enqueued nodes) and one guarding the visited map.
The number of newly discovered nodes varies from batch to batch, so the
critical-section fraction fluctuates across iterations — this is the
workload the paper uses to show the training stability rule earning its
keep (3.84 % average CS time; SAT trains 1 % of iterations and picks 5).

Paper input: 10K nodes.  Repro input: an 8K-node pseudo-random directed
graph (deterministic seed, out-degree ~8), frontier batches of 64 nodes.
The search order is computed for real by an actual BFS and verified by
tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.errors import WorkloadError
from repro.fdt.kernel import TeamParallelKernel
from repro.fdt.runner import Application
from repro.isa.ops import BarrierWait, Compute, Load, Lock, Op, Store, Unlock
from repro.runtime.parallel import static_chunks
from repro.workloads.base import LINE, AddressSpace, Category, WorkloadSpec, register

#: Per-node expansion cost: compare key, walk adjacency.
EXPAND_INSTR_PER_NODE = 120
#: Queue maintenance per critical-section entry: head/tail bookkeeping
#: plus compaction/prioritization of the pending work list — constant
#: per thread, which is what makes total CS time grow linearly with the
#: team (the Eq. 1 premise).
ENQUEUE_FIXED_INSTR = 1150
#: Appending one discovered node id (ids are packed 2 B each).
ENQUEUE_INSTR_PER_NODE = 1
#: Visited-map update per critical-section entry (summary word plus the
#: batch's bits).
MARK_FIXED_INSTR = 30

_QUEUE_LOCK = 0
_VISITED_LOCK = 1
_EXPAND_BARRIER = 0
_BATCH_BARRIER = 1


@dataclass(frozen=True, slots=True)
class GSearchParams:
    """Input set for GSearch."""

    num_nodes: int = 8192
    out_degree: int = 3
    batch_size: int = 64
    #: The search starts from many query nodes at once (rsearchk searches
    #: for multiple keys), so the work queue is full from the first batch.
    num_seeds: int = 128
    seed: int = 5

    def __post_init__(self) -> None:
        if self.num_nodes < 2:
            raise WorkloadError("GSearch needs at least two nodes")
        if self.batch_size < 1:
            raise WorkloadError("GSearch batch size must be positive")
        if not 1 <= self.num_seeds <= self.num_nodes:
            raise WorkloadError("seed count must be in [1, num_nodes]")


def _build_graph(params: GSearchParams) -> list[np.ndarray]:
    """Deterministic random digraph with a reachable spine.

    Node i always points at node i+1 (so the whole graph is reachable
    from node 0) plus ``out_degree - 1`` random successors.
    """
    rng = np.random.default_rng(params.seed)
    n = params.num_nodes
    adjacency = []
    for i in range(n):
        rand = rng.integers(0, n, size=params.out_degree - 1)
        spine = np.array([(i + 1) % n])
        adjacency.append(np.unique(np.concatenate([spine, rand])))
    return adjacency


def _bfs_batches(adjacency: list[np.ndarray], batch_size: int,
                 num_seeds: int) -> list[tuple[np.ndarray, int]]:
    """The real search: FIFO expansion in fixed-size batches.

    The queue starts with ``num_seeds`` evenly-spread query nodes, so the
    very first batches are already full — the steady work-list regime the
    kernel spends its life in.  Returns one entry per batch: (nodes
    expanded, count newly discovered).  The discovered count is what
    makes the per-iteration CS time vary.
    """
    n = len(adjacency)
    visited = np.zeros(n, dtype=bool)
    seeds = [int(i * n / num_seeds) for i in range(num_seeds)]
    queue: list[int] = []
    for s in seeds:
        if not visited[s]:
            visited[s] = True
            queue.append(s)
    head = 0
    batches = []
    while head < len(queue):
        batch = queue[head:head + batch_size]
        head += len(batch)
        discovered = []
        for node in batch:
            for succ in adjacency[node]:
                s = int(succ)
                if not visited[s]:
                    visited[s] = True
                    discovered.append(s)
        queue.extend(discovered)
        batches.append((np.array(batch, dtype=np.int64), len(discovered)))
    return batches


class GSearchKernel(TeamParallelKernel):
    """One iteration = expansion of one frontier batch."""

    name = "gsearch"

    def __init__(self, params: GSearchParams,
                 space: AddressSpace | None = None) -> None:
        self.params = params
        space = space or AddressSpace()
        self.adjacency = _build_graph(params)
        #: Real BFS expansion schedule (test oracle: covers every node).
        self.batches = _bfs_batches(self.adjacency, params.batch_size,
                                    params.num_seeds)
        bytes_per_node = max(LINE, params.out_degree * 8)
        self._adj_base = space.alloc(params.num_nodes * bytes_per_node)
        self._adj_stride = bytes_per_node
        self._queue_base = space.alloc(params.num_nodes * 8 + LINE)
        self._visited_base = space.alloc(params.num_nodes + LINE)
        self._visited_count = 0

    @property
    def total_iterations(self) -> int:
        return len(self.batches)

    def nodes_expanded(self) -> int:
        """Total nodes the schedule expands (== num_nodes when connected)."""
        return sum(len(batch) for batch, _d in self.batches)

    def team_iteration(self, iteration: int, thread_id: int,
                       num_threads: int) -> Iterator[Op]:
        batch, discovered = self.batches[iteration]
        chunk = static_chunks(len(batch), num_threads)[thread_id]
        my_nodes = batch[chunk.start:chunk.stop]
        my_discovered = discovered // num_threads + (
            1 if thread_id < discovered % num_threads else 0)

        # Parallel part: expand this thread's share of the frontier.
        for node in my_nodes:
            yield Load(self._adj_base + int(node) * self._adj_stride)
            yield Compute(EXPAND_INSTR_PER_NODE)

        # The expansion phase ends at a barrier before the shared
        # structures are updated (phase-then-merge, as in the OpenMP
        # source-repository kernel), so every thread contends for the
        # queue lock at once — the serialization Eq. 1 models.
        yield BarrierWait(_EXPAND_BARRIER)

        # Critical section 1: append discovered nodes to the work queue.
        # The queue-control line is stored (read-for-ownership) every
        # time; appended ids are packed two bytes each, so the data
        # traffic is small next to the fixed bookkeeping.
        yield Lock(_QUEUE_LOCK)
        control = self._queue_base
        yield Compute(ENQUEUE_FIXED_INSTR
                      + ENQUEUE_INSTR_PER_NODE * my_discovered)
        # The circular tail block stays hot: appends land in the lines
        # the previous holder just wrote.
        tail = self._queue_base + LINE + (iteration % 8) * LINE
        for k in range(-(-my_discovered * 2 // LINE) or 1):
            yield Store(tail + (k % 8) * LINE)
        yield Store(control)
        yield Unlock(_QUEUE_LOCK)

        # Critical section 2: update the visited summary for the batch.
        yield Lock(_VISITED_LOCK)
        yield Compute(MARK_FIXED_INSTR)
        if len(my_nodes):
            yield Store(self._visited_base + (int(my_nodes[0]) // LINE) * LINE)
        yield Store(self._visited_base)
        yield Unlock(_VISITED_LOCK)
        if thread_id == 0:
            self._visited_count += len(batch)

        yield BarrierWait(_BATCH_BARRIER)

    @property
    def visited_count(self) -> int:
        """Nodes marked visited by executed iterations."""
        return self._visited_count


def build(scale: float = 1.0, seed: int = 5) -> Application:
    """GSearch application; ``scale`` shrinks the graph."""
    nodes = max(1024, int(8192 * scale))
    kernel = GSearchKernel(GSearchParams(num_nodes=nodes, seed=seed))
    return Application.single(kernel, name="GSearch")


register(WorkloadSpec(
    name="GSearch",
    category=Category.CS_LIMITED,
    description="Search in directed graphs (two critical sections)",
    paper_input="10K nodes",
    repro_input="8K-node digraph, out-degree ~3, 128-seed multi-source",
    build=build,
))
