"""ED — Euclidean distance, the paper's flagship bandwidth-limited kernel.

``EuclideanDistance(Point A)`` (paper Figure 3): a data-parallel
reduction ``sum += A[i] * A[i]`` over an N-dimensional point.  Threads
need no synchronization (each accumulates a private partial sum); the
array streams from memory once, so the off-chip bus is the only shared
resource and performance saturates when it does (paper Figure 4).

Paper input: N = 100M.  Repro input: N = 1.28M doubles (10 MB — larger
than the 8 MB L3, so every line is a cold miss exactly as at paper
scale).  The paper reports a miss every ~225 cycles and a single-thread
bus utilization of 14.3 %; the per-line compute cost below is calibrated
to land there.

The partial sums are computed for real over a deterministic array.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.errors import WorkloadError
from repro.fdt.kernel import DataParallelKernel
from repro.fdt.runner import Application
from repro.isa.ops import Compute, Load, Op
from repro.workloads.base import (
    LINE,
    AddressSpace,
    Category,
    WorkloadSpec,
    register,
)

#: 8 doubles per 64-B line; ~4 instructions per element (load, multiply,
#: add, loop) -> 32 instructions = 16 cycles of compute per line.
ED_INSTR_PER_LINE = 32
#: Loop-block granularity: one FDT "iteration" covers this many lines.
LINES_PER_BLOCK = 64


@dataclass(frozen=True, slots=True)
class EdParams:
    """Input set for ED."""

    n_elements: int = 1_280_000  # doubles; 10 MB > the 8 MB L3
    seed: int = 7

    def __post_init__(self) -> None:
        if self.n_elements < LINES_PER_BLOCK * (LINE // 8):
            raise WorkloadError("ED input must cover at least one block")


class EdKernel(DataParallelKernel):
    """The data-parallel squared-sum loop, blocked for FDT training."""

    name = "ed"

    def __init__(self, params: EdParams,
                 space: AddressSpace | None = None) -> None:
        self.params = params
        space = space or AddressSpace()
        self._n_lines = (params.n_elements * 8 + LINE - 1) // LINE
        self._base = space.alloc(self._n_lines * LINE)
        rng = np.random.default_rng(params.seed)
        #: The point's coordinates (real data for the real reduction).
        self.values = rng.standard_normal(params.n_elements)
        #: Partial sums accumulated per executed block.
        self.partial_sum = 0.0

    @property
    def total_iterations(self) -> int:
        return self._n_lines // LINES_PER_BLOCK

    def serial_iteration(self, block: int) -> Iterator[Op]:
        first_line = block * LINES_PER_BLOCK
        lo = first_line * (LINE // 8)
        hi = min(self.params.n_elements, (first_line + LINES_PER_BLOCK) * (LINE // 8))
        self.partial_sum += float(np.square(self.values[lo:hi]).sum())
        for line in range(first_line, first_line + LINES_PER_BLOCK):
            yield Load(self._base + line * LINE)
            yield Compute(ED_INSTR_PER_LINE)

    def distance(self) -> float:
        """sqrt of the accumulated partial sums (the kernel's output)."""
        return float(np.sqrt(self.partial_sum))

    def expected_distance(self) -> float:
        """Ground truth over the whole input (test oracle)."""
        return float(np.sqrt(np.square(self.values).sum()))


def build(scale: float = 1.0, seed: int = 7) -> Application:
    """ED application; ``scale`` shrinks the array (BU_1 is unchanged)."""
    n = max(LINES_PER_BLOCK * 8 * 4, int(1_280_000 * scale))
    kernel = EdKernel(EdParams(n_elements=n, seed=seed))
    return Application.single(kernel, name="ED")


register(WorkloadSpec(
    name="ED",
    category=Category.BW_LIMITED,
    description="Euclidean distance of an N-dimensional point (Figure 3)",
    paper_input="n = 100M",
    repro_input="n = 1.28M doubles (10 MB, exceeds L3)",
    build=build,
))
