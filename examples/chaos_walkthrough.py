"""Walkthrough: deterministic fault injection with ``repro.faults``.

Loads the example fault plan (``examples/chaos_plan.json``), arms it
against a real :class:`~repro.jobs.JobRunner` batch, and shows what the
hardened host layers did about every injected fault: backoff retries
for crashed jobs, quarantine for corrupt cache entries, tolerated cache
write errors — all while the simulated cycle counts stay bit-identical
to a fault-free run.

Run with::

    PYTHONPATH=src python examples/chaos_walkthrough.py

The same plan drives ``repro chaos`` (add ``--mode serve`` to aim it at
a live server over real sockets):

    python -m repro chaos --plan examples/chaos_plan.json
"""

from __future__ import annotations

from pathlib import Path

from repro.faults import FaultPlan
from repro.faults.chaos import default_specs, run_chaos_batch

PLAN_PATH = Path(__file__).parent / "chaos_plan.json"


def main() -> None:
    plan = FaultPlan.load(PLAN_PATH)
    print(f"loaded plan: {plan.description}")
    print(f"  seed={plan.seed}, {len(plan.rules)} rule(s), "
          f"sites: {', '.join(sorted(plan.sites()))}")

    specs = default_specs(workloads=("PageMine",), threads=2, scale=0.05)
    report = run_chaos_batch(plan, specs)

    print()
    print(report.summary())
    print()
    print("injected firings, in order:")
    for firing in report.firings:
        print(f"  #{firing['occurrence']:>2} {firing['site']:<18} "
              f"{firing['kind']:<10} rule {firing['rule']}")
    if not report.firings:
        print("  (none — the plan's batch sites never matched)")

    # The same plan with the same seed always fires the same faults:
    again = run_chaos_batch(plan, specs)
    identical = again.firings == report.firings
    print()
    print(f"re-run with the same seed fires identically: {identical}")
    assert identical, "chaos runs must be deterministic"
    assert report.passed and again.passed, "invariants must hold"


if __name__ == "__main__":
    main()
