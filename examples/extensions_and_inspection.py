#!/usr/bin/env python3
"""The §9 extensions and the machine-inspection API.

1. Plain BAT vs the two-point *calibrated* BAT on ED: the calibrated
   policy fits a sub-linear utilization model from a 4-thread probe and
   lands on the true saturation knee.
2. Plain SAT vs *two-phase* SAT on ISort: the refined policy re-measures
   the contended critical-section cost and corrects SAT's optimistic
   single-threaded estimate.
3. ``machine_report`` dumps every simulator counter as JSON-able data.

Run:  python examples/extensions_and_inspection.py
"""

import json

from repro import FdtMode, FdtPolicy, MachineConfig, run_application
from repro.analysis import machine_report, sweep_threads
from repro.fdt.extensions import CalibratedBatPolicy, TwoPhaseSatPolicy
from repro.sim.machine import Machine
from repro.workloads import get


def main() -> None:
    config = MachineConfig.asplos08_baseline()

    # --- calibrated BAT on ED ------------------------------------------
    sweep = sweep_threads(lambda: get("ED").build(0.2),
                          (1, 4, 7, 8, 9, 10, 12), config)
    plain = run_application(get("ED").build(0.2),
                            FdtPolicy(FdtMode.BAT), config)
    calibrated = run_application(get("ED").build(0.2),
                                 CalibratedBatPolicy(probe_threads=4), config)
    print("ED (bandwidth-limited):")
    print(f"  linear BAT (Eq. 5):    {plain.kernel_infos[0].threads} threads "
          f"-> {plain.cycles / sweep.min_cycles:.3f}x the sweep minimum")
    print(f"  calibrated BAT (§9):   "
          f"{calibrated.kernel_infos[0].threads} threads "
          f"-> {calibrated.cycles / sweep.min_cycles:.3f}x the sweep minimum")

    # --- two-phase SAT on ISort -------------------------------------------
    sweep = sweep_threads(lambda: get("ISort").build(0.5),
                          (1, 3, 4, 5, 6, 7, 8), config)
    plain = run_application(get("ISort").build(0.5),
                            FdtPolicy(FdtMode.SAT), config)
    refined = run_application(get("ISort").build(0.5),
                              TwoPhaseSatPolicy(), config)
    print("\nISort (synchronization-limited):")
    print(f"  plain SAT:             {plain.kernel_infos[0].threads} threads "
          f"-> {plain.cycles / sweep.min_cycles:.3f}x the sweep minimum")
    print(f"  two-phase SAT (§9):    {refined.kernel_infos[0].threads} threads "
          f"-> {refined.cycles / sweep.min_cycles:.3f}x the sweep minimum")

    # --- machine inspection ---------------------------------------------------
    machine = Machine(config)
    run_application(get("PageMine").build(0.2), FdtPolicy(), machine=machine)
    report = machine_report(machine)
    summary = {
        "cycles": report["cycles"],
        "l3_miss_rate": report["l3"]["miss_rate"],
        "bus_utilization": report["bus"]["utilization"],
        "dram_row_hit_rate": report["dram"]["row_hit_rate"],
        "lock_mean_hold": report["locks"]["mean_hold"],
        "coherence_cache_to_cache": report["coherence"]["cache_to_cache"],
    }
    print("\nPageMine machine report (excerpt):")
    print(json.dumps(summary, indent=2))


if __name__ == "__main__":
    main()
