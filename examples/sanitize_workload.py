#!/usr/bin/env python3
"""Sanitize your own kernel: run the thread checker programmatically.

Builds two variants of a small histogram kernel — one that updates the
shared bins under a lock, one that "forgets" the lock — and runs
``repro.check`` over both.  This is the integration path a downstream
user follows before trusting a new kernel's numbers: check it, iterate
the findings, assert it is clean.

Run:  python examples/sanitize_workload.py
"""

from typing import Iterator

from repro import Application
from repro.check import check_application
from repro.fdt.kernel import TeamParallelKernel
from repro.isa import BarrierWait, Compute, Load, Lock, Op, Store, Unlock
from repro.runtime.parallel import static_chunks
from repro.workloads.base import LINE, AddressSpace


class HistogramKernel(TeamParallelKernel):
    """Each thread scans its slice and accumulates into shared bins."""

    name = "histogram"

    def __init__(self, locked: bool = True, items: int = 256,
                 blocks: int = 8) -> None:
        self.locked = locked
        self.items = items
        self.blocks = blocks
        space = AddressSpace()
        self._data = space.alloc(blocks * items * 4)
        self._bins = space.alloc(LINE)

    @property
    def total_iterations(self) -> int:
        return self.blocks

    def team_iteration(self, block: int, thread_id: int,
                       num_threads: int) -> Iterator[Op]:
        chunk = static_chunks(self.items, num_threads)[thread_id]
        base = self._data + block * self.items * 4
        for item in range(chunk.start, chunk.stop, LINE // 4):
            yield Load(base + item * 4)
        yield Compute(len(chunk) * 6)
        # The shared-bin update: correct only under the lock.
        if self.locked:
            yield Lock(0)
        yield Compute(80)
        yield Store(self._bins)
        if self.locked:
            yield Unlock(0)
        yield BarrierWait(0)


def main() -> None:
    # The correct variant: the checker must come back clean.
    clean = check_application(Application.single(HistogramKernel(locked=True),
                                                 name="histogram"))
    print(f"locked histogram: clean={clean.clean} "
          f"({clean.cycles:,} cycles checked, "
          f"{clean.threads} threads)")
    assert clean.clean, "the locked kernel must sanitize clean"

    # The broken variant: iterate the findings like a CI gate would.
    racy = check_application(Application.single(HistogramKernel(locked=False),
                                                name="histogram-racy"))
    print(f"unlocked histogram: clean={racy.clean}, "
          f"{len(racy.findings)} finding(s)")
    for finding in racy.findings:
        print(f"  [{finding.analysis}/{finding.kind}] {finding.message}")
    assert not racy.clean, "dropping the lock must be caught"
    assert any(f.kind == "empty-lockset" for f in racy.findings)
    print("the sanitizer caught the dropped lock")


if __name__ == "__main__":
    main()
