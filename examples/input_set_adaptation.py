#!/usr/bin/env python3
"""Input-set adaptation: SAT retunes as the data changes (paper §4.4).

The best thread count for PageMine depends on the page size: bigger
pages mean more parallel work per critical section, so more threads pay
off (roughly as the square root of the page size).  A static choice
tuned for one input set loses on another; SAT re-measures at run time.

Run:  python examples/input_set_adaptation.py
"""

from repro import FdtMode, FdtPolicy, MachineConfig, StaticPolicy, run_application
from repro.analysis import sweep_threads
from repro.workloads.pagemine import build as build_pagemine

PAGE_SIZES = (1024, 2560, 5280, 10240)
GRID = (1, 2, 3, 4, 5, 6, 7, 8, 10, 12, 16, 32)


def main() -> None:
    config = MachineConfig.asplos08_baseline()
    print("PageMine: best static threads vs SAT's pick, per page size\n")
    print(f"{'page size':>10} {'best static':>12} {'SAT pick':>9} "
          f"{'SAT/min time':>13}")

    static_choice = None
    for page_bytes in PAGE_SIZES:
        sweep = sweep_threads(
            lambda: build_pagemine(scale=0.4, page_bytes=page_bytes),
            GRID, config)
        sat = run_application(build_pagemine(scale=0.4, page_bytes=page_bytes),
                              FdtPolicy(FdtMode.SAT), config)
        if static_choice is None:
            static_choice = sweep.best_threads  # "tuned" on the first input
        print(f"{page_bytes / 1024:>8.1f}KB {sweep.best_threads:>12} "
              f"{sat.kernel_infos[0].threads:>9} "
              f"{sat.cycles / sweep.min_cycles:>13.3f}")

    # Show what the statically-tuned choice costs on the largest input.
    last = PAGE_SIZES[-1]
    sweep = sweep_threads(
        lambda: build_pagemine(scale=0.4, page_bytes=last), GRID, config)
    static_run = run_application(build_pagemine(scale=0.4, page_bytes=last),
                                 StaticPolicy(static_choice), config)
    print(f"\nstatic choice tuned on {PAGE_SIZES[0]} B pages "
          f"({static_choice} threads) on {last} B pages: "
          f"{static_run.cycles / sweep.min_cycles:.2f}x the minimum time")


if __name__ == "__main__":
    main()
