#!/usr/bin/env python3
"""Bring your own kernel: put a new workload under FDT control.

Defines a small sparse-matrix-vector-multiply-style kernel from scratch
— streaming loads over the matrix, a per-iteration critical section
updating a shared accumulator, a barrier — and lets FDT decide its
thread count.  This is the integration path a downstream user follows:
subclass a kernel shape, emit ops, run a policy.

Run:  python examples/custom_workload.py
"""

from typing import Iterator

from repro import Application, FdtPolicy, MachineConfig, run_application
from repro.analysis import sweep_threads
from repro.fdt.kernel import TeamParallelKernel
from repro.isa import BarrierWait, Compute, Load, Lock, Op, Store, Unlock
from repro.runtime.parallel import static_chunks
from repro.workloads.base import LINE, AddressSpace


class SpmvKernel(TeamParallelKernel):
    """y += A_block * x, with a reduction into a shared norm per block."""

    name = "spmv"

    def __init__(self, rows: int = 96, nnz_per_row: int = 40,
                 blocks: int = 96) -> None:
        self.rows = rows
        self.nnz_per_row = nnz_per_row
        self.blocks = blocks
        space = AddressSpace()
        row_bytes = nnz_per_row * 12  # value + column index per nonzero
        self._matrix = space.alloc(blocks * rows * row_bytes)
        self._row_bytes = row_bytes
        self._norm = space.alloc(LINE)

    @property
    def total_iterations(self) -> int:
        return self.blocks

    def team_iteration(self, block: int, thread_id: int,
                       num_threads: int) -> Iterator[Op]:
        chunk = static_chunks(self.rows, num_threads)[thread_id]
        base = self._matrix + block * self.rows * self._row_bytes
        for row in chunk:
            for off in range(0, self._row_bytes, LINE):
                yield Load(base + row * self._row_bytes + off)
            yield Compute(self.nnz_per_row * 4)  # multiply-accumulate
        # Shared norm update: the critical section FDT will measure.
        yield Lock(0)
        yield Compute(600)
        yield Store(self._norm)
        yield Unlock(0)
        yield BarrierWait(0)


def main() -> None:
    config = MachineConfig.asplos08_baseline()
    app = Application.single(SpmvKernel(), name="spmv")

    fdt = run_application(app, FdtPolicy(), config)
    info = fdt.kernel_infos[0]
    est = info.estimates
    print("custom SpMV kernel under FDT:")
    print(f"  trained {info.trained_iterations} blocks; "
          f"T_CS/T_NoCS = {est.cs_fraction:.1%}, BU_1 = {est.bu1:.1%}")
    print(f"  P_CS = {est.p_cs}, P_BW = {est.p_bw} "
          f"-> running {info.threads} threads")

    sweep = sweep_threads(lambda: Application.single(SpmvKernel(), name="spmv"),
                          (1, 2, 4, info.threads, 8, 16, 32), config)
    print(f"  static sweep minimum at {sweep.best_threads} threads; "
          f"FDT time is {fdt.cycles / sweep.min_cycles:.2f}x the minimum")


if __name__ == "__main__":
    main()
