#!/usr/bin/env python3
"""Dynamic loop scheduling through the simulated scheduler lock.

An imbalanced loop (a few iterations cost 25x the rest) under three
execution strategies:

* static chunking — the expensive iterations strand on one thread;
* dynamic scheduling, chunk 1 — balanced, but every grab serializes on
  the scheduler lock (which the simulator models as a real lock);
* dynamic scheduling, chunk 4 — the usual compromise.

Run:  python examples/dynamic_scheduling.py
"""

from repro import MachineConfig
from repro.fdt.kernel import FunctionKernel
from repro.isa import Compute
from repro.runtime.schedule import dynamic_factories
from repro.runtime.parallel import static_chunks
from repro.sim.machine import Machine

TOTAL = 64
THREADS = 8


def imbalanced():
    def body(i):
        # The first eight iterations are 25x the rest.
        yield Compute(25_000 if i < 8 else 1_000)
    return FunctionKernel("skew", total_iterations=TOTAL, body=body)


def run_static() -> int:
    m = Machine(MachineConfig.asplos08_baseline())
    kernel = imbalanced()
    m.run_parallel(kernel.factories(range(TOTAL), THREADS),
                   spawn_overhead=False)
    return m.now


def run_dynamic(chunk: int) -> int:
    m = Machine(MachineConfig.asplos08_baseline())
    m.run_parallel(dynamic_factories(imbalanced(), range(TOTAL), THREADS,
                                     chunk_size=chunk),
                   spawn_overhead=False)
    return m.now


def main() -> None:
    static = run_static()
    print(f"static chunks ({TOTAL // THREADS}/thread): {static:>8,} cycles")
    for chunk in (1, 4, 16):
        cycles = run_dynamic(chunk)
        print(f"dynamic, chunk {chunk:>2}:          {cycles:>8,} cycles "
              f"({static / cycles:.2f}x vs static)")


if __name__ == "__main__":
    main()
