#!/usr/bin/env python3
"""Machine adaptation: BAT retunes to the bus bandwidth (paper §5.4).

The thread count that saturates the off-chip bus is a property of the
machine, not the program.  Running the paper's convert kernel on
machines with half and double the baseline bandwidth, BAT's training
measures BU_1 on the machine at hand and picks accordingly — a count
tuned statically for one machine wastes the other.

Run:  python examples/machine_adaptation.py
"""

from repro import FdtMode, FdtPolicy, MachineConfig, StaticPolicy, run_application
from repro.analysis import sweep_threads
from repro.workloads import get

GRID = (1, 2, 4, 6, 8, 12, 16, 24, 32)


def main() -> None:
    spec = get("convert")
    picks: dict[float, int] = {}
    for factor in (0.5, 1.0, 2.0):
        config = MachineConfig.asplos08_baseline().with_bandwidth(factor)
        bat = run_application(spec.build(), FdtPolicy(FdtMode.BAT), config)
        info = bat.kernel_infos[0]
        picks[factor] = info.threads
        print(f"{factor:>4g}x bandwidth: measured BU_1 = "
              f"{info.estimates.bu1:.1%} -> BAT runs {info.threads} threads "
              f"(power {bat.power:.1f} cores)")

    # Cross the choices: the half-bandwidth pick on the double-bandwidth
    # machine (the paper's Figure 13 warning).
    fast = MachineConfig.asplos08_baseline().with_bandwidth(2.0)
    sweep = sweep_threads(lambda: spec.build(), GRID, fast)
    crossed = run_application(spec.build(), StaticPolicy(picks[0.5]), fast)
    print(f"\nthe {picks[0.5]}-thread choice (right for 0.5x) on the 2x "
          f"machine: {crossed.cycles / sweep.min_cycles:.2f}x the minimum "
          f"execution time")


if __name__ == "__main__":
    main()
