#!/usr/bin/env python3
"""Serving quickstart: ask the experiment server for an FDT decision.

Starts an in-process experiment server (the same ``repro serve`` stack,
on a background thread and an ephemeral port), asks ``POST /v1/fdt``
how many threads PageMine should run with on the simulated CMP, then
runs exactly that configuration via ``POST /v1/run`` — the serving
analogue of training once and executing with the chosen thread count.
A repeat of the same request is answered from the content-addressed
cache without re-simulating, which the ``/metrics`` counters prove.

Run:  python examples/serve_client.py
"""

from repro.serve import ServeClient, ServeConfig, ServerThread

SCALE = 0.1  # small input set so the example runs in a blink


def main() -> None:
    with ServerThread(ServeConfig(port=0)) as handle:
        client = ServeClient(port=handle.port)
        print(f"server: listening on 127.0.0.1:{handle.port} "
              f"(health {client.healthz()['status']})\n")

        decision = client.fdt("PageMine", scale=SCALE, policy="fdt")
        best = decision["chosen_threads"][0]
        kernel = decision["kernels"][0]
        print(f"FDT decision for {decision['workload']}: "
              f"{best} threads "
              f"(trained {kernel['trained_iterations']} iterations, "
              f"{kernel['training_cycles']:,} training cycles)")

        run = client.run("PageMine", scale=SCALE,
                         policy="static", threads=best)
        print(f"run at the chosen count: {run['cycles']:,} cycles, "
              f"power {run['power']:.1f} cores [{run['status']}]")

        again = client.run("PageMine", scale=SCALE,
                           policy="static", threads=best)
        print(f"same request again:      {again['cycles']:,} cycles "
              f"[{again['status']} — served from cache, no simulation]")

        hits = [line for line in client.metrics_text().splitlines()
                if line.startswith("repro_serve_cache_hits_total")]
        print(f"\nserver counters: {hits[0]}")
        client.close()


if __name__ == "__main__":
    main()
