#!/usr/bin/env python3
"""Per-kernel adaptation: why FDT beats even an oracle static choice.

MTwister has two kernels with different appetites: the Mersenne-Twister
generator scales to all 32 cores, while the Box-Muller transform
saturates the bus near 12 threads.  Any static policy — even an oracle
that sweeps offline — must pick one count for the whole program; FDT
retrains at each kernel boundary and picks both (paper §6.3: 31 % less
power than the oracle at the same execution time).

Run:  python examples/per_kernel_power.py  (takes a minute: full-size input)
"""

from repro import FdtPolicy, MachineConfig, StaticPolicy, run_application
from repro.workloads import get


def main() -> None:
    config = MachineConfig.asplos08_baseline()
    spec = get("MTwister")

    fdt = run_application(spec.build(), FdtPolicy(), config)
    print("FDT per-kernel decisions:")
    for info in fdt.kernel_infos:
        print(f"  {info.kernel_name}: BU_1 = {info.estimates.bu1:.1%} "
              f"-> {info.threads} threads "
              f"({info.execution_cycles:,} cycles)")
    print(f"  time-weighted average team: {fdt.mean_threads:.1f} threads "
          f"(paper: ~21)")

    # The oracle's best whole-program choice is 32 (kernel 1 dominates
    # nothing by running narrower; see the paper's Figure 15 discussion).
    oracle = run_application(spec.build(), StaticPolicy(32), config)
    print(f"\noracle static-32: {oracle.cycles:,} cycles, "
          f"power {oracle.power:.1f} cores")
    print(f"FDT:              {fdt.cycles:,} cycles, "
          f"power {fdt.power:.1f} cores")
    print(f"\nFDT power vs oracle: {fdt.power / oracle.power:.2f}x "
          f"at {fdt.cycles / oracle.cycles:.2f}x the time")


if __name__ == "__main__":
    main()
