#!/usr/bin/env python3
"""Quickstart: run one workload under Feedback-Driven Threading.

Runs the paper's PageMine kernel twice on the simulated 32-core CMP —
once with conventional threading (one thread per core) and once under
the combined SAT+BAT policy — and reports what FDT measured, what it
decided, and what that bought.

Run:  python examples/quickstart.py
"""

from repro import FdtPolicy, MachineConfig, StaticPolicy, run_application, workloads


def main() -> None:
    config = MachineConfig.asplos08_baseline()
    spec = workloads.get("PageMine")
    print(f"Workload: {spec.name} — {spec.description}")
    print(f"Machine:  {config.num_cores}-core CMP (paper Table 1)\n")

    baseline = run_application(spec.build(scale=0.5), StaticPolicy(), config)
    print(f"conventional threading: {baseline.threads_used[0]} threads, "
          f"{baseline.cycles:,} cycles, power {baseline.power:.1f} cores")

    fdt = run_application(spec.build(scale=0.5), FdtPolicy(), config)
    info = fdt.kernel_infos[0]
    est = info.estimates
    print(f"\nFDT training: {info.trained_iterations} iterations "
          f"({info.training_cycles:,} cycles), stopped by {info.stop_reason}")
    print(f"  measured T_CS/T_NoCS = {est.cs_fraction:.1%}  "
          f"-> P_CS = {est.p_cs}")
    print(f"  measured BU_1       = {est.bu1:.1%}  -> P_BW = {est.p_bw}")
    print(f"  decision: min(P_CS, P_BW, cores) = {info.threads} threads")

    print(f"\nFDT execution: {fdt.cycles:,} cycles, "
          f"power {fdt.power:.1f} cores")
    print(f"  speedup vs conventional: {baseline.cycles / fdt.cycles:.2f}x")
    print(f"  power saving:            "
          f"{1 - fdt.power / baseline.power:.0%}")


if __name__ == "__main__":
    main()
