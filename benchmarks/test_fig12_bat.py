"""Figure 12: BAT on the four bandwidth-limited workloads.

Paper outcome: BAT stays within a few percent of the sweep minimum while
cutting power 78/47/75/31 % (ED/convert/Transpose/MTwister) vs 32
threads; its picks are 7, 17, 8, and 32+12 per kernel.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments.fig12_bat import Fig12Result, run_fig12

#: MTwister keeps full scale (its L3-overflow property) on a coarse grid.
_MTWISTER_GRID = (1, 4, 8, 12, 16, 24, 32)
_GRID = (1, 2, 3, 4, 5, 6, 7, 8, 10, 12, 14, 16, 20, 24, 32)
#: convert keeps its full 240-row input (training is 1% there).
_CONVERT_SCALE = 1.0


def _run() -> Fig12Result:
    main = run_fig12(scale=0.4, thread_counts=_GRID,
                     workloads=("ED", "Transpose"))
    conv = run_fig12(scale=_CONVERT_SCALE, thread_counts=_GRID,
                     workloads=("convert",))
    mtw = run_fig12(thread_counts=_MTWISTER_GRID, workloads=("MTwister",))
    return Fig12Result(panels=main.panels + conv.panels + mtw.panels)


def test_fig12_bat_panels(benchmark, save_result):
    result = run_once(benchmark, _run)
    save_result("fig12_bat", result.format())

    # BAT's thread picks track the paper's.
    assert result.panel("ED").bat_threads[0] in (7, 8)            # paper: 7
    assert result.panel("convert").bat_threads[0] in (16, 17, 18)  # paper: 17
    assert result.panel("Transpose").bat_threads[0] in (7, 8, 9)   # paper: 8
    t_gen, t_bm = result.panel("MTwister").bat_threads             # paper: 32, 12
    assert t_gen == 32
    assert 10 <= t_bm <= 14

    for panel in result.panels:
        # Execution time near the minimum (paper: within 3%; repro adds
        # the serial-training floor).
        assert panel.bat_vs_best <= 1.30, panel.workload

    # Power savings vs 32 threads in the paper's bands.
    assert result.panel("ED").power_saving_vs_32 > 0.65           # paper: 78%
    assert result.panel("convert").power_saving_vs_32 > 0.35      # paper: 47%
    assert result.panel("Transpose").power_saving_vs_32 > 0.6     # paper: 75%
    assert result.panel("MTwister").power_saving_vs_32 > 0.2      # paper: 31%
