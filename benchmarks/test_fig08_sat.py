"""Figure 8: SAT on the four synchronization-limited workloads.

Paper outcome: SAT lands within 1 % of each sweep's minimum (at paper
scale); the best static counts are small (4-7 threads).  At repro scale
the single-threaded training floor costs a few extra percent, so the
bound asserted here is 35 %, with the 32-thread baseline beaten by far.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments.fig08_sat import run_fig8

_SCALES = {"PageMine": 0.25, "ISort": 0.5, "GSearch": 0.5, "EP": 0.5}
_GRID = (1, 2, 3, 4, 5, 6, 7, 8, 10, 12, 16, 24, 32)


def _run():
    panels = []
    from repro.experiments.fig08_sat import Fig8Result
    for name, scale in _SCALES.items():
        part = run_fig8(scale=scale, thread_counts=_GRID, workloads=(name,))
        panels.extend(part.panels)
    return Fig8Result(panels=tuple(panels))


def test_fig08_sat_panels(benchmark, save_result):
    result = run_once(benchmark, _run)
    save_result("fig08_sat", result.format())

    for panel in result.panels:
        # The knee is at a small thread count for every CS-limited app.
        assert 3 <= panel.best_static_threads <= 8, panel.workload
        # SAT picks a similarly small team...
        assert 2 <= panel.sat_threads <= 8, panel.workload
        # ...lands near the minimum...
        assert panel.sat_vs_best <= 1.35, panel.workload
        # ...and crushes the 32-thread baseline on time and power.
        baseline = panel.sweep.point(32)
        assert panel.sat_cycles < 0.7 * baseline.cycles, panel.workload
        assert panel.sat_power < 0.35 * baseline.power, panel.workload

    # Paper-specific picks that should hold at repro scale:
    assert result.panel("ISort").sat_threads == 7
    assert result.panel("EP").sat_threads in (4, 5)
