"""Section 9 extension benchmark: FDT on an SMT-2 machine.

Not a paper figure — it validates the paper's §9 claim that the
conclusions carry over to SMT-enabled cores, and quantifies the one
interaction that does not (BAT's round-up on mixed-speed slots).
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments.smt_extension import run_smt


def test_smt_extension(benchmark, save_result):
    result = run_once(benchmark, lambda: run_smt(scale=0.25))
    save_result("smt_extension", result.format())

    # The CS-limited kernel is still curtailed to a handful of threads
    # and saves nearly everything vs 64-thread conventional threading.
    pagemine = result.row("PageMine")
    assert pagemine.fdt_threads[0] <= 8
    assert pagemine.norm_time < 0.4
    assert pagemine.norm_power < 0.2

    # The BW-limited kernel still saturates at the same thread count.
    ed = result.row("ED")
    assert ed.fdt_threads[0] in (7, 8)
    assert ed.norm_power < 0.4

    # The compute-bound kernel documents the known SMT interaction:
    # an intermediate pick on heterogeneous-speed slots is imbalanced.
    bscholes = result.row("BScholes")
    assert 32 < bscholes.fdt_threads[0] < 64
    assert bscholes.norm_time > 1.0  # the reported pathology
