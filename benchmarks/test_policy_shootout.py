"""Capstone shootout: every policy on one workload per class.

Conventional 32-thread threading vs the paper's FDT vs the §9
extensions, normalized to the conventional baseline.  Summarizes the
whole reproduction in one table: FDT wins or ties everywhere the paper
says it should, and the extensions close its known gaps.
"""

from __future__ import annotations

from conftest import run_once

from repro.analysis.compare import compare_policies
from repro.fdt.extensions import CalibratedBatPolicy, TwoPhaseSatPolicy
from repro.fdt.policies import FdtMode, FdtPolicy, StaticPolicy
from repro.workloads import get

BUILDERS = {
    "PageMine": lambda: get("PageMine").build(0.5),   # CS-limited
    "ED": lambda: get("ED").build(0.25),               # BW-limited
    "BScholes": lambda: get("BScholes").build(0.5),    # scalable
}

POLICIES = (
    StaticPolicy(),                       # the conventional baseline
    FdtPolicy(FdtMode.COMBINED),          # the paper
    TwoPhaseSatPolicy(),                  # §9: contended-CS refinement
    CalibratedBatPolicy(probe_threads=4),  # §9: sub-linear BAT
)


def test_policy_shootout(benchmark, save_result):
    result = run_once(
        benchmark, lambda: compare_policies(BUILDERS, list(POLICIES)))
    save_result("policy_shootout", result.format())

    fdt = "fdt-sat+bat"
    # FDT crushes the baseline on the CS-limited workload...
    page = result.cell("PageMine", fdt)
    assert page.norm_time < 0.6
    assert page.norm_power < 0.3
    # ...saves most of the power at ~flat time on the BW-limited one...
    ed = result.cell("ED", fdt)
    assert ed.norm_time < 1.3
    assert ed.norm_power < 0.4
    # ...and leaves the scalable one alone.
    bs = result.cell("BScholes", fdt)
    assert bs.threads[-1] == 32

    # The SAT extension never loses to plain FDT on the CS workload.
    two_phase = result.cell("PageMine", "sat-two-phase")
    assert two_phase.norm_time <= page.norm_time * 1.15

    # The BAT extension matches or beats plain FDT on the BW workload.
    calibrated = result.cell("ED", "bat-calibrated-4")
    assert calibrated.norm_time <= ed.norm_time * 1.10

    # Aggregate: every FDT-family policy beats the baseline's gmeans.
    for policy in (fdt, "sat-two-phase", "bat-calibrated-4"):
        assert result.gmean_power(policy) < 0.65, policy
