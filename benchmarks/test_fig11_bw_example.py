"""Figure 11: the worked bandwidth example (Eq. 4-6).

Paper numbers: utilization 25/50/100/100 %, times 1, 1/2, 1/4, 1/4 at
P = 1, 2, 4, 8 — P = 4 and P = 8 take the same time.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments.fig11_bw_example import run_fig11


def test_fig11_worked_example(benchmark, save_result):
    result = run_once(benchmark, run_fig11)
    save_result("fig11_bw_example", result.format())
    assert result.times == (1.0, 0.5, 0.25, 0.25)
    assert result.utilizations == (0.25, 0.5, 1.0, 1.0)
    assert result.model.saturation_threads() == 4.0
