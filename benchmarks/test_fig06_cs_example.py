"""Figure 6: the worked critical-section example (Eq. 1).

The paper's numbers are exact: 10, 8, 10, 17 units at P = 1, 2, 4, 8.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments.fig06_cs_example import run_fig6


def test_fig06_worked_example(benchmark, save_result):
    result = run_once(benchmark, run_fig6)
    save_result("fig06_cs_example", result.format())
    assert result.times == (10.0, 8.0, 10.0, 17.0)
    assert result.model.optimal_threads() == 2.0
