"""Figure 4: ED execution time and bus utilization vs threads.

Paper shape: time scales as 1/P until ~8 threads then flattens; bus
utilization ramps linearly to 100 % at the same knee and stays there.
"""

from __future__ import annotations

import pytest
from conftest import run_once

from repro.experiments.fig04_ed import run_fig4


def test_fig04_ed_time_and_utilization(benchmark, save_result):
    result = run_once(benchmark, lambda: run_fig4(scale=0.15))
    save_result("fig04_ed", result.format())

    curve = dict(zip(result.thread_counts, result.normalized_times))
    util = dict(zip(result.thread_counts, result.bus_utilizations))

    # 4a: near-ideal scaling below the knee...
    assert curve[2] == pytest.approx(0.5, abs=0.05)
    assert curve[4] == pytest.approx(0.25, abs=0.05)
    # ...then flat beyond it.
    assert curve[12] == pytest.approx(curve[32], rel=0.08)
    assert curve[32] < 0.2

    # 4b: utilization ramps linearly (paper: BU_1 ~ 14.3%)...
    assert util[1] == pytest.approx(0.143, abs=0.02)
    assert util[4] == pytest.approx(4 * util[1], rel=0.15)
    # ...saturating at the knee the paper puts at 8 threads.
    assert 7 <= result.saturation_threads <= 10
    assert util[32] > 0.97
