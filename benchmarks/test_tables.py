"""Tables 1 and 2: machine configuration and workload roster."""

from __future__ import annotations

from conftest import run_once

from repro.experiments.tables import run_table1, run_table2
from repro.sim.config import MachineConfig


def test_table1_machine_configuration(benchmark, save_result):
    result = run_once(benchmark, run_table1)
    save_result("table1_machine", result.format())
    cfg = result.config
    assert cfg == MachineConfig.asplos08_baseline()
    assert cfg.num_cores == 32
    assert cfg.bus_cycles_per_line == 32  # one line per 32 cycles at peak


def test_table2_workload_roster(benchmark, save_result):
    result = run_once(benchmark, run_table2)
    save_result("table2_workloads", result.format())
    assert len(result.specs) == 12
    categories = [s.category.value for s in result.specs]
    assert categories.count("synchronization-limited") == 4
    assert categories.count("bandwidth-limited") == 4
    assert categories.count("scalable") == 4
