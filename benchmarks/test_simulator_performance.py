"""Simulator throughput benchmarks (host performance, not paper results).

These use pytest-benchmark's statistics properly (multiple rounds) to
track the simulator's own speed: simulated cycles and memory ops per
host second for representative op mixes.  Useful for catching
performance regressions in the hot paths (event loop, memory walk).
"""

from __future__ import annotations

from repro.fdt.policies import StaticPolicy
from repro.fdt.runner import run_application
from repro.isa.ops import Compute, Load
from repro.sim.config import MachineConfig
from repro.sim.machine import Machine
from repro.workloads import get


def test_throughput_compute_bound(benchmark):
    """Event-loop hot path: compute ops only."""

    def run():
        m = Machine(MachineConfig.small())

        def factory(tid, team):
            for _ in range(2000):
                yield Compute(64)

        m.run_parallel([factory] * 4, spawn_overhead=False)
        return m.now

    cycles = benchmark.pedantic(run, rounds=3, iterations=1)
    assert cycles > 0


def test_throughput_miss_bound(benchmark):
    """Memory-walk hot path: every load is an L3 miss."""

    def run():
        m = Machine(MachineConfig.asplos08_baseline())

        def factory(tid, team):
            base = (1 << 22) + tid * (1 << 20)
            for k in range(1500):
                yield Load(base + k * 64)

        m.run_parallel([factory] * 8, spawn_overhead=False)
        return m.memsys.bus.stats.transfers

    transfers = benchmark.pedantic(run, rounds=3, iterations=1)
    assert transfers == 8 * 1500


def test_throughput_full_workload(benchmark):
    """End-to-end: one small PageMine run under static threading."""

    def run():
        res = run_application(get("PageMine").build(0.1), StaticPolicy(8),
                              MachineConfig.asplos08_baseline())
        return res.cycles

    cycles = benchmark.pedantic(run, rounds=3, iterations=1)
    assert cycles > 0
