"""Crossover study: Eq. 7's min-rule validated inside the simulator.

Not a paper figure — it closes the loop between the appendix's model
argument (Figures 16/17) and the simulated machine: as a synthetic
kernel's bandwidth demand grows, the binding limiter flips from SAT's
bound to BAT's, and FDT tracks the simulated optimum on both sides.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments.crossover import run_crossover


def test_crossover_binding_limiter_flips(benchmark, save_result):
    result = run_once(
        benchmark,
        lambda: run_crossover(iterations=96,
                              thread_counts=(1, 2, 4, 6, 8, 10, 12, 16, 32)))
    save_result("crossover", result.format())

    assert result.crossed, "the binding constraint must flip SAT -> BAT"
    # On the pure-CS side, FDT picks the SAT bound; on the heavy-BW
    # side, the BAT bound.
    first, last = result.points[0], result.points[-1]
    assert first.binding == "SAT"
    assert last.binding == "BAT"
    assert first.fdt_threads == min(first.p_cs, first.p_bw)
    assert last.fdt_threads == min(last.p_cs, last.p_bw)
    # FDT stays near the simulated optimum at every point.
    for p in result.points:
        assert p.fdt_vs_best <= 1.30, f"bus_lines={p.bus_lines}"
