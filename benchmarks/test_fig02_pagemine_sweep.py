"""Figure 2: PageMine normalized execution time vs 1-32 threads.

Paper shape: time falls to a minimum around 4-6 threads and rises
substantially beyond, ending worse than single-threaded at 32.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments.fig02_pagemine import run_fig2


def test_fig02_pagemine_sweep(benchmark, save_result):
    result = run_once(benchmark, lambda: run_fig2(scale=0.25))
    save_result("fig02_pagemine", result.format())

    curve = dict(zip(result.thread_counts, result.normalized_times))
    # The minimum sits at a small thread count (paper: ~4).
    assert 3 <= result.best_threads <= 6
    # Initial scaling helps...
    assert curve[2] < 0.75
    # ...the curve turns upward past the knee...
    assert curve[16] > curve[8] > curve[result.best_threads]
    # ...and 32 threads are worse than one (critical section dominates).
    assert curve[32] > 1.0
