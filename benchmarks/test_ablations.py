"""Ablations of the design choices DESIGN.md §7 calls out.

These are not paper figures; they quantify how much each modeling choice
matters, which is what a reviewer of the reproduction would ask next.
"""

from __future__ import annotations

from dataclasses import replace

import pytest
from conftest import run_once

from repro.analysis.report import ascii_table
from repro.analysis.sweep import sweep_threads
from repro.fdt.estimators import estimate
from repro.fdt.policies import FdtMode, FdtPolicy, StaticPolicy
from repro.fdt.runner import run_application
from repro.fdt.training import TrainingConfig
from repro.models import bat_model
from repro.sim.config import MachineConfig
from repro.sim.machine import Machine
from repro.workloads import get

BASE = MachineConfig.asplos08_baseline()


def test_ablation_lock_grant_order(benchmark, save_result):
    """FIFO vs LIFO lock grant: fairness changes who waits, and unfair
    grant lengthens the barrier-bound critical path of the Figure-1
    pattern (late-granted threads delay the whole page)."""

    def run():
        rows = []
        for order in ("fifo", "lifo"):
            cfg = replace(BASE, lock_grant_order=order)
            res = run_application(get("PageMine").build(0.25),
                                  StaticPolicy(8), cfg)
            rows.append((order, res.cycles, res.power))
        return rows

    rows = run_once(benchmark, run)
    save_result("ablation_lock_grant",
                ascii_table(("grant order", "cycles", "power"), rows))
    fifo_cycles = rows[0][1]
    lifo_cycles = rows[1][1]
    # Same serialized work either way: total time within ~10%.
    assert lifo_cycles == pytest.approx(fifo_cycles, rel=0.1)


def test_ablation_training_length(benchmark, save_result):
    """Longer training refines the estimate but costs serial cycles.

    Sweeping the iteration cap shows the paper's 1%-with-stability rule
    is on the flat part of the accuracy curve: more training does not
    change the decision, it only adds time.
    """

    def run():
        rows = []
        # (cap fraction, floor, stability tolerance); tolerance 0
        # disables the early-stop so training runs to the cap.
        for frac, floor, tol in ((0.005, 3, 0.05), (0.01, 5, 0.05),
                                 (0.05, 5, 0.0), (0.15, 5, 0.0)):
            policy = FdtPolicy(FdtMode.SAT, training=TrainingConfig(
                max_iteration_fraction=frac, min_iterations=floor,
                stability_tolerance=tol))
            res = run_application(get("PageMine").build(0.5), policy, BASE)
            info = res.kernel_infos[0]
            rows.append((f"{frac:.1%}/{floor}/{tol:g}",
                         info.trained_iterations, info.threads, res.cycles))
        return rows

    rows = run_once(benchmark, run)
    save_result("ablation_training_length", ascii_table(
        ("cap (frac/floor/tol)", "trained iters", "decision", "cycles"),
        rows))
    decisions = {r[2] for r in rows}
    assert max(decisions) - min(decisions) <= 1, "decision is stable"
    # Forced-longer training costs strictly more total time.
    assert rows[-1][1] > rows[1][1]
    assert rows[-1][3] > rows[1][3]


def test_ablation_bat_rounding(benchmark, save_result):
    """BAT rounds P_BW *up* (paper §5.2).  Rounding down undershoots the
    saturation point and leaves measurable performance behind."""

    def run():
        machine = Machine(BASE)
        res = run_application(get("ED").build(0.2), FdtPolicy(FdtMode.BAT),
                              machine=machine)
        info = res.kernel_infos[0]
        bu1 = info.estimates.bu1
        up = bat_model.predicted_thread_count(bu1, 32)
        down = max(1, int(1.0 / bu1))
        t_up = sweep_threads(lambda: get("ED").build(0.2), (up,), BASE)
        t_down = sweep_threads(lambda: get("ED").build(0.2), (down,), BASE)
        return bu1, up, down, t_up.points[0].cycles, t_down.points[0].cycles

    bu1, up, down, c_up, c_down = run_once(benchmark, run)
    save_result("ablation_bat_rounding", ascii_table(
        ("BU_1", "round up", "round down", "cycles up", "cycles down"),
        [(f"{bu1:.3f}", up, down, c_up, c_down)]))
    assert up >= down
    assert c_up <= c_down * 1.01  # rounding up never hurts


def test_ablation_linear_bandwidth_assumption(benchmark, save_result):
    """Eq. 4 assumes utilization scales linearly with threads.  The
    simulator's measured utilization is mildly sub-linear near the knee
    (DRAM and bus queueing), which is exactly why the paper's BAT
    prediction for ED (7) sits one below the true knee (8)."""

    def run():
        sweep = sweep_threads(lambda: get("ED").build(0.2),
                              (1, 2, 4, 6, 7, 8), BASE)
        bu1 = sweep.points[0].bus_utilization
        rows = [(p.threads, p.bus_utilization, min(1.0, bu1 * p.threads))
                for p in sweep.points]
        return bu1, rows

    bu1, rows = run_once(benchmark, run)
    save_result("ablation_linear_bw", ascii_table(
        ("threads", "measured BU", "Eq.4 linear BU"), rows))
    for threads, measured, linear in rows:
        assert measured <= linear + 0.02, "never super-linear"
    # Sub-linearity is mild below the knee (within ~12%).
    for threads, measured, linear in rows[:4]:
        assert measured >= 0.88 * linear


def test_ablation_dram_page_policy(benchmark, save_result):
    """Open-page vs closed-page DRAM: the streaming kernels earn their
    row hits, so closing the page after every access slows single-thread
    streams and shifts BU_1 upward."""

    def run():
        rows = []
        for open_page in (True, False):
            cfg = replace(BASE, dram_open_page=open_page)
            machine = Machine(cfg)
            res = run_application(get("ED").build(0.1), StaticPolicy(1),
                                  machine=machine)
            r = res.result
            rows.append(("open" if open_page else "closed", r.cycles,
                         round(r.bus_utilization, 4),
                         round(machine.memsys.dram.stats.row_hit_rate, 3)))
        return rows

    rows = run_once(benchmark, run)
    save_result("ablation_dram_page", ascii_table(
        ("policy", "cycles", "BU_1", "row-hit rate"), rows))
    open_row, closed_row = rows
    assert open_row[3] > 0.9, "open-page stream row-hits"
    assert closed_row[3] == 0.0, "closed-page never row-hits"
    assert closed_row[1] > open_row[1], "closed-page is slower"


def test_ablation_idle_power_floor(benchmark, save_result):
    """The paper's power metric gates idle cores perfectly.  With a
    leakage floor (idle cores at 20% of active power), FDT's saving
    shrinks but remains decisive for CS-limited workloads."""
    from repro.power import ActiveCorePowerModel

    def run():
        base = run_application(get("PageMine").build(0.25), StaticPolicy(),
                               BASE)
        fdt = run_application(get("PageMine").build(0.25), FdtPolicy(), BASE)
        rows = []
        for idle in (0.0, 0.2, 0.5):
            model = ActiveCorePowerModel(32, idle_fraction=idle)
            saving = 1 - model.power(fdt.result) / model.power(base.result)
            rows.append((f"{idle:.0%}", f"{saving:.1%}"))
        return rows

    rows = run_once(benchmark, run)
    save_result("ablation_idle_power", ascii_table(
        ("idle power fraction", "FDT power saving"), rows))
    savings = [float(r[1].rstrip("%")) for r in rows]
    assert savings[0] > savings[1] > savings[2]
    assert savings[1] > 30.0  # still large with 20% leakage


def test_ablation_ring_bandwidth(benchmark, save_result):
    """Narrow-ring ablation (paper §9: interconnect contention as a
    future FDT target).  With 16-cycle link occupancy (a 4-byte-wide
    ring), coherence traffic contends on shared segments and the
    CS-limited kernel's knee shifts toward fewer threads."""

    def run():
        rows = []
        for occupancy in (0, 16):
            cfg = replace(BASE, ring_link_occupancy=occupancy)
            machine = Machine(cfg)
            res = run_application(get("PageMine").build(0.25),
                                  StaticPolicy(8), machine=machine)
            rows.append((occupancy, res.cycles,
                         machine.ring.stats.link_wait_cycles))
        return rows

    rows = run_once(benchmark, run)
    save_result("ablation_ring_bandwidth", ascii_table(
        ("link occupancy", "cycles", "link wait cycles"), rows))
    wide, narrow = rows
    assert wide[2] == 0, "the 64-byte ring never waits"
    assert narrow[2] > 0, "the narrow ring contends"
    assert narrow[1] > wide[1], "contention costs time"
