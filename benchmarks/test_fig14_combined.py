"""Figure 14: SAT+BAT on all twelve workloads vs the 32-thread baseline.

Paper outcome (normalized to 32 threads): big time and power cuts for
the synchronization-limited group, big power cuts at flat time for the
bandwidth-limited group, no change for the scalable group; geometric
means -17 % time and -59 % power.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments.fig14_combined import run_fig14

_SCALES = {"PageMine": 0.5, "ISort": 1.0, "GSearch": 1.0, "EP": 1.0,
           "ED": 0.4, "convert": 1.0, "Transpose": 0.5, "MTwister": 1.0,
           "BT": 1.0, "MG": 1.0, "BScholes": 1.0, "SConv": 1.0}


def test_fig14_combined_all_workloads(benchmark, save_result):
    result = run_once(benchmark, lambda: run_fig14(scales=_SCALES))
    save_result("fig14_combined", result.format())

    # Synchronization-limited: both time and power fall hard.
    for name in ("PageMine", "ISort", "GSearch", "EP"):
        row = result.row(name)
        assert row.norm_time < 0.7, name
        assert row.norm_power < 0.35, name

    # Bandwidth-limited: power falls hard at roughly flat time (the
    # residual few percent is the serial-training floor at repro scale).
    for name in ("ED", "convert", "Transpose"):
        row = result.row(name)
        assert row.norm_time < 1.30, name
        assert row.norm_power < 0.65, name
    assert result.row("MTwister").norm_power < 0.85  # paper: -31% vs oracle

    # Scalable: FDT keeps all 32 threads and changes little.
    for name in ("BT", "MG", "BScholes", "SConv"):
        row = result.row(name)
        assert row.fdt_threads[-1] == 32, name
        assert row.norm_time < 1.30, name

    # Geometric means in the paper's direction and ballpark
    # (paper: 0.83 time, 0.41 power).
    assert result.gmean_time < 0.95
    assert result.gmean_power < 0.55
