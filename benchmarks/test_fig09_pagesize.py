"""Figures 9/10: SAT's adaptation to the input set (PageMine page size).

Paper shape: the best thread count grows with the page size (roughly as
its square root), and SAT tracks it across sizes, so no static choice
works for all inputs.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments.fig09_pagesize import run_fig9

_GRID = (1, 2, 3, 4, 5, 6, 7, 8, 10, 12, 16, 24, 32)
_SIZES = (1024, 2560, 5280, 10240, 25600)


def test_fig09_best_threads_vs_pagesize(benchmark, save_result):
    result = run_once(
        benchmark,
        lambda: run_fig9(page_sizes=_SIZES, scale=0.4, thread_counts=_GRID))
    save_result("fig09_fig10_pagesize", result.format())

    by_size = {p.page_bytes: p for p in result.points}
    # Bigger pages push the knee to more threads (paper Figure 9)...
    assert by_size[25600].best_static_threads > by_size[1024].best_static_threads
    assert by_size[10240].best_static_threads >= by_size[2560].best_static_threads
    # ...and SAT's pick grows with it (Figure 10's two sizes).
    assert by_size[10240].sat_threads > by_size[2560].sat_threads
    # SAT stays close to each size's own minimum.
    for p in result.points:
        assert p.sat_vs_best <= 1.40, f"{p.page_bytes} B"
