"""Figure 13: BAT's adaptation to the machine's bus bandwidth (convert).

Paper outcome: at half bandwidth the sweep saturates near 8 threads and
BAT picks 8; at double bandwidth the curve keeps scaling and BAT picks
32.  A static choice tuned to one machine misbehaves on the other.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments.fig13_bandwidth import run_fig13

_GRID = (1, 2, 4, 6, 8, 10, 12, 16, 20, 24, 32)


def test_fig13_bandwidth_adaptation(benchmark, save_result):
    result = run_once(benchmark, lambda: run_fig13(thread_counts=_GRID))
    save_result("fig13_bandwidth", result.format())

    half = result.panel(0.5)
    double = result.panel(2.0)

    # Half bandwidth: saturation around 8 threads; BAT tracks it.
    # (BAT runs a little high here because utilization scales
    # sub-linearly under DRAM contention — the limitation the paper
    # itself notes in Section 5.3 for ED.)
    assert 6 <= half.bat_threads <= 10, "paper: BAT picks 8"
    assert half.bat_vs_best <= 1.35

    # Double bandwidth: no saturation below 32; BAT uses every core.
    assert double.bat_threads == 32, "paper: BAT picks 32"
    assert double.bat_vs_best <= 1.25

    # The paper's warning about static choices: running the
    # half-bandwidth pick on the double-bandwidth machine wastes most
    # of the faster bus (its 8-thread point is far above its minimum).
    static_8_on_double = double.sweep.point(8).cycles
    assert static_8_on_double > 1.5 * double.sweep.min_cycles
