"""Figures 16/17 (appendix): Eq. 7's min(P_CS, P_BW) is optimal.

Both orderings are evaluated on the combined model and the Eq. 7 choice
is checked against a brute-force argmin.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments.fig16_17_proof import run_fig16_17


def test_fig16_17_min_optimality(benchmark, save_result):
    result = run_once(benchmark, run_fig16_17)
    save_result("fig16_17_min_proof", result.format())

    case16, case17 = result.cases
    # Figure 16: P_CS < P_BW -> the CS bound sets the optimum.
    assert case16.eq7_choice == 5
    assert case16.eq7_is_optimal
    # Figure 17: P_BW < P_CS -> the bandwidth bound sets the optimum.
    assert case17.eq7_choice == 5
    assert case17.eq7_is_optimal
    # Past the chosen point both curves rise (linearly in the CS term).
    for case in result.cases:
        curve = case.curve
        assert curve[10] > curve[case.eq7_choice - 1]
        assert curve[31] > curve[10]
