"""Figure 15: SAT+BAT vs the best static (oracle) policy.

Paper outcome: FDT is on par with the per-application oracle everywhere
except MTwister, where per-kernel retraining (32 then 12 threads) cuts
power 31 % below the oracle's single whole-program choice.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments.fig15_oracle import Fig15Result, run_fig15

_GRID = (1, 2, 3, 4, 5, 6, 7, 8, 10, 12, 16, 24, 32)
_MTWISTER_GRID = (1, 4, 8, 12, 16, 24, 32)
_SCALES = {"PageMine": 0.5, "ISort": 1.0, "GSearch": 1.0, "EP": 1.0,
           "ED": 0.4, "convert": 1.0, "Transpose": 0.5,
           "BT": 1.0, "MG": 1.0, "BScholes": 1.0, "SConv": 1.0}


def _run() -> Fig15Result:
    main = run_fig15(thread_counts=_GRID, scales=_SCALES,
                     workloads=tuple(_SCALES))
    mtw = run_fig15(thread_counts=_MTWISTER_GRID, workloads=("MTwister",))
    return Fig15Result(rows=main.rows + mtw.rows)


def test_fig15_fdt_vs_oracle(benchmark, save_result):
    result = run_once(benchmark, _run)
    save_result("fig15_oracle", result.format())

    for row in result.rows:
        # FDT never loses badly to the oracle on time (training floor
        # costs a few percent at repro scale)...
        assert row.fdt_time <= row.oracle_time * 1.4 + 0.02, row.workload
        # ...or on power.
        assert row.fdt_power <= row.oracle_power * 1.3 + 0.02, row.workload

    # MTwister: the oracle must pick one count for both kernels; FDT's
    # per-kernel choice saves substantial power at similar time
    # (paper: 31% less power than the oracle at equal time; the repro
    # pays its Box-Muller training floor, ~a quarter extra).
    mtw = result.row("MTwister")
    assert mtw.fdt_power < 0.85 * mtw.oracle_power
    assert mtw.fdt_time <= mtw.oracle_time * 1.30

    # Scalable apps: both policies keep every core busy.
    for name in ("BT", "BScholes", "SConv"):
        row = result.row(name)
        assert row.oracle_threads >= 24, name
        assert row.fdt_threads[-1] == 32, name
