"""Shared helpers for the figure/table benchmarks.

Every benchmark regenerates one paper table or figure, asserts its shape
claims, and writes the formatted output to ``benchmarks/results/`` so the
regenerated figures survive the run.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def save_result(results_dir: Path):
    """Write a figure's formatted output to results/<name>.txt and echo it."""

    def _save(name: str, text: str) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[saved to {path}]")

    return _save


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
