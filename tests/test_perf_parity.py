"""Fast paths vs ``REPRO_SLOW_PATHS=1`` reference paths: bit-identical.

The simulator's hot-path optimizations (Compute-run coalescing, the
event queue's FIFO tail, the inlined L1/L2 load walk and miss path in
the memory system) are pure speedups: they must not change a single
simulated cycle or counter.  ``REPRO_SLOW_PATHS=1`` forces every
component back onto its straightforward reference code; these tests run
the same workloads both ways and require the results to match exactly —
not approximately, bit for bit.

The environment variable is read once at *construction* time by each
component, so flipping it between machine builds inside one process is
sufficient; no subprocesses needed.
"""

from __future__ import annotations

import pytest

from repro.fdt.policies import FdtMode, FdtPolicy, StaticPolicy
from repro.fdt.runner import run_application
from repro.isa.ops import Branch, Compute, Load, Lock, Store, Unlock
from repro.sim.config import MachineConfig
from repro.sim.machine import Machine
from repro.workloads import get


def _app_fingerprint(workload: str, policy_name: str) -> dict[str, int | str]:
    """Run one workload/policy pair; return every aggregate counter."""
    app = get(workload).build(0.05)
    policy = (StaticPolicy(4) if policy_name == "static"
              else FdtPolicy(FdtMode.COMBINED))
    run = run_application(app, policy, MachineConfig.small())
    result = run.result
    return {
        "cycles": run.cycles,
        "threads_used": str(run.threads_used),
        "retired": result.retired_instructions,
        "busy_core_cycles": result.busy_core_cycles,
        "spin_core_cycles": result.spin_core_cycles,
        "bus_busy_cycles": result.bus_busy_cycles,
        "bus_transfers": result.bus_transfers,
        "l3_misses": result.l3_misses,
        "l3_accesses": result.l3_accesses,
        "lock_acquisitions": result.lock_acquisitions,
    }


@pytest.mark.parametrize("policy_name", ["static", "fdt"])
@pytest.mark.parametrize("workload", ["EP", "PageMine", "ED"])
def test_workloads_identical_fast_vs_slow(monkeypatch, workload,
                                          policy_name):
    monkeypatch.delenv("REPRO_SLOW_PATHS", raising=False)
    fast = _app_fingerprint(workload, policy_name)
    monkeypatch.setenv("REPRO_SLOW_PATHS", "1")
    slow = _app_fingerprint(workload, policy_name)
    assert fast == slow


def _mixed_factory(tid: int, team: int):
    """Synthetic thread touching every op the fast paths specialize.

    Alternating Compute/Load streams exercise the coalescer's pull-ahead
    and pending-op dispatch; strided loads and stores walk L1 hits, L2
    hits, clean and dirty misses, cross-core sharing and invalidations;
    the lock section adds spin/wake event reordering through the queue's
    heap (wakeups land out of FIFO order).
    """
    base = tid * 1 << 18
    shared = 1 << 24
    for i in range(40):
        yield Compute(37)
        yield Compute(0)
        yield Compute(5)
        yield Load(base + i * 4096)
        yield Store(base + i * 4096 + 64)
        yield Load(shared + (i % 7) * 64)
        yield Branch(pc=base + i, taken=(i * tid) % 3 == 0)
        if i % 5 == 0:
            yield Lock(0)
            yield Load(shared)
            yield Compute(11)
            yield Store(shared)
            yield Unlock(0)
        yield Store(shared + ((i + tid) % 11) * 64)


def _machine_fingerprint() -> dict[str, object]:
    """Run the synthetic region; return deep per-component counters."""
    machine = Machine(MachineConfig.small())
    region = machine.run_parallel([_mixed_factory] * 4)
    memsys = machine.memsys
    return {
        "now": machine.now,
        "region": (region.start_cycle, region.end_cycle),
        "retired_per_core": [c.retired_instructions for c in machine.cores],
        "counter_file": list(machine.counters._retired),
        "spin_per_core": [c.spin_cycles for c in machine.cores],
        "l1": [(c.stats.hits, c.stats.misses, c.stats.evictions,
                c.stats.invalidations) for c in memsys.l1s],
        "l2": [(c.stats.hits, c.stats.misses, c.stats.evictions,
                c.stats.invalidations) for c in memsys.l2s],
        "l3": [(b.cache.stats.hits, b.cache.stats.misses,
                b.cache.stats.evictions) for b in memsys.l3.banks],
        "directory": (memsys.directory.stats.gets,
                      memsys.directory.stats.getm,
                      memsys.directory.stats.upgrades,
                      memsys.directory.stats.invalidations_sent,
                      memsys.directory.stats.cache_to_cache,
                      memsys.directory.stats.writebacks_to_l3),
        "bus": (memsys.bus.stats.transfers, memsys.bus.stats.busy_cycles,
                memsys.bus.stats.total_wait_cycles),
        "dram": (memsys.dram.stats.accesses, memsys.dram.stats.row_hits),
        "ring": (memsys.ring.stats.messages, memsys.ring.stats.total_hops),
        "memsys": (memsys.stats.loads, memsys.stats.stores,
                   memsys.stats.l2_writebacks,
                   memsys.stats.l3_writebacks_to_dram,
                   memsys.stats.recalls),
        "locks": (machine.locks.stats.acquisitions,
                  machine.locks.stats.contended_acquisitions),
    }


def test_per_component_counters_identical_fast_vs_slow(monkeypatch):
    monkeypatch.delenv("REPRO_SLOW_PATHS", raising=False)
    fast = _machine_fingerprint()
    monkeypatch.setenv("REPRO_SLOW_PATHS", "1")
    slow = _machine_fingerprint()
    assert fast == slow


def test_slow_paths_flag_actually_selects_reference_code(monkeypatch):
    """Guard against the reference mode silently rotting: the flag must
    reach each component's constructor."""
    monkeypatch.setenv("REPRO_SLOW_PATHS", "1")
    machine = Machine(MachineConfig.small())
    assert not machine.events._fast
    assert not machine.memsys._fast
    assert not machine.cores[0]._coalesce
    monkeypatch.delenv("REPRO_SLOW_PATHS")
    machine = Machine(MachineConfig.small())
    assert machine.events._fast
    assert machine.memsys._fast
    assert machine.cores[0]._coalesce
