"""Unit tests for the analytical models (Eq. 1-7)."""

from __future__ import annotations

import math

import pytest

from repro.models.bat_model import BatModel
from repro.models.bat_model import execution_time as bat_time
from repro.models.bat_model import predicted_thread_count as bat_predict
from repro.models.bat_model import bus_utilization, saturation_threads
from repro.models.combined import CombinedModel, combined_thread_choice
from repro.models.sat_model import SatModel
from repro.models.sat_model import execution_time as sat_time
from repro.models.sat_model import execution_time_derivative
from repro.models.sat_model import optimal_threads_cs
from repro.models.sat_model import predicted_thread_count as sat_predict


# -- SAT (Eq. 1-3) ---------------------------------------------------------

def test_eq1_paper_example():
    """Figure 6: 20% CS -> 10, 8, 10, 17 units at P = 1, 2, 4, 8."""
    assert sat_time(8, 2, 1) == 10
    assert sat_time(8, 2, 2) == 8
    assert sat_time(8, 2, 4) == 10
    assert sat_time(8, 2, 8) == 17


def test_eq3_square_root_law():
    assert optimal_threads_cs(100, 1) == pytest.approx(10.0)
    assert optimal_threads_cs(99, 1) == pytest.approx(math.sqrt(99))


def test_eq3_one_percent_cs_caps_at_ten_threads():
    """Paper: 'if the critical section accounts for only 1% of the
    overall execution time, the system becomes critical section limited
    with just 10 threads.'"""
    p = optimal_threads_cs(t_nocs=99.0, t_cs=1.0)
    assert 9.0 <= p <= 10.0


def test_eq2_derivative_sign_change_at_optimum():
    p_opt = optimal_threads_cs(64, 1)
    assert execution_time_derivative(64, 1, p_opt - 1) < 0
    assert execution_time_derivative(64, 1, p_opt + 1) > 0
    assert execution_time_derivative(64, 1, p_opt) == pytest.approx(0.0)


def test_no_critical_section_means_unbounded():
    assert optimal_threads_cs(10, 0) == math.inf
    assert optimal_threads_cs(10, 0, max_threads=32) == 32.0


def test_sat_prediction_rounds_to_nearest():
    # sqrt(42.6) = 6.53 -> 7 (the paper's PageMine arithmetic).
    assert sat_predict(42.64, 1.0, num_cores=32) == 7
    # sqrt(16) = 4 exactly.
    assert sat_predict(16, 1, num_cores=32) == 4


def test_sat_prediction_clamped_to_cores():
    assert sat_predict(10_000, 1, num_cores=32) == 32


def test_sat_prediction_at_least_one():
    assert sat_predict(0.01, 100, num_cores=32) == 1


def test_sat_model_curve_matches_pointwise():
    m = SatModel(t_nocs=80, t_cs=2)
    curve = m.curve(8)
    assert curve[0] == m.execution_time(1)
    assert curve[7] == m.execution_time(8)


def test_cs_fraction():
    assert SatModel(98, 2).cs_fraction == pytest.approx(0.02)
    assert SatModel(0, 0).cs_fraction == 0.0


def test_sat_invalid_inputs():
    with pytest.raises(ValueError):
        sat_time(-1, 1, 2)
    with pytest.raises(ValueError):
        sat_time(1, 1, 0)
    with pytest.raises(ValueError):
        optimal_threads_cs(-1, 1)


# -- BAT (Eq. 4-6) -----------------------------------------------------------

def test_eq4_linear_scaling_capped():
    assert bus_utilization(0.25, 1) == 0.25
    assert bus_utilization(0.25, 2) == 0.50
    assert bus_utilization(0.25, 4) == 1.00
    assert bus_utilization(0.25, 8) == 1.00


def test_eq5_ten_percent_saturates_at_ten_threads():
    """Paper: 'if a single thread utilizes the off-chip bus for 10% of
    the time, then the system will become bandwidth limited for more
    than 10 threads.'"""
    assert saturation_threads(0.10) == pytest.approx(10.0)


def test_eq6_flat_beyond_saturation():
    assert bat_time(100, 0.25, 2) == 50
    assert bat_time(100, 0.25, 4) == 25
    assert bat_time(100, 0.25, 8) == 25  # paper Figure 11: P=4 == P=8


def test_bat_prediction_rounds_up():
    # 1/0.058 = 17.24 -> 18; 1/0.0625 = 16 exactly -> 16.
    assert bat_predict(0.058, 32) == 18
    assert bat_predict(0.0625, 32) == 16
    # The paper's ED: BU_1 = 14.3% -> 6.99 -> 7.
    assert bat_predict(0.143, 32) == 7


def test_bat_prediction_clamped_to_cores():
    assert bat_predict(0.001, 32) == 32


def test_zero_utilization_means_unbounded():
    assert saturation_threads(0.0) == math.inf
    assert bat_predict(0.0, 32) == 32


def test_bat_invalid_inputs():
    with pytest.raises(ValueError):
        bus_utilization(1.5, 1)
    with pytest.raises(ValueError):
        bus_utilization(0.5, 0)
    with pytest.raises(ValueError):
        saturation_threads(-0.1)


def test_bat_model_utilization_curve():
    m = BatModel(t1=1.0, bu1=0.125)
    curve = m.utilization_curve(16)
    assert curve[0] == pytest.approx(0.125)
    assert curve[7] == pytest.approx(1.0)
    assert curve[15] == pytest.approx(1.0)


# -- Combined (Eq. 7 + appendix) --------------------------------------------

def test_eq7_takes_minimum():
    assert combined_thread_choice(5.0, 20.0, 32) == 5
    assert combined_thread_choice(20.0, 5.0, 32) == 5
    assert combined_thread_choice(20.0, 20.0, 8) == 8


def test_eq7_rounding_mirrors_sat_and_bat():
    # P_CS rounds to nearest; P_BW rounds up.
    assert combined_thread_choice(6.4, math.inf, 32) == 6
    assert combined_thread_choice(math.inf, 6.4, 32) == 7


def test_eq7_infinite_limits_fall_back_to_cores():
    assert combined_thread_choice(math.inf, math.inf, 32) == 32


def test_combined_time_reduces_to_sat_when_bus_unbounded():
    m = CombinedModel(sat=SatModel(80, 2), bat=BatModel(100, 0.0))
    for p in (1, 2, 4, 8):
        assert m.execution_time(p) == pytest.approx(sat_time(80, 2, p))


def test_appendix_case1_pcs_below_pbw():
    """Figure 16: with P_CS < P_BW the minimum is at P_CS."""
    m = CombinedModel(sat=SatModel(100, 4), bat=BatModel(100, 0.05))
    assert m.minimizer(32) == m.eq7_choice(32) == 5


def test_appendix_case2_pbw_below_pcs():
    """Figure 17: with P_BW < P_CS the minimum shifts to P_BW."""
    m = CombinedModel(sat=SatModel(100, 0.25), bat=BatModel(100, 0.2))
    assert m.eq7_choice(32) == 5
    assert m.execution_time(m.minimizer(32)) == pytest.approx(
        m.execution_time(5), rel=0.05)


def test_combined_curve_length():
    m = CombinedModel(sat=SatModel(10, 1), bat=BatModel(10, 0.5))
    assert len(m.curve(16)) == 16
