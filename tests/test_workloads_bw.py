"""Functional tests for the bandwidth-limited workloads."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.fdt.policies import StaticPolicy
from repro.fdt.runner import Application, run_application
from repro.isa.ops import Load, Store
from repro.isa.program import validate_program
from repro.sim.config import MachineConfig
from repro.workloads.convert import ConvertKernel, ConvertParams
from repro.workloads.ed import EdKernel, EdParams
from repro.workloads.mtwister import _State, BoxMullerKernel, MTGenKernel, MTwisterParams
from repro.workloads.transpose import TransposeKernel, TransposeParams


def small_cfg() -> MachineConfig:
    return MachineConfig.small()


# -- ED ------------------------------------------------------------------------

def test_ed_distance_matches_numpy():
    kernel = EdKernel(EdParams(n_elements=8192))
    for i in range(kernel.total_iterations):
        for _op in kernel.serial_iteration(i):
            pass
    assert kernel.distance() == pytest.approx(kernel.expected_distance())


def test_ed_distance_correct_under_team_execution():
    kernel = EdKernel(EdParams(n_elements=8192))
    run_application(Application.single(kernel), StaticPolicy(4), small_cfg())
    assert kernel.distance() == pytest.approx(kernel.expected_distance())


def test_ed_streams_every_line_once():
    kernel = EdKernel(EdParams(n_elements=4096))
    addrs = []
    for i in range(kernel.total_iterations):
        addrs.extend(op.addr for op in kernel.serial_iteration(i)
                     if isinstance(op, Load))
    assert len(addrs) == len(set(addrs))  # no reuse: pure streaming
    assert len(addrs) == kernel.total_iterations * 64


def test_ed_rejects_tiny_input():
    with pytest.raises(WorkloadError):
        EdParams(n_elements=10)


# -- convert ----------------------------------------------------------------------

def test_convert_output_matches_table_map():
    kernel = ConvertKernel(ConvertParams(height=16))
    for row in range(kernel.total_iterations):
        for _op in kernel.serial_iteration(row):
            pass
    np.testing.assert_array_equal(kernel.output, kernel.expected_output())


def test_convert_reads_and_writes_each_row():
    kernel = ConvertKernel(ConvertParams(height=4))
    # One row = two segments of 10 lines each.
    for segment in (0, 1):
        ops = validate_program(kernel.serial_iteration(segment))
        loads = [op for op in ops if isinstance(op, Load)]
        stores = [op for op in ops if isinstance(op, Store)]
        assert len(loads) == len(stores) == 10  # 640 B / 64 B


def test_convert_input_and_output_disjoint():
    kernel = ConvertKernel(ConvertParams(height=4))
    ops = list(kernel.serial_iteration(1))
    load_addrs = {op.addr for op in ops if isinstance(op, Load)}
    store_addrs = {op.addr for op in ops if isinstance(op, Store)}
    assert not load_addrs & store_addrs


def test_convert_rejects_narrow_image():
    with pytest.raises(WorkloadError):
        ConvertParams(width=8, bytes_per_pixel=4)


# -- Transpose -----------------------------------------------------------------------

def test_transpose_result_matches_numpy():
    kernel = TransposeKernel(TransposeParams(rows=32, cols=64))
    for t in range(kernel.total_iterations):
        for _op in kernel.serial_iteration(t):
            pass
    np.testing.assert_array_equal(kernel.result, kernel.expected_result())


def test_transpose_under_team_execution():
    kernel = TransposeKernel(TransposeParams(rows=32, cols=64))
    run_application(Application.single(kernel), StaticPolicy(4), small_cfg())
    np.testing.assert_array_equal(kernel.result, kernel.expected_result())


def test_transpose_tile_reads_16_lines_writes_16_lines():
    kernel = TransposeKernel(TransposeParams(rows=32, cols=64))
    ops = list(kernel.serial_iteration(0))
    assert sum(1 for op in ops if isinstance(op, Load)) == 16
    assert sum(1 for op in ops if isinstance(op, Store)) == 16


def test_transpose_rejects_unaligned_dims():
    with pytest.raises(WorkloadError):
        TransposeParams(rows=30, cols=64)


# -- MTwister -------------------------------------------------------------------------

def test_boxmuller_produces_standard_gaussians():
    state = _State(MTwisterParams(n_numbers=65536))
    k2 = BoxMullerKernel(state)
    for i in range(k2.total_iterations):
        for _op in k2.serial_iteration(i):
            pass
    produced = state.gaussians[state.gaussians != 0.0]
    assert len(produced) > 10_000
    assert abs(float(np.mean(produced))) < 0.05
    assert 0.9 < float(np.std(produced)) < 1.1


def test_mtwister_uniforms_come_from_mt19937():
    state = _State(MTwisterParams(n_numbers=1024, seed=4357))
    rng = np.random.Generator(np.random.MT19937(4357))
    np.testing.assert_allclose(state.uniforms, rng.random(1024))


def test_mtwister_app_has_two_kernels():
    from repro.workloads import get
    app = get("MTwister").build(0.05)
    assert len(app.kernels) == 2
    assert isinstance(app.kernels[0], MTGenKernel)
    assert isinstance(app.kernels[1], BoxMullerKernel)


def test_gen_kernel_only_stores_boxmuller_loads_and_stores():
    state = _State(MTwisterParams(n_numbers=16384))
    gen_ops = list(MTGenKernel(state).serial_iteration(0))
    bm_ops = list(BoxMullerKernel(state).serial_iteration(0))
    assert not any(isinstance(op, Load) for op in gen_ops)
    assert any(isinstance(op, Store) for op in gen_ops)
    assert any(isinstance(op, Load) for op in bm_ops)
    assert any(isinstance(op, Store) for op in bm_ops)


def test_mtwister_rejects_tiny_input():
    with pytest.raises(WorkloadError):
        MTwisterParams(n_numbers=16)
