"""Tests for :mod:`repro.serve`: metrics, HTTP framing, the request
pipeline (coalescing, admission control, timeouts), the server
endpoints, graceful drain, the load generator, and the jobs-layer
satellites (``get_or_none``, timeout manifest status, ``resolve``)."""

from __future__ import annotations

import asyncio
import json
import os
import re
import signal
import threading
import time

import pytest

from repro.errors import JobError, ReproError, ServeClientError, ServeError
from repro.jobs import (
    JobResolution,
    JobRunner,
    JobSpec,
    PolicySpec,
    ResultCache,
    WorkloadRef,
)
from repro.jobs.manifest import ManifestEntry, RunManifest
from repro.serve import (
    ExperimentServer,
    AsyncServeClient,
    RequestPipeline,
    ServeClient,
    ServeConfig,
    ServeMetrics,
    ServerThread,
    run_loadgen_blocking,
)
from repro.serve import schema
from repro.serve.http import (
    HttpProtocolError,
    read_request,
    read_response,
    request_bytes,
    response_bytes,
)
from repro.serve.metrics import Histogram, LabeledCounter
from repro.serve.pipeline import (
    STATUS_COALESCED,
    STATUS_COMPUTED,
    STATUS_HIT,
    STATUS_SHED,
    STATUS_TIMEOUT,
)
from repro.sim.config import MachineConfig


def _synthetic_spec(iterations: int = 8, threads: int = 2) -> JobSpec:
    return JobSpec(
        workload=WorkloadRef.synthetic(cs_fraction=0.2, bus_lines=2,
                                       iterations=iterations,
                                       compute_instr=200),
        policy=PolicySpec.static(threads),
        config=MachineConfig.small())


def _synthetic_payload(iterations: int = 8, threads: int = 2) -> dict:
    return {"synthetic": {"cs_fraction": 0.2, "bus_lines": 2,
                          "iterations": iterations, "compute_instr": 200},
            "policy": "static", "threads": threads}


class _StubRunner:
    """Pipeline-facing runner double: counts resolve() calls.

    ``gate``/``started`` let a test hold a batch inside the executor
    thread while it probes the pipeline's in-flight state.
    """

    def __init__(self, gate: threading.Event | None = None,
                 started: threading.Event | None = None,
                 result: dict | None = None) -> None:
        self.gate = gate
        self.started = started
        self.result = result if result is not None else {"stub": True}
        self.batches: list[list[str]] = []

    def resolve(self, specs):
        self.batches.append([spec.key() for spec in specs])
        if self.started is not None:
            self.started.set()
        if self.gate is not None:
            assert self.gate.wait(10.0)
        return [JobResolution(key=spec.key(), status="computed",
                              backend="serial", result=dict(self.result))
                for spec in specs]


def _gated_factory(gate: threading.Event, started: threading.Event,
                   manifest=None):
    """Real JobRunner whose resolve() blocks on ``gate`` (drain tests)."""

    def factory() -> JobRunner:
        runner = JobRunner(cache=ResultCache(None), manifest=manifest)
        inner = runner.resolve

        def gated(specs):
            started.set()
            assert gate.wait(10.0)
            return inner(specs)

        runner.resolve = gated  # type: ignore[method-assign]
        return runner

    return factory


# -- metrics ----------------------------------------------------------

_PROM_SAMPLE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^{}]*\})? (\+Inf|-?[0-9][0-9.e+-]*)$")


def parse_prometheus(text: str) -> dict[str, float]:
    """Strict parse of a text exposition; asserts on malformed lines."""
    assert text.endswith("\n")
    samples: dict[str, float] = {}
    for line in text.strip("\n").split("\n"):
        if line.startswith("# HELP ") or line.startswith("# TYPE "):
            continue
        match = _PROM_SAMPLE.match(line)
        assert match is not None, f"malformed exposition line: {line!r}"
        value = match.group(3)
        samples[match.group(1) + (match.group(2) or "")] = (
            float("inf") if value == "+Inf" else float(value))
    return samples


def test_metrics_render_parses_as_prometheus_text():
    metrics = ServeMetrics()
    metrics.requests.inc("/v1/run")
    metrics.requests.inc("/v1/run")
    metrics.responses.inc("200")
    metrics.hits.inc()
    metrics.in_flight.inc()
    metrics.latency.observe(0.003)
    metrics.latency.observe(7.0)
    samples = parse_prometheus(metrics.render())
    assert samples['repro_serve_requests_total{endpoint="/v1/run"}'] == 2
    assert samples['repro_serve_responses_total{code="200"}'] == 1
    assert samples["repro_serve_cache_hits_total"] == 1
    assert samples["repro_serve_in_flight"] == 1
    assert samples["repro_serve_request_seconds_count"] == 2
    assert samples['repro_serve_request_seconds_bucket{le="+Inf"}'] == 2
    # Cumulative buckets: 0.003 lands in le=0.005 and everything above;
    # 7.0 only joins at le=10.
    assert samples['repro_serve_request_seconds_bucket{le="0.005"}'] == 1
    assert samples['repro_serve_request_seconds_bucket{le="5"}'] == 1
    assert samples['repro_serve_request_seconds_bucket{le="10"}'] == 2
    assert samples["repro_serve_request_seconds_sum"] == pytest.approx(7.003)


def test_histogram_buckets_are_cumulative():
    hist = Histogram("h", "test", buckets=(1.0, 2.0))
    for value in (0.5, 1.5, 99.0):
        hist.observe(value)
    samples = parse_prometheus("\n".join(hist.render()) + "\n")
    assert samples['h_bucket{le="1"}'] == 1
    assert samples['h_bucket{le="2"}'] == 2
    assert samples['h_bucket{le="+Inf"}'] == 3
    assert samples["h_count"] == 3


def test_labeled_counter_escapes_label_values():
    counter = LabeledCounter("c", "test", "path")
    counter.inc('we"ird\npath')
    rendered = "\n".join(counter.render())
    assert r'c{path="we\"ird\npath"} 1' in rendered


# -- http framing -----------------------------------------------------

def _reader_for(data: bytes) -> asyncio.StreamReader:
    reader = asyncio.StreamReader()
    reader.feed_data(data)
    reader.feed_eof()
    return reader


def test_http_request_round_trip():
    async def go():
        wire = request_bytes("POST", "/v1/run", host="h:1",
                             body=b'{"workload": "EP"}')
        request = await read_request(_reader_for(wire))
        assert request is not None
        assert request.method == "POST"
        assert request.path == "/v1/run"
        assert request.keep_alive
        assert request.json() == {"workload": "EP"}
        assert await read_request(_reader_for(b"")) is None  # clean EOF

    asyncio.run(go())


def test_http_response_round_trip_and_errors():
    async def go():
        wire = response_bytes(429, b'{"error": "shed"}',
                              extra_headers={"Retry-After": "1"},
                              keep_alive=False)
        response = await read_response(_reader_for(wire))
        assert response.status == 429
        assert response.headers["retry-after"] == "1"
        assert response.headers["connection"] == "close"
        assert response.json() == {"error": "shed"}
        with pytest.raises(HttpProtocolError, match="request line"):
            await read_request(_reader_for(b"nonsense\r\n\r\n"))
        with pytest.raises(HttpProtocolError, match="Content-Length"):
            await read_request(_reader_for(
                b"GET / HTTP/1.1\r\nContent-Length: frog\r\n\r\n"))

    asyncio.run(go())


# -- request canonicalization -----------------------------------------

def test_schema_canonicalizes_equivalent_requests_to_one_key():
    base = schema.parse_run_request(
        {"workload": "PageMine", "policy": "static", "threads": 4})
    spelled = schema.parse_run_request(
        {"workload": "pagemine", "scale": 1.0, "threads": 4,
         "policy": "static", "machine": {}})
    assert base.key() == spelled.key()
    different = schema.parse_run_request(
        {"workload": "PageMine", "policy": "static", "threads": 8})
    assert different.key() != base.key()


def test_schema_rejects_malformed_requests():
    for body, pattern in [
        ({}, "exactly one"),
        ({"workload": "EP", "synthetic": {}}, "exactly one"),
        ({"workload": "NoSuchWorkload"}, "NoSuchWorkload"),
        ({"workload": "EP", "policy": "nonsense"}, "policy"),
        ({"workload": "EP", "policy": "fdt", "threads": 4}, "static"),
        ({"workload": "EP", "threads": 0}, "threads"),
        ({"workload": "EP", "machine": {"warp": 9}}, "machine knob"),
        ({"synthetic": {"frobnicate": 1}}, "synthetic knob"),
        ({"workload": "EP", "scale": "big"}, "number"),
    ]:
        with pytest.raises(ReproError, match=pattern):
            schema.parse_run_request(body)
    with pytest.raises(ReproError, match="policy"):
        schema.parse_fdt_request({"workload": "EP", "policy": "static"})
    with pytest.raises(ReproError, match="non-empty"):
        schema.parse_sweep_request({"workload": "EP", "threads": []})


def test_schema_sweep_clamps_and_sorts_thread_counts():
    _, counts, config = schema.parse_sweep_request(
        {"workload": "EP", "threads": [8, 2, 2, 4096, 1]})
    assert counts == [1, 2, 8]
    assert all(t <= config.num_cores for t in counts)


def test_serve_config_validates_knobs():
    with pytest.raises(ServeError, match="queue_depth"):
        ServeConfig(queue_depth=0)
    with pytest.raises(ServeError, match="workers"):
        ServeConfig(workers=0)


# -- pipeline: coalescing, admission control, timeouts ----------------

def _pipeline(config: ServeConfig, runner,
              cache: ResultCache | None = None):
    metrics = ServeMetrics()
    pipeline = RequestPipeline(config, metrics, cache,
                               runner_factory=lambda: runner)
    return pipeline, metrics


def test_identical_concurrent_requests_coalesce_to_one_simulation():
    gate, started = threading.Event(), threading.Event()
    runner = _StubRunner(gate=gate, started=started)
    pipeline, metrics = _pipeline(ServeConfig(workers=1), runner)
    spec = _synthetic_spec()
    fanout = 8

    async def go():
        await pipeline.start()
        tasks = [asyncio.create_task(pipeline.resolve(spec))
                 for _ in range(fanout)]
        while not started.is_set():  # leader reached the executor
            await asyncio.sleep(0.005)
        gate.set()
        resolutions = await asyncio.gather(*tasks)
        await pipeline.drain()
        return resolutions

    resolutions = asyncio.run(go())
    # Exactly one simulation ran, for exactly one spec.
    assert runner.batches == [[spec.key()]]
    # Every caller got the same answer; one led, the rest coalesced.
    statuses = sorted(r.status for r in resolutions)
    assert statuses == [STATUS_COALESCED] * (fanout - 1) + [STATUS_COMPUTED]
    assert len({json.dumps(r.result, sort_keys=True)
                for r in resolutions}) == 1
    assert metrics.misses.value == 1
    assert metrics.coalesced.value == fanout - 1
    assert metrics.shed.value == 0


def test_full_queue_sheds_instead_of_queuing():
    gate, started = threading.Event(), threading.Event()
    runner = _StubRunner(gate=gate, started=started)
    config = ServeConfig(workers=1, queue_depth=1, max_batch=1,
                         retry_after=2.5)
    pipeline, metrics = _pipeline(config, runner)

    async def go():
        await pipeline.start()
        first = asyncio.create_task(pipeline.resolve(_synthetic_spec(8)))
        while not started.is_set():  # worker is busy with the first
            await asyncio.sleep(0.005)
        second = asyncio.create_task(pipeline.resolve(_synthetic_spec(9)))
        await asyncio.sleep(0.02)  # let it occupy the depth-1 queue
        shed = await pipeline.resolve(_synthetic_spec(10))
        gate.set()
        served = await asyncio.gather(first, second)
        await pipeline.drain()
        return shed, served

    shed, served = asyncio.run(go())
    assert shed.status == STATUS_SHED
    assert shed.result is None
    assert shed.retry_after == 2.5
    assert [r.status for r in served] == [STATUS_COMPUTED, STATUS_COMPUTED]
    assert metrics.shed.value == 1
    assert len(runner.batches) == 2  # the shed request never ran


def test_cache_fast_path_answers_without_touching_the_runner():
    spec = _synthetic_spec()
    cache = ResultCache(None)  # conftest points this at tmp_path
    cache.put(spec.key(), spec.to_dict(), {"answer": 42})
    runner = _StubRunner()
    pipeline, metrics = _pipeline(ServeConfig(), runner, cache=cache)

    async def go():
        await pipeline.start()
        resolution = await pipeline.resolve(spec)
        await pipeline.drain()
        return resolution

    resolution = asyncio.run(go())
    assert resolution.status == STATUS_HIT
    assert resolution.result == {"answer": 42}
    assert runner.batches == []  # no worker involvement at all
    assert metrics.hits.value == 1
    assert metrics.misses.value == 0


def test_request_timeout_resolves_to_timeout_status():
    gate = threading.Event()
    runner = _StubRunner(gate=gate)
    config = ServeConfig(workers=1, request_timeout=0.05)
    pipeline, metrics = _pipeline(config, runner)

    async def go():
        await pipeline.start()
        resolution = await pipeline.resolve(_synthetic_spec())
        gate.set()  # release the abandoned batch so drain can join it
        await pipeline.drain()
        return resolution

    resolution = asyncio.run(go())
    assert resolution.status == STATUS_TIMEOUT
    assert resolution.result is None
    assert "0.05" in resolution.error
    assert metrics.timeouts.value == 1


# -- server endpoints over real sockets -------------------------------

def _counting_factory(calls: list[list[str]]):
    def factory() -> JobRunner:
        runner = JobRunner(cache=ResultCache(None))
        inner = runner.resolve

        def counting(specs):
            calls.append([spec.key() for spec in specs])
            return inner(specs)

        runner.resolve = counting  # type: ignore[method-assign]
        return runner

    return factory


def test_server_serves_repeats_from_cache_without_simulating():
    calls: list[list[str]] = []
    with ServerThread(ServeConfig(port=0),
                      runner_factory=_counting_factory(calls)) as handle:
        with ServeClient(port=handle.port) as client:
            payload = _synthetic_payload()
            status, first = client.request("POST", "/v1/run", payload)
            assert status == 200
            assert first["status"] == "computed"
            assert len(calls) == 1

            status, second = client.request("POST", "/v1/run", payload)
            assert status == 200
            assert second["status"] == "hit"
            assert second["key"] == first["key"]
            assert second["result"] == first["result"]
            assert len(calls) == 1  # no new simulator invocation

            # The content key works on the read-only result endpoint ...
            fetched = client.result(first["key"])
            assert fetched["result"] == first["result"]
            # ... and a bogus key is a 404, not an error.
            status, missing = client.request("GET", "/v1/result/feedbeef")
            assert status == 404

            samples = parse_prometheus(client.metrics_text())
            assert samples["repro_serve_cache_misses_total"] == 1
            assert samples["repro_serve_cache_hits_total"] >= 2


def test_server_run_fdt_and_sweep_endpoints():
    with ServerThread(ServeConfig(port=0)) as handle:
        with ServeClient(port=handle.port) as client:
            health = client.healthz()
            assert health["status"] == "ok"

            run = client.run(synthetic={"cs_fraction": 0.2, "bus_lines": 2,
                                        "iterations": 8,
                                        "compute_instr": 200},
                             policy="static", threads=2,
                             machine={"cores": 8})
            assert run["cycles"] > 0
            assert run["threads"] == [2]
            assert set(run) >= {"power", "ipc", "energy",
                                "bus_utilization", "key"}

            decision = client.fdt(synthetic={"cs_fraction": 0.4,
                                             "bus_lines": 0,
                                             "iterations": 16,
                                             "compute_instr": 200},
                                  machine={"cores": 8})
            assert decision["policy"] == "fdt"
            assert len(decision["chosen_threads"]) == 1
            assert 1 <= decision["chosen_threads"][0] <= 8
            kernel = decision["kernels"][0]
            assert kernel["estimates"]  # the Eq. 3/5/7 curve
            assert kernel["threads"] == decision["chosen_threads"][0]

            sweep = client.sweep(synthetic={"cs_fraction": 0.2,
                                            "bus_lines": 2,
                                            "iterations": 8,
                                            "compute_instr": 200},
                                 threads=[1, 2, 4], machine={"cores": 8})
            assert [p["threads"] for p in sweep["points"]] == [1, 2, 4]
            assert sweep["best_threads"] in (1, 2, 4)
            best = min(sweep["points"], key=lambda p: p["cycles"])
            assert sweep["best_threads"] == best["threads"]

            status, body = client.request("GET", "/v1/nonsense")
            assert status == 404
            status, body = client.request("GET", "/v1/run")
            assert status == 405
            status, body = client.request("POST", "/v1/run",
                                          {"workload": "NoSuchWorkload"})
            assert status == 400
            assert "NoSuchWorkload" in body["error"]


def test_server_maps_request_timeout_to_504_with_spec_key():
    gate = threading.Event()
    runner = _StubRunner(gate=gate)
    config = ServeConfig(port=0, workers=1, request_timeout=0.05)
    try:
        with ServerThread(config, runner_factory=lambda: runner) as handle:
            with ServeClient(port=handle.port) as client:
                payload = _synthetic_payload()
                status, body = client.request("POST", "/v1/run", payload)
                assert status == 504
                assert body["status"] == "timeout"
                # The body names the spec key so the client can poll
                # /v1/result/<key> for the abandoned computation.
                assert body["key"] == schema.parse_run_request(payload).key()
    finally:
        gate.set()


def test_overloaded_server_sheds_with_retry_after():
    gate, started = threading.Event(), threading.Event()
    config = ServeConfig(port=0, workers=1, queue_depth=1, max_batch=1,
                         retry_after=3.0)
    with ServerThread(config,
                      runner_factory=_gated_factory(gate, started)) as handle:
        async def go():
            client = AsyncServeClient(port=handle.port)
            first = asyncio.create_task(
                client.request("POST", "/v1/run", _synthetic_payload(8)))
            while not started.is_set():
                await asyncio.sleep(0.005)
            second = asyncio.create_task(
                client.request("POST", "/v1/run", _synthetic_payload(9)))
            await asyncio.sleep(0.05)
            shed_status, shed_body = await client.request(
                "POST", "/v1/run", _synthetic_payload(10))
            gate.set()
            served = await asyncio.gather(first, second)
            return shed_status, shed_body, served

        shed_status, shed_body, served = asyncio.run(go())
        assert shed_status == 429
        assert shed_body["status"] == "shed"
        assert all(status == 200 for status, _ in served)
        samples = parse_prometheus(
            ServeClient(port=handle.port).metrics_text())
        assert samples["repro_serve_shed_total"] == 1
        assert samples['repro_serve_responses_total{code="429"}'] == 1


# -- graceful drain ---------------------------------------------------

def test_sigterm_drains_inflight_and_refuses_new_work(tmp_path):
    gate, started = threading.Event(), threading.Event()
    manifest_path = tmp_path / "serve-manifest.json"
    config = ServeConfig(port=0, workers=1,
                         manifest_path=str(manifest_path))

    async def go():
        server: ExperimentServer | None = None

        def factory() -> JobRunner:
            assert server is not None
            return _gated_factory(gate, started,
                                  manifest=server.manifest)()

        server = ExperimentServer(config, runner_factory=factory)
        await server.start()
        server.install_signal_handlers()
        client = AsyncServeClient(port=server.port)
        inflight = asyncio.create_task(
            client.request("POST", "/v1/run", _synthetic_payload()))
        while not started.is_set():  # the request is inside the runner
            await asyncio.sleep(0.005)

        os.kill(os.getpid(), signal.SIGTERM)
        await asyncio.sleep(0.05)  # let the handler start the drain
        assert server.draining

        gate.set()  # now let the in-flight simulation finish
        status, body = await inflight
        await asyncio.wait_for(server.serve_forever(), timeout=10.0)

        # New connections are refused once the listener closed.
        with pytest.raises(ServeClientError):
            await client.healthz()
        return status, body

    status, body = asyncio.run(go())
    assert status == 200  # admitted before SIGTERM, completed after
    assert body["status"] == "computed"
    manifest = json.loads(manifest_path.read_text())
    assert manifest["counts"]["computed"] == 1


def test_server_thread_stop_is_idempotent_drain():
    handle = ServerThread(ServeConfig(port=0)).start()
    port = handle.port
    with ServeClient(port=port) as client:
        assert client.healthz()["status"] == "ok"
    handle.stop()
    handle.stop()  # second stop is a no-op
    with pytest.raises(ServeClientError):
        ServeClient(port=port, timeout=1.0).healthz()


# -- loadgen + metrics reconciliation ---------------------------------

def test_loadgen_reconciles_with_server_metrics():
    with ServerThread(ServeConfig(port=0)) as handle:
        report = run_loadgen_blocking(
            "127.0.0.1", handle.port, _synthetic_payload(),
            rps=40.0, duration=0.5)
        samples = parse_prometheus(
            ServeClient(port=handle.port).metrics_text())

    assert report.sent == 20
    assert report.completed == report.sent
    assert report.errors == 0
    assert report.error_5xx == 0
    assert report.status_codes == {"200": report.completed}
    # Identical specs: one cold computation, everything else warm.
    assert report.outcomes["computed"] == 1
    assert report.hit_rate > 0.5
    assert report.shed_rate == 0.0

    # The server's counters tell the same story as the client's report.
    assert samples['repro_serve_requests_total{endpoint="/v1/run"}'] \
        == report.completed
    assert samples['repro_serve_responses_total{code="200"}'] \
        == report.completed
    assert samples["repro_serve_cache_misses_total"] == 1
    assert samples["repro_serve_cache_hits_total"] \
        == report.outcomes.get("hit", 0)
    assert samples["repro_serve_coalesced_total"] \
        == report.outcomes.get("coalesced", 0)
    assert samples["repro_serve_shed_total"] == 0
    # The scrape sees itself in flight; nothing else is.
    assert samples["repro_serve_in_flight"] == 1
    assert samples["repro_serve_request_seconds_count"] == report.completed

    # The report carries the documented percentile and rate fields.
    d = report.to_dict()
    assert set(d["latency_ms"]) == {"p50", "p95", "p99"}
    assert d["latency_ms"]["p50"] <= d["latency_ms"]["p99"]
    text = report.format()
    assert "p50" in text and "hit rate" in text


def test_loadgen_percentiles_nearest_rank():
    from repro.serve import LoadgenReport
    report = LoadgenReport(target_rps=1.0, duration=1.0, sent=4,
                           completed=4,
                           latencies=[0.010, 0.020, 0.030, 0.100])
    assert report.percentile(0.0) == 0.010
    assert report.percentile(0.5) == pytest.approx(0.030)
    assert report.percentile(1.0) == 0.100
    assert LoadgenReport(target_rps=1.0, duration=1.0).percentile(0.5) == 0.0


# -- jobs-layer satellites --------------------------------------------

def test_get_or_none_is_read_only_while_get_repairs():
    cache = ResultCache(None)
    cache.put("ab" + "0" * 62, {"spec": 1}, {"value": 1})
    key = "cd" + "0" * 62
    path = cache.path_for(key)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text("{not json", encoding="utf-8")

    # The serving fast path reports a miss and leaves the file alone.
    assert cache.get_or_none(key) is None
    assert path.exists()
    # The batch path treats corruption as a miss and deletes the entry.
    assert cache.get(key) is None
    assert not path.exists()
    # Plain misses never invent files or delete anything.
    assert cache.get_or_none("ef" + "0" * 62) is None
    assert cache.get("ef" + "0" * 62) is None
    assert len(cache) == 1


def test_manifest_counts_and_summary_surface_timeouts():
    manifest = RunManifest()
    manifest.record(ManifestEntry(key="a", workload="EP", policy="static-2",
                                  status="computed", backend="serial"))
    manifest.record(ManifestEntry(key="b", workload="EP", policy="static-4",
                                  status="timeout", backend="pool",
                                  error="no result within 0.2s"))
    manifest.record(ManifestEntry(key="c", workload="EP", policy="static-8",
                                  status="failed", backend="pool",
                                  error="boom"))
    counts = manifest.counts
    assert counts == {"total": 3, "hits": 0, "computed": 1,
                      "failed": 1, "timeouts": 1}
    summary = manifest.summary()
    assert "1 TIMED OUT" in summary
    assert "1 FAILED" in summary


def test_job_runner_resolve_reports_per_spec_statuses():
    runner = JobRunner(cache=ResultCache(None))
    good = _synthetic_spec(iterations=8)
    resolutions = runner.resolve([good, good])
    # Duplicates in one batch simulate once and both resolve ok.
    assert [r.ok for r in resolutions] == [True, True]
    assert resolutions[0].key == resolutions[1].key
    assert resolutions[0].status == "computed"
    assert resolutions[0].app_result().cycles > 0

    # A fresh runner sees the first's cached result as a hit.
    warm = JobRunner(cache=ResultCache(None))
    again = warm.resolve([good])[0]
    assert again.status == "hit"
    assert again.backend == "cache"
    assert again.result == resolutions[0].result


def test_job_runner_resolve_never_raises_on_timeout(monkeypatch):
    import multiprocessing
    if multiprocessing.get_start_method() != "fork":
        pytest.skip("crash-injection patches need forked workers")
    from repro.jobs import executor as executor_mod

    def too_slow(spec_dict):
        time.sleep(5.0)
        return {}

    monkeypatch.setattr(executor_mod, "_execute_payload", too_slow)
    runner = JobRunner(jobs=2, timeout=0.2)
    # Two specs so the pool backend (the only one with a per-job
    # timeout) actually engages; a single spec runs serially.
    specs = [_synthetic_spec(iterations=8, threads=t) for t in (1, 2)]
    resolutions = runner.resolve(specs)
    assert [r.status for r in resolutions] == ["timeout", "timeout"]
    assert not any(r.ok for r in resolutions)
    assert all("within" in r.error for r in resolutions)
    with pytest.raises(JobError, match="timeout"):
        resolutions[0].app_result()
    assert runner.manifest.counts["timeouts"] == 2


# -- satellite: bind retry on EADDRINUSE ------------------------------

def _flaky_start_server(monkeypatch, failures: int,
                        error: int | None = None):
    """Patch asyncio.start_server to fail ``failures`` times first."""
    import errno as errno_mod

    real = asyncio.start_server
    calls = {"n": 0}

    async def flaky(*args, **kwargs):
        calls["n"] += 1
        if calls["n"] <= failures:
            code = error if error is not None else errno_mod.EADDRINUSE
            raise OSError(code, os.strerror(code))
        return await real(*args, **kwargs)

    monkeypatch.setattr(asyncio, "start_server", flaky)
    return calls


def test_bind_retries_past_transient_eaddrinuse(monkeypatch):
    calls = _flaky_start_server(monkeypatch, failures=2)
    server = ExperimentServer(ServeConfig(port=0, workers=1,
                                          bind_retries=3))

    async def go():
        await server.start()
        port = server.port
        await server.drain()
        return port

    port = asyncio.run(go())
    assert calls["n"] == 3
    assert isinstance(port, int) and port > 0  # chosen port surfaced


def test_bind_gives_up_when_retries_are_exhausted(monkeypatch):
    import errno

    calls = _flaky_start_server(monkeypatch, failures=100)
    server = ExperimentServer(ServeConfig(port=0, workers=1,
                                          bind_retries=2))

    async def go():
        try:
            with pytest.raises(OSError) as excinfo:
                await server.start()
            return excinfo.value.errno
        finally:
            await server.pipeline.drain()

    assert asyncio.run(go()) == errno.EADDRINUSE
    assert calls["n"] == 3  # the first try plus both retries


def test_bind_retries_zero_fails_on_first_eaddrinuse(monkeypatch):
    calls = _flaky_start_server(monkeypatch, failures=100)
    server = ExperimentServer(ServeConfig(port=0, workers=1,
                                          bind_retries=0))

    async def go():
        try:
            with pytest.raises(OSError):
                await server.start()
        finally:
            await server.pipeline.drain()

    asyncio.run(go())
    assert calls["n"] == 1


def test_non_eaddrinuse_bind_errors_are_not_retried(monkeypatch):
    import errno

    calls = _flaky_start_server(monkeypatch, failures=100,
                                error=errno.EACCES)
    server = ExperimentServer(ServeConfig(port=0, workers=1,
                                          bind_retries=5))

    async def go():
        try:
            with pytest.raises(OSError) as excinfo:
                await server.start()
            return excinfo.value.errno
        finally:
            await server.pipeline.drain()

    assert asyncio.run(go()) == errno.EACCES
    assert calls["n"] == 1  # privilege errors never resolve by waiting


def test_server_thread_surfaces_the_bound_port():
    thread = ServerThread(ServeConfig(port=0, workers=1))
    try:
        thread.start()
        assert thread.port > 0
        client = ServeClient(port=thread.port)
        try:
            assert client.healthz()["status"] in ("ok", "draining")
        finally:
            client.close()
    finally:
        thread.stop()
