"""Observability is a pure observer.

Two guarantees from ``docs/obs.md`` are enforced here:

* **Cycle parity** — simulated results are bit-identical with the full
  observability stack active (spans recorded and sinked, DEBUG JSON
  logging, metrics registry) or not.  Obs hooks read host state only.
* **One trace end to end** — a served request produces one trace ID
  that spans serve → jobs → simulation, trace-correlated structured
  log lines, metric increments in ``/metrics``, and a run-registry row
  that ``repro obs show`` can retrieve.
"""

from __future__ import annotations

import http.client
import io
import json

import pytest

from repro import cli
from repro.jobs import JobSpec, PolicySpec, WorkloadRef, app_result_to_dict
from repro.obs import (
    configure_logging,
    recorder,
    reset_default_registry,
    span,
)
from repro.obs.runreg import RunRegistry
from repro.obs.tracing import read_spans_jsonl
from repro.serve import ServeConfig, ServerThread
from repro.sim.config import MachineConfig

from tests.test_serve import parse_prometheus


def _synthetic_spec(policy: PolicySpec, iterations: int = 8) -> JobSpec:
    return JobSpec(
        workload=WorkloadRef.synthetic(cs_fraction=0.2, bus_lines=2,
                                       iterations=iterations,
                                       compute_instr=200),
        policy=policy,
        config=MachineConfig.small())


def _synthetic_payload() -> dict:
    return {"synthetic": {"cs_fraction": 0.2, "bus_lines": 2,
                          "iterations": 8, "compute_instr": 200},
            "policy": "static", "threads": 2}


# -- cycle parity -----------------------------------------------------

@pytest.mark.parametrize("policy", [PolicySpec.static(2), PolicySpec.fdt()],
                         ids=["static", "fdt"])
def test_sim_results_bit_identical_with_obs_active(policy, tmp_path):
    spec = _synthetic_spec(policy, iterations=16)
    baseline = app_result_to_dict(spec.run())

    # Now the same run with every observer turned all the way up:
    # span recording to a JSONL sink, an enclosing trace, DEBUG JSON
    # logging, and a fresh metrics registry collecting FDT decisions.
    stream = io.StringIO()
    configure_logging(level="DEBUG", json_lines=True, stream=stream,
                      export_env=False)
    reset_default_registry()
    recorder().set_sink(tmp_path / "spans.jsonl")
    try:
        with span("parity.test", spec=spec.key()):
            loud = app_result_to_dict(spec.run())
    finally:
        recorder().set_sink(None)
        configure_logging(level="WARNING", export_env=False)

    assert loud == baseline
    assert loud["kernel_infos"][0]["result"] == \
        baseline["kernel_infos"][0]["result"]


# -- one trace end to end ---------------------------------------------

def test_served_request_produces_linked_telemetry(tmp_path, capsys):
    reset_default_registry()
    recorder().clear()
    sink = tmp_path / "spans.jsonl"
    recorder().set_sink(sink)
    stream = io.StringIO()
    configure_logging(level="INFO", json_lines=True, stream=stream,
                      export_env=False)
    try:
        with ServerThread(ServeConfig(port=0)) as handle:
            conn = http.client.HTTPConnection("127.0.0.1", handle.port,
                                              timeout=60)
            try:
                conn.request(
                    "POST", "/v1/run",
                    body=json.dumps(_synthetic_payload()).encode(),
                    headers={"Content-Type": "application/json"})
                response = conn.getresponse()
                trace_id = response.getheader("X-Repro-Trace-Id")
                status = response.status
                body = json.loads(response.read())
                conn.request("GET", "/metrics")
                metrics_text = conn.getresponse().read().decode()
            finally:
                conn.close()
    finally:
        recorder().set_sink(None)
        configure_logging(level="WARNING", export_env=False)

    assert status == 200
    assert body["status"] == "computed"
    key = body["key"]
    assert trace_id

    # One trace covers the whole funnel: HTTP request, schema parse,
    # cache probe, batch dispatch, jobs resolution, simulation run.
    spans = recorder().spans(trace_id=trace_id)
    names = {s.name for s in spans}
    assert {"serve.request", "serve.schema", "serve.cache_probe",
            "serve.batch", "jobs.resolve", "sim.run"} <= names
    by_id = {s.span_id: s for s in spans}
    chain = []
    cursor = next(s for s in spans if s.name == "sim.run")
    while cursor is not None:
        chain.append(cursor.name)
        cursor = by_id.get(cursor.parent_id)
    assert chain == ["sim.run", "jobs.resolve", "serve.batch",
                     "serve.request"]
    assert all(s.status == "ok" for s in spans)
    # The spans also landed in the configured JSONL sink.
    assert trace_id in {s.trace_id for s in read_spans_jsonl(sink)}

    # Structured log lines carry the same trace ID.
    request_logs = [json.loads(line) for line in
                    stream.getvalue().splitlines()
                    if '"msg": "request"' in line]
    mine = [doc for doc in request_logs if doc.get("key") == key]
    assert mine, "no structured log line for the served request"
    assert mine[0]["trace_id"] == trace_id
    assert mine[0]["logger"] == "repro.serve"
    assert mine[0]["endpoint"] == "/v1/run"
    assert mine[0]["status"] == 200

    # /metrics reconciles: the serve panel and the instruments the
    # jobs layer registered into the shared default registry.
    samples = parse_prometheus(metrics_text)
    assert samples['repro_serve_requests_total{endpoint="/v1/run"}'] == 1
    assert samples["repro_serve_cache_misses_total"] == 1
    assert samples['repro_jobs_cache_total{outcome="miss"}'] == 1
    assert samples['repro_jobs_resolutions_total{status="computed"}'] == 1
    assert samples["repro_serve_batch_seconds_count"] == 1

    # The run registry holds a provenance row linked to the same trace.
    row = RunRegistry().get(key)
    assert row is not None
    assert row.status == "computed"
    assert row.trace_id == trace_id
    assert row.wall_time > 0

    # And `repro obs show <key>` surfaces it.
    assert cli.main(["obs", "show", key]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["key"] == key
    assert doc["trace_id"] == trace_id
