"""Cross-cutting simulator scenarios spanning multiple subsystems."""

from __future__ import annotations

import pytest

from repro.isa.ops import BarrierWait, Compute, Load, Lock, Store, Unlock
from repro.sim.config import MachineConfig
from repro.sim.machine import Machine


def test_coherence_is_correct_across_smt_contexts():
    """Two contexts of the same core share the L2: a line written by one
    context is an L1/L2 hit for the other with no coherence traffic."""
    m = Machine(MachineConfig.small(num_cores=2).with_smt(2))
    addr = 1 << 21
    order = []

    def writer(tid, team):
        yield Store(addr)
        order.append("wrote")
        yield BarrierWait(0)
        yield BarrierWait(1)

    def reader(tid, team):
        yield BarrierWait(0)
        c2c_before = m.memsys.directory.stats.cache_to_cache
        yield Load(addr)
        order.append(("read", m.memsys.directory.stats.cache_to_cache
                      - c2c_before))
        yield BarrierWait(1)

    # Slots 0 and 2 share core 0 (scatter placement on 2 cores).
    def slot(tid, team):
        if tid == 0:
            yield from writer(tid, team)
        elif tid == 2:
            yield from reader(tid, team)
        else:
            yield BarrierWait(0)
            yield BarrierWait(1)

    m.run_parallel([slot] * 4, spawn_overhead=False)
    assert order[0] == "wrote"
    assert order[1] == ("read", 0), "same-core read needs no c2c transfer"


def test_lock_protected_line_migrates_cleanly():
    """The classic CS pattern: the shared line follows the lock around
    the ring with one GetM per handoff and no lost updates."""
    m = Machine(MachineConfig.asplos08_baseline())
    shared = 1 << 22
    counter = {"value": 0}

    def factory(tid, team):
        for _ in range(4):
            yield Lock(0)
            counter["value"] += 1
            yield Store(shared)
            yield Unlock(0)
            yield Compute(500)

    m.run_parallel([factory] * 6, spawn_overhead=False)
    assert counter["value"] == 24
    stats = m.memsys.directory.stats
    # The line transferred between cores many times, never via the bus.
    assert stats.getm + stats.upgrades >= 20
    assert m.memsys.bus.stats.transfers <= 2  # just the cold fill(s)


def test_barrier_storm_with_uneven_compute():
    """Hundreds of barrier generations with skewed per-thread work must
    neither deadlock nor leak barrier state."""
    m = Machine(MachineConfig.small())

    def factory(tid, team):
        for gen in range(100):
            yield Compute(50 * (tid + 1))
            yield BarrierWait(0)

    m.run_parallel([factory] * 8, spawn_overhead=False)
    assert m.barriers.stats.episodes == 100
    assert not m.barriers.any_waiting()


def test_write_sharing_ping_pong_consumes_no_bus_bandwidth():
    """Line ping-pong between cores is on-chip traffic only: the bus
    carries the single cold fill, no matter how many transfers."""
    m = Machine(MachineConfig.asplos08_baseline())
    addr = 1 << 23

    def factory(tid, team):
        for _ in range(10):
            yield Store(addr)
            yield Compute(200)

    m.run_parallel([factory] * 4, spawn_overhead=False)
    assert m.memsys.directory.stats.cache_to_cache >= 20
    assert m.memsys.bus.stats.transfers == 1


def test_region_sequence_mixes_team_sizes():
    """FDT's serial-train-then-parallel-execute shape: regions of
    different team sizes interleave on one machine without residue."""
    m = Machine(MachineConfig.small())

    def worker(n):
        def factory(tid, team):
            yield Compute(n)
        return factory

    for team in (1, 4, 2, 8, 1):
        m.run_parallel([worker(1000)] * team, spawn_overhead=(team > 1))
        assert all(c.is_idle for c in m.cores)
    assert m.now > 0


def test_power_accounting_spans_mixed_regions():
    m = Machine(MachineConfig.small())

    def worker(tid, team):
        yield Compute(100_000)

    s0 = m.snapshot()
    m.run_parallel([worker], spawn_overhead=False)       # 1 core busy
    m.run_parallel([worker] * 8, spawn_overhead=False)   # 8 cores busy
    r = m.result_since(s0)
    # 50k cycles at power 1 plus 50k at power 8 -> average 4.5.
    assert r.power == pytest.approx(4.5, rel=0.05)
