"""Smoke tests for the per-figure experiment runners.

The benchmark suite runs these at paper-representative scales; here they
run at tiny scales so the test suite exercises every runner's plumbing
(result structure, formatting) quickly.
"""

from __future__ import annotations

import pytest

from repro.experiments import (
    fig02_pagemine,
    fig04_ed,
    fig06_cs_example,
    fig08_sat,
    fig09_pagesize,
    fig11_bw_example,
    fig12_bat,
    fig13_bandwidth,
    fig14_combined,
    fig15_oracle,
    fig16_17_proof,
    smt_extension,
    tables,
)

TINY_GRID = (1, 4, 8)


def test_fig2_runner():
    r = fig02_pagemine.run_fig2(scale=0.1, thread_counts=TINY_GRID)
    assert len(r.normalized_times) == 3
    assert r.normalized_times[0] == pytest.approx(1.0)
    assert "Figure 2" in r.format()


def test_fig4_runner():
    r = fig04_ed.run_fig4(scale=0.05, thread_counts=TINY_GRID)
    assert len(r.bus_utilizations) == 3
    assert r.bus_utilizations[0] < r.bus_utilizations[-1]
    assert "Figure 4" in r.format()


def test_fig6_runner_custom_inputs():
    r = fig06_cs_example.run_fig6(t_nocs=9.0, t_cs=1.0)
    assert r.times[0] == pytest.approx(10.0)
    assert r.model.optimal_threads() == pytest.approx(3.0)


def test_fig8_runner_single_panel():
    r = fig08_sat.run_fig8(scale=0.1, thread_counts=TINY_GRID,
                           workloads=("EP",))
    panel = r.panel("EP")
    assert panel.sat_threads >= 1
    assert panel.sat_normalized > 0
    with pytest.raises(KeyError):
        r.panel("nope")


def test_fig9_runner_single_size():
    r = fig09_pagesize.run_fig9(page_sizes=(2048,), scale=0.1,
                                thread_counts=TINY_GRID)
    assert len(r.points) == 1
    assert r.best_counts[0] >= 1
    assert "page size" in r.format()


def test_fig11_runner_custom_bu():
    r = fig11_bw_example.run_fig11(bu1=0.5)
    assert r.model.saturation_threads() == pytest.approx(2.0)


def test_fig12_runner_single_panel():
    r = fig12_bat.run_fig12(scale=0.05, thread_counts=TINY_GRID,
                            workloads=("ED",))
    panel = r.panel("ED")
    assert panel.bat_threads[0] >= 1
    assert 0 <= panel.power_saving_vs_32 <= 1


def test_fig13_runner_single_factor():
    r = fig13_bandwidth.run_fig13(factors=(2.0,), scale=0.2,
                                  thread_counts=TINY_GRID)
    assert r.panel(2.0).bat_threads >= 1
    with pytest.raises(KeyError):
        r.panel(0.5)


def test_fig14_runner_subset():
    r = fig14_combined.run_fig14(scale=0.1, workloads=("EP",),
                                 scales={"EP": 0.1})
    row = r.row("EP")
    assert row.norm_time < 1.0
    assert r.gmean_power == pytest.approx(row.norm_power)


def test_fig15_runner_subset():
    r = fig15_oracle.run_fig15(scale=0.1, workloads=("EP",),
                               thread_counts=TINY_GRID, scales={"EP": 0.1})
    row = r.row("EP")
    assert row.oracle_threads in TINY_GRID
    assert row.fdt_power <= 1.0


def test_fig16_17_runner():
    r = fig16_17_proof.run_fig16_17(max_threads=16)
    assert all(c.eq7_is_optimal for c in r.cases)
    assert len(r.cases[0].curve) == 16


def test_smt_runner_subset():
    r = smt_extension.run_smt(scale=0.1, workloads=("EP",))
    row = r.row("EP")
    assert row.fdt_threads[0] <= 8
    assert "SMT-2" in r.format()


def test_tables_runners():
    t1 = tables.run_table1()
    assert any("ring" in str(row) for row in t1.rows())
    t2 = tables.run_table2()
    assert len(t2.specs) == 12
    assert "Table 2" in t2.format()
