"""Functional tests for the synchronization-limited workloads.

Each workload performs its real computation while emitting ops; running
the kernel to completion must produce the algorithm's correct answer,
and the op streams must have the structural properties (critical
sections, barriers) the paper's Figure 1 pattern requires.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.fdt.policies import StaticPolicy
from repro.fdt.runner import run_application
from repro.isa.ops import BarrierWait, Lock, Unlock
from repro.isa.program import validate_program
from repro.sim.config import MachineConfig
from repro.workloads.ep import EpKernel, EpParams, _lcg_block
from repro.workloads.gsearch import GSearchKernel, GSearchParams
from repro.workloads.isort import ISortKernel, ISortParams
from repro.workloads.pagemine import PageMineKernel, PageMineParams


def small_cfg() -> MachineConfig:
    return MachineConfig.small()


# -- PageMine -----------------------------------------------------------------

def test_pagemine_histogram_is_correct_serially():
    kernel = PageMineKernel(PageMineParams(num_pages=10, page_bytes=1024))
    for page in range(kernel.total_iterations):
        for _op in kernel.serial_iteration(page):
            pass
    np.testing.assert_array_equal(kernel.global_histogram,
                                  kernel.expected_histogram())


def test_pagemine_histogram_is_correct_with_team():
    kernel = PageMineKernel(PageMineParams(num_pages=8, page_bytes=1024))
    from repro.fdt.runner import Application
    app = Application.single(kernel)
    run_application(app, StaticPolicy(4), small_cfg())
    np.testing.assert_array_equal(kernel.global_histogram,
                                  kernel.expected_histogram())


def test_pagemine_iteration_is_well_formed():
    kernel = PageMineKernel(PageMineParams(num_pages=2))
    ops = validate_program(kernel.serial_iteration(0))
    assert sum(1 for op in ops if isinstance(op, Lock)) == 1
    assert sum(1 for op in ops if isinstance(op, BarrierWait)) == 1


def test_pagemine_team_splits_the_page():
    kernel = PageMineKernel(PageMineParams(num_pages=2))
    t0 = list(kernel.team_iteration(0, 0, 4))
    t3 = list(kernel.team_iteration(0, 3, 4))
    from repro.isa.ops import Load
    loads0 = {op.addr for op in t0 if isinstance(op, Load)}
    loads3 = {op.addr for op in t3 if isinstance(op, Load)}
    # Page slices touch disjoint page lines; both merge into the shared
    # histogram lines, so only those addresses may overlap.
    page_overlap = {a for a in loads0 & loads3 if a < kernel._locals_base}
    assert not page_overlap


def test_pagemine_cs_work_is_team_size_independent():
    """Each thread's merge is the full histogram regardless of team size
    (the property that makes total CS time linear in threads)."""
    kernel = PageMineKernel(PageMineParams(num_pages=2))
    for team in (1, 4, 8):
        ops = list(kernel.team_iteration(0, 0, team))
        in_cs = 0
        depth = 0
        for op in ops:
            if isinstance(op, Lock):
                depth += 1
            elif isinstance(op, Unlock):
                depth -= 1
            elif depth:
                in_cs += 1
        assert in_cs == 24  # 8 lines x (local load + compute + RFO store)


def test_pagemine_rejects_bad_params():
    with pytest.raises(WorkloadError):
        PageMineParams(num_pages=0)
    with pytest.raises(WorkloadError):
        PageMineParams(page_bytes=32)


def test_pagemine_page_size_changes_parallel_work():
    small = PageMineKernel(PageMineParams(num_pages=1, page_bytes=1024))
    large = PageMineKernel(PageMineParams(num_pages=1, page_bytes=8192))
    n_small = len(list(small.serial_iteration(0)))
    n_large = len(list(large.serial_iteration(0)))
    assert n_large > 4 * n_small


# -- ISort ----------------------------------------------------------------------

def test_isort_buckets_match_real_sort():
    kernel = ISortKernel(ISortParams(num_keys=4096, num_passes=4))
    from repro.fdt.runner import Application
    run_application(Application.single(kernel), StaticPolicy(4), small_cfg())
    np.testing.assert_array_equal(kernel.ranked_keys(),
                                  kernel.expected_sorted())


def test_isort_first_pass_only_counts_once():
    kernel = ISortKernel(ISortParams(num_keys=2048, num_passes=3))
    for i in range(kernel.total_iterations):
        for _op in kernel.serial_iteration(i):
            pass
    assert int(kernel.global_buckets.sum()) == 2048


def test_isort_iterations_are_well_formed():
    kernel = ISortKernel(ISortParams(num_keys=2048, num_passes=2))
    for i in (0, kernel.total_iterations - 1):
        validate_program(kernel.serial_iteration(i))


def test_isort_rejects_bad_params():
    with pytest.raises(WorkloadError):
        ISortParams(num_keys=8, tiles_per_pass=12)
    with pytest.raises(WorkloadError):
        ISortParams(num_passes=0)


# -- GSearch --------------------------------------------------------------------

def test_gsearch_bfs_reaches_every_node():
    kernel = GSearchKernel(GSearchParams(num_nodes=512))
    assert kernel.nodes_expanded() == 512


def test_gsearch_batches_respect_batch_size():
    params = GSearchParams(num_nodes=512, batch_size=32)
    kernel = GSearchKernel(params)
    assert all(len(batch) <= 32 for batch, _d in kernel.batches)


def test_gsearch_has_two_critical_sections():
    kernel = GSearchKernel(GSearchParams(num_nodes=256))
    ops = validate_program(kernel.serial_iteration(0))
    lock_ids = [op.lock_id for op in ops if isinstance(op, Lock)]
    assert sorted(set(lock_ids)) == [0, 1]


def test_gsearch_visited_count_tracks_execution():
    kernel = GSearchKernel(GSearchParams(num_nodes=256))
    for i in range(kernel.total_iterations):
        for _op in kernel.serial_iteration(i):
            pass
    assert kernel.visited_count == 256


def test_gsearch_discovery_varies_across_iterations():
    kernel = GSearchKernel(GSearchParams(num_nodes=2048))
    discovered = [d for _b, d in kernel.batches]
    assert max(discovered) > min(discovered)


def test_gsearch_graph_is_deterministic():
    a = GSearchKernel(GSearchParams(num_nodes=256, seed=5))
    b = GSearchKernel(GSearchParams(num_nodes=256, seed=5))
    assert [len(x) for x, _ in a.batches] == [len(x) for x, _ in b.batches]


# -- EP ----------------------------------------------------------------------------

def test_lcg_jump_ahead_matches_sequential():
    seq = _lcg_block(seed=99, start=0, count=50)
    jumped = _lcg_block(seed=99, start=25, count=25)
    np.testing.assert_allclose(seq[25:], jumped)


def test_ep_tally_matches_direct_evaluation():
    kernel = EpKernel(EpParams(num_numbers=8192, block_size=1024))
    for i in range(kernel.total_iterations):
        for _op in kernel.serial_iteration(i):
            pass
    np.testing.assert_array_equal(kernel.tally, kernel.expected_tally())


def test_ep_tally_is_team_size_invariant():
    cfg = small_cfg()
    from repro.fdt.runner import Application
    k2 = EpKernel(EpParams(num_numbers=8192, block_size=1024))
    run_application(Application.single(k2), StaticPolicy(4), cfg)
    np.testing.assert_array_equal(k2.tally, k2.expected_tally())


def test_ep_values_uniform_ish():
    kernel = EpKernel(EpParams(num_numbers=16384, block_size=2048))
    for i in range(kernel.total_iterations):
        for _op in kernel.serial_iteration(i):
            pass
    # Each decade should hold roughly a tenth of the numbers.
    frac = kernel.tally / kernel.tally.sum()
    assert np.all(frac > 0.05) and np.all(frac < 0.15)


def test_ep_rejects_bad_params():
    with pytest.raises(WorkloadError):
        EpParams(num_numbers=100, block_size=1024)
