"""Tests for dynamic loop scheduling."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.fdt.kernel import FunctionKernel
from repro.fdt.policies import FdtPolicy, StaticPolicy
from repro.fdt.runner import Application, run_application
from repro.isa.ops import Compute
from repro.runtime.schedule import DynamicScheduleKernel, dynamic_factories
from repro.sim.config import MachineConfig
from repro.sim.machine import Machine

CFG = MachineConfig.small()


def counting_kernel(total=32, record=None):
    def body(i):
        if record is not None:
            record.append(i)
        yield Compute(200)
    return FunctionKernel("count", total_iterations=total, body=body)


def imbalanced_kernel(total=32):
    """Front-loaded cost: static chunking strands all the expensive
    iterations on thread 0 (the classic imbalance case)."""
    def body(i):
        yield Compute(10_000 if i < 4 else 400)
    return FunctionKernel("skew", total_iterations=total, body=body)


def test_every_iteration_executes_exactly_once():
    record: list[int] = []
    kernel = counting_kernel(total=40, record=record)
    m = Machine(CFG)
    m.run_parallel(dynamic_factories(kernel, range(40), 4, chunk_size=3),
                   spawn_overhead=False)
    assert sorted(record) == list(range(40))


def test_respects_range_offsets():
    record: list[int] = []
    kernel = counting_kernel(total=40, record=record)
    m = Machine(CFG)
    m.run_parallel(dynamic_factories(kernel, range(10, 25), 3),
                   spawn_overhead=False)
    assert sorted(record) == list(range(10, 25))


def test_deterministic_assignment():
    def run():
        record: list[int] = []
        kernel = counting_kernel(total=30, record=record)
        m = Machine(CFG)
        m.run_parallel(dynamic_factories(kernel, range(30), 4, 2),
                       spawn_overhead=False)
        return record

    assert run() == run()


def test_dynamic_beats_static_on_imbalanced_loop():
    static = run_application(Application.single(imbalanced_kernel()),
                             StaticPolicy(4), CFG)
    m = Machine(CFG)
    before = m.snapshot()
    m.run_parallel(dynamic_factories(imbalanced_kernel(), range(32), 4,
                                     chunk_size=1),
                   spawn_overhead=False)
    dynamic_cycles = m.result_since(before).cycles
    # Static chunking strands all four expensive iterations on thread 0;
    # dynamic scheduling spreads them across the team.
    assert dynamic_cycles < 0.8 * static.cycles


def test_small_chunks_pay_scheduler_serialization():
    """With tiny work per grab, the scheduler lock dominates: more
    threads stop helping — the scheduler is itself a critical section."""
    def tiny(i):
        yield Compute(40)

    kernel = FunctionKernel("tiny", total_iterations=256, body=tiny)
    cycles = {}
    for threads in (1, 8):
        m = Machine(CFG)
        before = m.snapshot()
        m.run_parallel(dynamic_factories(kernel, range(256), threads, 1),
                       spawn_overhead=False)
        cycles[threads] = m.result_since(before).cycles
    # Nowhere near 8x speedup: the grab lock serializes.
    assert cycles[8] > cycles[1] / 4


def test_wrapper_kernel_composes_with_fdt():
    wrapped = DynamicScheduleKernel(imbalanced_kernel(64), chunk_size=2)
    res = run_application(Application.single(wrapped), FdtPolicy(), CFG)
    info = res.kernel_infos[0]
    assert info.trained_iterations > 0
    assert res.cycles > 0
    assert wrapped.name == "skew-dynamic2"


def test_invalid_parameters_rejected():
    kernel = counting_kernel()
    with pytest.raises(ConfigError):
        dynamic_factories(kernel, range(10), 0)
    with pytest.raises(ConfigError):
        dynamic_factories(kernel, range(10), 2, chunk_size=0)
    with pytest.raises(ConfigError):
        DynamicScheduleKernel(kernel, chunk_size=0)


def test_more_threads_than_iterations_terminates():
    record: list[int] = []
    kernel = counting_kernel(total=3, record=record)
    m = Machine(CFG)
    m.run_parallel(dynamic_factories(kernel, range(3), 8, 2),
                   spawn_overhead=False)
    assert sorted(record) == [0, 1, 2]
