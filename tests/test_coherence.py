"""Unit tests for the directory MESI protocol state machine."""

from __future__ import annotations

from repro.sim.coherence import Directory, MesiState


def test_first_gets_grants_exclusive():
    d = Directory()
    forward, dirty = d.on_gets(line=1, requester=0)
    assert forward is None and dirty is False
    entry = d.entry(1)
    assert entry.owner == 0
    assert entry.owner_dirty is False


def test_second_gets_downgrades_owner():
    d = Directory()
    d.on_gets(1, requester=0)
    forward, dirty = d.on_gets(1, requester=3)
    assert forward == 0
    assert dirty is False  # owner held it in E, not M
    assert d.holders(1) == {0, 3}
    assert d.entry(1).owner is None


def test_gets_from_dirty_owner_forwards_and_writes_back():
    d = Directory()
    d.on_getm(1, requester=2)  # core 2 owns it in M
    forward, dirty = d.on_gets(1, requester=5)
    assert forward == 2
    assert dirty is True
    assert d.stats.writebacks_to_l3 == 1
    assert d.stats.cache_to_cache == 1


def test_getm_invalidates_sharers():
    d = Directory()
    d.on_gets(1, requester=0)
    d.on_gets(1, requester=1)
    d.on_gets(1, requester=2)
    forward, dirty, invalidated = d.on_getm(1, requester=0)
    assert forward is None
    assert invalidated == {1, 2}
    assert d.entry(1).owner == 0
    assert d.entry(1).owner_dirty is True
    assert d.stats.invalidations_sent == 2


def test_getm_pulls_dirty_line_from_owner():
    d = Directory()
    d.on_getm(1, requester=4)
    forward, dirty, invalidated = d.on_getm(1, requester=7)
    assert forward == 4
    assert dirty is True
    assert invalidated == {4}
    assert d.entry(1).owner == 7


def test_upgrade_returns_other_sharers():
    d = Directory()
    d.on_gets(1, requester=0)
    d.on_gets(1, requester=1)
    victims = d.on_upgrade(1, requester=1)
    assert victims == {0}
    assert d.entry(1).owner == 1
    assert d.entry(1).owner_dirty is True


def test_evict_of_clean_owner_drops_entry():
    d = Directory()
    d.on_gets(1, requester=0)  # E
    dirty = d.on_evict(1, core=0, state=MesiState.EXCLUSIVE)
    assert dirty is False
    assert d.entry(1) is None


def test_evict_of_dirty_owner_reports_writeback():
    d = Directory()
    d.on_getm(1, requester=0)
    dirty = d.on_evict(1, core=0, state=MesiState.MODIFIED)
    assert dirty is True
    assert d.entry(1) is None


def test_evict_of_sharer_shrinks_set():
    d = Directory()
    d.on_gets(1, requester=0)
    d.on_gets(1, requester=1)
    d.on_evict(1, core=0, state=MesiState.SHARED)
    assert d.holders(1) == {1}
    d.on_evict(1, core=1, state=MesiState.SHARED)
    assert d.entry(1) is None


def test_recall_returns_all_holders():
    d = Directory()
    d.on_gets(1, requester=0)
    d.on_gets(1, requester=1)
    holders, dirty = d.on_recall(1)
    assert holders == {0, 1}
    assert dirty is False
    assert d.entry(1) is None


def test_recall_of_dirty_owner_reports_writeback():
    d = Directory()
    d.on_getm(1, requester=3)
    holders, dirty = d.on_recall(1)
    assert holders == {3}
    assert dirty is True


def test_recall_of_uncached_line_is_empty():
    d = Directory()
    assert d.on_recall(99) == (set(), False)


def test_mark_dirty_flips_exclusive_to_modified():
    d = Directory()
    d.on_gets(1, requester=0)  # E
    d.mark_dirty(1, core=0)
    assert d.entry(1).owner_dirty is True


def test_mark_dirty_ignores_non_owner():
    d = Directory()
    d.on_gets(1, requester=0)
    d.mark_dirty(1, core=5)
    assert d.entry(1).owner_dirty is False


def test_len_counts_tracked_lines():
    d = Directory()
    d.on_gets(1, requester=0)
    d.on_gets(2, requester=0)
    assert len(d) == 2
