"""Property-based tests for memory-hierarchy invariants (hypothesis).

A random sequence of loads/stores from random cores must preserve the
structural invariants of the hierarchy: inclusion (L1 subset of L2, L2
subset of L3), directory precision (directory holders == cores whose L2
holds the line), and monotone time.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.coherence import MesiState
from repro.sim.config import MachineConfig
from repro.sim.machine import Machine

# A compact address space so random ops collide in sets and lines.
ADDRS = st.integers(0, 255).map(lambda k: (1 << 20) + k * 64)
OPS = st.lists(
    st.tuples(st.integers(0, 3), ADDRS, st.booleans()),
    min_size=1, max_size=120)


def run_ops(ops) -> Machine:
    m = Machine(MachineConfig.small(num_cores=4))
    t = 0
    for core, addr, is_write in ops:
        t = m.memsys.access(core, addr, is_write, t)
    return m


@given(ops=OPS)
@settings(max_examples=60, deadline=None)
def test_l1_is_subset_of_l2(ops):
    m = run_ops(ops)
    for core in range(4):
        l2_lines = set(m.memsys.l2s[core].resident_lines())
        for line in m.memsys.l1s[core].resident_lines():
            assert line in l2_lines, "L1/L2 inclusion violated"


@given(ops=OPS)
@settings(max_examples=60, deadline=None)
def test_l2_is_subset_of_l3(ops):
    m = run_ops(ops)
    l3_lines = set()
    for bank in m.memsys.l3.banks:
        l3_lines.update(bank.cache.resident_lines())
    for core in range(4):
        for line in m.memsys.l2s[core].resident_lines():
            assert line in l3_lines, "L2/L3 inclusion violated"


@given(ops=OPS)
@settings(max_examples=60, deadline=None)
def test_directory_matches_l2_contents(ops):
    m = run_ops(ops)
    d = m.memsys.directory
    for core in range(4):
        for line in m.memsys.l2s[core].resident_lines():
            assert core in d.holders(line), (
                "L2 holds a line the directory does not track")
    # And the converse: every tracked holder really holds the line.
    for line in list(m.memsys.l1s[0].resident_lines()):
        pass  # (enumerating directory entries directly below)
    for line, entry in list(d._entries.items()):
        for holder in entry.holders():
            assert m.memsys.l2s[holder].peek(line) is not None, (
                "directory tracks a holder whose L2 lost the line")


@given(ops=OPS)
@settings(max_examples=60, deadline=None)
def test_single_owner_for_modified_lines(ops):
    m = run_ops(ops)
    for line, entry in list(m.memsys.directory._entries.items()):
        holders = [c for c in range(4)
                   if m.memsys.l2s[c].peek(line) is not None]
        states = [m.memsys.l2s[c].peek(line) for c in holders]
        if any(s in (MesiState.MODIFIED, MesiState.EXCLUSIVE)
               for s in states):
            assert len(holders) == 1, "M/E line with multiple holders"


@given(ops=OPS)
@settings(max_examples=60, deadline=None)
def test_completion_times_are_causal(ops):
    """Each access completes at or after its issue time."""
    m = Machine(MachineConfig.small(num_cores=4))
    t = 0
    for core, addr, is_write in ops:
        done = m.memsys.access(core, addr, is_write, t)
        assert done >= t
        t = done


@given(ops=OPS)
@settings(max_examples=40, deadline=None)
def test_bus_traffic_only_on_l3_boundary(ops):
    """Bus transfers arise only from L3 misses and dirty L3 evictions."""
    m = run_ops(ops)
    transfers = m.memsys.bus.stats.transfers
    misses = m.memsys.l3.misses
    writebacks = m.memsys.stats.l3_writebacks_to_dram
    assert transfers == misses + writebacks
