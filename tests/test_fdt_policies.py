"""Unit tests for the estimation stage and the threading policies."""

from __future__ import annotations

from typing import Iterator

import pytest

from repro.errors import ConfigError
from repro.fdt.estimators import estimate
from repro.fdt.kernel import DataParallelKernel, TeamParallelKernel
from repro.fdt.policies import FdtMode, FdtPolicy, StaticPolicy
from repro.fdt.runner import Application, run_application
from repro.fdt.training import TrainingConfig, TrainingLog, TrainingSample
from repro.isa.ops import BarrierWait, Compute, Lock, Op, Unlock
from repro.sim.config import MachineConfig


def make_log(samples: list[TrainingSample], cores=32) -> TrainingLog:
    log = TrainingLog(config=TrainingConfig(), total_iterations=10_000,
                      num_cores=cores)
    log.samples.extend(samples)
    return log


def test_estimate_cs_limited():
    # 2% critical section -> P_CS = sqrt(49) = 7.
    log = make_log([TrainingSample(0, 1000, 20, 0)] * 3)
    e = estimate(log, num_cores=32)
    assert e.p_cs == 7
    assert e.p_bw == 32  # no bus traffic -> BAT defers
    assert e.p_fdt == 7
    assert e.cs_fraction == pytest.approx(0.02)


def test_estimate_bw_limited():
    # 12.5% utilization -> P_BW = 8.
    log = make_log([TrainingSample(0, 1000, 0, 125)] * 3)
    e = estimate(log, num_cores=32)
    assert e.p_bw == 8
    assert e.p_cs == 32
    assert e.p_fdt == 8


def test_estimate_combined_takes_min():
    log = make_log([TrainingSample(0, 1000, 20, 250)] * 3)
    e = estimate(log, num_cores=32)
    assert e.p_cs == 7
    assert e.p_bw == 4
    assert e.p_fdt == 4


def test_estimate_cannot_saturate_early_out():
    # 2% utilization on 32 cores can never reach 100%.
    log = make_log([TrainingSample(0, 1000, 0, 20)] * 3)
    e = estimate(log, num_cores=32)
    assert e.p_bw == 32


def test_estimate_respects_core_clamp():
    log = make_log([TrainingSample(0, 1000, 0, 125)] * 3, cores=4)
    e = estimate(log, num_cores=4)
    assert e.p_fdt <= 4


class _TinyKernel(DataParallelKernel):
    name = "tiny"

    def __init__(self, iterations: int = 64) -> None:
        self._iterations = iterations
        self.executed: list[int] = []

    @property
    def total_iterations(self) -> int:
        return self._iterations

    def serial_iteration(self, i: int) -> Iterator[Op]:
        self.executed.append(i)
        yield Compute(200)


class _CsTeamKernel(TeamParallelKernel):
    name = "cs-team"

    @property
    def total_iterations(self) -> int:
        return 64

    def team_iteration(self, i: int, tid: int, team: int) -> Iterator[Op]:
        yield Compute(2000 // team)
        yield Lock(0)
        yield Compute(100)
        yield Unlock(0)
        yield BarrierWait(0)


def test_static_policy_uses_requested_threads():
    cfg = MachineConfig.small()
    app = Application.single(_TinyKernel())
    res = run_application(app, StaticPolicy(4), cfg)
    info = res.kernel_infos[0]
    assert info.threads == 4
    assert info.trained_iterations == 0
    assert info.estimates is None


def test_static_policy_defaults_to_core_count():
    cfg = MachineConfig.small()
    res = run_application(Application.single(_TinyKernel()),
                          StaticPolicy(), cfg)
    assert res.kernel_infos[0].threads == cfg.num_cores


def test_static_policy_rejects_zero_threads():
    with pytest.raises(ConfigError):
        StaticPolicy(0)


def test_fdt_policy_trains_then_executes():
    cfg = MachineConfig.small()
    kernel = _TinyKernel()
    res = run_application(Application.single(kernel),
                          FdtPolicy(FdtMode.COMBINED), cfg)
    info = res.kernel_infos[0]
    assert info.trained_iterations > 0
    assert info.estimates is not None
    assert info.training_cycles > 0
    assert info.execution_cycles > 0
    # Every iteration ran exactly once (training + execution).
    assert sorted(kernel.executed) == list(range(64))


def test_fdt_sat_mode_ignores_bandwidth():
    cfg = MachineConfig.small()
    res = run_application(Application.single(_TinyKernel()),
                          FdtPolicy(FdtMode.SAT), cfg)
    info = res.kernel_infos[0]
    # No critical section at all: SAT chooses all cores.
    assert info.threads == cfg.num_cores


def test_fdt_picks_few_threads_for_cs_kernel():
    cfg = MachineConfig.small()
    res = run_application(Application.single(_CsTeamKernel()),
                          FdtPolicy(FdtMode.SAT), cfg)
    info = res.kernel_infos[0]
    # ~10% critical section: sqrt(1/0.1) ~ 3, certainly below 8 cores.
    assert 2 <= info.threads <= 5


def test_fdt_mode_decision_mapping():
    from repro.fdt.estimators import Estimates
    e = Estimates(t_cs=1, t_nocs=100, bu1=0.2, p_cs_real=10.0,
                  p_bw_real=5.0, p_cs=10, p_bw=5, p_fdt=5)
    assert FdtPolicy(FdtMode.SAT).decide(e) == 10
    assert FdtPolicy(FdtMode.BAT).decide(e) == 5
    assert FdtPolicy(FdtMode.COMBINED).decide(e) == 5


def test_policy_names():
    assert StaticPolicy(8).name == "static-8"
    assert StaticPolicy().name == "static-ncores"
    assert FdtPolicy(FdtMode.SAT).name == "fdt-sat"
    assert FdtPolicy(FdtMode.COMBINED).name == "fdt-sat+bat"


def test_app_run_result_aggregates():
    cfg = MachineConfig.small()
    app = Application(name="two", kernels=(_TinyKernel(), _TinyKernel()))
    res = run_application(app, StaticPolicy(2), cfg)
    assert len(res.kernel_infos) == 2
    assert res.cycles == sum(k.total_cycles for k in res.kernel_infos)
    assert res.threads_used == (2, 2)
    assert res.power > 0


def test_mean_threads_weighted_by_time():
    cfg = MachineConfig.small()
    app = Application(name="two",
                      kernels=(_TinyKernel(256), _TinyKernel(256)))
    res = run_application(app, StaticPolicy(4), cfg)
    assert res.mean_threads == pytest.approx(4.0)


def test_application_requires_kernels():
    from repro.errors import WorkloadError
    with pytest.raises(WorkloadError):
        Application(name="empty", kernels=())
