"""Unit tests for the sense-reversing barrier manager."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.runtime.barriers import BarrierManager
from repro.sim.config import MachineConfig
from repro.sim.ring import Ring


@pytest.fixture
def barriers() -> BarrierManager:
    cfg = MachineConfig.small(num_cores=4)
    ring = Ring(cfg.num_cores + cfg.l3_banks)
    return BarrierManager(cfg, ring, core_nodes=list(range(cfg.num_cores)))


def test_incomplete_team_waits(barriers: BarrierManager):
    assert barriers.arrive(0, core=0, team_size=3, now=10) is None
    assert barriers.arrive(0, core=1, team_size=3, now=20) is None
    assert barriers.pending(0) == 2


def test_last_arrival_releases_everyone(barriers: BarrierManager):
    barriers.arrive(0, core=0, team_size=3, now=10)
    barriers.arrive(0, core=1, team_size=3, now=20)
    releases = barriers.arrive(0, core=2, team_size=3, now=30)
    assert releases is not None
    assert {c for c, _t in releases} == {0, 1, 2}
    assert all(t >= 30 for _c, t in releases)
    assert barriers.pending(0) == 0


def test_release_propagation_scales_with_distance(barriers: BarrierManager):
    barriers.arrive(0, core=0, team_size=2, now=0)
    releases = dict(barriers.arrive(0, core=3, team_size=2, now=100))
    # The last arriver (core 3) releases itself instantly; core 0's
    # release travels over the ring.
    assert releases[3] == 100
    assert releases[0] > 100


def test_single_thread_team_releases_immediately(barriers: BarrierManager):
    releases = barriers.arrive(0, core=0, team_size=1, now=5)
    assert releases == [(0, 5)]


def test_barrier_is_reusable_across_generations(barriers: BarrierManager):
    for generation in range(3):
        now = generation * 100
        assert barriers.arrive(0, core=0, team_size=2, now=now) is None
        releases = barriers.arrive(0, core=1, team_size=2, now=now + 1)
        assert releases is not None
    assert barriers.stats.episodes == 3


def test_double_arrival_same_generation_raises(barriers: BarrierManager):
    barriers.arrive(0, core=0, team_size=3, now=0)
    with pytest.raises(SimulationError):
        barriers.arrive(0, core=0, team_size=3, now=1)


def test_invalid_team_size_raises(barriers: BarrierManager):
    with pytest.raises(SimulationError):
        barriers.arrive(0, core=0, team_size=0, now=0)


def test_distinct_barriers_are_independent(barriers: BarrierManager):
    barriers.arrive(0, core=0, team_size=2, now=0)
    releases = barriers.arrive(1, core=1, team_size=1, now=0)
    assert releases is not None
    assert barriers.pending(0) == 1


def test_wait_cycles_accumulate(barriers: BarrierManager):
    barriers.arrive(0, core=0, team_size=2, now=0)
    barriers.arrive(0, core=1, team_size=2, now=500)
    assert barriers.stats.total_wait_cycles >= 500


def test_any_waiting(barriers: BarrierManager):
    assert barriers.any_waiting() is False
    barriers.arrive(0, core=0, team_size=2, now=0)
    assert barriers.any_waiting() is True
