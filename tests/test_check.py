"""Tests for the thread sanitizer (repro.check).

Positive controls must trip exactly their analysis; the twelve Table 2
workloads must check clean; and the sanitizer must be a pure observer —
enabling it cannot move a single cycle.
"""

from __future__ import annotations

import json
from typing import Iterator

import pytest

from repro.check import (
    DISCIPLINE,
    LOCK_ORDER,
    RACE,
    RUNTIME,
    ThreadSanitizer,
    check_application,
    check_workload,
)
from repro.check.discipline import DisciplineLinter
from repro.check.findings import AccessSite
from repro.check.lockset import LocksetRaceDetector
from repro.errors import WorkloadError
from repro.fdt.kernel import TeamParallelKernel
from repro.fdt.policies import StaticPolicy
from repro.fdt.runner import Application
from repro.isa.ops import BarrierWait, Compute, CounterKind, Op, Store
from repro.sim.config import MachineConfig, SanitizerConfig
from repro.sim.machine import Machine
from repro.workloads import all_specs, get
from repro.workloads.base import LINE, AddressSpace
from repro.workloads.synthetic import (
    RacyKernel,
    build_lock_inversion,
    build_racy,
    build_synthetic,
    build_unheld_unlock,
)


def _site(agent: int, index: int = 1, kind: str = "store",
          cycle: int = 0) -> AccessSite:
    return AccessSite(agent=agent, index=index, kind=kind, cycle=cycle)


# -- positive controls ------------------------------------------------------

def test_racy_fixture_reports_race_with_address_and_sites():
    kernel = RacyKernel()
    report = check_application(Application.single(kernel))
    races = report.by_analysis(RACE)
    assert not report.clean
    assert races, "the seeded race must be detected"
    finding = races[0]
    assert finding.kind == "empty-lockset"
    assert finding.details["address"] == kernel.shared_addr
    assert f"{kernel.shared_addr:#x}" in finding.message
    assert len(finding.details["writers"]) >= 2
    sites = finding.details["sites"]
    assert sites and {"agent", "index", "kind", "cycle"} <= sites[0].keys()


def test_lock_inversion_fixture_reports_cycle_naming_locks():
    report = check_application(build_lock_inversion())
    assert report.aborted is None, "FIFO grant order must dodge the deadlock"
    cycles = report.by_analysis(LOCK_ORDER)
    assert cycles, "the latent inversion must still be reported"
    finding = cycles[0]
    assert finding.kind == "lock-order-cycle"
    assert set(finding.details["locks"]) == {0, 1}
    assert not report.by_analysis(RACE), "the store is lock-protected"


def test_unheld_unlock_fixture_reports_discipline_and_abort():
    report = check_application(build_unheld_unlock())
    assert not report.clean
    kinds = {f.kind for f in report.by_analysis(DISCIPLINE)}
    assert "unlock-of-unheld" in kinds
    assert report.aborted is not None
    assert report.by_analysis(RUNTIME)[0].kind == "aborted"


def test_check_workload_resolves_fixture_names():
    report = check_workload("synthetic-racy")
    assert report.by_analysis(RACE)


def test_check_workload_rejects_unknown_names():
    with pytest.raises(WorkloadError, match="synthetic-racy"):
        check_workload("NoSuchThing")


# -- the Table 2 roster must be clean ---------------------------------------

@pytest.mark.parametrize("name", [s.name for s in all_specs()])
def test_table2_workload_checks_clean(name: str):
    report = check_workload(name, scale=0.1)
    assert report.clean, (
        f"{name} is not clean:\n" + "\n".join(f.message
                                              for f in report.findings))
    assert report.cycles > 0


def test_locked_synthetic_kernel_checks_clean():
    app = build_synthetic(cs_fraction=0.2, bus_lines=4, iterations=16)
    report = check_application(app)
    assert report.clean


class _PhasedKernel(TeamParallelKernel):
    """Each iteration one thread writes the shared line; a barrier
    separates iterations, so rotating the writer is race-free."""

    name = "phased"

    def __init__(self) -> None:
        self.shared = AddressSpace().alloc(LINE)

    @property
    def total_iterations(self) -> int:
        return 8

    def team_iteration(self, iteration: int, thread_id: int,
                       num_threads: int) -> Iterator[Op]:
        yield Compute(30 + 7 * thread_id)
        if iteration % num_threads == thread_id:
            yield Store(self.shared)
        yield BarrierWait(0)


def test_barrier_epochs_suppress_phased_writer_rotation():
    """Plain Eraser would flag write-barrier-write by different threads;
    the barrier epoch treats each generation as a fresh fence."""
    report = check_application(Application.single(_PhasedKernel()))
    assert report.clean


# -- pure-observer property --------------------------------------------------

def _static_cycles(config: MachineConfig) -> int:
    machine = Machine(config)
    policy = StaticPolicy(4)
    for kernel in get("EP").build(0.1).kernels:
        policy.run_kernel(machine, kernel)
    return machine.now


def test_sanitizer_does_not_change_cycle_counts():
    base = MachineConfig.asplos08_baseline()
    assert _static_cycles(base) == _static_cycles(base.with_sanitizer())


def test_sanitizer_disabled_by_default():
    machine = Machine(MachineConfig.asplos08_baseline())
    assert machine.sanitizer is None


# -- config knobs -------------------------------------------------------------

def test_ignore_address_ranges_silences_the_race():
    kernel = RacyKernel()
    ranges = ((kernel.shared_addr, kernel.shared_addr + LINE),)
    report = check_application(
        Application.single(kernel),
        sanitizer=SanitizerConfig(ignore_address_ranges=ranges))
    assert report.clean


def test_analysis_toggles_gate_findings():
    report = check_application(
        build_racy(), sanitizer=SanitizerConfig(races=False))
    assert not report.by_analysis(RACE)
    report = check_application(
        build_lock_inversion(), sanitizer=SanitizerConfig(lock_order=False))
    assert not report.by_analysis(LOCK_ORDER)


def test_max_findings_cap_counts_dropped():
    cfg = SanitizerConfig(max_findings=1, report_read_write=True)
    det = LocksetRaceDetector(cfg)
    for addr in (0x1000, 0x2000):
        det.on_access(0, addr, True, 1, frozenset(), _site(0))
        det.on_access(1, addr, True, 1, frozenset(), _site(1))
    assert len(det.findings) == 1
    assert det.dropped == 1


def test_sanitizer_config_validates():
    with pytest.raises(Exception):
        SanitizerConfig(max_findings=0)
    with pytest.raises(Exception):
        SanitizerConfig(ignore_address_ranges=((10, 10),))


# -- discipline lint units -----------------------------------------------------

def _linter() -> DisciplineLinter:
    return DisciplineLinter(SanitizerConfig())


def test_discipline_double_acquire():
    lint = _linter()
    lint.on_lock_request(3, agent=1, held=[3], now=10)
    assert lint.findings[0].kind == "double-acquire"
    assert lint.findings[0].details["lock"] == 3


def test_discipline_held_at_exit():
    lint = _linter()
    lint.on_thread_exit(agent=2, held=[0, 1], now=99)
    assert lint.findings[0].kind == "held-at-exit"
    assert lint.findings[0].details["held"] == [0, 1]


def test_discipline_counter_in_critical_section_dedupes():
    lint = _linter()
    lint.on_read_counter(0, CounterKind.CYCLES, held=[5], now=1)
    lint.on_read_counter(1, CounterKind.CYCLES, held=[5], now=2)
    lint.on_read_counter(0, CounterKind.CYCLES, held=[], now=3)
    assert len(lint.findings) == 1
    assert lint.findings[0].kind == "counter-in-critical-section"


def test_discipline_inconsistent_team_size():
    lint = _linter()
    lint.on_region_begin()
    lint.on_barrier_arrive(0, agent=0, team_size=2, now=0)
    lint.on_barrier_arrive(0, agent=1, team_size=3, now=1)
    assert lint.findings[0].kind == "inconsistent-barrier-team"


def test_discipline_membership_change_between_generations():
    lint = _linter()
    lint.on_region_begin()
    for agent in (0, 1):
        lint.on_barrier_arrive(0, agent, team_size=2, now=0)
    lint.on_barrier_release(0, [0, 1], now=5)
    for agent in (0, 2):
        lint.on_barrier_arrive(0, agent, team_size=2, now=10)
    lint.on_barrier_release(0, [0, 2], now=15)
    assert lint.findings[0].kind == "inconsistent-barrier-team"


def test_discipline_incomplete_barrier_on_finish_is_idempotent():
    lint = _linter()
    lint.on_barrier_arrive(0, agent=0, team_size=2, now=0)
    lint.finish()
    lint.finish()
    kinds = [f.kind for f in lint.findings]
    assert kinds == ["incomplete-barrier"]


# -- sanitizer hub state -------------------------------------------------------

def test_sanitizer_tracks_held_locks_and_epoch():
    san = ThreadSanitizer()
    san.on_region_begin(2, now=0)
    epoch = san.epoch
    san.on_lock_acquired(7, agent=0, now=1)
    assert san.held_locks(0) == [7]
    san.on_lock_released(7, agent=0, now=2)
    assert san.held_locks(0) == []
    san.on_barrier_release(0, [0, 1], now=3)
    assert san.epoch == epoch + 1


# -- report model ---------------------------------------------------------------

def test_report_json_is_machine_readable():
    report = check_workload("synthetic-racy")
    parsed = json.loads(report.to_json())
    assert parsed["clean"] is False
    assert parsed["workload"]
    assert parsed["counts"][RACE] >= 1
    assert parsed["findings"][0]["details"]["address_hex"].startswith("0x")


def test_clean_report_counts_are_all_zero():
    report = check_workload("EP", scale=0.1)
    assert report.clean
    assert set(report.counts().values()) == {0}
