"""Executor determinism: serial, pooled, and cached runs are identical.

The tentpole correctness bar: results submitted through the jobs
subsystem — on any backend, cached or fresh — must be *bit-identical*
to the in-process runs the experiments performed before the subsystem
existed (the simulator is deterministic, so the cache is sound).
"""

from __future__ import annotations

import multiprocessing
import os

import pytest

from repro.analysis.sweep import sweep_threads
from repro.errors import JobError
from repro.experiments import fig08_sat
from repro.fdt.policies import FdtMode, FdtPolicy, StaticPolicy
from repro.fdt.runner import run_application
from repro.jobs import JobRunner, JobSpec, PolicySpec, ResultCache, WorkloadRef
from repro.jobs import executor as executor_mod
from repro.sim.config import MachineConfig
from repro.workloads import get

WORKLOADS = ("EP", "PageMine")
SCALE = 0.1
GRID = (1, 2, 4)

fork_only = pytest.mark.skipif(
    multiprocessing.get_start_method() != "fork",
    reason="crash-injection tests patch module state into forked workers")


def specs_for(name: str, config: MachineConfig) -> list[JobSpec]:
    ref = WorkloadRef(name=name, scale=SCALE)
    specs = [JobSpec(workload=ref, policy=PolicySpec.static(t),
                     config=config) for t in GRID]
    specs.append(JobSpec(workload=ref, policy=PolicySpec.fdt(),
                         config=config))
    return specs


def direct_results(name: str, config: MachineConfig) -> list:
    """The pre-subsystem ground truth: plain in-process runs."""
    spec = get(name)
    results = [run_application(spec.build(SCALE), StaticPolicy(t), config)
               for t in GRID]
    results.append(run_application(spec.build(SCALE),
                                   FdtPolicy(FdtMode.COMBINED), config))
    return results


@pytest.fixture(scope="module")
def ground_truth():
    config = MachineConfig.asplos08_baseline()
    return config, {name: direct_results(name, config)
                    for name in WORKLOADS}


def test_serial_backend_matches_direct_runs(ground_truth):
    config, expected = ground_truth
    runner = JobRunner()
    for name in WORKLOADS:
        assert runner.run(specs_for(name, config)) == expected[name]


def test_process_pool_backend_matches_direct_runs(ground_truth):
    config, expected = ground_truth
    runner = JobRunner(jobs=2)
    for name in WORKLOADS:
        assert runner.run(specs_for(name, config)) == expected[name]


def test_cache_hits_match_direct_runs(tmp_path, ground_truth):
    config, expected = ground_truth
    cold = JobRunner(cache=ResultCache(tmp_path))
    for name in WORKLOADS:
        assert cold.run(specs_for(name, config)) == expected[name]
    assert cold.manifest.counts["computed"] == 8

    warm = JobRunner(cache=ResultCache(tmp_path))
    for name in WORKLOADS:
        assert warm.run(specs_for(name, config)) == expected[name]
    assert warm.manifest.counts == {
        "total": 8, "hits": 8, "computed": 0, "failed": 0,
        "timeouts": 0}


def test_sweep_via_jobs_matches_legacy_factory_sweep(ground_truth):
    config, _ = ground_truth
    for name in WORKLOADS:
        spec = get(name)
        legacy = sweep_threads(lambda: spec.build(SCALE), GRID, config)
        via_jobs = sweep_threads(WorkloadRef(name=name, scale=SCALE),
                                 GRID, config)
        assert via_jobs == legacy


def test_memo_dedupes_repeated_specs(ground_truth):
    config, expected = ground_truth
    runner = JobRunner()
    spec = specs_for("EP", config)[0]
    first = runner.run_one(spec)
    second = runner.run_one(spec)
    assert first == second == expected["EP"][0]
    statuses = [e.status for e in runner.manifest.entries]
    assert statuses == ["computed", "hit"]


def test_corrupt_cache_entry_recomputes_only_that_job(tmp_path, ground_truth):
    config, expected = ground_truth
    cache = ResultCache(tmp_path)
    specs = specs_for("EP", config)
    JobRunner(cache=cache).run(specs)
    cache.path_for(specs[1].key()).write_text("{corrupt")

    warm = JobRunner(cache=ResultCache(tmp_path))
    assert warm.run(specs) == expected["EP"]
    assert warm.manifest.counts == {
        "total": 4, "hits": 3, "computed": 1, "failed": 0,
        "timeouts": 0}


def test_warm_cache_fig8_runs_zero_simulations(tmp_path):
    """Acceptance bar: a warm-cache figure is 100% cache hits."""
    kwargs = dict(scale=SCALE, thread_counts=GRID, workloads=WORKLOADS)
    cold = JobRunner(cache=ResultCache(tmp_path))
    first = fig08_sat.run_fig8(runner=cold, **kwargs)
    assert cold.manifest.counts["computed"] == cold.manifest.counts["total"]

    warm = JobRunner(cache=ResultCache(tmp_path))
    second = fig08_sat.run_fig8(runner=warm, **kwargs)
    assert second == first
    counts = warm.manifest.counts
    assert counts["computed"] == 0 and counts["failed"] == 0
    assert counts["hits"] == counts["total"] == cold.manifest.counts["total"]


# -- failure handling ---------------------------------------------------------

def test_unknown_workload_fails_with_job_error():
    spec = JobSpec(workload=WorkloadRef(name="NoSuchWorkload"),
                   policy=PolicySpec.static(1),
                   config=MachineConfig.small())
    runner = JobRunner()
    with pytest.raises(JobError, match="NoSuchWorkload"):
        runner.run_one(spec)
    assert runner.manifest.counts["failed"] == 1


def test_pool_spawn_failure_falls_back_to_serial(monkeypatch, ground_truth):
    config, expected = ground_truth

    def broken_pool(*args, **kwargs):
        raise OSError("no processes for you")

    monkeypatch.setattr(executor_mod.futures, "ProcessPoolExecutor",
                        broken_pool)
    runner = JobRunner(jobs=4)
    assert runner.run(specs_for("EP", config)) == expected["EP"]
    assert {e.backend for e in runner.manifest.entries} == {"serial-fallback"}


@fork_only
def test_pool_retries_after_worker_crash(tmp_path, monkeypatch, ground_truth):
    config, expected = ground_truth
    flag = tmp_path / "crashed-once"
    real = executor_mod._execute_payload

    def crash_once(spec_dict):
        if not flag.exists():
            flag.write_text("x")
            os._exit(13)  # hard worker death -> BrokenProcessPool
        return real(spec_dict)

    monkeypatch.setattr(executor_mod, "_execute_payload", crash_once)
    runner = JobRunner(jobs=2, retries=2)
    assert runner.run(specs_for("EP", config)) == expected["EP"]
    assert all(e.status in ("computed", "hit")
               for e in runner.manifest.entries)


@fork_only
def test_pool_gives_up_after_bounded_retries(monkeypatch):
    def always_crash(spec_dict):
        os._exit(13)

    monkeypatch.setattr(executor_mod, "_execute_payload", always_crash)
    runner = JobRunner(jobs=2, retries=1)
    config = MachineConfig.small()
    specs = [JobSpec(workload=WorkloadRef(name="EP", scale=0.05),
                     policy=PolicySpec.static(t), config=config)
             for t in (1, 2)]
    with pytest.raises(JobError, match="crashed"):
        runner.run(specs)
    assert runner.manifest.counts["failed"] == 2


@fork_only
def test_pool_timeout_reports_timed_out_jobs(monkeypatch):
    import time

    def too_slow(spec_dict):
        time.sleep(5.0)
        return {}

    monkeypatch.setattr(executor_mod, "_execute_payload", too_slow)
    runner = JobRunner(jobs=2, timeout=0.2)
    config = MachineConfig.small()
    specs = [JobSpec(workload=WorkloadRef(name="EP", scale=0.05),
                     policy=PolicySpec.static(t), config=config)
             for t in (1, 2)]
    with pytest.raises(JobError, match="within"):
        runner.run(specs)
    assert {e.status for e in runner.manifest.entries} == {"timeout"}
