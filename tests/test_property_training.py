"""Property-based tests for the FDT training rules (hypothesis)."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fdt.estimators import estimate
from repro.fdt.training import TrainingConfig, TrainingLog, TrainingSample

samples = st.lists(
    st.builds(
        TrainingSample,
        iteration=st.integers(0, 1000),
        total_cycles=st.integers(1, 100_000),
        cs_cycles=st.integers(0, 5_000),
        bus_busy_cycles=st.integers(0, 50_000),
    ),
    min_size=1, max_size=50,
)


def feed(log: TrainingLog, items) -> int:
    """Record until the log says stop; return iterations consumed."""
    for n, s in enumerate(items, start=1):
        if log.record(s):
            return n
    return len(items)


@given(items=samples, total=st.integers(100, 100_000))
@settings(max_examples=100)
def test_training_never_exceeds_its_cap(items, total):
    log = TrainingLog(config=TrainingConfig(), total_iterations=total,
                      num_cores=32)
    consumed = feed(log, items)
    cap = log.config.max_training_iterations(total)
    assert consumed <= cap
    assert log.trained_iterations == consumed


@given(items=samples)
@settings(max_examples=100)
def test_cap_leaves_an_execution_phase(items):
    for total in (2, 3, 10, 11, 999):
        cfg = TrainingConfig()
        assert 1 <= cfg.max_training_iterations(total) <= max(1, total // 2)


@given(items=samples)
@settings(max_examples=100)
def test_estimates_always_well_formed(items):
    log = TrainingLog(config=TrainingConfig(), total_iterations=10_000,
                      num_cores=32)
    feed(log, items)
    e = estimate(log, num_cores=32)
    assert 1 <= e.p_cs <= 32
    assert 1 <= e.p_bw <= 32
    assert e.p_fdt == max(1, min(e.p_cs, e.p_bw, 32))
    assert e.t_cs >= 0 and e.t_nocs >= 0
    assert 0.0 <= e.bu1 <= 1.0
    assert 0.0 <= e.cs_fraction <= 1.0


@given(cs=st.integers(0, 100), total=st.integers(1000, 2000))
@settings(max_examples=50)
def test_identical_samples_trigger_stability(cs, total):
    """Three identical samples always satisfy the SAT stability rule."""
    log = TrainingLog(config=TrainingConfig(need_bat=False),
                      total_iterations=100_000, num_cores=32)
    s = TrainingSample(iteration=0, total_cycles=total, cs_cycles=cs,
                       bus_busy_cycles=0)
    stopped_at = feed(log, [s] * 10)
    assert stopped_at == 3
    assert log.stop_reason == "measurements-stable"


@given(busy_frac=st.floats(0.0, 1.0))
@settings(max_examples=60)
def test_bat_early_out_boundary(busy_frac):
    """BAT stops early iff mean utilization x cores stays below 100 %."""
    cores = 32
    total = 20_000
    busy = int(total * busy_frac)
    log = TrainingLog(config=TrainingConfig(need_sat=False),
                      total_iterations=100_000, num_cores=cores)
    s = TrainingSample(iteration=0, total_cycles=total, cs_cycles=0,
                       bus_busy_cycles=busy)
    consumed = feed(log, [s] * 20)
    can_saturate = (busy / total) * cores >= 1.0
    if can_saturate:
        assert consumed == 20  # keeps training (to the cap, eventually)
    else:
        assert consumed <= 2   # early-out once >= 10k cycles observed


@given(items=samples)
@settings(max_examples=60)
def test_mean_utilization_is_cycle_weighted(items):
    log = TrainingLog(config=TrainingConfig(), total_iterations=10_000_000,
                      num_cores=32)
    for s in items:
        log.samples.append(s)
    total = sum(s.total_cycles for s in items)
    busy = sum(s.bus_busy_cycles for s in items)
    assert log.mean_bus_utilization() == min(1.0, busy / total)
